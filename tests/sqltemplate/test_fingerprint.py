"""Tests for SQL tokenization, normalization and fingerprinting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sqltemplate import (
    StatementKind,
    TemplateCatalog,
    TokenKind,
    classify_statement,
    extract_tables,
    fingerprint,
    normalize_statement,
    sql_id,
    tokenize,
)


class TestTokenizer:
    def test_basic_select(self):
        toks = tokenize("SELECT * FROM t WHERE id = 5")
        kinds = [t.kind for t in toks]
        assert TokenKind.KEYWORD in kinds
        assert TokenKind.NUMBER in kinds

    def test_string_literal_with_escape(self):
        toks = tokenize(r"SELECT 'it\'s' FROM t")
        strings = [t for t in toks if t.kind == TokenKind.STRING]
        assert len(strings) == 1

    def test_doubled_quote_escape(self):
        toks = tokenize("SELECT 'it''s' FROM t")
        strings = [t for t in toks if t.kind == TokenKind.STRING]
        assert len(strings) == 1

    def test_line_comment_stripped(self):
        toks = tokenize("SELECT 1 -- comment\nFROM t")
        texts = [t.text for t in toks]
        assert "comment" not in texts

    def test_block_comment_stripped(self):
        toks = tokenize("SELECT /* hint */ 1 FROM t")
        assert all("hint" not in t.text for t in toks)

    def test_backquoted_identifier(self):
        toks = tokenize("SELECT `weird col` FROM `t`")
        idents = [t.text for t in toks if t.kind == TokenKind.IDENTIFIER]
        assert "weird col" in idents and "t" in idents

    def test_decimal_and_exponent_numbers(self):
        toks = tokenize("SELECT 1.5, 2e10, 0xFF")
        nums = [t for t in toks if t.kind == TokenKind.NUMBER]
        assert len(nums) == 3

    def test_never_hangs_on_strange_chars(self):
        toks = tokenize("SELECT @ # [ ] {} FROM t")
        assert len(toks) > 0

    @given(st.text(max_size=200))
    @settings(max_examples=80)
    def test_property_total_on_arbitrary_input(self, text):
        # The tokenizer must terminate and never raise on any input.
        tokenize(text)


class TestNormalize:
    def test_paper_example(self):
        # Paper Def II.3: the three literal variants share one template.
        queries = [
            "SELECT * FROM user_table WHERE uid = 123456",
            "SELECT * FROM user_table WHERE uid = 654321",
            "SELECT * FROM user_table WHERE uid = 123321",
        ]
        templates = {normalize_statement(q) for q in queries}
        assert templates == {"SELECT * FROM user_table WHERE uid = ?"}

    def test_string_literals_replaced(self):
        t = normalize_statement("SELECT * FROM t WHERE name = 'alice'")
        assert "'alice'" not in t
        assert "?" in t

    def test_in_list_collapsed(self):
        a = normalize_statement("SELECT * FROM t WHERE id IN (1, 2, 3)")
        b = normalize_statement("SELECT * FROM t WHERE id IN (7)")
        assert a == b

    def test_in_subquery_not_collapsed(self):
        t = normalize_statement("SELECT * FROM t WHERE id IN (SELECT id FROM u)")
        assert "SELECT" in t.split("IN", 1)[1]

    def test_negative_in_list_collapsed(self):
        # Signed literals lex as OPERATOR + NUMBER; the collapse must
        # still see a pure value list, or list size leaks into the id.
        a = normalize_statement("SELECT * FROM t WHERE id IN (-1, -2, -3)")
        b = normalize_statement("SELECT * FROM t WHERE id IN (-9)")
        c = normalize_statement("SELECT * FROM t WHERE id IN (4)")
        assert a == b == c

    def test_null_in_list_collapsed(self):
        a = normalize_statement("SELECT * FROM t WHERE id IN (1, NULL, 3)")
        b = normalize_statement("SELECT * FROM t WHERE id IN (2)")
        assert a == b

    def test_large_in_list_same_id_regardless_of_size(self):
        small = fingerprint("SELECT c0 FROM t WHERE id IN (1, 2)")
        large = fingerprint(
            "SELECT c0 FROM t WHERE id IN (" +
            ", ".join(str(i) for i in range(64)) + ")"
        )
        assert small.sql_id == large.sql_id

    def test_column_list_not_collapsed(self):
        t = normalize_statement("SELECT * FROM t WHERE id IN (a, b, c)")
        assert "a" in t and "b" in t and "c" in t

    def test_keywords_uppercased(self):
        t = normalize_statement("select * from t where x = 1")
        assert t.startswith("SELECT")
        assert "FROM" in t and "WHERE" in t

    def test_identifier_case_preserved(self):
        t = normalize_statement("SELECT * FROM MyTable")
        assert "MyTable" in t

    def test_whitespace_canonicalised(self):
        a = normalize_statement("SELECT  *   FROM t WHERE x=1")
        b = normalize_statement("SELECT * FROM t WHERE x = 1")
        assert a == b


class TestSqlId:
    def test_stable(self):
        t = "SELECT * FROM t WHERE x = ?"
        assert sql_id(t) == sql_id(t)

    def test_distinct_templates_distinct_ids(self):
        assert sql_id("SELECT * FROM a") != sql_id("SELECT * FROM b")

    def test_length_and_charset(self):
        sid = sql_id("SELECT 1", length=8)
        assert len(sid) == 8
        assert sid == sid.upper()
        int(sid, 16)  # must be valid hex


class TestClassify:
    @pytest.mark.parametrize(
        "sql,kind",
        [
            ("SELECT * FROM t", StatementKind.SELECT),
            ("INSERT INTO t VALUES (1)", StatementKind.INSERT),
            ("REPLACE INTO t VALUES (1)", StatementKind.INSERT),
            ("UPDATE t SET x = 1", StatementKind.UPDATE),
            ("DELETE FROM t WHERE x = 1", StatementKind.DELETE),
            ("ALTER TABLE t ADD COLUMN c INT", StatementKind.DDL),
            ("CREATE INDEX i ON t (c)", StatementKind.DDL),
            ("DROP TABLE t", StatementKind.DDL),
            ("TRUNCATE TABLE t", StatementKind.DDL),
            ("ROLLBACK", StatementKind.TRANSACTION),
            ("COMMIT", StatementKind.TRANSACTION),
            ("SET autocommit = 1", StatementKind.OTHER),
        ],
    )
    def test_classification(self, sql, kind):
        assert classify_statement(sql) is kind

    def test_kind_properties(self):
        assert StatementKind.UPDATE.takes_row_locks
        assert not StatementKind.SELECT.takes_row_locks
        assert StatementKind.DDL.takes_mdl_exclusive
        assert not StatementKind.UPDATE.takes_mdl_exclusive


class TestExtractTables:
    def test_select_from(self):
        assert extract_tables("SELECT * FROM sales WHERE x = 1") == ("sales",)

    def test_join(self):
        tabs = extract_tables("SELECT * FROM a JOIN b ON a.id = b.id")
        assert set(tabs) == {"a", "b"}

    def test_update(self):
        assert extract_tables("UPDATE orders SET x = 1") == ("orders",)

    def test_insert_into(self):
        assert extract_tables("INSERT INTO logs VALUES (1)") == ("logs",)

    def test_ddl_with_if_exists(self):
        assert extract_tables("DROP TABLE IF EXISTS tmp") == ("tmp",)

    def test_alter_table(self):
        assert extract_tables("ALTER TABLE sales ADD COLUMN c INT") == ("sales",)

    def test_no_tables(self):
        assert extract_tables("SELECT 1") == ()


class TestFingerprint:
    def test_roundtrip(self):
        fp = fingerprint("UPDATE sales SET qty = 7 WHERE id = 3")
        assert fp.kind is StatementKind.UPDATE
        assert fp.tables == ("sales",)
        assert "?" in fp.template
        assert fp.sql_id == sql_id(fp.template)

    def test_same_template_same_id(self):
        a = fingerprint("SELECT * FROM t WHERE id = 1")
        b = fingerprint("SELECT * FROM t WHERE id = 99")
        assert a.sql_id == b.sql_id


class TestCatalog:
    def test_register_statement_aggregates(self):
        cat = TemplateCatalog()
        cat.register_statement("SELECT * FROM t WHERE id = 1", timestamp=100)
        info = cat.register_statement("SELECT * FROM t WHERE id = 2", timestamp=90)
        assert len(cat) == 1
        assert info.query_count == 2
        assert info.first_seen == 90

    def test_templates_on_table(self):
        cat = TemplateCatalog()
        cat.register_statement("SELECT * FROM a WHERE id = 1")
        cat.register_statement("UPDATE b SET x = 1")
        assert [i.kind for i in cat.templates_on_table("b")] == [StatementKind.UPDATE]

    def test_membership_and_lookup(self):
        cat = TemplateCatalog()
        info = cat.register_statement("SELECT * FROM a WHERE id = 1")
        assert info.sql_id in cat
        assert cat[info.sql_id] is info
        assert cat.get("DEADBEEF") is None

    def test_register_template_direct(self):
        cat = TemplateCatalog()
        info = cat.register_template(
            "ABCD1234", "SELECT * FROM x WHERE id = ?",
            StatementKind.SELECT, ("x",), first_seen=5,
        )
        assert cat["ABCD1234"] is info
        # Re-registration returns the same record.
        again = cat.register_template(
            "ABCD1234", "SELECT * FROM x WHERE id = ?",
            StatementKind.SELECT, ("x",),
        )
        assert again is info
        assert len(cat) == 1

    def test_iteration(self):
        cat = TemplateCatalog()
        cat.register_statement("SELECT * FROM a")
        cat.register_statement("SELECT * FROM b")
        assert len(list(cat)) == 2


class TestValuesCollapse:
    def test_multirow_insert_collapsed(self):
        one = normalize_statement("INSERT INTO t (a, b) VALUES (1, 'x')")
        many = normalize_statement(
            "INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y'), (3, 'z')"
        )
        assert one == many

    def test_different_row_widths_same_digest(self):
        a = normalize_statement("INSERT INTO t (a, b) VALUES (1, 2), (3, 4)")
        b = normalize_statement(
            "INSERT INTO t (a, b) VALUES (1, 2), (3, 4), (5, 6), (7, 8)"
        )
        assert sql_id(a) == sql_id(b)

    def test_single_row_untouched(self):
        t = normalize_statement("INSERT INTO t (a) VALUES (42)")
        assert t.count("?") == 1

    def test_values_with_expression_not_collapsed(self):
        # A second "row" containing a function call is not a plain batch
        # row and must survive.
        t = normalize_statement("INSERT INTO t (a) VALUES (1), (now())")
        assert "now" in t

    def test_idempotent_after_collapse(self):
        raw = "INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')"
        once = normalize_statement(raw)
        assert normalize_statement(once) == once
