"""Regression tests for the hardened tokenizer and wildcard templates."""

from repro.sqltemplate import normalize_statement
from repro.sqltemplate.fingerprint import WILDCARD_PLACEHOLDER
from repro.sqltemplate.tokenizer import TokenKind, tokenize


def _texts(sql):
    return [t.text for t in tokenize(sql)]


def _kinds(sql):
    return [t.kind for t in tokenize(sql)]


class TestComments:
    def test_double_dash_comment_stripped(self):
        assert _texts("SELECT 1 -- trailing note\nFROM t") == [
            "SELECT", "1", "FROM", "t"
        ]

    def test_hash_comment_stripped(self):
        assert _texts("SELECT 1 # mysql-style\nFROM t") == [
            "SELECT", "1", "FROM", "t"
        ]

    def test_hash_comment_at_end_of_input(self):
        assert _texts("SELECT 1 # no newline") == ["SELECT", "1"]

    def test_block_comment_stripped(self):
        assert _texts("SELECT /* hint */ c0 FROM t") == ["SELECT", "c0", "FROM", "t"]

    def test_unterminated_block_comment(self):
        assert _texts("SELECT 1 /* runs off") == ["SELECT", "1"]

    def test_minus_not_mistaken_for_comment(self):
        # A single '-' is subtraction, not a comment opener.
        assert _texts("SELECT 5 - 3") == ["SELECT", "5", "-", "3"]


class TestHexBinaryLiterals:
    def test_hex_literal_is_one_number(self):
        tokens = tokenize("SELECT 0xDEADbeef")
        assert tokens[1] == tokens[1].__class__(TokenKind.NUMBER, "0xDEADbeef")

    def test_binary_literal_is_one_number(self):
        tokens = tokenize("SELECT 0b1010")
        assert (tokens[1].kind, tokens[1].text) == (TokenKind.NUMBER, "0b1010")

    def test_string_style_hex_literal(self):
        tokens = tokenize("SELECT x'1F2A'")
        assert (tokens[1].kind, tokens[1].text) == (TokenKind.NUMBER, "x'1F2A'")

    def test_string_style_binary_literal(self):
        tokens = tokenize("SELECT b'1010'")
        assert (tokens[1].kind, tokens[1].text) == (TokenKind.NUMBER, "b'1010'")

    def test_bare_0x_falls_back_to_decimal(self):
        # "0x" with no hex digits is not a literal; the 0 lexes alone.
        tokens = tokenize("SELECT 0x")
        assert (tokens[1].kind, tokens[1].text) == (TokenKind.NUMBER, "0")

    def test_hex_literals_normalize_to_placeholder(self):
        assert (
            normalize_statement("SELECT c FROM t WHERE k = 0xFF")
            == "SELECT c FROM t WHERE k = ?"
        )
        assert (
            normalize_statement("SELECT c FROM t WHERE k = x'FF'")
            == "SELECT c FROM t WHERE k = ?"
        )

    def test_hex_and_decimal_share_a_template(self):
        a = normalize_statement("SELECT c FROM t WHERE k = 0x1F")
        b = normalize_statement("SELECT c FROM t WHERE k = 31")
        assert a == b


class TestLeadingWildcardTemplates:
    def test_leading_wildcard_survives_normalization(self):
        template = normalize_statement("SELECT c FROM t WHERE c LIKE '%abc'")
        assert WILDCARD_PLACEHOLDER in template

    def test_trailing_wildcard_is_plain_placeholder(self):
        template = normalize_statement("SELECT c FROM t WHERE c LIKE 'abc%'")
        assert WILDCARD_PLACEHOLDER not in template
        assert "?" in template

    def test_wildcard_marker_only_after_like(self):
        # A leading-% string in a non-LIKE position is an ordinary literal.
        template = normalize_statement("SELECT c FROM t WHERE c = '%abc'")
        assert WILDCARD_PLACEHOLDER not in template

    def test_wildcard_normalization_idempotent(self):
        once = normalize_statement("SELECT c FROM t WHERE c LIKE '%abc%'")
        assert normalize_statement(once) == once

    def test_distinct_templates_for_scan_vs_range(self):
        scan = normalize_statement("SELECT c FROM t WHERE c LIKE '%abc'")
        range_ = normalize_statement("SELECT c FROM t WHERE c LIKE 'abc%'")
        assert scan != range_
