"""Tests for the anti-pattern rule registry."""

import pytest

from repro.dbsim import Schema, Table
from repro.sqlanalysis import (
    AnalysisContext,
    Finding,
    LintRule,
    Severity,
    parse_statement,
    register_rule,
    rule_ids,
)
from repro.sqlanalysis.rules import _REGISTRY, _scale_severity


def run_rule(rule_id, sql, ctx=None):
    ir = parse_statement(sql)
    return list(_REGISTRY[rule_id].check(ir, ctx or AnalysisContext()))


def big_schema(**tables):
    return Schema([Table(name, row_count=rows, indexes=idx)
                   for name, (rows, idx) in tables.items()])


class TestSeverity:
    def test_labels_round_trip(self):
        for sev in Severity:
            assert Severity.from_label(sev.label) is sev

    def test_order(self):
        assert Severity.INFO < Severity.WARNING < Severity.HIGH < Severity.CRITICAL

    def test_scaling(self):
        assert _scale_severity(Severity.WARNING, None, 100_000) is Severity.WARNING
        assert _scale_severity(Severity.WARNING, 50_000, 100_000) is Severity.WARNING
        assert _scale_severity(Severity.WARNING, 200_000, 100_000) is Severity.HIGH
        assert _scale_severity(Severity.WARNING, 2_000_000, 100_000) is Severity.CRITICAL
        # Caps at CRITICAL.
        assert _scale_severity(Severity.HIGH, 2_000_000, 100_000) is Severity.CRITICAL


class TestFinding:
    def test_round_trip(self):
        finding = Finding(
            rule="missing-index", severity=Severity.HIGH, message="m",
            sql_id="S1", table="t", column="c", suggestion="s",
        )
        assert Finding.from_dict(finding.to_dict()) == finding

    def test_to_dict_is_strict_json(self):
        data = Finding(rule="x", severity=Severity.INFO, message="m").to_dict()
        assert all(isinstance(v, str) for v in data.values())
        assert data["severity"] == "info"


class TestSelectStar:
    def test_fires(self):
        (f,) = run_rule("select-star", "SELECT * FROM t WHERE k = 1")
        assert f.severity is Severity.INFO and f.table == "t"

    def test_abstains_on_columns(self):
        assert run_rule("select-star", "SELECT c0, c1 FROM t") == []

    def test_abstains_on_count_star(self):
        assert run_rule("select-star", "SELECT COUNT(*) FROM t") == []


class TestNonSargableFunction:
    def test_function_fires(self):
        (f,) = run_rule(
            "non-sargable-function", "SELECT c FROM t WHERE LOWER(name) = 'x'"
        )
        assert f.column == "name" and "LOWER" in f.message

    def test_arithmetic_fires(self):
        (f,) = run_rule("non-sargable-function", "SELECT c FROM t WHERE k + 1 = 5")
        assert "arithmetic" in f.message

    def test_severity_scales_with_table_rows(self):
        ctx = AnalysisContext(schema=big_schema(t=(5_000_000, set())))
        (f,) = run_rule(
            "non-sargable-function", "SELECT c FROM t WHERE LOWER(name) = 'x'", ctx
        )
        assert f.severity is Severity.CRITICAL

    def test_bare_column_abstains(self):
        assert run_rule("non-sargable-function", "SELECT c FROM t WHERE k = 5") == []


class TestLeadingWildcardLike:
    def test_fires_on_leading_percent(self):
        (f,) = run_rule(
            "leading-wildcard-like", "SELECT c FROM t WHERE name LIKE '%end'"
        )
        assert f.column == "name"

    def test_abstains_on_prefix_pattern(self):
        assert run_rule(
            "leading-wildcard-like", "SELECT c FROM t WHERE name LIKE 'pre%'"
        ) == []

    def test_fires_on_wildcard_placeholder_template(self):
        # Template form produced by the fingerprinter.
        assert run_rule(
            "leading-wildcard-like", "SELECT c FROM t WHERE name LIKE '%?'"
        ) != []


class TestImplicitConversion:
    def test_fires_on_quoted_number(self):
        (f,) = run_rule("implicit-conversion", "SELECT c FROM t WHERE k = '42'")
        assert f.column == "k"

    def test_abstains_on_real_string(self):
        assert run_rule("implicit-conversion", "SELECT c FROM t WHERE k = 'abc'") == []

    def test_abstains_on_bare_number(self):
        assert run_rule("implicit-conversion", "SELECT c FROM t WHERE k = 42") == []


class TestMissingIndex:
    SQL = "SELECT c FROM t WHERE k = 5"

    def test_fires_without_index(self):
        ctx = AnalysisContext(schema=big_schema(t=(500_000, set())))
        (f,) = run_rule("missing-index", self.SQL, ctx)
        assert f.table == "t" and f.column == "k"
        assert "CREATE INDEX" in f.suggestion

    def test_abstains_when_indexed(self):
        ctx = AnalysisContext(schema=big_schema(t=(500_000, {"k"})))
        assert run_rule("missing-index", self.SQL, ctx) == []

    def test_abstains_on_small_table(self):
        ctx = AnalysisContext(schema=big_schema(t=(1_000, set())))
        assert run_rule("missing-index", self.SQL, ctx) == []

    def test_abstains_without_schema(self):
        assert run_rule("missing-index", self.SQL) == []

    def test_abstains_without_sargable_predicate(self):
        ctx = AnalysisContext(schema=big_schema(t=(500_000, set())))
        assert run_rule(
            "missing-index", "SELECT c FROM t WHERE LOWER(k) = 'x'", ctx
        ) == []


class TestUnboundedScan:
    def test_select_without_where_fires(self):
        (f,) = run_rule("unbounded-scan", "SELECT c FROM t")
        assert "no WHERE" in f.message

    def test_select_with_limit_abstains(self):
        assert run_rule("unbounded-scan", "SELECT c FROM t LIMIT 10") == []

    def test_update_without_where_fires(self):
        (f,) = run_rule("unbounded-scan", "UPDATE t SET c = 1")
        assert "rewrites" in f.message

    def test_filtered_abstains(self):
        assert run_rule("unbounded-scan", "SELECT c FROM t WHERE k = 1") == []


class TestCartesianJoin:
    def test_comma_join_without_condition_fires(self):
        (f,) = run_rule("cartesian-join", "SELECT 1 FROM a, b WHERE a.x = 1")
        assert f.severity is Severity.HIGH

    def test_cross_table_equality_abstains(self):
        assert run_rule("cartesian-join", "SELECT 1 FROM a, b WHERE a.x = b.y") == []

    def test_on_clause_abstains(self):
        assert run_rule("cartesian-join", "SELECT 1 FROM a JOIN b ON a.x = b.y") == []

    def test_single_table_abstains(self):
        assert run_rule("cartesian-join", "SELECT 1 FROM a WHERE x = 1") == []


class TestListShapes:
    def test_large_in_list_fires_at_threshold(self):
        values = ", ".join(str(i) for i in range(16))
        (f,) = run_rule("large-in-list", f"SELECT c FROM t WHERE k IN ({values})")
        assert "16 values" in f.message

    def test_small_in_list_abstains(self):
        assert run_rule("large-in-list", "SELECT c FROM t WHERE k IN (1, 2, 3)") == []

    def test_long_or_chain_fires(self):
        chain = " OR ".join(f"k = {i}" for i in range(9))
        (f,) = run_rule("long-or-chain", f"SELECT c FROM t WHERE {chain}")
        assert "9 alternatives" in f.message

    def test_short_or_chain_abstains(self):
        assert run_rule("long-or-chain", "SELECT c FROM t WHERE k = 1 OR k = 2") == []


class TestLockFootprint:
    def test_locking_read_fires(self):
        (f,) = run_rule("lock-footprint", "SELECT c FROM t WHERE k = 1 FOR UPDATE")
        assert f.severity is Severity.WARNING

    def test_locking_read_on_hot_table_is_high(self):
        ctx = AnalysisContext(hot_tables=frozenset({"t"}))
        (f,) = run_rule(
            "lock-footprint", "SELECT c FROM t WHERE k = 1 FOR UPDATE", ctx
        )
        assert f.severity is Severity.HIGH

    def test_unbounded_write_is_critical_on_hot_table(self):
        ctx = AnalysisContext(hot_tables=frozenset({"t"}))
        (f,) = run_rule("lock-footprint", "DELETE FROM t", ctx)
        assert f.severity is Severity.CRITICAL

    def test_plain_select_abstains(self):
        assert run_rule("lock-footprint", "SELECT c FROM t WHERE k = 1") == []


class TestRegistry:
    EXPECTED = {
        "select-star", "non-sargable-function", "leading-wildcard-like",
        "implicit-conversion", "missing-index", "unbounded-scan",
        "cartesian-join", "large-in-list", "long-or-chain", "lock-footprint",
    }

    def test_default_rules_registered(self):
        assert self.EXPECTED <= set(rule_ids())

    def test_custom_rule_registration(self):
        class NoDeleteRule(LintRule):
            rule_id = "no-delete"
            description = "site policy: no deletes"

            def check(self, ir, ctx):
                if ir.kind.value == "delete":
                    yield Finding(
                        rule=self.rule_id,
                        severity=Severity.CRITICAL,
                        message="deletes are forbidden here",
                    )

        try:
            register_rule(NoDeleteRule)
            assert "no-delete" in rule_ids()
            (f,) = run_rule("no-delete", "DELETE FROM t WHERE k = 1")
            assert f.severity is Severity.CRITICAL
        finally:
            _REGISTRY.pop("no-delete", None)

    def test_rule_without_id_rejected(self):
        class Anonymous(LintRule):
            def check(self, ir, ctx):
                return iter(())

        with pytest.raises(ValueError):
            register_rule(Anonymous)
