"""Tests for the statement IR parser."""

from repro.sqlanalysis import parse_statement
from repro.sqltemplate import StatementKind


class TestClauses:
    def test_simple_select(self):
        ir = parse_statement("SELECT c0, c1 FROM t WHERE k0 = 5 ORDER BY c0 LIMIT 10")
        assert ir.kind is StatementKind.SELECT
        assert ir.parse_ok
        assert ir.table_names == ("t",)
        assert ir.has_where and ir.has_order_by and ir.has_limit
        assert not ir.has_group_by
        assert ir.select_items == 2
        assert not ir.select_star

    def test_select_star(self):
        assert parse_statement("SELECT * FROM t").select_star
        assert parse_statement("SELECT a.* FROM t a").select_star
        assert not parse_statement("SELECT COUNT(*) FROM t").select_star
        assert not parse_statement("SELECT c0 * 2 FROM t").select_star

    def test_group_by(self):
        ir = parse_statement("SELECT k0, COUNT(*) FROM t GROUP BY k0")
        assert ir.has_group_by

    def test_update_and_delete_tables(self):
        up = parse_statement("UPDATE orders SET status = 1 WHERE id = 9")
        assert up.kind is StatementKind.UPDATE
        assert up.table_names == ("orders",)
        de = parse_statement("DELETE FROM logs WHERE day < 3")
        assert de.kind is StatementKind.DELETE
        assert de.table_names == ("logs",)


class TestTables:
    def test_aliases_resolve(self):
        ir = parse_statement(
            "SELECT a.c0 FROM orders AS a JOIN users u ON a.uid = u.id"
        )
        assert ir.resolve("a") == "orders"
        assert ir.resolve("u") == "users"
        assert ir.explicit_joins == 1
        assert ir.join_constraints == 1

    def test_comma_join(self):
        ir = parse_statement("SELECT 1 FROM a, b WHERE a.x = b.y")
        assert set(ir.table_names) == {"a", "b"}
        assert ir.comma_joins == 1
        assert ir.join_constraints == 0

    def test_derived_table(self):
        ir = parse_statement("SELECT x FROM (SELECT c0 AS x FROM t) d")
        assert any(t.derived for t in ir.tables)
        # Derived tables are excluded from table_names.
        assert "t" not in ir.table_names


class TestPredicates:
    def test_sargable_equality(self):
        ir = parse_statement("SELECT c FROM t WHERE k0 = 5")
        (pred,) = ir.where_predicates
        assert pred.column.name == "k0"
        assert pred.op == "="
        assert pred.sargable

    def test_function_on_column_not_sargable(self):
        ir = parse_statement("SELECT c FROM t WHERE LOWER(name) = 'x'")
        (pred,) = ir.where_predicates
        assert pred.func == "LOWER"
        assert pred.column.name == "name"
        assert not pred.sargable

    def test_arithmetic_on_column_not_sargable(self):
        ir = parse_statement("SELECT c FROM t WHERE k0 + 1 = 5")
        (pred,) = ir.where_predicates
        assert pred.arith
        assert not pred.sargable

    def test_quoted_number_not_sargable(self):
        ir = parse_statement("SELECT c FROM t WHERE k0 = '42'")
        (pred,) = ir.where_predicates
        assert pred.value_kind == "string"
        assert not pred.sargable

    def test_between_keeps_one_atom(self):
        ir = parse_statement("SELECT c FROM t WHERE k0 BETWEEN 1 AND 9 AND k1 = 2")
        ops = sorted(p.op for p in ir.where_predicates)
        assert ops == ["=", "between"]

    def test_in_list_size(self):
        ir = parse_statement("SELECT c FROM t WHERE k0 IN (1, 2, 3, 4)")
        (pred,) = ir.where_predicates
        assert pred.op == "in"
        assert pred.in_list_size == 4

    def test_in_subquery_is_not_a_list(self):
        ir = parse_statement("SELECT c FROM t WHERE k0 IN (SELECT id FROM u)")
        (pred,) = ir.where_predicates
        assert pred.in_list_size == 0

    def test_or_count(self):
        ir = parse_statement("SELECT c FROM t WHERE k0 = 1 OR k0 = 2 OR k0 = 3")
        assert ir.or_count == 2
        assert len(ir.where_predicates) == 3

    def test_parenthesised_groups_recurse(self):
        ir = parse_statement("SELECT c FROM t WHERE (k0 = 1 OR k0 = 2) AND k1 = 3")
        assert ir.or_count == 1
        assert len(ir.where_predicates) == 3

    def test_on_predicates_marked_from_join(self):
        ir = parse_statement("SELECT 1 FROM a JOIN b ON a.x = b.y WHERE a.z = 1")
        joins = [p for p in ir.predicates if p.from_join]
        wheres = ir.where_predicates
        assert len(joins) == 1 and len(wheres) == 1

    def test_cross_table_equality_captured(self):
        ir = parse_statement("SELECT 1 FROM a, b WHERE a.x = b.y")
        (pred,) = ir.where_predicates
        assert pred.value_column is not None
        assert pred.value_column.qualifier == "b"


class TestLocking:
    def test_for_update(self):
        ir = parse_statement("SELECT c FROM t WHERE k = 1 FOR UPDATE")
        assert ir.for_update and ir.locking

    def test_lock_in_share_mode(self):
        ir = parse_statement("SELECT c FROM t WHERE k = 1 LOCK IN SHARE MODE")
        assert ir.lock_in_share_mode and not ir.for_update

    def test_for_share(self):
        ir = parse_statement("SELECT c FROM t WHERE k = 1 FOR SHARE")
        assert ir.lock_in_share_mode

    def test_plain_select_not_locking(self):
        assert not parse_statement("SELECT c FROM t WHERE k = 1").locking


class TestTotality:
    def test_garbage_still_returns_ir(self):
        ir = parse_statement(")))((( ORDER LIMIT '")
        assert ir is not None

    def test_empty_statement(self):
        ir = parse_statement("")
        assert ir.table_names == ()
        assert ir.predicates == ()

    def test_non_dml(self):
        ir = parse_statement("SET SESSION sort_buffer_size = 1048576")
        assert ir.kind is StatementKind.OTHER

    def test_degenerate_inputs_well_formed(self):
        # Comment-only and whitespace-only statements tokenize to
        # nothing; the parser must return an empty-but-well-formed IR.
        for text in ("", "   ", ";", " ; ", "-- just a comment",
                     "/* block */", "/* a */ -- b", ";;;"):
            ir = parse_statement(text)
            assert ir.kind is StatementKind.OTHER
            assert ir.table_names == ()
            assert ir.predicates == ()
            assert not ir.has_where
            assert not ir.locking

    def test_trailing_semicolon_is_transparent(self):
        bare = parse_statement("SELECT c0 FROM t WHERE k = 1")
        tailed = parse_statement("SELECT c0 FROM t WHERE k = 1;")
        assert tailed.kind is bare.kind
        assert tailed.table_names == bare.table_names
        assert len(tailed.predicates) == len(bare.predicates)
        assert tailed.has_where
