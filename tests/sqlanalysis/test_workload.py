"""Workload-level analyzer: passes, registry, report, determinism."""

from types import SimpleNamespace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dbsim.tables import Schema, Table
from repro.sqlanalysis import Severity
from repro.sqlanalysis.workload import (
    Advisory,
    AdvisoryPass,
    AdvisoryReport,
    IndexAdvisorPass,
    JoinFanoutPass,
    LockConflictPass,
    TrafficWeight,
    WorkloadAnalyzer,
    WorkloadConfig,
    advise_failed,
    default_passes,
    pass_ids,
    register_pass,
)
from repro.telemetry import MetricsRegistry


def _spec(sql_id, sql):
    return SimpleNamespace(sql_id=sql_id, template=sql, exemplar=sql)


def _schema():
    return Schema(
        [
            Table("big", 5_000_000, {"id", "k0"}),
            Table("other", 1_000_000, {"id", "k0"}),
            Table("hot", 2_000_000, {"id"}),
        ]
    )


BAITS = [
    _spec("LOCKA", "SELECT a.c0 FROM big a JOIN other b ON a.id = b.fk "
                   "WHERE a.k0 = 7 FOR UPDATE"),
    _spec("LOCKB", "SELECT b.c0 FROM other b JOIN big a ON b.fk = a.id "
                   "WHERE b.k0 = 8 FOR UPDATE"),
    _spec("WW1", "UPDATE hot SET c0 = c0 + 1 WHERE LOWER(c8) = 'x'"),
    _spec("WW2", "UPDATE hot SET c1 = 2 WHERE UPPER(c9) = 'y'"),
    _spec("IDX1", "SELECT c0, c3 FROM big WHERE c5 = 10 AND c6 = 20"),
    _spec("IDX2", "SELECT c1 FROM big WHERE c5 = 30"),
    _spec("CART", "SELECT a.c0, b.c1 FROM big a, other b WHERE a.c7 = 5"),
    _spec("FAN1", "SELECT c0, c1 FROM hot"),
    _spec("BG1", "SELECT c0 FROM big WHERE k0 = 5 AND s = 'x'"),
]

WEIGHTS = {
    s.sql_id: TrafficWeight(calls=500.0, rows_examined=500 * 300_000.0)
    for s in BAITS
}


@pytest.fixture()
def report():
    analyzer = WorkloadAnalyzer(schema=_schema(), registry=MetricsRegistry())
    return analyzer.analyze(BAITS, WEIGHTS)


class TestPasses:
    def test_lock_order_cycle_detected(self, report):
        cycles = [
            a for a in report.advisories
            if a.advisor == "lock-conflict" and "opposite orders" in a.message
        ]
        assert len(cycles) == 1
        assert set(cycles[0].sql_ids) == {"LOCKA", "LOCKB"}
        assert set(cycles[0].tables) == {"big", "other"}

    def test_write_write_hotspot_detected(self, report):
        ww = [
            a for a in report.advisories
            if a.advisor == "lock-conflict" and "writers contend" in a.message
        ]
        assert len(ww) == 1
        assert set(ww[0].sql_ids) == {"WW1", "WW2"}
        assert ww[0].table == "hot"

    def test_index_candidates_merge_prefix(self, report):
        idx = [a for a in report.advisories if a.advisor == "index-advisor"]
        assert len(idx) == 1
        # IDX2's (c5,) candidate is a prefix of IDX1's (c5, c6): one
        # composite index serves both, so the advisories merge.
        assert idx[0].evidence["columns"] == "c5,c6"
        assert set(idx[0].sql_ids) == {"IDX1", "IDX2"}
        assert "CREATE INDEX" in idx[0].suggestion

    def test_cartesian_join_detected(self, report):
        cart = [
            a for a in report.advisories
            if a.advisor == "join-fanout" and "no constraint" in a.message
        ]
        assert len(cart) == 1
        assert cart[0].sql_ids == ("CART",)

    def test_unbounded_fanout_detected(self, report):
        fan = [
            a for a in report.advisories
            if a.advisor == "join-fanout" and "no WHERE" in a.message
        ]
        assert len(fan) == 1
        assert fan[0].sql_ids == ("FAN1",)
        assert fan[0].table == "hot"

    def test_index_backed_background_stays_quiet(self, report):
        for advisory in report.advisories:
            assert "BG1" not in advisory.sql_ids

    def test_most_severe_first(self, report):
        sevs = [int(a.severity) for a in report.advisories]
        assert sevs == sorted(sevs, reverse=True)

    def test_explicit_join_is_not_cartesian(self):
        analyzer = WorkloadAnalyzer(schema=_schema(), registry=MetricsRegistry())
        rep = analyzer.analyze(
            [_spec("J1", "SELECT a.c0 FROM big a JOIN other b ON a.id = b.fk "
                         "WHERE a.k0 = 1")],
            WEIGHTS,
        )
        assert not [a for a in rep.advisories if a.advisor == "join-fanout"]

    def test_existing_composite_index_suppresses_advice(self):
        schema = _schema()
        schema.get("big").add_composite_index(("c5", "c6"))
        analyzer = WorkloadAnalyzer(schema=schema, registry=MetricsRegistry())
        rep = analyzer.analyze(
            [_spec("IDX1", "SELECT c0 FROM big WHERE c5 = 10 AND c6 = 20")],
            WEIGHTS,
        )
        assert not [a for a in rep.advisories if a.advisor == "index-advisor"]

    def test_cold_traffic_below_benefit_threshold(self):
        analyzer = WorkloadAnalyzer(schema=_schema(), registry=MetricsRegistry())
        rep = analyzer.analyze(
            [_spec("IDX1", "SELECT c0 FROM big WHERE c5 = 10")],
            {"IDX1": TrafficWeight(calls=1.0, rows_examined=300.0)},
        )
        assert not [a for a in rep.advisories if a.advisor == "index-advisor"]


class TestRegistry:
    def test_builtins_registered(self):
        ids = pass_ids()
        assert {"lock-conflict", "index-advisor", "join-fanout"} <= set(ids)
        assert {type(p) for p in default_passes()} >= {
            LockConflictPass, IndexAdvisorPass, JoinFanoutPass,
        }

    def test_pass_id_required(self):
        with pytest.raises(ValueError):
            @register_pass
            class Anonymous(AdvisoryPass):
                def run(self, ctx):
                    return iter(())

    def test_custom_pass_runs(self):
        class Shouty(AdvisoryPass):
            pass_id = "shouty"

            def run(self, ctx):
                yield Advisory(
                    advisor=self.pass_id,
                    severity=Severity.INFO,
                    message=f"saw {len(ctx.templates)} templates",
                )

        analyzer = WorkloadAnalyzer(
            passes=[Shouty()], registry=MetricsRegistry()
        )
        rep = analyzer.analyze(BAITS)
        assert [a.advisor for a in rep.advisories] == ["shouty"]


class TestReport:
    def test_advisory_round_trip(self, report):
        for advisory in report.advisories:
            assert Advisory.from_dict(advisory.to_dict()) == advisory

    def test_report_dict_shape(self, report):
        data = report.to_dict()
        assert data["analyzed"] == len(BAITS)
        assert data["advisories_total"] == len(report.advisories)
        assert sum(data["counts_by_advisor"].values()) == len(report.advisories)

    def test_render_text_mentions_each_advisor(self, report):
        text = report.render_text()
        for advisory in report.advisories:
            assert advisory.advisor in text

    def test_advise_failed_contract(self, report):
        assert report.max_severity >= Severity.HIGH
        assert advise_failed(report, "warning")
        assert advise_failed(report, "high")
        assert not advise_failed(report, "never")
        assert not advise_failed(AdvisoryReport(), "info")


class TestAnalyzerRobustness:
    def test_duplicate_and_malformed_templates(self):
        analyzer = WorkloadAnalyzer(schema=_schema(), registry=MetricsRegistry())
        templates = BAITS + BAITS + [
            _spec("JUNK", ")))((( ORDER LIMIT '"),
            _spec("", "SELECT 1"),
            SimpleNamespace(sql_id="NOTEXT", template="", exemplar=""),
        ]
        rep = analyzer.analyze(templates, WEIGHTS)
        assert rep.analyzed == len(BAITS) + 1  # dedup + JUNK, drops blanks

    def test_broken_pass_degrades_not_raises(self):
        class Broken(AdvisoryPass):
            pass_id = "broken"

            def run(self, ctx):
                raise RuntimeError("boom")

        registry = MetricsRegistry()
        analyzer = WorkloadAnalyzer(passes=[Broken()], registry=registry)
        rep = analyzer.analyze(BAITS)
        assert rep.advisories == []
        names = [name for name, _kind, _key, _inst in registry]
        assert "workload_pass_failures_total" in names

    def test_max_advisories_truncates_after_sort(self):
        config = WorkloadConfig(max_advisories=2)
        analyzer = WorkloadAnalyzer(
            schema=_schema(), config=config, registry=MetricsRegistry()
        )
        rep = analyzer.analyze(BAITS, WEIGHTS)
        assert len(rep.advisories) == 2
        assert int(rep.advisories[0].severity) >= int(rep.advisories[1].severity)

    def test_no_schema_still_total(self):
        analyzer = WorkloadAnalyzer(registry=MetricsRegistry())
        rep = analyzer.analyze(BAITS, WEIGHTS)
        assert isinstance(rep, AdvisoryReport)

    def test_no_schema_suppresses_index_claims(self):
        # Without index metadata the advisor cannot rule out an existing
        # index, so index advisories and the broad-writer heuristic stay
        # silent rather than flag index-backed background traffic
        # (the schema-less fleet drain path hits exactly this).
        analyzer = WorkloadAnalyzer(registry=MetricsRegistry())
        rep = analyzer.analyze(BAITS, WEIGHTS)
        advisors = {a.advisor for a in rep.advisories}
        assert "index-advisor" not in advisors
        assert not any(
            "broad-footprint writers" in a.message for a in rep.advisories
        )
        # Schema-independent passes still fire.
        assert "join-fanout" in advisors


_STATEMENTS = st.sampled_from([s.exemplar for s in BAITS] + [
    "", ";", "-- nothing", "SELECT", "DELETE FROM hot",
    "UPDATE big SET c0 = 1", "SELECT * FROM big, other",
    "INSERT INTO hot (c0) VALUES (1)", "totally not sql (((",
])


class TestProperties:
    @settings(max_examples=60, deadline=None)
    @given(texts=st.lists(_STATEMENTS, max_size=12), data=st.data())
    def test_total_and_permutation_deterministic(self, texts, data):
        """The analyzer never raises and ignores input order."""
        templates = [_spec(f"T{i:02d}", t) for i, t in enumerate(texts)]
        analyzer = WorkloadAnalyzer(schema=_schema(), registry=MetricsRegistry())
        baseline = analyzer.analyze(templates, WEIGHTS)
        assert isinstance(baseline, AdvisoryReport)
        shuffled = data.draw(st.permutations(templates))
        assert analyzer.analyze(shuffled, WEIGHTS).to_dict() == baseline.to_dict()
