"""Tests for lint report assembly and the exit-code contract."""

import json

import pytest

from repro.sqlanalysis import (
    Finding,
    LintEntry,
    LintReport,
    Severity,
    lint_failed,
)


def finding(rule="select-star", severity=Severity.INFO, **kw):
    return Finding(rule=rule, severity=severity, message="m", **kw)


def report_with(*severities):
    entries = [
        LintEntry(
            sql_id=f"S{i}",
            statement="SELECT * FROM t",
            findings=[finding(severity=sev)],
        )
        for i, sev in enumerate(severities)
    ]
    return LintReport(entries=entries, analyzed=max(len(entries), 1))


class TestReport:
    def test_counts(self):
        report = report_with(Severity.INFO, Severity.HIGH, Severity.HIGH)
        assert report.count_by_severity() == {"info": 1, "high": 2}
        assert report.count_by_rule() == {"select-star": 3}
        assert report.max_severity is Severity.HIGH

    def test_empty_report(self):
        report = LintReport(analyzed=5)
        assert report.max_severity is None
        assert report.findings == []

    def test_to_dict_is_json_serializable(self):
        report = report_with(Severity.WARNING)
        data = json.loads(json.dumps(report.to_dict()))
        assert data["analyzed"] == 1
        assert data["templates_with_findings"] == 1
        assert data["entries"][0]["findings"][0]["severity"] == "warning"
        assert "evaluation" not in data

    def test_to_dict_includes_evaluation_when_set(self):
        report = report_with(Severity.WARNING)
        report.evaluation = {"precision": 1.0, "recall": 0.9}
        assert report.to_dict()["evaluation"]["recall"] == 0.9

    def test_render_text_orders_worst_first(self):
        report = report_with(Severity.INFO, Severity.CRITICAL)
        text = report.render_text()
        assert text.index("[S1]") < text.index("[S0]")
        assert "critical" in text

    def test_render_text_truncates_long_statements(self):
        entry = LintEntry(sql_id="L", statement="x" * 500, findings=[finding()])
        text = LintReport(entries=[entry], analyzed=1).render_text(width=80)
        assert "…" in text
        assert "x" * 200 not in text


class TestExitContract:
    @pytest.mark.parametrize(
        ("worst", "fail_on", "failed"),
        [
            (Severity.INFO, "warning", False),
            (Severity.WARNING, "warning", True),
            (Severity.CRITICAL, "warning", True),
            (Severity.HIGH, "critical", False),
            (Severity.CRITICAL, "critical", True),
            (Severity.INFO, "info", True),
        ],
    )
    def test_threshold(self, worst, fail_on, failed):
        assert lint_failed(report_with(worst), fail_on) is failed

    def test_never_disables_failing(self):
        assert lint_failed(report_with(Severity.CRITICAL), "never") is False

    def test_clean_report_never_fails(self):
        assert lint_failed(LintReport(analyzed=3), "info") is False
