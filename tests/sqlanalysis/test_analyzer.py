"""Tests for the SqlAnalyzer facade (totality, caching, telemetry)."""

from repro.dbsim import Schema, Table, TemplateSpec
from repro.sqlanalysis import AnalyzerConfig, Finding, LintRule, Severity, SqlAnalyzer
from repro.sqltemplate import StatementKind
from repro.sqltemplate.catalog import TemplateInfo
from repro.telemetry import MetricsRegistry


class BrokenRule(LintRule):
    rule_id = "broken"
    description = "always raises"

    def check(self, ir, ctx):
        raise RuntimeError("boom")
        yield  # pragma: no cover


def make_info(sql_id="S1", template="SELECT * FROM t WHERE k = ?", exemplar=""):
    return TemplateInfo(
        sql_id=sql_id,
        template=template,
        kind=StatementKind.SELECT,
        tables=("t",),
        exemplar=exemplar,
    )


class TestTotality:
    def test_broken_rule_swallowed_and_counted(self):
        registry = MetricsRegistry()
        analyzer = SqlAnalyzer(rules=[BrokenRule()], registry=registry)
        assert analyzer.analyze_statement("SELECT * FROM t") == []
        counter = registry.counter("sqlanalysis_failures_total", where="broken")
        assert counter.value == 1

    def test_garbage_input_returns_list(self):
        analyzer = SqlAnalyzer()
        for sql in ("", "((((", "'; DROP TABLE t; --", "\x00\x01", "SELECT" * 200):
            assert isinstance(analyzer.analyze_statement(sql), list)


class TestFindings:
    def test_sql_id_attached_and_sorted_by_severity(self):
        analyzer = SqlAnalyzer(hot_tables={"t"})
        findings = analyzer.analyze_statement(
            "SELECT * FROM t WHERE LOWER(c) = 'x' FOR UPDATE", sql_id="Q1"
        )
        assert findings and all(f.sql_id == "Q1" for f in findings)
        severities = [int(f.severity) for f in findings]
        assert severities == sorted(severities, reverse=True)

    def test_findings_counter_incremented(self):
        registry = MetricsRegistry()
        analyzer = SqlAnalyzer(registry=registry)
        analyzer.analyze_statement("SELECT * FROM t WHERE k = 1")
        counter = registry.counter("sqlanalysis_findings_total", rule="select-star")
        assert counter.value == 1

    def test_schema_feeds_missing_index(self):
        schema = Schema([Table("t", row_count=500_000)])
        analyzer = SqlAnalyzer(schema=schema)
        rules = {f.rule for f in analyzer.analyze_statement("SELECT c FROM t WHERE k = 1")}
        assert "missing-index" in rules


class TestCache:
    def test_repeat_analysis_hits_cache(self):
        analyzer = SqlAnalyzer()
        first = analyzer.analyze_statement("SELECT * FROM t", sql_id="A")
        assert analyzer._cache  # populated
        second = analyzer.analyze_statement("SELECT * FROM t", sql_id="A")
        assert first == second

    def test_cache_bounded(self):
        analyzer = SqlAnalyzer(config=AnalyzerConfig(max_cache_entries=4))
        for i in range(10):
            analyzer.analyze_statement(f"SELECT c{i} FROM t WHERE k = 1")
        assert len(analyzer._cache) <= 4


class TestTemplateEntryPoints:
    def test_analyze_template_prefers_exemplar(self):
        # The template hides the leading wildcard as a plain `?`; the
        # exemplar preserves the literal, so the wildcard rule only fires
        # when the exemplar is used.
        info = make_info(
            template="SELECT c FROM t WHERE name LIKE ?",
            exemplar="SELECT c FROM t WHERE name LIKE '%abc'",
        )
        findings = SqlAnalyzer().analyze_template(info)
        assert any(f.rule == "leading-wildcard-like" for f in findings)

    def test_analyze_template_falls_back_to_template(self):
        info = make_info(template="SELECT * FROM t WHERE k = ?", exemplar="")
        findings = SqlAnalyzer().analyze_template(info)
        assert any(f.rule == "select-star" for f in findings)

    def test_analyze_spec(self):
        spec = TemplateSpec(
            sql_id="S9",
            template="SELECT * FROM t WHERE k = ?",
            kind=StatementKind.SELECT,
            tables=("t",),
        )
        findings = SqlAnalyzer().analyze_spec(spec)
        assert findings and findings[0].sql_id == "S9"

    def test_analyze_catalog_omits_clean_templates(self):
        catalog = [
            make_info(sql_id="BAD", template="SELECT * FROM t WHERE k = ?"),
            make_info(sql_id="OK", template="SELECT c0 FROM t WHERE k = ? LIMIT ?"),
        ]
        by_id = SqlAnalyzer().analyze_catalog(catalog)
        assert "BAD" in by_id and "OK" not in by_id


class TestRuleOverride:
    def test_custom_rule_set(self):
        class OnlyStar(LintRule):
            rule_id = "only-star"

            def check(self, ir, ctx):
                if ir.select_star:
                    yield Finding(
                        rule=self.rule_id, severity=Severity.INFO, message="star"
                    )

        analyzer = SqlAnalyzer(rules=[OnlyStar()])
        findings = analyzer.analyze_statement("SELECT * FROM t")
        assert [f.rule for f in findings] == ["only-star"]
