"""Property tests: the analyzer is total over everything the workload emits.

The analyzer rides inside the diagnosis loop, so an exception there
costs an incident.  These tests sweep every template and exemplar the
workload generator can produce — across all anomaly scenarios and the
planted anti-patterns — plus adversarial text, and assert the analyzer
always returns a list and never raises.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sqlanalysis import Finding, SqlAnalyzer
from repro.workload import (
    AnomalyCategory,
    build_population,
    hot_tables,
    inject_anomaly,
    plant_antipatterns,
)


def _population(seed):
    rng = np.random.default_rng(seed)
    population = build_population(600, rng, n_businesses=5)
    return population, rng


def _assert_total(analyzer, statements):
    for sql_id, text in statements:
        findings = analyzer.analyze_statement(text, sql_id=sql_id)
        assert isinstance(findings, list)
        assert all(isinstance(f, Finding) for f in findings)


class TestWorkloadSweep:
    @pytest.mark.parametrize("category", list(AnomalyCategory))
    def test_all_scenario_templates_analyze(self, category):
        population, rng = _population(hash(category.value) % 1000)
        inject_anomaly(population, rng, category, 200, 400)
        plant_antipatterns(population, rng)
        analyzer = SqlAnalyzer(
            schema=population.schema,
            specs=population.specs,
            hot_tables=hot_tables(population),
        )
        statements = []
        for spec in population.specs.values():
            statements.append((spec.sql_id, spec.template))
            if spec.exemplar:
                statements.append((spec.sql_id, spec.exemplar))
        assert statements
        _assert_total(analyzer, statements)

    @pytest.mark.parametrize("seed", [0, 7, 42])
    def test_spec_entry_point_total_over_population(self, seed):
        population, rng = _population(seed)
        plant_antipatterns(population, rng)
        analyzer = SqlAnalyzer(schema=population.schema, specs=population.specs)
        for spec in population.specs.values():
            assert isinstance(analyzer.analyze_spec(spec), list)


class TestAdversarialText:
    @settings(max_examples=200, deadline=None)
    @given(st.text(max_size=300))
    def test_arbitrary_text_never_raises(self, text):
        findings = SqlAnalyzer().analyze_statement(text)
        assert isinstance(findings, list)

    @settings(max_examples=100, deadline=None)
    @given(
        st.text(
            alphabet="SELECTFROMWHEREANDORIN()'\"%,.*=<>-#/ 0123456789abct_",
            max_size=200,
        )
    )
    def test_sql_shaped_text_never_raises(self, text):
        findings = SqlAnalyzer().analyze_statement(text)
        assert isinstance(findings, list)
        for f in findings:
            assert f.to_dict()  # findings stay serializable
