"""Incident renderers: complete text chain and self-contained HTML."""

from repro.incidents import SpanNode, render_incident_html, render_incident_text
from tests.incidents.conftest import make_record


class TestText:
    def test_renders_every_chain_section(self, record):
        text = render_incident_text(record)
        assert f"Incident {record.incident_id}" in text
        assert "anomaly window : [400, 580) (180 s)" in text
        assert "cpu_anomaly" in text
        assert "verdict        : row_lock" in text
        assert "Triggering metrics" in text
        assert "active_session" in text
        assert "H-SQL candidates" in text
        assert "alpha=+0.900 beta=-0.900" in text
        assert "[H1] impact=+0.950" in text
        assert "R-SQL attribution" in text
        assert "[R1]" in text and "(verified)" in text and "(unverified)" in text
        assert "Repair outcome: planned_only" in text
        assert "SqlThrottleAction" in text
        assert "Stage timings:" in text
        assert "service.diagnose" in text  # span tree

    def test_no_rsql_renders_escalation_hint(self):
        record = make_record(rsql_ids=())
        text = render_incident_text(record)
        assert "none pinpointed" in text

    def test_error_spans_are_flagged(self):
        record = make_record()
        record = type(record).from_dict(
            {
                **record.to_dict(),
                "trace": SpanNode(
                    name="service.diagnose",
                    elapsed=0.1,
                    attrs={"status": "error", "error": "KeyError"},
                ).to_dict(),
            }
        )
        assert "!! KeyError" in render_incident_text(record)

    def test_executed_repair_listed(self):
        text = render_incident_text(make_record(executed=True))
        assert "Repair outcome: executed" in text
        assert "executed: ['SqlThrottleAction']" in text


class TestHtml:
    def test_document_is_self_contained(self, record):
        html = render_incident_html(record)
        assert html.startswith("<!DOCTYPE html>")
        assert "<style>" in html
        assert "src=" not in html and "href=" not in html  # no external assets
        assert f"PinSQL incident {record.incident_id}" in html

    def test_sections_present(self, record):
        html = render_incident_html(record)
        for heading in (
            "Summary", "Triggering metrics", "H-SQL candidates",
            "R-SQL attribution", "Repair", "Stage timings",
            "Diagnosis trace", "DBA report",
        ):
            assert heading in html

    def test_statements_are_escaped(self):
        record = make_record()
        data = record.to_dict()
        data["rsql"][0]["statement"] = "SELECT * FROM t WHERE a < b & c <script>"
        record = type(record).from_dict(data)
        html = render_incident_html(record)
        assert "<script>" not in html
        assert "&lt;script&gt;" in html

    def test_traceless_record_omits_trace_section(self):
        record = make_record()
        data = record.to_dict()
        data["trace"] = None
        html = render_incident_html(type(record).from_dict(data))
        assert "Diagnosis trace" not in html
