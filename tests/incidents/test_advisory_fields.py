"""Workload advisories in incident records: round-trip, recorder, render, e2e."""

from dataclasses import replace
from types import SimpleNamespace

from repro.incidents import (
    IncidentRecorder,
    IncidentStore,
    render_incident_html,
    render_incident_text,
)
from repro.sqlanalysis import Severity
from repro.sqlanalysis.workload import Advisory

from tests.incidents.conftest import fake_diagnosis, make_record


def sample_advisories():
    return (
        Advisory(
            advisor="index-advisor",
            severity=Severity.CRITICAL,
            message="templates scan big on (c5, c6) without an index",
            table="big",
            tables=("big",),
            sql_ids=("R1",),
            suggestion="CREATE INDEX idx_big_c5_c6 ON big (c5, c6)",
            score=2.5e8,
            evidence={"columns": "c5,c6", "rows_per_call": 300_000.0},
        ),
        Advisory(
            advisor="join-fanout",
            severity=Severity.WARNING,
            message="cartesian-prone join between big and other",
            tables=("big", "other"),
            sql_ids=("R2",),
            suggestion="add a join condition linking big and other",
            score=10.0,
        ),
    )


def advised_record():
    return replace(make_record(), advisories=sample_advisories())


class TestRecordRoundTrip:
    def test_advisories_survive_serialization(self):
        record = advised_record()
        data = record.to_dict()
        assert data["advisories"][0]["advisor"] == "index-advisor"
        assert data["advisories"][0]["severity"] == "critical"
        back = type(record).from_dict(data)
        assert back.advisories == record.advisories

    def test_from_dict_tolerates_old_records(self):
        # Records persisted before this PR carry no advisories field.
        data = make_record().to_dict()
        del data["advisories"]
        back = type(make_record()).from_dict(data)
        assert back.advisories == ()


class TestRecorderFlattening:
    def _diagnosis(self, advisories=None):
        diagnosis = fake_diagnosis()
        diagnosis.advisories = (
            sample_advisories() if advisories is None else advisories
        )
        return diagnosis

    def test_advisories_sorted_most_severe_first(self, tmp_path):
        # Hand them over in reverse-severity order; the record re-sorts.
        warning, critical = sample_advisories()[1], sample_advisories()[0]
        record = IncidentRecorder(IncidentStore(tmp_path)).build(
            self._diagnosis(advisories=(warning, critical))
        )
        assert [a.advisor for a in record.advisories] == [
            "index-advisor", "join-fanout",
        ]

    def test_max_advisories_cap(self, tmp_path):
        many = tuple(
            replace(sample_advisories()[1], sql_ids=(f"S{i}",))
            for i in range(30)
        )
        record = IncidentRecorder(IncidentStore(tmp_path), max_advisories=3).build(
            self._diagnosis(advisories=many)
        )
        assert len(record.advisories) == 3

    def test_diagnosis_without_advisories_still_builds(self, tmp_path):
        record = IncidentRecorder(IncidentStore(tmp_path)).build(fake_diagnosis())
        assert record.advisories == ()


class TestRendering:
    def test_text_renders_advisory_section(self):
        text = render_incident_text(advised_record())
        assert "Workload advisories" in text
        assert "index-advisor" in text
        assert "CREATE INDEX idx_big_c5_c6" in text

    def test_text_shows_none_without_advisories(self):
        text = render_incident_text(make_record())
        assert "Workload advisories" in text
        assert "(none)" in text

    def test_html_renders_advisory_table(self):
        html = render_incident_html(advised_record())
        assert "Workload advisories" in html
        assert "index-advisor" in html
        assert "CREATE INDEX idx_big_c5_c6 ON big (c5, c6)" in html


class TestEndToEnd:
    """ISSUE acceptance: one index advisory flows analyzer finding →
    repair action evidence → incident record → HTML."""

    def test_index_advisory_flows_to_html(self, tmp_path, poor_sql_case):
        from repro.core import OptimizationSkip, plan_optimization
        from repro.dbsim.tables import Schema, Table
        from repro.sqlanalysis.workload import (
            TrafficWeight,
            WorkloadAnalyzer,
        )

        case = poor_sql_case.case
        cheap = min(
            case.sql_ids,
            key=lambda sid: case.templates.get(sid, "total_examined_rows").total(),
        )
        # Without the advisory the index-backed profile is skipped.
        assert isinstance(plan_optimization(case, cheap), OptimizationSkip)

        # 1. A real analyzer run produces the index advisory for `cheap`.
        analyzer = WorkloadAnalyzer(
            schema=Schema([Table("big", 5_000_000, {"id", "k0"})])
        )
        template = SimpleNamespace(
            sql_id=cheap,
            exemplar="SELECT c0, c3 FROM big WHERE c5 = 7 AND c6 = 9",
        )
        report = analyzer.analyze(
            [template],
            {cheap: TrafficWeight(calls=500.0, rows_examined=500.0 * 300_000.0)},
        )
        advisories = [
            a for a in report.advisories if a.advisor == "index-advisor"
        ]
        assert advisories and cheap in advisories[0].sql_ids

        # 2. The advisory upgrades the optimization skip into an action.
        action = plan_optimization(case, cheap, advisories=advisories)
        assert not isinstance(action, OptimizationSkip)
        assert action.index_columns == ("c5", "c6")
        assert any(line.startswith("index-advisor:") for line in action.evidence)

        # 3. The action and advisory land in the incident record.
        diagnosis = fake_diagnosis()
        diagnosis.plan.actions = [action]
        diagnosis.advisories = tuple(advisories)
        record = IncidentRecorder(IncidentStore(tmp_path)).build(diagnosis)
        assert record.advisories[0].advisor == "index-advisor"
        (planned,) = record.repair.planned
        assert planned["index_columns"] == ["c5", "c6"]
        assert any("index-advisor:" in line for line in planned["evidence"])

        # 4. ... and render in the HTML report.
        html = render_incident_html(record)
        assert advisories[0].message in html
        assert "CREATE INDEX" in html
