"""Fleet health rollup: aggregation, merging, gauges, rendering."""

from repro.incidents import (
    IncidentStore,
    compute_health,
    load_health,
    publish_health,
    render_health_text,
)
from repro.telemetry import MetricsRegistry
from tests.incidents.conftest import make_record


def _metas(*records):
    store_records = list(records)
    # compute_health consumes IncidentMeta; go through a store to build
    # them exactly as the production path does.
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        store = IncidentStore(tmp)
        for record in store_records:
            store.append(record)
        return store.metas()


class TestComputeHealth:
    def test_counts_instances_verdicts_and_templates(self):
        metas = _metas(
            make_record("i1", "db-a", 100, 300),
            make_record("i2", "db-a", 400, 600),
            make_record("i3", "db-b", 100, 300, verdict="business_spike",
                        rsql_ids=("R9",)),
        )
        health = compute_health(metas)
        assert health.total_incidents == 3
        assert health.per_instance == {"db-a": 2, "db-b": 1}
        assert health.verdicts == {"business_spike": 1, "row_lock": 2}
        assert health.top_rsql_templates[0] == ("R1", 2)

    def test_repair_success_rate(self):
        metas = _metas(
            make_record("i1", "db-a", 100, 300, executed=True),
            make_record("i2", "db-a", 400, 600),
        )
        health = compute_health(metas)
        assert health.repairs_planned == 2
        assert health.repairs_executed == 1
        assert health.repair_success_rate == 0.5

    def test_no_planned_repairs_rate_is_zero(self):
        assert compute_health([]).repair_success_rate == 0.0

    def test_false_trigger_candidates(self):
        metas = _metas(
            make_record("i1", "db-a", 100, 130, rsql_ids=()),   # no R-SQL
            make_record("i2", "db-b", 100, 150),                # 50 s anomaly
            make_record("i3", "db-c", 100, 500),                # healthy case
        )
        health = compute_health(metas)
        reasons = {f.incident_id: f.reason for f in health.false_triggers}
        assert "no R-SQL pinpointed" in reasons["i1"]
        assert "short anomaly" in reasons["i2"]
        assert "i3" not in reasons

    def test_to_dict_is_json_shaped(self):
        import json

        health = compute_health(_metas(make_record()))
        payload = json.loads(json.dumps(health.to_dict()))
        assert payload["total_incidents"] == 1
        assert payload["repair_success_rate"] == 0.0


class TestLoadHealth:
    def test_merges_per_shard_stores(self, tmp_path):
        a = IncidentStore(tmp_path / "shard-00")
        b = IncidentStore(tmp_path / "shard-01")
        a.append(make_record("i1", "db-a", 100, 300))
        b.append(make_record("i2", "db-b", 100, 300))
        b.append(make_record("i3", "db-b", 400, 600))
        health = load_health(tmp_path)
        assert health.stores == 2
        assert health.total_incidents == 3
        assert health.per_instance == {"db-a": 1, "db-b": 2}

    def test_single_store_directory(self, tmp_path):
        IncidentStore(tmp_path).append(make_record())
        health = load_health(tmp_path)
        assert health.stores == 1 and health.total_incidents == 1

    def test_empty_path_is_an_empty_rollup(self, tmp_path):
        health = load_health(tmp_path)
        assert health.stores == 0 and health.total_incidents == 0


class TestPublishAndRender:
    def test_gauges_exported(self):
        reg = MetricsRegistry()
        health = compute_health(
            _metas(
                make_record("i1", "db-a", 100, 300, executed=True),
                make_record("i2", "db-b", 100, 140, rsql_ids=()),
            )
        )
        publish_health(health, reg)
        assert reg.get("fleet_incidents_total").value == 2
        assert reg.get("fleet_incidents", instance="db-a").value == 1
        assert reg.get("fleet_repair_success_ratio").value == 1.0
        assert reg.get("fleet_false_trigger_candidates").value == 1

    def test_render_text_lists_everything(self):
        health = compute_health(
            _metas(
                make_record("i1", "db-a", 100, 300),
                make_record("i2", "db-b", 100, 140, rsql_ids=()),
            )
        )
        text = render_health_text(health)
        assert "Fleet incident health" in text
        assert "db-a" in text and "db-b" in text
        assert "R1" in text
        assert "row_lock" in text
        assert "False-trigger candidates: 1" in text
        assert "no R-SQL pinpointed" in text

    def test_render_empty_rollup(self):
        text = render_health_text(compute_health([]))
        assert "(no incidents)" in text and "(none)" in text


class TestDegradedAndQuarantinedRollup:
    def _health(self):
        return compute_health(
            _metas(
                make_record("i1", "db-a", 100, 300, confidence="degraded",
                            degraded_reasons=("quarantined_logs:3",)),
                make_record("i2", "db-a", 400, 600, confidence="degraded",
                            degraded_reasons=("gappy_metrics",)),
                make_record("i3", "db-b", 100, 300),
            )
        )

    def test_counts_per_instance(self):
        health = self._health()
        assert health.degraded_per_instance == {"db-a": 2}
        assert health.quarantined_per_instance == {"db-a": 3}
        assert health.degraded_incidents == 2
        assert health.quarantined_messages == 3

    def test_render_surfaces_counts(self):
        text = render_health_text(self._health())
        assert "2 degraded" in text
        assert "3 quarantined msg(s)" in text
        assert "Degraded-confidence incidents: 2" in text
        assert "Quarantined collector messages: 3" in text

    def test_gauges_exported(self):
        reg = MetricsRegistry()
        publish_health(self._health(), reg)
        assert reg.get("fleet_degraded_incidents_total").value == 2
        assert reg.get("fleet_degraded_incidents", instance="db-a").value == 2
        assert reg.get("fleet_quarantined_messages_total").value == 3
        assert reg.get("fleet_quarantined_messages", instance="db-a").value == 3
