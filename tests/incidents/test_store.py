"""IncidentStore: segments, rollover, retention, recovery, queries."""

import json
import threading

from repro.incidents import IncidentStore, discover_stores
from repro.telemetry import MetricsRegistry
from tests.incidents.conftest import make_record


def _fill(store, n, instance_id="db-a", start0=100, spacing=100):
    records = []
    for i in range(n):
        start = start0 + i * spacing
        records.append(
            store.append(
                make_record(
                    incident_id=f"{instance_id}-{start}-{i:08x}",
                    instance_id=instance_id,
                    start=start,
                    end=start + 50,
                )
            )
        )
    return records


class TestAppendAndGet:
    def test_append_then_get_roundtrips(self, tmp_path, record):
        store = IncidentStore(tmp_path)
        stored = store.append(record)
        assert store.record_count == 1
        assert store.get(stored.incident_id) == stored

    def test_get_unknown_id_is_none(self, tmp_path):
        assert IncidentStore(tmp_path).get("nope") is None

    def test_id_collision_rekeys_instead_of_overwriting(self, tmp_path, record):
        store = IncidentStore(tmp_path)
        first = store.append(record)
        second = store.append(record)
        third = store.append(record)
        assert first.incident_id == record.incident_id
        assert second.incident_id == f"{record.incident_id}-2"
        assert third.incident_id == f"{record.incident_id}-3"
        assert store.record_count == 3

    def test_appends_are_thread_safe(self, tmp_path):
        store = IncidentStore(tmp_path)

        def worker(k):
            for i in range(20):
                store.append(
                    make_record(
                        incident_id=f"w{k}-{i}", instance_id=f"db-{k}",
                        start=100 + i, end=200 + i,
                    )
                )

        threads = [threading.Thread(target=worker, args=(k,)) for k in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert store.record_count == 80
        reopened = IncidentStore(tmp_path)
        assert reopened.record_count == 80


class TestRollover:
    def test_segment_rolls_over_at_size_bound(self, tmp_path):
        store = IncidentStore(tmp_path, max_segment_bytes=4096)
        _fill(store, 8)
        assert store.segment_count >= 2
        names = sorted(p.name for p in tmp_path.glob("incidents-*.jsonl"))
        assert names[0] == "incidents-000001.jsonl"
        assert len(names) == store.segment_count
        # Every record still reachable across segments.
        for meta in store.metas():
            assert store.get(meta.incident_id) is not None

    def test_retention_by_count_drops_whole_cold_segments(self, tmp_path):
        store = IncidentStore(tmp_path, max_segment_bytes=4096, max_records=4)
        _fill(store, 12)
        assert store.record_count <= 4 + max(s.records for s in store._segments)
        # Oldest records are the dropped ones; the newest survives.
        metas = store.metas()
        assert metas[-1].anomaly_start == 100 + 11 * 100
        assert len(list(tmp_path.glob("incidents-*.jsonl"))) == store.segment_count

    def test_retention_by_age_drops_old_segments(self, tmp_path):
        store = IncidentStore(tmp_path, max_segment_bytes=4096, max_age_s=300)
        _fill(store, 12, spacing=100)  # created_at spans ~1200 s
        newest = store.metas()[-1].created_at
        for meta in store.metas()[:-1]:
            # Cold segments older than the cutoff are gone wholesale;
            # survivors may be older only if they share the active segment.
            if meta.segment != store._segments[-1].path.name:
                assert meta.created_at >= newest - 300

    def test_active_segment_is_never_dropped(self, tmp_path):
        store = IncidentStore(tmp_path, max_segment_bytes=1, max_records=1)
        _fill(store, 3)
        assert store.segment_count >= 1
        assert store.record_count >= 1

    def test_occupancy_gauges_exported(self, tmp_path):
        reg = MetricsRegistry()
        store = IncidentStore(tmp_path, registry=reg)
        _fill(store, 3)
        assert reg.get("incident_store_records").value == 3
        assert reg.get("incident_store_segments").value == store.segment_count
        assert reg.get("incident_store_bytes").value == store.total_bytes


class TestRecovery:
    def test_reopen_restores_index_and_continues_numbering(self, tmp_path):
        store = IncidentStore(tmp_path, max_segment_bytes=4096)
        originals = _fill(store, 8)
        reopened = IncidentStore(tmp_path, max_segment_bytes=4096)
        assert reopened.record_count == store.record_count
        assert [m.incident_id for m in reopened.metas()] == [
            m.incident_id for m in store.metas()
        ]
        assert reopened.get(originals[0].incident_id) == originals[0]
        # Appending after reopen lands in a well-formed segment.
        _fill(reopened, 1, instance_id="db-z", start0=99_000)
        again = IncidentStore(tmp_path, max_segment_bytes=4096)
        assert again.record_count == store.record_count + 1

    def test_truncated_final_line_is_cut_back(self, tmp_path):
        store = IncidentStore(tmp_path)
        _fill(store, 3)
        segment = sorted(tmp_path.glob("incidents-*.jsonl"))[-1]
        raw = segment.read_bytes()
        segment.write_bytes(raw + b'{"incident_id": "partial', )
        reopened = IncidentStore(tmp_path)
        assert reopened.record_count == 3
        assert segment.read_bytes() == raw  # tail physically removed
        _fill(reopened, 1, start0=77_000)
        assert IncidentStore(tmp_path).record_count == 4

    def test_final_line_missing_newline_is_repaired(self, tmp_path):
        store = IncidentStore(tmp_path)
        _fill(store, 2)
        segment = sorted(tmp_path.glob("incidents-*.jsonl"))[-1]
        segment.write_bytes(segment.read_bytes().rstrip(b"\n"))
        reopened = IncidentStore(tmp_path)
        assert reopened.record_count == 2
        _fill(reopened, 1, start0=88_000)
        again = IncidentStore(tmp_path)
        assert again.record_count == 3  # no concatenated/corrupt line

    def test_corrupt_mid_file_line_is_skipped(self, tmp_path):
        store = IncidentStore(tmp_path)
        records = _fill(store, 3)
        segment = sorted(tmp_path.glob("incidents-*.jsonl"))[-1]
        lines = segment.read_bytes().splitlines(keepends=True)
        lines[1] = b"NOT JSON AT ALL\n"
        segment.write_bytes(b"".join(lines))
        reopened = IncidentStore(tmp_path)
        assert reopened.record_count == 2
        assert reopened.get(records[0].incident_id) is not None
        assert reopened.get(records[2].incident_id) is not None

    def test_empty_directory_recovers_to_empty_store(self, tmp_path):
        store = IncidentStore(tmp_path)
        assert store.record_count == 0 and store.latest() is None


class TestQuery:
    def test_filters_compose(self, tmp_path):
        store = IncidentStore(tmp_path)
        _fill(store, 4, instance_id="db-a")
        _fill(store, 2, instance_id="db-b", start0=5000)
        assert len(store.query(instance="db-b")) == 2
        assert len(store.query(instance="db-a", since=150)) == 3
        assert len(store.query(until=250)) == 2
        assert store.query(limit=3) and len(store.query(limit=3)) == 3
        assert store.query(verdict="business_spike") == []
        assert len(store.query(template="R1")) == 6
        assert store.query(template="ZZ") == []

    def test_query_is_newest_first(self, tmp_path):
        store = IncidentStore(tmp_path)
        _fill(store, 3)
        starts = [m.anomaly_start for m in store.query()]
        assert starts == sorted(starts, reverse=True)

    def test_latest_and_metas_order(self, tmp_path):
        store = IncidentStore(tmp_path)
        records = _fill(store, 3)
        assert store.latest().incident_id == records[-1].incident_id
        assert [m.incident_id for m in store.metas()] == [
            r.incident_id for r in records
        ]


class TestDiscoverStores:
    def test_single_store_dir_is_itself(self, tmp_path):
        store = IncidentStore(tmp_path)
        _fill(store, 1)
        assert discover_stores(tmp_path) == [tmp_path]

    def test_parent_of_shard_dirs_lists_children(self, tmp_path):
        for shard in ("shard-00", "shard-01"):
            _fill(IncidentStore(tmp_path / shard), 1, instance_id=shard)
        (tmp_path / "not-a-store").mkdir()
        found = discover_stores(tmp_path)
        assert [p.name for p in found] == ["shard-00", "shard-01"]

    def test_missing_or_empty_path_yields_nothing(self, tmp_path):
        assert discover_stores(tmp_path / "absent") == []
        assert discover_stores(tmp_path) == []


class TestValidation:
    def test_bad_bounds_rejected(self, tmp_path):
        import pytest

        with pytest.raises(ValueError):
            IncidentStore(tmp_path, max_segment_bytes=0)
        with pytest.raises(ValueError):
            IncidentStore(tmp_path, max_records=0)
        with pytest.raises(ValueError):
            IncidentStore(tmp_path, max_age_s=0)

    def test_lines_are_compact_single_line_json(self, tmp_path, record):
        store = IncidentStore(tmp_path)
        store.append(record)
        segment = sorted(tmp_path.glob("incidents-*.jsonl"))[-1]
        lines = segment.read_text().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["incident_id"] == record.incident_id
