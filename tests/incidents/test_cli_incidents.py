"""CLI coverage: ``repro incidents ...`` and the obs instance guard.

These run against a synthetic store (no simulation), so they exercise
argument parsing, dispatch, and rendering cheaply; the end-to-end
``fleet-demo --record`` path is covered in tests/fleet.
"""

import pytest

from repro.cli import main
from repro.incidents import IncidentStore
from tests.incidents.conftest import make_record


@pytest.fixture
def store_dir(tmp_path):
    store = IncidentStore(tmp_path / "store")
    store.append(make_record("i-one", "db-a", 100, 300))
    store.append(make_record("i-two", "db-b", 400, 600, verdict="business_spike"))
    return tmp_path / "store"


class TestIncidentsList:
    def test_lists_newest_first(self, store_dir, capsys):
        assert main(["incidents", "list", "--dir", str(store_dir)]) == 0
        out = capsys.readouterr().out
        assert out.index("i-two") < out.index("i-one")
        assert "2 incident(s)" in out

    def test_filters_apply(self, store_dir, capsys):
        assert main(
            ["incidents", "list", "--dir", str(store_dir), "--instance", "db-a"]
        ) == 0
        out = capsys.readouterr().out
        assert "i-one" in out and "i-two" not in out

    def test_no_match_message(self, store_dir, capsys):
        assert main(
            ["incidents", "list", "--dir", str(store_dir), "--verdict", "nope"]
        ) == 0
        assert "no incidents match" in capsys.readouterr().out

    def test_missing_store_errors(self, tmp_path, capsys):
        assert main(["incidents", "list", "--dir", str(tmp_path / "absent")]) == 1
        assert "no incident store" in capsys.readouterr().err

    def test_merges_shard_layout(self, tmp_path, capsys):
        IncidentStore(tmp_path / "shard-00").append(make_record("a-1", "db-a", 1, 99))
        IncidentStore(tmp_path / "shard-01").append(make_record("b-1", "db-b", 1, 99))
        assert main(["incidents", "list", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "a-1" in out and "b-1" in out


class TestIncidentsShow:
    def test_show_by_id(self, store_dir, capsys):
        assert main(["incidents", "show", "i-one", "--dir", str(store_dir)]) == 0
        out = capsys.readouterr().out
        assert "Incident i-one" in out
        assert "R-SQL attribution" in out

    def test_show_latest(self, store_dir, capsys):
        assert main(["incidents", "show", "--latest", "--dir", str(store_dir)]) == 0
        assert "Incident i-two" in capsys.readouterr().out

    def test_unknown_id_lists_recent(self, store_dir, capsys):
        assert main(["incidents", "show", "zz", "--dir", str(store_dir)]) == 1
        err = capsys.readouterr().err
        assert "unknown incident id" in err and "i-two" in err

    def test_no_id_no_latest_errors(self, store_dir, capsys):
        assert main(["incidents", "show", "--dir", str(store_dir)]) == 1
        assert "incident id or --latest" in capsys.readouterr().err


class TestIncidentsReport:
    def test_writes_html_file(self, store_dir, tmp_path, capsys):
        out_file = tmp_path / "sub" / "incident.html"
        assert main(
            ["incidents", "report", "i-one", "--dir", str(store_dir),
             "--out", str(out_file)]
        ) == 0
        html = out_file.read_text()
        assert html.startswith("<!DOCTYPE html>")
        assert "PinSQL incident i-one" in html

    def test_stdout_default(self, store_dir, capsys):
        assert main(
            ["incidents", "report", "--latest", "--dir", str(store_dir)]
        ) == 0
        assert capsys.readouterr().out.startswith("<!DOCTYPE html>")


class TestIncidentsHealth:
    def test_health_rollup(self, store_dir, capsys):
        assert main(["incidents", "health", "--dir", str(store_dir)]) == 0
        out = capsys.readouterr().out
        assert "Fleet incident health" in out
        assert "db-a" in out and "db-b" in out

    def test_health_json(self, store_dir, capsys):
        import json

        assert main(["incidents", "health", "--dir", str(store_dir), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["total_incidents"] == 2

    def test_health_missing_store_errors(self, tmp_path, capsys):
        assert main(["incidents", "health", "--dir", str(tmp_path)]) == 1
        assert "no incident store" in capsys.readouterr().err


class TestObsInstanceGuard:
    def test_unknown_instance_errors_and_lists_known_ids(self, capsys):
        assert main(["obs", "--fleet", "3", "--instance", "db-99"]) == 2
        err = capsys.readouterr().err
        assert "unknown instance id 'db-99'" in err
        assert "db-00, db-01, db-02" in err

    def test_instance_without_fleet_errors(self, capsys):
        assert main(["obs", "--instance", "db-00"]) == 2
        assert "--instance requires --fleet" in capsys.readouterr().err
