"""IncidentRecord and its component dataclasses round-trip as JSON."""

import json

from repro.incidents import (
    AnomalyWindow,
    IncidentRecord,
    RepairOutcome,
    SpanNode,
)
from repro.telemetry import Tracer


class TestRoundTrip:
    def test_full_record_roundtrips_through_strict_json(self, record):
        payload = json.dumps(record.to_dict())
        clone = IncidentRecord.from_dict(json.loads(payload))
        assert clone == record

    def test_minimal_record_roundtrips(self):
        record = IncidentRecord(
            incident_id="x", instance_id="", created_at=5,
            anomaly=AnomalyWindow(start=1, end=5),
        )
        clone = IncidentRecord.from_dict(json.loads(json.dumps(record.to_dict())))
        assert clone == record
        assert clone.trace is None
        assert clone.top_r_sql is None and clone.top_h_sql is None

    def test_from_dict_tolerates_missing_optional_keys(self):
        clone = IncidentRecord.from_dict(
            {"incident_id": "x", "created_at": 5,
             "anomaly": {"start": 1, "end": 5}}
        )
        assert clone.instance_id == ""
        assert clone.rsql == () and clone.metric_traces == ()
        assert clone.repair.outcome == "no_action"


class TestProperties:
    def test_window_duration(self):
        assert AnomalyWindow(start=10, end=70).duration == 60

    def test_top_ids_and_rsql_ids(self, record):
        assert record.top_r_sql == "R1"
        assert record.top_h_sql == "H1"
        assert record.rsql_ids == ["R1", "R2"]

    def test_repair_outcome_states(self):
        assert RepairOutcome().outcome == "no_action"
        assert RepairOutcome(planned=({"kind": "k"},)).outcome == "planned_only"
        assert RepairOutcome(planned=({"kind": "k"},), executed=True).outcome == (
            "executed"
        )


class TestSpanNode:
    def test_from_span_freezes_a_live_tree(self):
        tracer = Tracer()
        with tracer.span("root", templates=3):
            with tracer.span("child"):
                pass
        node = SpanNode.from_span(tracer.last_root())
        assert node.name == "root"
        assert node.attrs["templates"] == 3
        # Root spans carry the distributed identity in their attrs.
        assert set(node.attrs) >= {"trace_id", "span_id", "process"}
        assert node.elapsed is not None
        assert [c.name for c in node.children] == ["child"]

    def test_from_span_stringifies_non_json_attrs(self):
        tracer = Tracer()
        with tracer.span("root", obj=object()):
            pass
        node = SpanNode.from_span(tracer.last_root())
        assert isinstance(node.attrs["obj"], str)
        json.dumps(node.to_dict())  # must be strict-JSON serialisable

    def test_walk_is_preorder_with_depths(self):
        node = SpanNode(
            name="a",
            children=(
                SpanNode(name="b", children=(SpanNode(name="c"),)),
                SpanNode(name="d"),
            ),
        )
        assert [(d, n.name) for d, n in node.walk()] == [
            (0, "a"), (1, "b"), (2, "c"), (1, "d"),
        ]
