"""Static-analysis evidence in incident records: round-trip, recorder, render."""

from dataclasses import replace
from types import SimpleNamespace

from repro.incidents import (
    IncidentRecorder,
    IncidentStore,
    RepairOutcome,
    render_incident_html,
    render_incident_text,
)
from repro.sqlanalysis import Finding, Severity

from tests.incidents.conftest import fake_diagnosis, make_record


def sample_findings():
    return (
        Finding(
            rule="missing-index",
            severity=Severity.CRITICAL,
            message="no filter column is indexed on t",
            sql_id="R1",
            table="t",
            column="k0",
            suggestion="CREATE INDEX idx_t_k0 ON t (k0)",
        ),
        Finding(
            rule="select-star",
            severity=Severity.INFO,
            message="SELECT * returns every column",
            sql_id="R2",
            table="t",
        ),
    )


def analyzed_record():
    record = make_record()
    return replace(
        record,
        analysis=sample_findings(),
        repair=replace(
            record.repair,
            planned=(
                {
                    "kind": "QueryOptimizationAction",
                    "sql_id": "R1",
                    "evidence": ["missing-index: no filter column is indexed on t"],
                },
            ),
            skipped=({"sql_id": "C1", "reason": "profile already index-backed"},),
        ),
    )


class TestRecordRoundTrip:
    def test_analysis_and_skips_survive_serialization(self):
        record = analyzed_record()
        data = record.to_dict()
        assert data["analysis"][0]["rule"] == "missing-index"
        assert data["repair"]["skipped"][0]["sql_id"] == "C1"
        back = type(record).from_dict(data)
        assert back.analysis == record.analysis
        assert back.repair.skipped == record.repair.skipped

    def test_from_dict_tolerates_old_records(self):
        # Records persisted before this PR carry neither field.
        data = make_record().to_dict()
        del data["analysis"]
        del data["repair"]["skipped"]
        back = type(make_record()).from_dict(data)
        assert back.analysis == ()
        assert back.repair.skipped == ()

    def test_repair_outcome_defaults_empty(self):
        assert RepairOutcome().skipped == ()


class TestRecorderFlattening:
    def _diagnosis(self):
        diagnosis = fake_diagnosis()
        diagnosis.findings = {
            "R1": (sample_findings()[0],),
            "H1": (sample_findings()[1],),
        }
        diagnosis.plan.actions = [
            SimpleNamespace(
                kind="QueryOptimizationAction",
                sql_id="R1",
                rows_gain=0.95,
                evidence=("missing-index: no filter column is indexed on t",),
            )
        ]
        diagnosis.plan.skips = [
            SimpleNamespace(sql_id="C1", reason="profile already index-backed")
        ]
        return diagnosis

    def test_findings_flattened_and_sorted(self, tmp_path):
        record = IncidentRecorder(IncidentStore(tmp_path)).build(self._diagnosis())
        assert [f.rule for f in record.analysis] == ["missing-index", "select-star"]

    def test_max_findings_cap(self, tmp_path):
        record = IncidentRecorder(IncidentStore(tmp_path), max_findings=1).build(self._diagnosis())
        assert len(record.analysis) == 1
        assert record.analysis[0].rule == "missing-index"  # worst kept

    def test_action_evidence_and_skips_serialized(self, tmp_path):
        record = IncidentRecorder(IncidentStore(tmp_path)).build(self._diagnosis())
        (planned,) = record.repair.planned
        assert planned["evidence"] == [
            "missing-index: no filter column is indexed on t"
        ]
        assert record.repair.skipped == (
            {"sql_id": "C1", "reason": "profile already index-backed"},
        )

    def test_diagnosis_without_findings_still_builds(self, tmp_path):
        record = IncidentRecorder(IncidentStore(tmp_path)).build(fake_diagnosis())
        assert record.analysis == ()
        assert record.repair.skipped == ()


class TestRendering:
    def test_text_report_shows_findings_and_skips(self):
        text = render_incident_text(analyzed_record())
        assert "Static analysis findings" in text
        assert "missing-index on [R1]" in text
        assert "CREATE INDEX idx_t_k0" in text
        assert "evidence: missing-index" in text
        assert "skipped [C1]: profile already index-backed" in text

    def test_text_report_without_findings_says_none(self):
        text = render_incident_text(make_record())
        assert "Static analysis findings" in text
        assert "(none)" in text

    def test_html_report_shows_findings_and_evidence(self):
        html = render_incident_html(analyzed_record())
        assert "Static analysis findings" in html
        assert "missing-index" in html
        assert "profile already index-backed" in html
        assert "evidence" in html
