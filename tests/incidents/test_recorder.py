"""IncidentRecorder: flattening diagnoses, never failing the loop."""

from repro.incidents import IncidentRecorder, IncidentStore
from repro.telemetry import MetricsRegistry
from tests.incidents.conftest import fake_diagnosis


class TestBuild:
    def test_flattens_the_full_evidence_chain(self, tmp_path):
        recorder = IncidentRecorder(IncidentStore(tmp_path))
        record = recorder.build(fake_diagnosis())
        assert record.instance_id == "db-x"
        assert record.anomaly.start == 400 and record.anomaly.end == 580
        assert record.anomaly.types == ("cpu_anomaly",)
        assert [h.sql_id for h in record.hsql] == ["H1", "H2"]
        assert record.hsql_alpha == 0.9 and record.hsql_beta == -0.9
        assert record.top_r_sql == "R1"
        assert record.rsql[0].verified and not record.rsql[1].verified
        assert record.clusters[0].size == 2
        assert record.verdict_category == "row_lock"
        assert record.repair.outcome == "planned_only"
        assert record.repair.planned[0]["kind"] == "SqlThrottleAction"
        assert record.timings["total"] == 0.02
        assert record.report_text == "report body"
        assert record.templates_seen == 3

    def test_statements_are_truncated(self, tmp_path):
        recorder = IncidentRecorder(IncidentStore(tmp_path))
        record = recorder.build(fake_diagnosis())
        assert all(len(h.statement) <= 120 for h in record.hsql)
        assert record.hsql[0].statement.endswith("…")

    def test_metric_traces_fall_back_to_case_series_without_engine(self, tmp_path):
        recorder = IncidentRecorder(IncidentStore(tmp_path))
        record = recorder.build(fake_diagnosis())
        assert [t.name for t in record.metric_traces] == ["active_session"]
        assert record.metric_traces[0].samples[0] == (300, 0.0)
        assert record.trace is None  # no engine → no span tree

    def test_long_metric_traces_are_decimated(self, tmp_path):
        recorder = IncidentRecorder(
            IncidentStore(tmp_path), max_samples_per_metric=4
        )
        record = recorder.build(fake_diagnosis())
        assert len(record.metric_traces[0].samples) <= 4

    def test_incident_id_is_deterministic_per_window(self, tmp_path):
        recorder = IncidentRecorder(IncidentStore(tmp_path))
        a = recorder.build(fake_diagnosis())
        b = recorder.build(fake_diagnosis())
        assert a.incident_id == b.incident_id
        assert a.incident_id.startswith("db-x-400-")

    def test_evidence_depth_is_bounded(self, tmp_path):
        recorder = IncidentRecorder(IncidentStore(tmp_path), max_hsql=1, max_rsql=1)
        record = recorder.build(fake_diagnosis())
        assert len(record.hsql) == 1 and len(record.rsql) == 1

    def test_executed_repair_reflected(self, tmp_path):
        recorder = IncidentRecorder(IncidentStore(tmp_path))
        record = recorder.build(fake_diagnosis(executed=True))
        assert record.repair.outcome == "executed"
        assert record.repair.executed_kinds == ("SqlThrottleAction",)


class TestRecord:
    def test_record_persists_and_stamps_the_diagnosis(self, tmp_path):
        reg = MetricsRegistry()
        store = IncidentStore(tmp_path)
        recorder = IncidentRecorder(store, registry=reg)
        diagnosis = fake_diagnosis()
        record = recorder.record(diagnosis)
        assert record is not None
        assert diagnosis.incident_id == record.incident_id
        assert store.get(record.incident_id) is not None
        counter = reg.get("incidents_recorded_total", instance="db-x")
        assert counter is not None and counter.value == 1

    def test_record_failure_never_raises(self, tmp_path):
        reg = MetricsRegistry()
        recorder = IncidentRecorder(IncidentStore(tmp_path), registry=reg)
        assert recorder.record(object()) is None  # nothing the builder needs
        failures = reg.get("incident_record_failures_total")
        assert failures is not None and failures.value == 1

    def test_same_window_twice_stores_both(self, tmp_path):
        store = IncidentStore(tmp_path)
        recorder = IncidentRecorder(store)
        first = recorder.record(fake_diagnosis())
        second = recorder.record(fake_diagnosis())
        assert first.incident_id != second.incident_id
        assert store.record_count == 2
