"""Shared builders for incident tests.

``make_record`` builds a small but fully populated record cheaply (no
simulation), so store/render/health tests stay fast; ``fake_diagnosis``
duck-types the ``Diagnosis`` shape the recorder flattens.
"""

from types import SimpleNamespace

import pytest

from repro.incidents import (
    AnomalyWindow,
    ClusterSummary,
    HsqlEvidence,
    IncidentRecord,
    MetricTrace,
    RepairOutcome,
    RsqlEvidence,
    SpanNode,
)


def make_record(
    incident_id: str = "db-a-400-deadbeef",
    instance_id: str = "db-a",
    start: int = 400,
    end: int = 580,
    created_at: int | None = None,
    verdict: str | None = "row_lock",
    rsql_ids: tuple[str, ...] = ("R1", "R2"),
    executed: bool = False,
    confidence: str = "full",
    degraded_reasons: tuple[str, ...] = (),
) -> IncidentRecord:
    return IncidentRecord(
        incident_id=incident_id,
        instance_id=instance_id,
        created_at=end if created_at is None else created_at,
        confidence=confidence,
        degraded_reasons=degraded_reasons,
        anomaly=AnomalyWindow(
            start=start, end=end, types=("cpu_anomaly",), detected_at=end
        ),
        metric_traces=(
            MetricTrace("active_session", ((start, 3.0), (start + 1, 55.0))),
            MetricTrace("cpu_usage", ((start, 20.0),)),
        ),
        hsql=(
            HsqlEvidence("H1", trend=0.9, scale=0.8, scale_trend=0.7,
                         impact=0.95, statement="SELECT * FROM t WHERE k = ?"),
        ),
        hsql_alpha=0.9,
        hsql_beta=-0.9,
        rsql=tuple(
            RsqlEvidence(sid, score=0.9 - 0.1 * i, verified=i == 0,
                         statement=f"UPDATE t SET c = ? /* {sid} */")
            for i, sid in enumerate(rsql_ids)
        ),
        clusters=(ClusterSummary(size=3, impact=0.95, sql_ids=rsql_ids),),
        verdict_category=verdict,
        verdict_evidence="qps x1.2" if verdict else None,
        repair=RepairOutcome(
            session_lift=4.2,
            planned=({"kind": "SqlThrottleAction", "sql_id": rsql_ids[0]},)
            if rsql_ids
            else (),
            executed_kinds=("SqlThrottleAction",) if executed else (),
            executed=executed,
        ),
        timings={"session_estimation": 0.01, "total": 0.02},
        trace=SpanNode(
            name="service.diagnose",
            elapsed=0.02,
            attrs={"produced": True},
            children=(SpanNode(name="pinsql.analyze", elapsed=0.015),),
        ),
        report_text="=== report ===",
        templates_seen=12,
        recorded_at_unix=1.0,
    )


@pytest.fixture
def record():
    return make_record()


def fake_diagnosis(instance_id: str = "db-x", executed: bool = False):
    """A minimal object with every attribute the recorder reads."""

    class _Catalog:
        def get(self, sql_id):
            return SimpleNamespace(template=f"SELECT {sql_id} FROM t " + "x" * 150)

    class _Cluster:
        def __init__(self, sql_ids, impact):
            self.sql_ids = sql_ids
            self.impact = impact

        def __len__(self):
            return len(self.sql_ids)

    scores = [
        SimpleNamespace(sql_id="H1", trend=0.9, scale=0.8, scale_trend=0.7, impact=0.95),
        SimpleNamespace(sql_id="H2", trend=0.1, scale=0.2, scale_trend=0.3, impact=0.2),
    ]
    action = SimpleNamespace(kind="SqlThrottleAction", sql_id="R1", factor=0.1)
    case = SimpleNamespace(
        ts=300,
        te=580,
        sql_ids=["H1", "H2", "R1"],
        catalog=_Catalog(),
        metrics=SimpleNamespace(
            series={
                "active_session": SimpleNamespace(
                    timestamps=list(range(300, 310)),
                    values=[float(v) for v in range(10)],
                )
            }
        ),
    )
    result = SimpleNamespace(
        hsql=SimpleNamespace(scores=scores, alpha=0.9, beta=-0.9),
        rsql=SimpleNamespace(
            ranked=[("R1", 0.95), ("H1", 0.5)],
            verified=["R1"],
            clusters=[_Cluster(["R1", "H1"], 0.95)],
            widened=False,
        ),
        timings=SimpleNamespace(
            as_dict=lambda: {"session_estimation": 0.01, "total": 0.02}
        ),
    )
    plan = SimpleNamespace(
        session_lift=4.2,
        actions=[action],
        executed=[action] if executed else [],
    )
    return SimpleNamespace(
        anomaly=SimpleNamespace(start=400, end=580, types=("cpu_anomaly",)),
        case=case,
        result=result,
        report=SimpleNamespace(text="report body"),
        plan=plan,
        executed=executed,
        verdict=SimpleNamespace(
            category=SimpleNamespace(value="row_lock"), evidence="qps x1.2"
        ),
        instance_id=instance_id,
        incident_id=None,
    )
