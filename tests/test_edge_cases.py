"""Failure-injection and degenerate-input tests across the pipeline.

The system must degrade gracefully, never crash, on pathological cases:
empty logs, a single template, constant metrics, zero-variance series,
and windows touching the data boundary.
"""

import numpy as np
import pytest

from repro.collection import LogStore, TemplateMetricStore
from repro.core import (
    AnomalyCase,
    HsqlIdentifier,
    PinSQL,
    RsqlIdentifier,
    SessionEstimator,
)
from repro.core.session_estimation import SessionEstimate
from repro.dbsim import QueryLog, SecondBatch
from repro.dbsim.monitor import InstanceMetrics
from repro.sqltemplate import TemplateCatalog
from repro.timeseries import TimeSeries


def minimal_case(session_values, exec_map=None, as_=60, ae=90, logstore=None):
    n = len(session_values)
    metrics = InstanceMetrics(
        {"active_session": TimeSeries(np.asarray(session_values, float),
                                      start=0, name="active_session")}
    )
    store = TemplateMetricStore(start=0, end=n)
    for sid, values in (exec_map or {}).items():
        store.put(sid, "#execution", TimeSeries(np.asarray(values, float), start=0))
        store.put(sid, "total_tres", TimeSeries(np.asarray(values, float), start=0))
        store.put(sid, "avg_tres", TimeSeries(np.asarray(values, float), start=0))
        store.put(
            sid, "total_examined_rows", TimeSeries(np.asarray(values, float), start=0)
        )
    return AnomalyCase(
        metrics=metrics,
        templates=store,
        logs=logstore or LogStore(),
        catalog=TemplateCatalog(),
        anomaly_start=as_,
        anomaly_end=ae,
    )


class TestDegenerateCases:
    def test_case_with_no_templates(self):
        case = minimal_case(np.ones(120))
        result = PinSQL().analyze(case)
        assert result.hsql_ids == []
        assert result.rsql_ids == []

    def test_single_template_case(self):
        n = 120
        log = QueryLog()
        arrive = np.arange(0, n * 1000, 200, dtype=np.int64)
        log.append(SecondBatch("ONLY", arrive, np.full(len(arrive), 50.0),
                               np.ones(len(arrive))))
        store = LogStore()
        store.ingest_query_log(log)
        case = minimal_case(
            np.ones(n), exec_map={"ONLY": np.full(n, 5.0)}, logstore=store
        )
        result = PinSQL().analyze(case)
        assert result.hsql_ids == ["ONLY"]
        assert result.rsql_ids in ([], ["ONLY"])

    def test_all_zero_session(self):
        case = minimal_case(np.zeros(120), exec_map={"A": np.ones(120)})
        result = PinSQL().analyze(case)
        assert isinstance(result.rsql_ids, list)  # no crash, any answer

    def test_constant_session(self):
        case = minimal_case(np.full(120, 7.0), exec_map={"A": np.ones(120)})
        result = PinSQL().analyze(case)
        for s in result.hsql.scores:
            assert np.isfinite(s.impact)

    def test_window_at_data_end(self):
        case = minimal_case(np.ones(120), exec_map={"A": np.ones(120)},
                            as_=90, ae=120)
        assert case.anomaly_indices() == (90, 120)
        PinSQL().analyze(case)

    def test_window_must_fit_data(self):
        with pytest.raises(ValueError):
            minimal_case(np.ones(120), as_=90, ae=200)

    def test_case_requires_active_session(self):
        metrics = InstanceMetrics(
            {"cpu_usage": TimeSeries(np.ones(10), name="cpu_usage")}
        )
        with pytest.raises(ValueError, match="active_session"):
            AnomalyCase(
                metrics=metrics,
                templates=TemplateMetricStore(start=0, end=10),
                logs=LogStore(),
                catalog=TemplateCatalog(),
                anomaly_start=2,
                anomaly_end=5,
            )


class TestEstimatorEdges:
    def test_empty_logstore(self):
        observed = TimeSeries(np.ones(30), start=0)
        estimate = SessionEstimator().estimate(LogStore(), [], observed)
        assert estimate.total.total() == 0.0
        assert estimate.per_template == {}

    def test_templates_without_queries(self):
        observed = TimeSeries(np.ones(30), start=0)
        estimate = SessionEstimator().estimate(LogStore(), ["GHOST"], observed)
        assert estimate.get("GHOST").total() == 0.0


class TestIdentifierEdges:
    def test_rsql_on_empty_store(self):
        case = minimal_case(np.ones(120))
        ident = RsqlIdentifier()
        sessions = SessionEstimate(
            per_template={},
            total=TimeSeries.zeros(120, start=0),
            selected_buckets=np.zeros(0, dtype=np.int64),
        )
        from repro.core.hsql import HsqlRanking

        result = ident.identify(case, HsqlRanking(scores=[], alpha=1, beta=-1), sessions)
        assert result.ranked == []

    def test_hsql_single_template(self):
        case = minimal_case(np.ones(120), exec_map={"A": np.ones(120)})
        sessions = SessionEstimate(
            per_template={"A": TimeSeries(np.ones(120), start=0)},
            total=TimeSeries(np.ones(120), start=0),
            selected_buckets=np.zeros(0, dtype=np.int64),
        )
        ranking = HsqlIdentifier().identify(case, sessions)
        assert ranking.ranked_ids == ["A"]
        # With one template, min-max scale degenerates to zero.
        assert ranking.scores[0].scale == 0.0
