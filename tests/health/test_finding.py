"""HealthFinding: strict-JSON discipline and round-trips."""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.health import HealthFinding
from repro.sqlanalysis import Severity

text = st.text(max_size=40)
scalar = st.one_of(
    st.booleans(),
    st.integers(min_value=-(10**9), max_value=10**9),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=20),
)
findings = st.builds(
    HealthFinding,
    check=st.sampled_from(["rising-response-time", "self-health", "x"]),
    severity=st.sampled_from(list(Severity)),
    message=text,
    instance_id=text,
    sql_id=text,
    metric=text,
    detected_at=st.integers(min_value=0, max_value=10**7),
    evidence=st.dictionaries(st.text(max_size=10), scalar, max_size=4),
    suggestion=text,
    sweep_id=text,
)


class TestRoundTrip:
    @given(findings)
    @settings(max_examples=100, deadline=None)
    def test_to_from_dict_round_trips(self, finding):
        assert HealthFinding.from_dict(finding.to_dict()) == finding

    @given(findings)
    @settings(max_examples=50, deadline=None)
    def test_dict_is_strict_json(self, finding):
        payload = json.dumps(finding.to_dict())
        assert HealthFinding.from_dict(json.loads(payload)) == finding

    def test_severity_serialised_as_label(self):
        finding = HealthFinding(
            check="x", severity=Severity.CRITICAL, message="m"
        )
        assert finding.to_dict()["severity"] == "critical"

    def test_non_scalar_evidence_coerced_to_str(self):
        finding = HealthFinding(
            check="x",
            severity=Severity.INFO,
            message="m",
            evidence={"ids": ["a", "b"]},
        )
        data = finding.to_dict()
        assert isinstance(data["evidence"]["ids"], str)
        json.dumps(data)  # must stay serialisable

    def test_from_dict_defaults_missing_fields(self):
        finding = HealthFinding.from_dict({"check": "x"})
        assert finding.severity is Severity.INFO
        assert finding.instance_id == ""
        assert finding.detected_at == 0
