"""One firing and one quiet scenario per built-in health check."""

import numpy as np
import pytest

from repro.health import check_ids, ewma, half_rise
from repro.health.checks import (
    _REGISTRY,
    AntipatternShareCheck,
    BrokerBackpressureCheck,
    ConnectionPressureCheck,
    DegradedConfidenceCheck,
    HealthCheck,
    LockFootprintTrendCheck,
    RepeatOffenderCheck,
    RisingResponseTimeCheck,
    RisingRowsExaminedCheck,
    SelfHealthCheck,
    WorkloadAdvisoryCheck,
    register_check,
)
from repro.health import HealthConfig
from repro.sqlanalysis import Finding, Severity
from tests.health.conftest import (
    make_ctx,
    make_meta,
    make_templates,
    metric_samples,
    template_series,
)

BUILTIN = (
    "rising-response-time",
    "rising-rows-examined",
    "lock-footprint-trend",
    "connection-pressure",
    "antipattern-share",
    "broker-backpressure",
    "repeat-offender",
    "degraded-confidence",
    "self-health",
)


class TestRegistry:
    def test_all_builtin_checks_registered(self):
        assert set(BUILTIN) <= set(check_ids())

    def test_register_requires_check_id(self):
        class Nameless(HealthCheck):
            def check(self, ctx):
                return iter(())

        with pytest.raises(ValueError, match="check_id"):
            register_check(Nameless)

    def test_register_rejects_unknown_scope(self):
        class BadScope(HealthCheck):
            check_id = "bad-scope-check"
            scope = "galaxy"

            def check(self, ctx):
                return iter(())

        with pytest.raises(ValueError, match="scope"):
            register_check(BadScope)
        assert "bad-scope-check" not in _REGISTRY


class TestTrendMath:
    def test_ewma_preserves_length_and_smooths(self):
        values = np.array([1.0, 1.0, 10.0, 1.0, 1.0])
        smoothed = ewma(values)
        assert len(smoothed) == len(values)
        assert smoothed[2] < 10.0  # the spike is damped

    def test_half_rise_on_clean_ramp(self):
        head, tail, rise = half_rise(np.linspace(10.0, 30.0, 100))
        assert tail > head
        assert rise > 0.4

    def test_half_rise_zero_head_is_infinite(self):
        _, _, rise = half_rise(np.array([0.0] * 10 + [5.0] * 10))
        assert rise == float("inf")


class TestRisingResponseTime:
    def test_fires_on_creeping_template(self):
        ctx = make_ctx(templates=make_templates(
            {"CREEP": template_series(rt_start=5.0, rt_end=60.0)}
        ))
        findings = list(RisingResponseTimeCheck().check(ctx))
        assert len(findings) == 1
        f = findings[0]
        assert f.check == "rising-response-time"
        assert f.sql_id == "CREEP"
        assert f.severity >= Severity.WARNING
        assert f.evidence["rise"] > 0.5

    def test_quiet_on_flat_template(self):
        ctx = make_ctx(templates=make_templates(
            {"FLAT": template_series(rt_start=20.0, rt_end=21.0)}
        ))
        assert list(RisingResponseTimeCheck().check(ctx)) == []

    def test_quiet_below_latency_floor(self):
        # A big relative rise on a sub-15 ms template is workload noise.
        ctx = make_ctx(templates=make_templates(
            {"TINY": template_series(rt_start=2.0, rt_end=9.0)}
        ))
        assert list(RisingResponseTimeCheck().check(ctx)) == []


class TestRisingRowsExamined:
    def test_fires_on_scan_growth(self):
        ctx = make_ctx(templates=make_templates(
            {"SCAN": template_series(rows_start=800.0, rows_end=5_000.0)}
        ))
        findings = list(RisingRowsExaminedCheck().check(ctx))
        assert len(findings) == 1
        assert findings[0].sql_id == "SCAN"
        assert findings[0].metric == "total_examined_rows"

    def test_quiet_on_stable_rows(self):
        ctx = make_ctx(templates=make_templates(
            {"OK": template_series(rows_start=5_000.0, rows_end=5_200.0)}
        ))
        assert list(RisingRowsExaminedCheck().check(ctx)) == []


class TestLockFootprintTrend:
    def test_fires_on_rising_lock_time(self):
        ctx = make_ctx(metrics={
            "innodb_row_lock_time": metric_samples(np.linspace(10, 150, 120))
        })
        findings = list(LockFootprintTrendCheck().check(ctx))
        assert len(findings) == 1
        assert findings[0].metric == "innodb_row_lock_time"

    def test_quiet_on_steady_lock_time(self):
        ctx = make_ctx(metrics={
            "innodb_row_lock_time": metric_samples([50.0] * 120)
        })
        assert list(LockFootprintTrendCheck().check(ctx)) == []


class TestConnectionPressure:
    def test_fires_on_session_growth(self):
        ctx = make_ctx(metrics={
            "active_session": metric_samples(np.linspace(3, 12, 120))
        })
        findings = list(ConnectionPressureCheck().check(ctx))
        assert len(findings) == 1
        assert findings[0].check == "connection-pressure"

    def test_quiet_on_flat_sessions(self):
        ctx = make_ctx(metrics={
            "active_session": metric_samples([10.0] * 120)
        })
        assert list(ConnectionPressureCheck().check(ctx)) == []


class TestAntipatternShare:
    def _analysis(self):
        return {"BAD": (Finding(
            rule="unbounded-scan", severity=Severity.HIGH,
            message="no bound", sql_id="BAD",
        ),)}

    def test_fires_when_flagged_traffic_dominates(self):
        ctx = make_ctx(
            templates=make_templates({
                "BAD": template_series(execs_per_s=3.0),
                "GOOD": template_series(execs_per_s=2.0),
            }),
            analysis=self._analysis(),
        )
        findings = list(AntipatternShareCheck().check(ctx))
        assert len(findings) == 1
        assert findings[0].sql_id == "BAD"
        assert findings[0].evidence["share"] == pytest.approx(0.6)

    def test_quiet_when_flagged_traffic_marginal(self):
        ctx = make_ctx(
            templates=make_templates({
                "BAD": template_series(execs_per_s=0.2),
                "GOOD": template_series(execs_per_s=2.0),
            }),
            analysis=self._analysis(),
        )
        assert list(AntipatternShareCheck().check(ctx)) == []

    def test_low_severity_findings_do_not_count(self):
        analysis = {"BAD": (Finding(
            rule="unbounded-scan", severity=Severity.INFO,
            message="meh", sql_id="BAD",
        ),)}
        ctx = make_ctx(
            templates=make_templates({
                "BAD": template_series(execs_per_s=3.0),
            }),
            analysis=analysis,
        )
        assert list(AntipatternShareCheck().check(ctx)) == []


class TestWorkloadAdvisory:
    def _advisory(self, severity=None, sql_ids=("A1", "A2")):
        from repro.sqlanalysis.workload import Advisory

        return Advisory(
            advisor="index-advisor",
            severity=severity or Severity.HIGH,
            message="an index on t (c5) would help",
            table="t",
            tables=("t",),
            sql_ids=sql_ids,
            suggestion="CREATE INDEX idx_t_c5 ON t (c5)",
            score=1e6,
            evidence={"columns": "c5"},
        )

    def test_advisories_become_findings(self):
        ctx = make_ctx(advisories=(self._advisory(),))
        findings = list(WorkloadAdvisoryCheck().check(ctx))
        assert len(findings) == 1
        f = findings[0]
        assert f.check == "workload-advisory"
        assert f.severity is Severity.HIGH
        assert f.sql_id == "A1"
        assert f.evidence["advisor"] == "index-advisor"
        assert f.evidence["columns"] == "c5"
        assert "CREATE INDEX" in f.suggestion

    def test_below_min_severity_filtered(self):
        ctx = make_ctx(advisories=(self._advisory(severity=Severity.INFO),))
        assert list(WorkloadAdvisoryCheck().check(ctx)) == []

    def test_bounded_per_sweep(self):
        many = tuple(
            self._advisory(sql_ids=(f"S{i}",)) for i in range(12)
        )
        ctx = make_ctx(advisories=many)
        findings = list(WorkloadAdvisoryCheck().check(ctx))
        assert len(findings) == HealthConfig().max_advisories_reported

    def test_quiet_without_advisories(self):
        assert list(WorkloadAdvisoryCheck().check(make_ctx())) == []


class TestBrokerBackpressure:
    def test_fires_on_lag(self):
        findings = list(
            BrokerBackpressureCheck().check(make_ctx(consumer_lag=1_500))
        )
        assert len(findings) == 1
        assert findings[0].severity is Severity.WARNING

    def test_escalates_on_extreme_lag(self):
        findings = list(
            BrokerBackpressureCheck().check(make_ctx(consumer_lag=20_000))
        )
        assert findings[0].severity is Severity.HIGH

    def test_quiet_below_threshold(self):
        assert list(
            BrokerBackpressureCheck().check(make_ctx(consumer_lag=500))
        ) == []


class TestRepeatOffender:
    def test_fires_on_recurring_top_rsql(self):
        ctx = make_ctx(scope="fleet", instance_id="", incidents=[
            make_meta("i1", "db-a", rsql_ids=("R1",)),
            make_meta("i2", "db-b", rsql_ids=("R1",)),
        ])
        findings = list(RepeatOffenderCheck().check(ctx))
        assert len(findings) == 1
        assert findings[0].sql_id == "R1"
        assert findings[0].evidence["incidents"] == 2

    def test_quiet_on_distinct_root_causes(self):
        ctx = make_ctx(scope="fleet", instance_id="", incidents=[
            make_meta("i1", rsql_ids=("R1",)),
            make_meta("i2", rsql_ids=("R2",)),
        ])
        assert list(RepeatOffenderCheck().check(ctx)) == []


class TestDegradedConfidence:
    def test_fires_when_degraded_rate_high(self):
        ctx = make_ctx(scope="fleet", instance_id="", incidents=[
            make_meta("i1", confidence="degraded"),
            make_meta("i2", confidence="degraded"),
            make_meta("i3"),
        ])
        findings = list(DegradedConfidenceCheck().check(ctx))
        assert len(findings) == 1
        assert findings[0].evidence["degraded"] == 2

    def test_quiet_below_count_floor(self):
        ctx = make_ctx(scope="fleet", instance_id="", incidents=[
            make_meta("i1", confidence="degraded"),
            make_meta("i2"),
            make_meta("i3"),
        ])
        assert list(DegradedConfidenceCheck().check(ctx)) == []


class TestSelfHealth:
    def test_fires_on_span_errors_and_quarantine(self):
        ctx = make_ctx(scope="fleet", instance_id="", counters={
            "span_errors_total": 2.0,
            "collector_quarantined_total": 3.0,
        })
        findings = list(SelfHealthCheck().check(ctx))
        assert {f.metric for f in findings} == {
            "span_errors_total", "collector_quarantined_total",
        }

    def test_open_breaker_is_high_severity(self):
        ctx = make_ctx(scope="fleet", instance_id="", counters={
            "circuit_breakers_open": 1.0,
        })
        findings = list(SelfHealthCheck().check(ctx))
        assert len(findings) == 1
        assert findings[0].severity is Severity.HIGH

    def test_quiet_when_pipeline_clean(self):
        ctx = make_ctx(scope="fleet", instance_id="", counters={
            "span_errors_total": 0.0,
            "collector_quarantined_total": 0.0,
            "circuit_breakers_open": 0.0,
        })
        assert list(SelfHealthCheck().check(ctx)) == []
