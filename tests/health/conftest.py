"""Shared builders for health-sweep tests.

Checks consume a :class:`~repro.health.CheckContext`; these helpers
build one synthetically (no simulation) so every firing/quiet pair in
``test_checks.py`` stays fast and readable.
"""

import numpy as np

from repro.collection.aggregator import TemplateMetricStore
from repro.health import CheckContext, HealthConfig
from repro.incidents.store import IncidentMeta
from repro.timeseries import TimeSeries

#: Enough samples for every trend check (min_trend_samples default 40).
WINDOW = 120


def make_templates(
    series: dict[str, dict[str, np.ndarray]], window: int = WINDOW
) -> TemplateMetricStore:
    """A TemplateMetricStore over [0, window) from raw per-metric arrays."""
    store = TemplateMetricStore(start=0, end=window, interval=1)
    for sql_id, metrics in series.items():
        for metric, values in metrics.items():
            store.put(sql_id, metric, TimeSeries(np.asarray(values, float)))
    return store


def template_series(
    execs_per_s: float = 2.0,
    rt_start: float = 20.0,
    rt_end: float = 20.0,
    rows_start: float = 2_000.0,
    rows_end: float = 2_000.0,
    window: int = WINDOW,
) -> dict[str, np.ndarray]:
    """One template's series: linear rt and rows/execution trajectories."""
    execs = np.full(window, execs_per_s)
    rt = np.linspace(rt_start, rt_end, window)
    rows_per_exec = np.linspace(rows_start, rows_end, window)
    return {
        "#execution": execs,
        "avg_tres": rt,
        "total_examined_rows": rows_per_exec * execs,
    }


def metric_samples(values, start: int = 0) -> list[tuple[int, float]]:
    return [(start + i, float(v)) for i, v in enumerate(values)]


def make_ctx(
    instance_id: str = "db-t",
    now: int = WINDOW,
    scope: str = "instance",
    config: HealthConfig | None = None,
    **kwargs,
) -> CheckContext:
    return CheckContext(
        instance_id=instance_id,
        now=now,
        scope=scope,
        config=config or HealthConfig(),
        **kwargs,
    )


def make_meta(
    incident_id: str = "db-a-400",
    instance_id: str = "db-a",
    created_at: int = 600,
    start: int = 400,
    end: int = 580,
    rsql_ids: tuple = ("R1",),
    confidence: str = "full",
    degraded_reasons: tuple = (),
) -> IncidentMeta:
    return IncidentMeta(
        incident_id=incident_id,
        instance_id=instance_id,
        created_at=created_at,
        anomaly_start=start,
        anomaly_end=end,
        types=("cpu_anomaly",),
        verdict="poor_sql",
        rsql_ids=rsql_ids,
        top_h_sql=rsql_ids[0] if rsql_ids else None,
        repair_outcome="planned",
        planned_actions=1,
        segment="incidents-000001.jsonl",
        confidence=confidence,
        degraded_reasons=degraded_reasons,
    )
