"""Latency SLO burn-rate and data-freshness checks."""

import pytest

from repro.health import DEFAULT_SLOS, HealthConfig, SloSpec, burn_rate
from repro.health.slo import DataFreshnessCheck, LatencySloBurnRateCheck
from repro.sqlanalysis import Severity
from repro.telemetry import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    filter_snapshot,
)
from tests.health.conftest import make_ctx


def slo_registry(
    instance: str = "db-01",
    stage: str = "ingest",
    latency_s: float = 0.1,
    samples: int = 50,
) -> MetricsRegistry:
    reg = MetricsRegistry()
    hist = reg.histogram(
        "pipeline_lag_seconds",
        help="test",
        buckets=DEFAULT_LATENCY_BUCKETS,
        stage=stage,
        instance=instance,
    )
    for _ in range(samples):
        hist.observe(latency_s)
    return reg


def ctx_for(reg: MetricsRegistry, instance: str = "db-01", **kwargs):
    return make_ctx(
        instance_id=instance,
        telemetry=filter_snapshot(reg.snapshot(), instance=instance),
        **kwargs,
    )


class TestSloSpec:
    def test_rejects_bad_target_and_objective(self):
        with pytest.raises(ValueError):
            SloSpec(slo_id="x", metric="m", objective_s=1.0, target=1.0)
        with pytest.raises(ValueError):
            SloSpec(slo_id="x", metric="m", objective_s=0.0)

    def test_matches_ignores_extra_labels(self):
        spec = SloSpec(
            slo_id="x",
            metric="pipeline_lag_seconds",
            objective_s=5.0,
            labels=(("stage", "ingest"),),
        )
        assert spec.matches(
            {"name": "pipeline_lag_seconds",
             "labels": {"stage": "ingest", "instance": "db-9"}}
        )
        assert not spec.matches(
            {"name": "pipeline_lag_seconds", "labels": {"stage": "diagnose"}}
        )
        assert not spec.matches({"name": "other_seconds", "labels": {}})

    def test_default_slos_cover_every_watermark_stage(self):
        lag_stages = {
            dict(s.labels).get("stage")
            for s in DEFAULT_SLOS
            if s.metric == "pipeline_lag_seconds"
        }
        assert lag_stages == {"ingest", "dispatch", "diagnose"}
        assert any(s.metric == "span_duration_seconds" for s in DEFAULT_SLOS)


class TestBurnRate:
    def test_compliant_histogram_burns_nothing(self):
        reg = slo_registry(latency_s=0.1)
        [entry] = reg.snapshot()["histograms"]
        assert burn_rate(entry["buckets"], 5.0, 0.99) == pytest.approx(0.0)

    def test_all_violations_burn_the_whole_budget_rate(self):
        reg = slo_registry(latency_s=8.0)
        [entry] = reg.snapshot()["histograms"]
        # 0% compliance against a 1% budget: 100x burn.
        assert burn_rate(entry["buckets"], 5.0, 0.99) == pytest.approx(100.0)


class TestLatencySloBurnRateCheck:
    def test_starved_instance_trips_critical(self):
        ctx = ctx_for(slo_registry(latency_s=8.0))
        findings = list(LatencySloBurnRateCheck().check(ctx))
        assert len(findings) == 1
        f = findings[0]
        assert f.check == "latency-slo-burn-rate"
        assert f.severity is Severity.CRITICAL
        assert f.instance_id == "db-01"
        assert f.metric == "pipeline_lag_seconds"
        assert f.evidence["slo_id"] == "ingest-lag"
        assert f.evidence["burn_rate"] >= 4.0
        assert "db-01" in f.evidence["series"]

    def test_healthy_instance_stays_quiet(self):
        ctx = ctx_for(slo_registry(latency_s=0.05))
        assert list(LatencySloBurnRateCheck().check(ctx)) == []

    def test_min_sample_gate(self):
        ctx = ctx_for(slo_registry(latency_s=8.0, samples=5))
        assert list(LatencySloBurnRateCheck().check(ctx)) == []

    def test_custom_specs_override_defaults(self):
        spec = SloSpec(
            slo_id="tight-ingest",
            metric="pipeline_lag_seconds",
            objective_s=0.005,
            target=0.5,
            labels=(("stage", "ingest"),),
        )
        ctx = ctx_for(slo_registry(latency_s=0.1), slos=(spec,))
        findings = list(LatencySloBurnRateCheck().check(ctx))
        assert [f.evidence["slo_id"] for f in findings] == ["tight-ingest"]

    def test_burn_just_under_budget_stays_quiet(self):
        # 96% of observations meet a 95% objective: burn 0.8 < 1.0.
        reg = MetricsRegistry()
        hist = reg.histogram(
            "span_duration_seconds",
            help="test",
            buckets=DEFAULT_LATENCY_BUCKETS,
            span="service.diagnose",
            instance="db-01",
        )
        for _ in range(96):
            hist.observe(1.0)
        for _ in range(4):
            hist.observe(9.0)
        ctx = ctx_for(reg)
        assert list(LatencySloBurnRateCheck().check(ctx)) == []


class TestDataFreshnessCheck:
    @staticmethod
    def freshness_ctx(staleness: float, budget: float = 900.0):
        reg = MetricsRegistry()
        reg.gauge(
            "data_freshness_seconds", help="test", instance="db-01"
        ).set(staleness)
        return ctx_for(
            reg, config=HealthConfig(max_data_staleness_s=budget)
        )

    def test_fresh_instance_stays_quiet(self):
        ctx = self.freshness_ctx(staleness=10.0)
        assert list(DataFreshnessCheck().check(ctx)) == []

    @pytest.mark.parametrize(
        "staleness, severity",
        [
            (900.0, Severity.WARNING),
            (1800.0, Severity.HIGH),
            (3600.0, Severity.CRITICAL),
        ],
    )
    def test_severity_ladder(self, staleness, severity):
        ctx = self.freshness_ctx(staleness=staleness)
        [f] = list(DataFreshnessCheck().check(ctx))
        assert f.severity is severity
        assert f.evidence["staleness_s"] == pytest.approx(staleness)
