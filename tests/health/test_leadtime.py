"""Gated lead-time harness: the PR's acceptance metric.

One module-scoped replay (3 instances, 2 with a planted slow creep,
~15 s wall clock) feeds every gate, mirroring the chaos resilience
gates: the harness runs once, the gate classes only read.
"""

import pytest

from repro.evaluation import (
    LeadTimeConfig,
    render_leadtime_text,
    run_leadtime,
)


@pytest.fixture(scope="module")
def report():
    return run_leadtime(LeadTimeConfig(n_instances=3, creeping=2))


class TestScenarioShape:
    def test_creeping_instances_fired_incidents(self, report):
        assert set(report.creeping_instances) <= set(report.incident_starts)
        assert len(report.creeping_instances) == 2

    def test_sweeps_ran_on_schedule(self, report):
        assert report.sweeps >= 3
        assert report.findings_total > 0


class TestLeadTimeGates:
    def test_precision_gate(self, report):
        # The ISSUE acceptance criterion: precision >= 0.8 on planted
        # slow-creep scenarios.
        assert report.precision >= 0.8, (
            f"lead-time precision {report.precision:.2f} "
            f"({report.true_positives} TP / {report.false_positives} FP)"
        )

    def test_every_creep_warned_before_its_incident(self, report):
        assert report.recall == 1.0
        for instance_id in report.creeping_instances:
            lead = report.lead_time_s(instance_id)
            assert lead is not None and lead > 0, (
                f"{instance_id} fired with no earlier proactive warning"
            )

    def test_median_lead_is_minutes_not_seconds(self, report):
        assert report.median_lead_s >= 60.0

    def test_warnings_name_the_culprit_template(self, report):
        # At least one proactive finding per creep named the template
        # that later topped the R-SQL ranking.
        assert report.template_matches >= len(report.creeping_instances)


class TestRendering:
    def test_text_report_carries_the_gates(self, report):
        text = render_leadtime_text(report)
        assert "precision" in text
        assert "median lead" in text
        for instance_id in report.creeping_instances:
            assert instance_id in text

    def test_to_dict_is_serialisable(self, report):
        import json

        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["precision"] == pytest.approx(report.precision)
