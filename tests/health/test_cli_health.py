"""`repro health` CLI: subcommands and the lint exit-code contract."""

import json

import pytest

from repro.cli import main
from repro.health import FindingsStore
from repro.incidents import IncidentStore
from tests.incidents.conftest import make_record


@pytest.fixture
def incident_dir(tmp_path):
    """An incident store whose history trips the repeat-offender check."""
    store = IncidentStore(tmp_path / "incidents")
    store.append(make_record("i1", "db-a", 100, 300))
    store.append(make_record("i2", "db-b", 400, 600))
    return tmp_path / "incidents"


class TestSweepCommand:
    def test_offline_sweep_exit_one_on_warnings(self, tmp_path, incident_dir, capsys):
        code = main([
            "health", "sweep", "--dir", str(tmp_path / "health"),
            "--incidents", str(incident_dir),
        ])
        out = capsys.readouterr().out
        assert code == 1  # repeat-offender fires at WARNING
        assert "repeat-offender" in out
        assert "persisted" in out

    def test_fail_on_never_masks_findings(self, tmp_path, incident_dir):
        code = main([
            "health", "sweep", "--dir", str(tmp_path / "health"),
            "--incidents", str(incident_dir), "--fail-on", "never",
        ])
        assert code == 0

    def test_fail_on_critical_ignores_warnings(self, tmp_path, incident_dir):
        code = main([
            "health", "sweep", "--dir", str(tmp_path / "health"),
            "--incidents", str(incident_dir), "--fail-on", "critical",
        ])
        assert code == 0

    def test_missing_incident_store_is_a_usage_error(self, tmp_path, capsys):
        code = main([
            "health", "sweep", "--dir", str(tmp_path / "health"),
            "--incidents", str(tmp_path / "nope"),
        ])
        assert code == 2
        assert "no incident store" in capsys.readouterr().err

    def test_json_output_parses(self, tmp_path, incident_dir, capsys):
        main([
            "health", "sweep", "--dir", str(tmp_path / "health"),
            "--incidents", str(incident_dir), "--json",
        ])
        payload = json.loads(capsys.readouterr().out)
        assert payload["checks_run"] > 0
        assert any(
            f["check"] == "repeat-offender" for f in payload["findings"]
        )


class TestFindingsCommand:
    @pytest.fixture
    def health_dir(self, tmp_path, incident_dir):
        main([
            "health", "sweep", "--dir", str(tmp_path / "health"),
            "--incidents", str(incident_dir), "--fail-on", "never",
        ])
        return tmp_path / "health"

    def test_missing_store_is_an_error(self, tmp_path, capsys):
        code = main(["health", "findings", "--dir", str(tmp_path / "nope")])
        assert code == 2
        assert "no findings store" in capsys.readouterr().err

    def test_empty_store_is_clean(self, tmp_path, capsys):
        # A clean sweep creates the directory but no segments.
        FindingsStore(tmp_path / "health")
        code = main(["health", "findings", "--dir", str(tmp_path / "health")])
        assert code == 0
        assert "no findings match" in capsys.readouterr().out

    def test_lists_and_filters(self, health_dir, capsys):
        code = main(["health", "findings", "--dir", str(health_dir)])
        assert code == 0
        assert "repeat-offender" in capsys.readouterr().out
        code = main([
            "health", "findings", "--dir", str(health_dir),
            "--check", "no-such-check",
        ])
        assert code == 0
        assert "no findings match" in capsys.readouterr().out

    def test_json_round_trips(self, health_dir, capsys):
        main(["health", "findings", "--dir", str(health_dir), "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert all("severity" in f for f in payload)


class TestReportCommand:
    @pytest.fixture
    def health_dir(self, tmp_path, incident_dir):
        main([
            "health", "sweep", "--dir", str(tmp_path / "health"),
            "--incidents", str(incident_dir), "--fail-on", "never",
        ])
        return tmp_path / "health"

    def test_text_report(self, health_dir, capsys):
        code = main(["health", "report", "--dir", str(health_dir)])
        assert code == 0
        out = capsys.readouterr().out
        assert "Fleet health report" in out
        assert "repeat-offender" in out

    def test_html_report_with_incident_link(
        self, tmp_path, health_dir, incident_dir, capsys
    ):
        out_file = tmp_path / "reports" / "health.html"
        code = main([
            "health", "report", "--dir", str(health_dir),
            "--incidents", str(incident_dir),
            "--format", "html", "--out", str(out_file),
            "--incident-report", "../incidents/report.html",
        ])
        assert code == 0
        html = out_file.read_text()
        assert '<a href="../incidents/report.html">' in html
        # The reactive rollup rode along via --incidents.
        assert "incidents recorded" in html

    def test_empty_store_renders_healthy(self, tmp_path, capsys):
        FindingsStore(tmp_path / "health")
        code = main(["health", "report", "--dir", str(tmp_path / "health")])
        assert code == 0
        assert "looks healthy" in capsys.readouterr().out
