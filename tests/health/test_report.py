"""Daily fleet health report: dedup, grouping, text and HTML."""

from repro.health import (
    HealthFinding,
    build_health_report,
    render_health_report_html,
    render_health_report_text,
)
from repro.incidents import compute_health
from repro.sqlanalysis import Severity
from tests.health.conftest import make_meta


def finding(
    check="rising-response-time",
    severity=Severity.WARNING,
    instance="db-a",
    sql_id="Q1",
    detected_at=100,
    sweep="sweep-1",
):
    return HealthFinding(
        check=check, severity=severity, message=f"{check} on {sql_id}",
        instance_id=instance, sql_id=sql_id, detected_at=detected_at,
        sweep_id=sweep, suggestion="do something",
    )


class TestBuildReport:
    def test_keeps_latest_per_condition(self):
        # Consecutive sweeps re-emit the same condition; the report
        # shows state, not the event log.
        report = build_health_report([
            finding(detected_at=100, sweep="sweep-1", severity=Severity.WARNING),
            finding(detected_at=200, sweep="sweep-2", severity=Severity.HIGH),
            finding(sql_id="Q2", detected_at=100, sweep="sweep-1"),
        ])
        assert len(report.findings) == 2
        kept = next(f for f in report.findings if f.sql_id == "Q1")
        assert kept.detected_at == 200
        assert kept.severity is Severity.HIGH

    def test_worst_and_groupings(self):
        report = build_health_report([
            finding(severity=Severity.CRITICAL),
            finding(check="self-health", instance="", sql_id="",
                    severity=Severity.WARNING),
            finding(check="lock-footprint-trend", instance="db-b",
                    sql_id="", severity=Severity.INFO),
        ])
        assert report.worst is Severity.CRITICAL
        assert set(report.by_instance) == {"", "db-a", "db-b"}
        assert report.by_check["rising-response-time"] == 1
        assert report.sweep_count == 1

    def test_empty_batch(self):
        report = build_health_report([])
        assert report.worst is None
        assert report.by_instance == {}


class TestTextReport:
    def test_lists_findings_and_suggestions(self):
        text = render_health_report_text(build_health_report([finding()]))
        assert "rising-response-time" in text
        assert "Q1" in text
        assert "do something" in text
        assert "worst severity: warning" in text

    def test_healthy_fleet_reads_healthy(self):
        text = render_health_report_text(build_health_report([]))
        assert "looks healthy" in text

    def test_reactive_context_included(self):
        fleet = compute_health([make_meta()])
        text = render_health_report_text(
            build_health_report([finding()], fleet=fleet)
        )
        assert "incidents recorded : 1" in text


class TestHtmlReport:
    def test_document_structure(self):
        html = render_health_report_html(build_health_report([
            finding(),
            finding(check="self-health", instance="", sql_id=""),
        ]))
        assert html.startswith("<!DOCTYPE html>") or "<html" in html
        assert "Fleet-scope findings" in html
        assert "db-a" in html
        assert "rising-response-time" in html

    def test_links_to_incident_report(self):
        html = render_health_report_html(
            build_health_report([finding()]),
            incident_report_href="../incidents/report.html",
        )
        assert '<a href="../incidents/report.html">' in html

    def test_no_link_without_href(self):
        html = render_health_report_html(build_health_report([finding()]))
        assert "Reactive incident report" not in html
