"""FindingsStore: durability, rollover, recovery, queries."""

import json

from repro.health import FindingsStore, HealthFinding, discover_findings_stores
from repro.sqlanalysis import Severity


def make_finding(i: int, instance: str = "db-a", check: str = "c") -> HealthFinding:
    return HealthFinding(
        check=check,
        severity=Severity.WARNING,
        message=f"finding {i}",
        instance_id=instance,
        detected_at=i,
        sweep_id=f"sweep-{i // 10}",
    )


class TestPersistence:
    def test_round_trip_on_reopen(self, tmp_path):
        store = FindingsStore(tmp_path)
        originals = [make_finding(i) for i in range(5)]
        assert store.extend(originals) == 5
        reopened = FindingsStore(tmp_path)
        assert reopened.findings() == originals
        assert reopened.record_count == 5

    def test_empty_directory_is_a_valid_store(self, tmp_path):
        # A clean sweep never writes a segment; reading back must not fail.
        FindingsStore(tmp_path)  # creates the dir, no segments
        store = FindingsStore(tmp_path)
        assert store.record_count == 0
        assert store.findings() == []
        assert store.query() == []

    def test_rollover_spreads_segments(self, tmp_path):
        store = FindingsStore(tmp_path, max_segment_bytes=256)
        store.extend(make_finding(i) for i in range(20))
        assert store.segment_count > 1
        assert store.record_count == 20
        # A reopen mid-rollover sees every segment's findings, in order.
        reopened = FindingsStore(tmp_path)
        assert [f.detected_at for f in reopened.findings()] == list(range(20))

    def test_retention_drops_cold_segments(self, tmp_path):
        store = FindingsStore(tmp_path, max_segment_bytes=256, max_records=6)
        store.extend(make_finding(i) for i in range(30))
        assert store.record_count <= 6 + 5  # at most one extra segment
        # The newest findings survive.
        assert store.findings()[-1].detected_at == 29

    def test_truncated_tail_dropped_on_recovery(self, tmp_path):
        store = FindingsStore(tmp_path)
        store.extend(make_finding(i) for i in range(3))
        segment = sorted(tmp_path.glob("health-*.jsonl"))[-1]
        with open(segment, "ab") as f:
            f.write(b'{"check": "partial", "sev')  # killed mid-write
        reopened = FindingsStore(tmp_path)
        assert reopened.record_count == 3
        # The store stays appendable and the file stays line-aligned.
        reopened.append(make_finding(99))
        lines = segment.read_bytes().splitlines()
        assert all(json.loads(line) for line in lines)
        assert FindingsStore(tmp_path).record_count == 4


class TestQuery:
    def test_filters_compose(self, tmp_path):
        store = FindingsStore(tmp_path)
        store.extend([
            make_finding(1, instance="db-a", check="rt"),
            make_finding(2, instance="db-b", check="rt"),
            make_finding(3, instance="db-a", check="lock"),
            HealthFinding(check="fleet-c", severity=Severity.HIGH,
                          message="m", detected_at=4),
        ])
        assert [f.detected_at for f in store.query(instance="db-a")] == [3, 1]
        assert [f.detected_at for f in store.query(check="rt")] == [2, 1]
        assert [f.detected_at for f in store.query(instance="")] == [4]
        assert [
            f.detected_at
            for f in store.query(min_severity=Severity.HIGH)
        ] == [4]
        assert [f.detected_at for f in store.query(since=2, until=4)] == [3, 2]
        assert len(store.query(limit=2)) == 2

    def test_sweep_ids_deduplicated_in_order(self, tmp_path):
        store = FindingsStore(tmp_path)
        store.extend(make_finding(i) for i in range(25))
        assert store.sweep_ids() == ["sweep-0", "sweep-1", "sweep-2"]


class TestDiscovery:
    def test_missing_path_yields_nothing(self, tmp_path):
        assert discover_findings_stores(tmp_path / "nope") == []

    def test_direct_store_found(self, tmp_path):
        FindingsStore(tmp_path).append(make_finding(0))
        assert discover_findings_stores(tmp_path) == [tmp_path]

    def test_child_stores_found_sorted(self, tmp_path):
        for name in ("b", "a"):
            FindingsStore(tmp_path / name).append(make_finding(0))
        (tmp_path / "not-a-store").mkdir()
        assert discover_findings_stores(tmp_path) == [
            tmp_path / "a", tmp_path / "b",
        ]
