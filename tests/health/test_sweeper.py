"""HealthSweeper: sweep mechanics, cadence, non-fatal checks."""

from types import SimpleNamespace

import numpy as np

from repro.health import (
    FindingsStore,
    HealthConfig,
    HealthFinding,
    HealthSweeper,
)
from repro.health.checks import HealthCheck
from repro.resilience import BreakerState
from repro.sqlanalysis import Severity
from repro.telemetry import MetricsRegistry
from tests.health.conftest import make_ctx, metric_samples


class FailingCheck(HealthCheck):
    check_id = "boom"
    scope = "instance"

    def check(self, ctx):
        raise RuntimeError("deliberate test failure")


class NoisyCheck(HealthCheck):
    check_id = "noisy"
    scope = "instance"

    def check(self, ctx):
        yield HealthFinding(
            check=self.check_id, severity=Severity.INFO,
            message="hello", instance_id=ctx.instance_id,
        )


def fake_engine(instance_id: str = "db-x", stream_time: int = 600):
    """Duck-types everything the sweeper reads off a live engine."""
    return SimpleNamespace(
        instance_id=instance_id,
        detector=SimpleNamespace(stream_time=stream_time),
        logstore=SimpleNamespace(sql_ids=[]),
        catalog=SimpleNamespace(get=lambda sql_id: None),
        analyzer=SimpleNamespace(analyze_template=lambda info: []),
        metric_window_snapshot=lambda ts, now: {
            "active_session": metric_samples(np.linspace(3, 12, 120))
        },
        lag=0,
        repair_breaker=SimpleNamespace(state=BreakerState.CLOSED),
    )


def fake_service(*engines):
    by_id = {e.instance_id: e for e in engines}
    return SimpleNamespace(
        instance_ids=list(by_id),
        engine=lambda iid: by_id[iid],
    )


class TestSweepContexts:
    def test_findings_stamped_with_sweep_identity(self):
        sweeper = HealthSweeper(
            checks=(NoisyCheck(),), registry=MetricsRegistry()
        )
        result = sweeper.sweep_contexts([make_ctx()], now=120)
        assert len(result.findings) == 1
        assert result.findings[0].sweep_id == result.sweep_id
        assert result.findings[0].detected_at == 120

    def test_scope_filter_skips_mismatched_checks(self):
        sweeper = HealthSweeper(
            checks=(NoisyCheck(),), registry=MetricsRegistry()
        )
        fleet_only = make_ctx(scope="fleet", instance_id="")
        result = sweeper.sweep_contexts([fleet_only], now=120)
        assert result.checks_run == 0
        assert result.findings == []


class TestNonFatalChecks:
    def test_raising_check_degrades_to_a_finding(self):
        registry = MetricsRegistry()
        sweeper = HealthSweeper(
            checks=(FailingCheck(), NoisyCheck()), registry=registry
        )
        result = sweeper.sweep_contexts([make_ctx()], now=60)
        assert result.check_failures == 1
        assert result.checks_run == 2
        layer = [f for f in result.findings if f.check == "health-layer"]
        assert len(layer) == 1
        assert layer[0].evidence["failed_check"] == "boom"
        assert layer[0].evidence["error"] == "RuntimeError"
        # The healthy check still contributed: the sweep survived.
        assert any(f.check == "noisy" for f in result.findings)
        assert registry.counter(
            "health_check_failures_total",
            help="Health checks that raised during a sweep.",
            check="boom",
        ).value == 1.0


class TestAdvisoryContext:
    def _bait_catalog(self):
        baits = {
            "WW1": "UPDATE hot SET c0 = c0 + 1 WHERE LOWER(c8) = 'x'",
            "WW2": "UPDATE hot SET c1 = 2 WHERE UPPER(c9) = 'y'",
        }
        specs = {
            sql_id: SimpleNamespace(sql_id=sql_id, template=sql, exemplar=sql)
            for sql_id, sql in baits.items()
        }
        return SimpleNamespace(get=lambda sql_id: specs.get(sql_id))

    def _templates(self):
        from tests.health.conftest import make_templates, template_series

        return make_templates({
            "WW1": template_series(execs_per_s=2.0),
            "WW2": template_series(execs_per_s=2.0),
        })

    def test_engine_advisor_feeds_context(self):
        from repro.dbsim.tables import Schema, Table
        from repro.sqlanalysis.workload import WorkloadAnalyzer

        engine = fake_engine()
        engine.catalog = self._bait_catalog()
        engine.advisor = WorkloadAnalyzer(
            schema=Schema([Table("hot", 2_000_000, {"id"})]),
            registry=MetricsRegistry(),
        )
        advisories = HealthSweeper._advisories_for_engine(
            engine, self._templates()
        )
        assert advisories
        assert advisories[0].advisor == "lock-conflict"
        assert set(advisories[0].sql_ids) == {"WW1", "WW2"}

    def test_engine_without_advisor_yields_none(self):
        assert HealthSweeper._advisories_for_engine(
            fake_engine(), self._templates()
        ) == ()

    def test_broken_advisor_degrades_to_empty(self):
        engine = fake_engine()
        engine.catalog = self._bait_catalog()
        engine.advisor = SimpleNamespace(
            analyze=lambda infos, weights: (_ for _ in ()).throw(
                RuntimeError("boom")
            )
        )
        assert HealthSweeper._advisories_for_engine(
            engine, self._templates()
        ) == ()


class TestFleetSweeps:
    def test_single_instance_fleet(self):
        sweeper = HealthSweeper(registry=MetricsRegistry())
        service = fake_service(fake_engine("db-solo"))
        result = sweeper.sweep_fleet(service)
        assert result.instances == ("db-solo",)
        # 9 instance-scope + 3 fleet-scope built-in checks.
        assert result.checks_run == 12
        # The synthetic session ramp fires connection-pressure.
        assert any(f.check == "connection-pressure" for f in result.findings)

    def test_maybe_sweep_honours_interval(self):
        sweeper = HealthSweeper(
            config=HealthConfig(sweep_interval_s=300),
            registry=MetricsRegistry(),
        )
        engine = fake_engine("db-x", stream_time=300)
        service = fake_service(engine)
        assert sweeper.maybe_sweep(service) is not None
        engine.detector.stream_time = 450  # too soon
        assert sweeper.maybe_sweep(service) is None
        engine.detector.stream_time = 650
        assert sweeper.maybe_sweep(service) is not None
        assert len(sweeper.sweeps) == 2

    def test_sweep_persists_to_store(self, tmp_path):
        store = FindingsStore(tmp_path)
        sweeper = HealthSweeper(
            store=store, checks=(NoisyCheck(),), registry=MetricsRegistry()
        )
        result = sweeper.sweep_contexts([make_ctx()], now=60)
        assert store.record_count == len(result.findings) == 1
        assert FindingsStore(tmp_path).sweep_ids() == [result.sweep_id]


class TestOfflineSweeps:
    def test_sweep_stores_runs_incident_checks(self, tmp_path):
        from repro.incidents import IncidentStore
        from tests.incidents.conftest import make_record

        store = IncidentStore(tmp_path / "incidents")
        store.append(make_record("i1", "db-a", 100, 300))
        store.append(make_record("i2", "db-b", 400, 600))
        sweeper = HealthSweeper(registry=MetricsRegistry())
        result = sweeper.sweep_stores(tmp_path / "incidents")
        # Two instance contexts + the fleet context, built-ins only.
        assert result.checks_run == 2 * 9 + 3
        # Both records pinpoint R1: the repeat-offender check fires.
        offenders = [f for f in result.findings if f.check == "repeat-offender"]
        assert len(offenders) == 1
        assert offenders[0].sql_id == "R1"
