"""Registry semantics and export formats."""

import json
import re

import pytest

from repro.telemetry import (
    DEFAULT_COUNT_BUCKETS,
    MetricsRegistry,
    labeled_name,
    render_summary,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        reg = MetricsRegistry()
        c = reg.counter("requests_total")
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_same_name_and_labels_return_same_instrument(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total", topic="a")
        b = reg.counter("x_total", topic="a")
        other = reg.counter("x_total", topic="b")
        assert a is b
        assert a is not other

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("x_total").inc(-1)

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")

    def test_invalid_name_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("bad name!")


class TestGauge:
    def test_set_inc_dec(self):
        g = MetricsRegistry().gauge("queue_depth")
        g.set(10)
        g.inc(5)
        g.dec(2)
        assert g.value == 13.0


class TestHistogram:
    def test_bucket_assignment_le_semantics(self):
        h = MetricsRegistry().histogram("lat", buckets=(0.1, 1.0))
        h.observe(0.1)   # on the bound → le=0.1
        h.observe(0.5)   # le=1.0
        h.observe(5.0)   # +Inf overflow
        cumulative = dict(h.cumulative())
        assert cumulative[0.1] == 1
        assert cumulative[1.0] == 2
        assert cumulative[float("inf")] == 3
        assert h.count == 3
        assert h.sum == pytest.approx(5.6)
        assert h.mean == pytest.approx(5.6 / 3)

    def test_non_increasing_buckets_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("h", buckets=(1.0, 1.0))

    def test_count_buckets_capture_zero(self):
        h = MetricsRegistry().histogram("batch", buckets=DEFAULT_COUNT_BUCKETS)
        h.observe(0)
        assert dict(h.cumulative())[0] == 1


class TestExport:
    def _populated(self):
        reg = MetricsRegistry()
        reg.counter("msgs_total", help="Messages.", topic="query_logs").inc(7)
        reg.gauge("lag", topic="query_logs", consumer="query_logs/0").set(3)
        reg.histogram("latency_seconds", buckets=(0.1, 1.0)).observe(0.25)
        return reg

    def test_json_snapshot_round_trip(self):
        reg = self._populated()
        snap = reg.snapshot()
        assert snap == json.loads(json.dumps(snap))
        (counter,) = snap["counters"]
        assert counter == {
            "name": "msgs_total",
            "labels": {"topic": "query_logs"},
            "value": 7.0,
        }
        (hist,) = snap["histograms"]
        assert hist["count"] == 1
        assert hist["buckets"][-1] == ["+Inf", 1]

    def test_prometheus_exposition_is_well_formed(self):
        text = self._populated().render_prometheus()
        assert text.endswith("\n")
        sample_re = re.compile(
            r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"'
            r'(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? -?[0-9.+eE\-]+$'
        )
        for line in text.strip().splitlines():
            assert line.startswith("#") or sample_re.match(line), line
        assert "# TYPE msgs_total counter" in text
        assert '# HELP msgs_total Messages.' in text
        assert 'msgs_total{topic="query_logs"} 7' in text
        assert 'latency_seconds_bucket{le="+Inf"} 1' in text
        assert "latency_seconds_count 1" in text

    def test_prometheus_escapes_label_values(self):
        reg = MetricsRegistry()
        reg.counter("c_total", q='say "hi"\nplease').inc()
        text = reg.render_prometheus()
        assert r'q="say \"hi\"\nplease"' in text

    def test_summary_mentions_every_series(self):
        reg = self._populated()
        text = render_summary(reg)
        assert "msgs_total{topic=query_logs}" in text
        assert "lag{consumer=query_logs/0,topic=query_logs}" in text
        assert "latency_seconds" in text

    def test_labeled_name_no_labels(self):
        assert labeled_name("x") == "x"

    def test_reset_clears_everything(self):
        reg = self._populated()
        reg.reset()
        assert reg.snapshot() == {"counters": [], "gauges": [], "histograms": []}
        assert reg.names() == []
