"""Structured logging: formatters and the configure_telemetry entry point."""

import io
import json
import logging

import pytest

from repro.telemetry import configure_telemetry, get_logger
from repro.telemetry.logs import ROOT_LOGGER_NAME


@pytest.fixture(autouse=True)
def _restore_logging():
    """Leave the repro logger as we found it."""
    logger = logging.getLogger(ROOT_LOGGER_NAME)
    handlers, level = list(logger.handlers), logger.level
    yield
    logger.handlers = handlers
    logger.setLevel(level)


class TestConfigure:
    def test_kv_lines_carry_extra_fields(self):
        stream = io.StringIO()
        configure_telemetry(fmt="kv", stream=stream)
        get_logger("service").info(
            "anomaly diagnosed", extra={"anomaly_start": 610, "top_rsql": "S12"}
        )
        line = stream.getvalue().strip()
        assert "level=INFO" in line
        assert "logger=repro.service" in line
        assert 'msg="anomaly diagnosed"' in line
        assert "anomaly_start=610" in line
        assert "top_rsql=S12" in line

    def test_json_lines_parse(self):
        stream = io.StringIO()
        configure_telemetry(fmt="json", stream=stream)
        get_logger("pipeline").warning("slow stage", extra={"stage": "hsql"})
        record = json.loads(stream.getvalue())
        assert record["level"] == "WARNING"
        assert record["logger"] == "repro.pipeline"
        assert record["msg"] == "slow stage"
        assert record["stage"] == "hsql"

    def test_reconfigure_replaces_handler(self):
        first, second = io.StringIO(), io.StringIO()
        configure_telemetry(stream=first)
        configure_telemetry(stream=second)
        get_logger().info("once")
        assert first.getvalue() == ""
        assert second.getvalue().count("msg=once") == 1

    def test_level_filtering(self):
        stream = io.StringIO()
        configure_telemetry(level=logging.WARNING, stream=stream)
        get_logger().info("quiet")
        get_logger().warning("loud")
        out = stream.getvalue()
        assert "quiet" not in out
        assert "loud" in out

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError):
            configure_telemetry(fmt="xml")

    def test_unconfigured_library_is_silent(self):
        # The NullHandler keeps "no handler could be found" noise away;
        # nothing is written anywhere without configure_telemetry().
        logger = get_logger("quiet_component")
        assert logger.name == "repro.quiet_component"
        logger.info("library import should not print")  # must not raise
