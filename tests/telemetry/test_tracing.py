"""Span nesting, timing, retention, and the registry hookup."""

import os
import time

from repro.telemetry import MetricsRegistry, Tracer
from repro.telemetry.tracing import TraceContext, set_trace_propagation


class TestSpans:
    def test_elapsed_measured(self):
        tracer = Tracer()
        with tracer.span("work") as span:
            time.sleep(0.002)
        assert span.elapsed is not None
        assert span.elapsed >= 0.002

    def test_nesting_builds_a_tree(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("child_a"):
                with tracer.span("grandchild"):
                    pass
            with tracer.span("child_b"):
                pass
        root = tracer.last_root()
        assert root.name == "root"
        assert [c.name for c in root.children] == ["child_a", "child_b"]
        assert [c.name for c in root.children[0].children] == ["grandchild"]
        # Pre-order walk with depths.
        walked = [(d, s.name) for d, s in root.walk()]
        assert walked == [
            (0, "root"), (1, "child_a"), (2, "grandchild"), (1, "child_b"),
        ]

    def test_sequential_roots_both_retained(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [s.name for s in tracer.roots] == ["first", "second"]

    def test_root_retention_bounded(self):
        tracer = Tracer(max_roots=3)
        for i in range(5):
            with tracer.span(f"s{i}"):
                pass
        assert [s.name for s in tracer.roots] == ["s2", "s3", "s4"]

    def test_current_tracks_innermost_open_span(self):
        tracer = Tracer()
        assert tracer.current is None
        with tracer.span("outer"):
            assert tracer.current.name == "outer"
            with tracer.span("inner"):
                assert tracer.current.name == "inner"
            assert tracer.current.name == "outer"
        assert tracer.current is None


class TestRegistryIntegration:
    def test_finished_spans_feed_the_histogram(self):
        reg = MetricsRegistry()
        tracer = Tracer(registry=reg)
        with tracer.span("stage"):
            pass
        with tracer.span("stage"):
            pass
        hist = reg.get(Tracer.SPAN_METRIC, span="stage")
        assert hist is not None
        assert hist.count == 2
        assert hist.sum >= 0.0

    def test_disabled_tracer_still_times_but_stays_silent(self):
        reg = MetricsRegistry()
        tracer = Tracer(registry=reg, enabled=False)
        with tracer.span("stage") as span:
            pass
        assert span.elapsed is not None
        assert tracer.roots == []
        assert Tracer.SPAN_METRIC not in reg


class TestErrorSpans:
    def test_exception_marks_status_and_keeps_elapsed(self):
        tracer = Tracer()
        try:
            with tracer.span("work") as span:
                time.sleep(0.002)
                raise ValueError("boom")
        except ValueError:
            pass
        assert span.elapsed is not None
        assert span.elapsed >= 0.002
        assert span.attrs["status"] == "error"
        assert span.attrs["error"] == "ValueError"

    def test_exception_propagates_out_of_the_span(self):
        tracer = Tracer()
        try:
            with tracer.span("work"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        else:  # pragma: no cover - the raise must not be swallowed
            raise AssertionError("span swallowed the exception")

    def test_error_span_still_feeds_histogram_and_counts(self):
        reg = MetricsRegistry()
        tracer = Tracer(registry=reg)
        try:
            with tracer.span("stage"):
                raise KeyError("x")
        except KeyError:
            pass
        hist = reg.get(Tracer.SPAN_METRIC, span="stage")
        assert hist is not None and hist.count == 1
        errors = reg.get("span_errors_total", span="stage")
        assert errors is not None and errors.value == 1

    def test_clean_span_does_not_count_an_error(self):
        reg = MetricsRegistry()
        tracer = Tracer(registry=reg)
        with tracer.span("stage") as span:
            pass
        assert "status" not in span.attrs
        assert reg.get("span_errors_total", span="stage") is None

    def test_inner_error_does_not_mark_the_caught_outer(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            try:
                with tracer.span("inner") as inner:
                    raise ValueError("boom")
            except ValueError:
                pass
        assert inner.attrs.get("status") == "error"
        assert "status" not in outer.attrs
        root = tracer.last_root()
        assert root.name == "outer"
        assert [c.name for c in root.children] == ["inner"]

    def test_error_annotation_renders_in_the_tree(self):
        tracer = Tracer()
        try:
            with tracer.span("stage"):
                raise ValueError("boom")
        except ValueError:
            pass
        text = tracer.format_tree()
        assert "status=error" in text
        assert "error=ValueError" in text

    def test_disabled_tracer_marks_error_spans_too(self):
        tracer = Tracer(enabled=False)
        try:
            with tracer.span("stage") as span:
                raise ValueError("boom")
        except ValueError:
            pass
        assert span.elapsed is not None
        assert span.attrs["status"] == "error"


class TestFormatTree:
    def test_renders_names_and_durations(self):
        tracer = Tracer()
        with tracer.span("analyze", case="c1"):
            with tracer.span("ranking"):
                pass
        text = tracer.format_tree()
        lines = text.splitlines()
        assert lines[0].startswith("analyze")
        assert "case=c1" in lines[0]
        assert lines[1].startswith("  ranking")
        assert "ms" in text or " s" in text

    def test_empty_tracer_renders_placeholder(self):
        assert "no finished spans" in Tracer().format_tree()


class TestTraceContextPropagation:
    def test_root_spans_carry_distributed_identity(self):
        tracer = Tracer()
        with tracer.span("service.diagnose") as span:
            pass
        assert isinstance(span.attrs["trace_id"], str)
        assert isinstance(span.attrs["span_id"], str)
        assert span.attrs["process"] == os.getpid()
        assert "parent_span_id" not in span.attrs

    def test_remote_parent_links_new_roots(self):
        tracer = Tracer()
        ctx = TraceContext(trace_id="t" * 16, span_id="s" * 16, process=1)
        tracer.set_remote_parent(ctx)
        with tracer.span("service.diagnose") as span:
            pass
        assert span.attrs["trace_id"] == ctx.trace_id
        assert span.attrs["parent_span_id"] == ctx.span_id
        assert span.attrs["span_id"] != ctx.span_id

    def test_context_for_nested_span_joins_roots_trace(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("publish") as inner:
                ctx = tracer.context_for(inner)
        assert ctx is not None
        assert ctx.trace_id == root.attrs["trace_id"]
        assert ctx.span_id == inner.attrs["span_id"]
        assert ctx.process == os.getpid()

    def test_propagation_toggle_suppresses_identity(self):
        set_trace_propagation(False)
        try:
            tracer = Tracer()
            with tracer.span("quiet") as span:
                assert tracer.context_for(span) is None
            assert "trace_id" not in span.attrs
        finally:
            set_trace_propagation(True)

    def test_context_round_trips_through_junk_tolerant_from_dict(self):
        ctx = TraceContext(trace_id="abc", span_id="def", process=7)
        again = TraceContext.from_dict(ctx.to_dict())
        assert again == ctx
        assert TraceContext.from_dict({"trace_id": "x"}) is None
        assert TraceContext.from_dict("garbage") is None


class TestCrossProcessExport:
    def test_export_and_adopt_round_trip(self):
        src = Tracer()
        with src.span("service.diagnose"):
            with src.span("pinsql.analyze"):
                pass
        dst = Tracer()
        payloads = src.export_roots(clear=True)
        assert src.roots == []
        assert dst.adopt(payloads) == 1
        [root] = dst.roots
        assert root.name == "service.diagnose"
        assert root.children[0].name == "pinsql.analyze"
        assert root.attrs["trace_id"]

    def test_adopt_skips_malformed_payloads(self):
        dst = Tracer()
        good = {"name": "ok", "elapsed": 0.1, "attrs": {}, "children": []}
        assert dst.adopt([{"nope": 1}, "junk", good]) == 1
        assert dst.last_root().name == "ok"

    def test_adopt_does_not_reobserve_histograms(self):
        registry = MetricsRegistry()
        dst = Tracer(registry=registry)
        src = Tracer()
        with src.span("work"):
            pass
        dst.adopt(src.export_roots())
        assert registry.snapshot()["histograms"] == []


class TestLabelPropagation:
    def test_child_spans_observe_with_tracer_labels(self):
        # The extra-labels path: a fleet engine's tracer stamps its
        # instance label on EVERY span observation, children included,
        # so per-stage latency histograms stay separable per instance.
        registry = MetricsRegistry()
        tracer = Tracer(registry=registry, labels={"instance": "db-09"})
        with tracer.span("service.diagnose"):
            with tracer.span("pinsql.analyze"):
                pass
        for span_name in ("service.diagnose", "pinsql.analyze"):
            hist = registry.get(
                "span_duration_seconds", span=span_name, instance="db-09"
            )
            assert hist is not None and hist.count == 1

    def test_error_counter_carries_tracer_labels(self):
        registry = MetricsRegistry()
        tracer = Tracer(registry=registry, labels={"instance": "db-09"})
        try:
            with tracer.span("service.diagnose"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        counter = registry.get(
            "span_errors_total", span="service.diagnose", instance="db-09"
        )
        assert counter is not None and counter.value == 1
