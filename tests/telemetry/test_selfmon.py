"""Self-monitoring: the registry's own history as TimeSeries, watched
by the repo's own detectors (the watch-the-watcher loop)."""

import numpy as np
import pytest

from repro.telemetry import MetricsRegistry, SelfMonitor, forward_fill_series
from repro.timeseries import LevelShiftDetector, SpikeDetector, TimeSeries


class TestForwardFill:
    def test_fills_gaps_with_last_value(self):
        series = forward_fill_series({2: 5.0, 5: 7.0}, 0, 8, name="g")
        assert isinstance(series, TimeSeries)
        assert series.start == 0
        assert series.name == "g"
        np.testing.assert_allclose(
            series.values, [0.0, 0.0, 5.0, 5.0, 5.0, 7.0, 7.0, 7.0]
        )

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError):
            forward_fill_series({}, 5, 5)


class TestSelfMonitor:
    def test_samples_gauges_and_counters(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth", topic="q")
        c = reg.counter("handled_total")
        monitor = SelfMonitor(reg)
        g.set(4)
        c.inc(2)
        assert monitor.sample(100) == 2
        g.set(9)
        monitor.sample(101)
        assert monitor.names() == ["depth{topic=q}", "handled_total"]
        series = monitor.series("depth{topic=q}")
        np.testing.assert_allclose(series.values, [4.0, 9.0])

    def test_histograms_export_mean_and_p95(self):
        reg = MetricsRegistry()
        hist = reg.histogram("lat", instance="db-00")
        for value in (0.1, 0.1, 0.1, 0.1, 4.0):
            hist.observe(value)
        monitor = SelfMonitor(reg)
        assert monitor.sample(1) == 2
        assert monitor.names() == [
            "lat_p95{instance=db-00}", "lat{instance=db-00}",
        ]
        mean = monitor.series("lat{instance=db-00}")
        np.testing.assert_allclose(mean.values, [hist.mean])
        p95 = monitor.series("lat_p95{instance=db-00}")
        np.testing.assert_allclose(p95.values, [hist.quantile(0.95)])
        # The p95 watches the tail: far above the mean here.
        assert p95.values[0] > mean.values[0]

    def test_histograms_excluded_when_opted_out(self):
        reg = MetricsRegistry()
        reg.histogram("lat").observe(0.1)
        monitor = SelfMonitor(reg, include_histograms=False)
        assert monitor.sample(1) == 0

    def test_window_bounds_history(self):
        reg = MetricsRegistry()
        g = reg.gauge("v")
        monitor = SelfMonitor(reg, window_s=10)
        for t in range(0, 40, 5):
            g.set(t)
            monitor.sample(t)
        series = monitor.series("v")
        # Only samples within the final 10 s window remain.
        assert series.start >= 25

    def test_missing_series_is_none(self):
        monitor = SelfMonitor(MetricsRegistry())
        assert monitor.series("nope") is None

    def test_all_series(self):
        reg = MetricsRegistry()
        reg.gauge("a").set(1)
        reg.gauge("b").set(2)
        monitor = SelfMonitor(reg)
        monitor.sample(0)
        monitor.sample(1)
        series = monitor.all_series()
        assert set(series) == {"a", "b"}


class TestWatchTheWatcher:
    """The repo's own detectors must run on exported gauge history."""

    def test_detectors_flag_an_anomalous_gauge(self):
        reg = MetricsRegistry()
        lag = reg.gauge("broker_consumer_lag", topic="query_logs")
        monitor = SelfMonitor(reg, window_s=600)
        rng = np.random.default_rng(7)
        # 300 s of healthy lag, then the consumer stalls and lag ramps up.
        for t in range(300):
            if t < 200:
                lag.set(5.0 + rng.normal(0, 0.5))
            else:
                lag.set(5.0 + (t - 200) * 3.0)
            monitor.sample(t)
        series = monitor.series("broker_consumer_lag{topic=query_logs}")
        assert len(series) == 300
        detections = LevelShiftDetector().detect(series) + SpikeDetector().detect(
            series
        )
        assert detections, "the stall must register as an anomaly"
        assert max(d.start_index for d in detections) >= 190

    def test_healthy_gauge_stays_quiet(self):
        reg = MetricsRegistry()
        g = reg.gauge("steady")
        monitor = SelfMonitor(reg)
        rng = np.random.default_rng(11)
        for t in range(120):
            g.set(10.0 + rng.normal(0, 0.1))
            monitor.sample(t)
        series = monitor.series("steady")
        assert LevelShiftDetector().detect(series) == []
