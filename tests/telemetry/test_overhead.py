"""Telemetry must stay effectively free on the diagnosis hot path.

The paper budgets per-query collection overhead carefully (Table IV);
our self-telemetry gets the same treatment: the instrumented
``PinSQL.analyze`` must stay within 5% of the uninstrumented wall-clock.
"""

import time

from repro.core import PinSQL
from repro.telemetry import MetricsRegistry, Tracer


def _best_of(fn, repeats: int = 7) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


class TestTelemetryOverhead:
    def test_analyze_within_5_percent(self, poor_sql_case):
        case = poor_sql_case.case
        enabled = PinSQL(tracer=Tracer(registry=MetricsRegistry()))
        disabled = PinSQL(tracer=Tracer(enabled=False))
        # Warm both paths (imports, caches) before measuring.
        enabled.analyze(case)
        disabled.analyze(case)
        t_enabled = _best_of(lambda: enabled.analyze(case))
        t_disabled = _best_of(lambda: disabled.analyze(case))
        # 5% relative budget with a small absolute floor so scheduler
        # jitter on a sub-10ms case cannot produce a spurious failure.
        assert t_enabled <= t_disabled * 1.05 + 0.002, (
            f"telemetry overhead too high: enabled={t_enabled * 1e3:.2f}ms "
            f"disabled={t_disabled * 1e3:.2f}ms"
        )

    def test_results_identical_with_and_without_telemetry(self, poor_sql_case):
        case = poor_sql_case.case
        with_telemetry = PinSQL(tracer=Tracer(registry=MetricsRegistry()))
        without = PinSQL(tracer=Tracer(enabled=False))
        a = with_telemetry.analyze(case)
        b = without.analyze(case)
        assert a.rsql_ids == b.rsql_ids
        assert a.hsql_ids == b.hsql_ids

    def test_stage_timings_still_populated(self, poor_sql_case):
        result = PinSQL(tracer=Tracer(enabled=False)).analyze(poor_sql_case.case)
        timings = result.timings
        assert timings.session_estimation > 0
        assert timings.hsql_ranking > 0
        assert timings.clustering_and_filtering > 0
        assert timings.history_verification > 0
        assert timings.total > 0
