"""Planted anti-patterns and the analyzer precision/recall gate."""

import numpy as np
import pytest

from repro.evaluation import analyzer_for_population, evaluate_analyzer
from repro.workload import build_population, hot_tables, plant_antipatterns


def make_population(seed=7):
    rng = np.random.default_rng(seed)
    population = build_population(600, rng, n_businesses=6)
    planted = plant_antipatterns(population, rng)
    return population, planted


class TestPlanting:
    def test_labels_cover_every_rule_category(self):
        _, planted = make_population()
        rules = {rule for p in planted for rule in p.rules}
        assert rules == {
            "select-star", "non-sargable-function", "leading-wildcard-like",
            "implicit-conversion", "missing-index", "unbounded-scan",
            "cartesian-join", "large-in-list", "long-or-chain", "lock-footprint",
        }

    def test_planted_templates_join_the_population(self):
        population, planted = make_population()
        for p in planted:
            assert p.sql_id in population.specs
            assert population.specs[p.sql_id].exemplar == p.statement

    def test_planting_is_deterministic(self):
        _, first = make_population(seed=3)
        _, second = make_population(seed=3)
        assert first == second

    def test_planted_traffic_is_negligible(self):
        population, planted = make_population()
        ids = {p.sql_id for p in planted}
        for business in population.businesses:
            for sql_id in business.sql_ids:
                if sql_id in ids:
                    assert business.template_multiplier(sql_id) < 0.01


class TestHotTables:
    def test_returns_known_tables(self):
        population, _ = make_population()
        hot = hot_tables(population)
        assert hot
        assert all(t in population.schema for t in hot)

    def test_top_n_respected(self):
        population, _ = make_population()
        assert len(hot_tables(population, top_n=1)) == 1


class TestAnalyzerAccuracy:
    """The ISSUE acceptance gate: recall 1.0, precision >= 0.8."""

    @pytest.mark.parametrize("seed", [0, 7, 123])
    def test_precision_and_recall_on_planted_catalog(self, seed):
        population, planted = make_population(seed)
        analyzer = analyzer_for_population(population)
        evaluation = evaluate_analyzer(analyzer, population, planted)
        assert evaluation.recall == 1.0, (
            f"missed planted labels: {evaluation.missed}"
        )
        assert evaluation.precision >= 0.8, (
            f"spurious findings: {evaluation.spurious}"
        )

    def test_per_rule_buckets_sum_to_totals(self):
        population, planted = make_population()
        evaluation = evaluate_analyzer(
            analyzer_for_population(population), population, planted
        )
        assert sum(b["tp"] for b in evaluation.per_rule.values()) == (
            evaluation.true_positives
        )
        assert evaluation.templates_analyzed == len(population.specs)

    def test_to_dict_round_trips_counts(self):
        population, planted = make_population()
        evaluation = evaluate_analyzer(
            analyzer_for_population(population), population, planted
        )
        data = evaluation.to_dict()
        assert data["true_positives"] == evaluation.true_positives
        assert data["precision"] == evaluation.precision
        assert data["recall"] == evaluation.recall
