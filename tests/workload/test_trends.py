"""Tests for trend primitives."""

import numpy as np
import pytest

from repro.workload import (
    ar1_trend,
    business_latent_trend,
    diurnal_trend,
    ramp_profile,
    spike_profile,
)


class TestDiurnal:
    def test_centered_on_one(self):
        trend = diurnal_trend(86_400, depth=0.3)
        assert trend.mean() == pytest.approx(1.0, abs=0.01)
        assert trend.max() <= 1.3 + 1e-9
        assert trend.min() >= 0.7 - 1e-9

    def test_invalid_duration(self):
        with pytest.raises(ValueError):
            diurnal_trend(0)

    def test_phase_shifts(self):
        a = diurnal_trend(1000, phase=0.0)
        b = diurnal_trend(1000, phase=21_600.0)
        assert not np.allclose(a, b)


class TestAr1:
    def test_positive_and_smooth(self):
        rng = np.random.default_rng(0)
        trend = ar1_trend(3600, rng)
        assert (trend > 0).all()
        # Smoothing caps the second-to-second jumps.
        assert np.abs(np.diff(trend)).max() < 0.05

    def test_has_variation(self):
        rng = np.random.default_rng(1)
        trend = ar1_trend(3600, rng, sigma=0.25)
        assert trend.std() > 0.02

    def test_invalid_rho(self):
        with pytest.raises(ValueError):
            ar1_trend(100, np.random.default_rng(0), rho=1.0)

    def test_invalid_duration(self):
        with pytest.raises(ValueError):
            ar1_trend(0, np.random.default_rng(0))


class TestBusinessLatent:
    def test_scales_with_level(self):
        rng = np.random.default_rng(2)
        low = business_latent_trend(2000, rng, base_level=1.0)
        rng = np.random.default_rng(2)
        high = business_latent_trend(2000, rng, base_level=10.0)
        assert high.mean() == pytest.approx(10 * low.mean(), rel=1e-6)

    def test_non_negative(self):
        rng = np.random.default_rng(3)
        trend = business_latent_trend(2000, rng, fluctuation=0.8)
        assert (trend >= 0).all()


class TestSpikeProfile:
    def test_shape(self):
        p = spike_profile(1000, 400, 600, 5.0, ramp=20)
        assert p[:400].max() == 1.0
        assert p[450:550].min() == 5.0
        assert p[650:].max() == 1.0
        # Ramps are monotone.
        assert (np.diff(p[400:420]) >= 0).all()
        assert (np.diff(p[580:600]) <= 0).all()

    def test_zero_length_window(self):
        p = spike_profile(100, 50, 50, 5.0)
        assert np.allclose(p, 1.0)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            spike_profile(100, 90, 200, 2.0)

    def test_negative_magnitude_rejected(self):
        with pytest.raises(ValueError):
            spike_profile(100, 10, 20, -1.0)

    def test_downward_spike_supported(self):
        p = spike_profile(100, 40, 60, 0.1, ramp=0)
        assert p[50] == pytest.approx(0.1)


class TestRampProfile:
    def test_shape(self):
        p = ramp_profile(1000, 500, ramp=100)
        assert p[:500].max() == 0.0
        assert p[650:].min() == 1.0
        assert 0.0 < p[550] < 1.0

    def test_start_at_zero(self):
        p = ramp_profile(100, 0, ramp=10)
        assert p[50] == 1.0

    def test_start_beyond_duration_rejected(self):
        with pytest.raises(ValueError):
            ramp_profile(100, 150)
