"""Tests for counterfactual replay and repair-plan validation."""

import numpy as np
import pytest

from repro.core import (
    PinSQL,
    RepairConfig,
    RepairEngine,
    RepairRule,
    SqlThrottleAction,
    validate_plan,
)
from repro.sqltemplate import StatementKind
from repro.workload import ReplayWorkload, estimate_cpu_cores, infer_spec, replay_case


class TestInferSpec:
    def test_recovers_kind_and_tables(self, row_lock_case):
        case = row_lock_case.case
        r_sql = next(iter(row_lock_case.r_sqls))
        spec = infer_spec(case, r_sql)
        assert spec.kind is StatementKind.UPDATE
        assert spec.tables
        assert spec.sql_id == r_sql

    def test_batch_update_lock_hold_recovered(self, row_lock_case):
        case = row_lock_case.case
        r_sql = next(iter(row_lock_case.r_sqls))
        spec = infer_spec(case, r_sql)
        # The injected batch job holds locks for 250-450 ms; the inferred
        # hold must land in the right ballpark.
        assert 100.0 < spec.lock_hold_ms < 900.0

    def test_select_gets_default_hold(self, row_lock_case):
        case = row_lock_case.case
        select_id = next(
            sid for sid in case.sql_ids
            if case.catalog.get(sid) and case.catalog.get(sid).kind is StatementKind.SELECT
        )
        spec = infer_spec(case, select_id)
        assert spec.lock_hold_ms == 20.0

    def test_unknown_template(self, row_lock_case):
        spec = infer_spec(row_lock_case.case, "DOES_NOT_EXIST")
        assert spec.kind is StatementKind.OTHER


class TestReplayWorkload:
    def test_rates_follow_observed_counts(self, row_lock_case):
        case = row_lock_case.case
        workload = ReplayWorkload(case)
        sid = case.sql_ids[0]
        t = case.ts + 100
        expected = float(case.templates.executions(sid).values[100])
        got = workload.rates_at(t).get(sid, 0.0)
        assert got == pytest.approx(expected)

    def test_core_estimation_reasonable(self, row_lock_case):
        workload = ReplayWorkload(row_lock_case.case)
        cores = estimate_cpu_cores(row_lock_case.case, workload)
        assert 2 <= cores <= 64

    def test_replay_reproduces_anomaly_shape(self, row_lock_case):
        case = row_lock_case.case
        result = replay_case(case, seed=3)
        lo, hi = case.anomaly_indices()
        replayed = result.metrics.active_session.values
        assert replayed[lo:hi].mean() > 1.5 * max(replayed[:lo].mean(), 0.5)


class TestPlanValidation:
    def test_killing_root_cause_resolves(self, row_lock_case):
        case = row_lock_case.case
        result = PinSQL().analyze(case)
        config = RepairConfig(
            rules=(
                RepairRule(("*",), "sql_throttle",
                           params=(("factor", 0.0), ("duration_s", 100_000))),
            ),
        )
        plan = RepairEngine(config).plan(
            case, result, anomaly_types=("active_session_anomaly",)
        )
        validation = validate_plan(case, plan)
        assert validation.improvement > 0.3
        assert validation.resolves
        assert "improvement" in str(validation)

    def test_useless_plan_does_not_improve(self, row_lock_case):
        case = row_lock_case.case
        # Throttle an irrelevant template: the anomaly must persist.
        irrelevant = min(
            case.sql_ids,
            key=lambda sid: case.templates.executions(sid).total(),
        )
        from repro.core.repair.engine import RepairPlan

        plan = RepairPlan(actions=[SqlThrottleAction(irrelevant, factor=0.0, duration_s=100_000)])
        validation = validate_plan(case, plan)
        assert validation.improvement < 0.3


class TestInflationDeflation:
    def test_inflation_high_during_saturation(self, poor_sql_case):
        from repro.workload import inflation_series

        case = poor_sql_case.case
        inflation = inflation_series(case)
        lo, hi = case.anomaly_indices()
        assert inflation[: lo - 30].mean() < 1.5     # calm before
        assert inflation[lo + 60 : hi].mean() > 2.0  # inflated during

    def test_new_template_base_deflated(self, poor_sql_case):
        # The poor SQL only ever ran during the saturation it caused; the
        # deflated inference must land near its true service time rather
        # than the inflated observed responses.
        from repro.workload import ReplayWorkload

        case = poor_sql_case.case
        workload = ReplayWorkload(case)
        r_sql = next(iter(poor_sql_case.r_sqls))
        inferred = workload.specs[r_sql]
        observed = case.logs.queries_in_window(r_sql, case.ts, case.te)
        # Far below the raw observed responses.
        assert inferred.service_time_ms < 0.5 * float(observed.response_ms.mean())

    def test_validation_predicts_recovery_for_poor_sql(self, poor_sql_case):
        from repro.core import PinSQL, RepairConfig, RepairEngine, RepairRule, validate_plan

        case = poor_sql_case.case
        result = PinSQL().analyze(case)
        config = RepairConfig(rules=(RepairRule(("*",), "query_optimization"),))
        plan = RepairEngine(config).plan(case, result, anomaly_types=("cpu_anomaly",))
        validation = validate_plan(case, plan)
        assert validation.improvement > 0.5
        assert validation.resolves


class TestReplayProperties:
    def test_inferred_base_never_exceeds_observed_median(self, row_lock_case):
        from repro.workload import ReplayWorkload

        case = row_lock_case.case
        workload = ReplayWorkload(case)
        for sid in list(case.sql_ids)[:20]:
            tq = case.logs.queries_in_window(sid, case.ts, case.te)
            if len(tq) < 20:
                continue
            spec = workload.specs[sid]
            # Deflated p10 minus scan cost can never exceed the raw median.
            assert spec.base_response_ms <= float(np.median(tq.response_ms)) + 1e-6

    def test_replay_total_queries_close_to_observed(self, row_lock_case):
        from repro.workload import replay_case

        case = row_lock_case.case
        result = replay_case(case, seed=11)
        observed = case.logs.total_queries()
        replayed = result.query_log.total_queries
        assert 0.8 * observed < replayed < 1.2 * observed
