"""Tests for the microservice model and population builder."""

import numpy as np
import pytest

from repro.sqltemplate import StatementKind
from repro.workload import (
    Api,
    BusinessService,
    WorkloadGenerator,
    build_population,
)
from repro.timeseries import pearson


class TestApi:
    def test_add_template_accumulates(self):
        api = Api("a")
        api.add_template("Q1", 1.0)
        api.add_template("Q1", 0.5)
        assert api.template_calls["Q1"] == pytest.approx(1.5)

    def test_invalid_queries_per_call(self):
        with pytest.raises(ValueError):
            Api("a").add_template("Q1", 0.0)

    def test_negative_calls_rejected(self):
        with pytest.raises(ValueError):
            Api("a", calls_per_request=-1.0)


class TestBusinessService:
    def _business(self):
        latent = np.full(100, 2.0)
        api1 = Api("a1", calls_per_request=2.0, template_calls={"Q1": 1.0})
        api2 = Api("a2", calls_per_request=1.0, template_calls={"Q1": 0.5, "Q2": 1.0})
        return BusinessService("b", latent, [api1, api2])

    def test_template_multiplier_sums_over_apis(self):
        b = self._business()
        assert b.template_multiplier("Q1") == pytest.approx(2.5)
        assert b.template_multiplier("Q2") == pytest.approx(1.0)
        assert b.template_multiplier("QX") == 0.0

    def test_template_rate(self):
        b = self._business()
        rate = b.template_rate("Q1")
        assert rate.shape == (100,)
        assert rate[0] == pytest.approx(5.0)

    def test_sql_ids_deduplicated(self):
        b = self._business()
        assert b.sql_ids == ["Q1", "Q2"]

    def test_scale_latent(self):
        b = self._business()
        b.scale_latent(np.full(100, 3.0))
        assert b.latent[0] == pytest.approx(6.0)

    def test_scale_latent_length_mismatch(self):
        b = self._business()
        with pytest.raises(ValueError):
            b.scale_latent(np.ones(50))

    def test_negative_latent_rejected(self):
        with pytest.raises(ValueError):
            BusinessService("b", np.array([-1.0]))


class TestBuildPopulation:
    def test_structure(self):
        rng = np.random.default_rng(0)
        pop = build_population(1200, rng, n_businesses=8)
        assert len(pop.businesses) == 8
        assert len(pop.specs) >= 8 * 5
        assert len(pop.schema) >= 8
        # Every business template has a registered spec.
        for business in pop.businesses:
            for sql_id in business.sql_ids:
                assert sql_id in pop.specs

    def test_deterministic(self):
        a = build_population(600, np.random.default_rng(5), n_businesses=4)
        b = build_population(600, np.random.default_rng(5), n_businesses=4)
        assert a.sql_ids == b.sql_ids

    def test_kind_mix_reasonable(self):
        rng = np.random.default_rng(1)
        pop = build_population(600, rng, n_businesses=12)
        kinds = [s.kind for s in pop.specs.values()]
        select_share = kinds.count(StatementKind.SELECT) / len(kinds)
        assert 0.4 < select_share < 0.95

    def test_business_of(self):
        rng = np.random.default_rng(2)
        pop = build_population(600, rng, n_businesses=4)
        sql_id = pop.businesses[0].sql_ids[0]
        assert pop.business_of(sql_id) is pop.businesses[0]
        assert pop.business_of("NOT_A_TEMPLATE") is None

    def test_intra_business_rates_correlate(self):
        # The Fig. 4 property: templates of one business share a trend.
        rng = np.random.default_rng(3)
        pop = build_population(3600, rng, n_businesses=6)
        business = pop.businesses[0]
        ids = business.sql_ids[:2]
        r = pearson(business.template_rate(ids[0]), business.template_rate(ids[1]))
        assert r > 0.95  # identical latent, different scales

    def test_inter_business_rates_mostly_uncorrelated(self):
        rng = np.random.default_rng(4)
        pop = build_population(3600, rng, n_businesses=6)
        b0, b1 = pop.businesses[0], pop.businesses[1]
        r = pearson(
            b0.template_rate(b0.sql_ids[0]), b1.template_rate(b1.sql_ids[0])
        )
        assert abs(r) < 0.9

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            build_population(0, np.random.default_rng(0))
        with pytest.raises(ValueError):
            build_population(100, np.random.default_rng(0), n_businesses=0)


class TestWorkloadGenerator:
    def test_rates_at_matches_expected(self):
        rng = np.random.default_rng(6)
        pop = build_population(600, rng, n_businesses=4)
        gen = WorkloadGenerator(pop)
        rates = gen.rates_at(100)
        some_id = next(iter(rates))
        assert rates[some_id] == pytest.approx(pop.expected_rate(some_id)[100])

    def test_rates_clamped_to_duration(self):
        rng = np.random.default_rng(7)
        pop = build_population(60, rng, n_businesses=2)
        gen = WorkloadGenerator(pop)
        assert gen.rates_at(10_000) == gen.rates_at(59)

    def test_counts_at_exposes_schedule(self):
        rng = np.random.default_rng(8)
        pop = build_population(60, rng, n_businesses=2)
        pop.exact_counts["DDL1"] = {30: 2}
        gen = WorkloadGenerator(pop)
        assert gen.counts_at(30) == {"DDL1": 2}
        assert gen.counts_at(31) == {}

    def test_expected_rate_unknown_template(self):
        rng = np.random.default_rng(9)
        pop = build_population(60, rng, n_businesses=2)
        gen = WorkloadGenerator(pop)
        assert gen.expected_rate("NOPE").sum() == 0.0

    def test_rate_override_respected(self):
        rng = np.random.default_rng(10)
        pop = build_population(60, rng, n_businesses=2)
        sql_id = pop.sql_ids[0]
        pop.rate_overrides[sql_id] = np.full(60, 123.0)
        gen = WorkloadGenerator(pop)
        assert gen.rates_at(5)[sql_id] == pytest.approx(123.0)
