"""Tests for anomaly scenario injection, including end-to-end simulation."""

import numpy as np
import pytest

from repro.dbsim import DatabaseInstance
from repro.sqltemplate import StatementKind
from repro.workload import (
    AnomalyCategory,
    WorkloadGenerator,
    build_population,
    inject_anomaly,
)

DURATION = 900
AS_, AE = 500, 800


def make_population(seed):
    return build_population(DURATION, np.random.default_rng(seed), n_businesses=6)


class TestInjectionBookkeeping:
    def test_business_spike_labels(self):
        pop = make_population(0)
        rng = np.random.default_rng(1)
        truth = inject_anomaly(pop, rng, AnomalyCategory.BUSINESS_SPIKE, AS_, AE)
        assert truth.category is AnomalyCategory.BUSINESS_SPIKE
        assert truth.r_sql_ids
        assert truth.new_sql_ids == []
        business = next(b for b in pop.businesses if b.name == truth.business)
        # The latent demand actually spiked inside the window.
        assert business.latent[AS_ + 50 : AE - 50].mean() > 3 * business.latent[:AS_].mean()

    def test_poor_sql_creates_new_heavy_template(self):
        pop = make_population(2)
        before = set(pop.sql_ids)
        truth = inject_anomaly(pop, np.random.default_rng(3), AnomalyCategory.POOR_SQL, AS_, AE)
        (new_id,) = truth.r_sql_ids
        assert new_id not in before
        spec = pop.specs[new_id]
        assert spec.examined_rows_mean > 1e6
        assert spec.kind is StatementKind.SELECT
        rate = pop.expected_rate(new_id)
        assert rate[:AS_].sum() == 0.0
        assert rate[AS_ + 100 :].mean() > 1.0

    def test_mdl_lock_schedules_ddls(self):
        pop = make_population(4)
        truth = inject_anomaly(pop, np.random.default_rng(5), AnomalyCategory.MDL_LOCK, AS_, AE)
        # The migration job: one DDL template plus its copy queries.
        specs = [pop.specs[sid] for sid in truth.r_sql_ids]
        ddl_specs = [s for s in specs if s.kind is StatementKind.DDL]
        assert len(ddl_specs) == 1
        ddl = ddl_specs[0]
        schedule = pop.exact_counts[ddl.sql_id]
        assert all(AS_ <= t < AE for t in schedule)
        assert len(schedule) >= 2
        assert truth.table in ddl.tables
        # The DDL has no background rate — only its schedule.
        assert pop.expected_rate(ddl.sql_id).sum() == 0.0
        # Copy queries run only inside the window.
        copies = [s for s in specs if s.kind is not StatementKind.DDL]
        assert copies
        for copy in copies:
            rate = pop.expected_rate(copy.sql_id)
            assert rate[:AS_].sum() == 0.0
            assert rate[AS_ + 50 : AE - 50].mean() > 0.5

    def test_row_lock_creates_batch_update(self):
        pop = make_population(6)
        truth = inject_anomaly(pop, np.random.default_rng(7), AnomalyCategory.ROW_LOCK, AS_, AE)
        (upd_id,) = truth.r_sql_ids
        spec = pop.specs[upd_id]
        assert spec.kind is StatementKind.UPDATE
        assert spec.lock_hold_ms >= 100.0
        rate = pop.expected_rate(upd_id)
        assert rate[:AS_].sum() == 0.0
        assert rate[AE + 20 :].sum() == 0.0
        assert rate[AS_ + 60 : AE - 60].mean() > 3.0

    def test_invalid_window_rejected(self):
        pop = make_population(8)
        with pytest.raises(ValueError):
            inject_anomaly(
                pop, np.random.default_rng(0), AnomalyCategory.ROW_LOCK, 800, 100
            )


@pytest.mark.slow
class TestEndToEndAnomalies:
    """Simulate each category and check the anomaly actually manifests."""

    def _session_lift(self, category, seed, **kwargs):
        pop = make_population(seed)
        inject_anomaly(pop, np.random.default_rng(seed + 1), category, AS_, AE, **kwargs)
        gen = WorkloadGenerator(pop)
        inst = DatabaseInstance(schema=pop.schema, cpu_cores=8, seed=seed + 2)
        result = inst.run(gen, duration=DURATION)
        session = result.metrics.active_session.values
        baseline = session[100:AS_ - 20].mean()
        during = session[AS_ + 60 : AE - 20].mean()
        return baseline, during, result

    def test_business_spike_raises_session(self):
        baseline, during, _ = self._session_lift(AnomalyCategory.BUSINESS_SPIKE, 10)
        assert during > baseline * 2

    def test_poor_sql_saturates_cpu(self):
        baseline, during, result = self._session_lift(AnomalyCategory.POOR_SQL, 20)
        cpu = result.metrics.cpu_usage.values
        assert cpu[AS_ + 100 : AE].mean() > cpu[100:AS_].mean() + 25
        assert during > baseline + 3

    def test_mdl_lock_piles_up_sessions(self):
        baseline, during, _ = self._session_lift(AnomalyCategory.MDL_LOCK, 30)
        assert during > baseline + 50

    def test_row_lock_raises_lock_metrics_and_session(self):
        baseline, during, result = self._session_lift(AnomalyCategory.ROW_LOCK, 40)
        waits = result.metrics["innodb_row_lock_waits"].values
        assert waits[AS_ + 60 : AE].mean() > 2.5 * max(waits[100:AS_].mean(), 1.0)
        assert during > baseline + 3


class TestCompositeInjection:
    def test_union_of_ground_truths(self):
        pop = make_population(30)
        truth = inject_anomaly(
            pop, np.random.default_rng(31), AnomalyCategory.COMPOSITE, AS_, AE
        )
        assert truth.category is AnomalyCategory.COMPOSITE
        assert len(truth.r_sql_ids) >= 2
        assert "+" in truth.business
        # All root templates are registered.
        for sid in truth.r_sql_ids:
            assert sid in pop.specs

    def test_nesting_rejected(self):
        pop = make_population(32)
        with pytest.raises(ValueError, match="nest"):
            inject_anomaly(
                pop, np.random.default_rng(33), AnomalyCategory.COMPOSITE, AS_, AE,
                categories=(AnomalyCategory.COMPOSITE, AnomalyCategory.POOR_SQL),
            )

    def test_explicit_categories(self):
        pop = make_population(34)
        truth = inject_anomaly(
            pop, np.random.default_rng(35), AnomalyCategory.COMPOSITE, AS_, AE,
            categories=(AnomalyCategory.ROW_LOCK, AnomalyCategory.POOR_SQL),
        )
        kinds = {pop.specs[sid].kind for sid in truth.r_sql_ids}
        assert StatementKind.UPDATE in kinds
        assert StatementKind.SELECT in kinds

    def test_end_to_end_composite_case(self):
        from tests.conftest import FAST_CORPUS
        from repro.evaluation import generate_case
        from repro.core import PinSQL
        from repro.evaluation.metrics import first_hit_rank

        lc = generate_case(77, FAST_CORPUS, category=AnomalyCategory.COMPOSITE)
        assert lc.category is AnomalyCategory.COMPOSITE
        result = PinSQL().analyze(lc.case)
        rank = first_hit_rank(result.rsql_ids, lc.r_sqls)
        assert rank is not None and rank <= 5


class TestSameTargetOverlap:
    """The opt-in ``allow_same_target`` flag: two causes on one
    business/table pair (documented attribution expectation: H-SQL sets
    overlap, accuracy is scored against the union of ground truths)."""

    def test_repeated_categories_share_one_business(self):
        pop = make_population(40)
        truth = inject_anomaly(
            pop, np.random.default_rng(41), AnomalyCategory.COMPOSITE, AS_, AE,
            categories=(AnomalyCategory.ROW_LOCK, AnomalyCategory.ROW_LOCK),
            allow_same_target=True,
        )
        first, second = truth.business.split("+")
        assert first == second
        assert len(truth.r_sql_ids) >= 2

    def test_second_cause_steered_onto_first_business(self):
        pop = make_population(42)
        truth = inject_anomaly(
            pop, np.random.default_rng(43), AnomalyCategory.COMPOSITE, AS_, AE,
            categories=(AnomalyCategory.MDL_LOCK, AnomalyCategory.POOR_SQL),
            allow_same_target=True,
        )
        first, second = truth.business.split("+")
        assert first == second

    def test_default_draw_never_repeats_without_flag(self):
        from repro.workload.scenarios import inject_composite

        for seed in range(20):
            pop = make_population(100 + seed)
            truth = inject_composite(
                pop, np.random.default_rng(seed), AS_, AE
            )
            # Without the flag the two categories are distinct, so the
            # R-SQL unions come from two different injections.
            assert len(truth.r_sql_ids) >= 2

    def test_flag_off_is_deterministic_and_unchanged(self):
        """Adding the flag must not shift the default rng draws: the
        flag-off path replays bit-identically run-to-run."""
        truths = []
        for _ in range(2):
            pop = make_population(44)
            truths.append(
                inject_anomaly(
                    pop, np.random.default_rng(45),
                    AnomalyCategory.COMPOSITE, AS_, AE,
                )
            )
        assert truths[0].r_sql_ids == truths[1].r_sql_ids
        assert truths[0].business == truths[1].business


class TestSlowCreep:
    CS = 200  # creep start

    def _inject(self, pop_seed=11, rng_seed=12, **kwargs):
        from repro.workload import inject_slow_creep

        pop = make_population(pop_seed)
        truth = inject_slow_creep(
            pop, np.random.default_rng(rng_seed), self.CS, AS_, AE, **kwargs
        )
        return pop, truth

    def test_labels_and_new_template(self):
        pop, truth = self._inject()
        assert truth.category is AnomalyCategory.POOR_SQL
        (new_id,) = truth.r_sql_ids
        assert truth.new_sql_ids == [new_id]
        spec = pop.specs[new_id]
        assert spec.kind is StatementKind.SELECT
        # The creep starts benign: a modest scan, not a monster.
        assert spec.examined_rows_mean < 5_000.0

    def test_rows_profile_grows_to_expensive(self):
        pop, truth = self._inject()
        (new_id,) = truth.r_sql_ids
        profile = pop.rows_profiles[new_id]
        assert len(profile) == DURATION
        # Benign before the creep, fully degraded from the onset on.
        assert profile[: self.CS].max() == pytest.approx(
            pop.specs[new_id].examined_rows_mean
        )
        assert profile[AS_] == pytest.approx(profile[-1])
        assert profile[-1] >= 4e5
        assert np.all(np.diff(profile) >= -1e-9)  # monotone growth

    def test_rate_is_steady_not_ramping(self):
        # The traffic rolls out once and stays put — the *cost* creeps,
        # not the rate; only near anomaly_start does CPU oversubscribe.
        pop, truth = self._inject()
        (new_id,) = truth.r_sql_ids
        rate = pop.expected_rate(new_id)
        assert rate[: self.CS].sum() == 0.0
        mid = rate[self.CS + 120 : AS_]
        late = rate[AS_ : AE - 10]
        assert mid.mean() > 0.0
        assert late.mean() < 3.0 * mid.mean()

    def test_generator_exposes_rows_at(self):
        from repro.workload import WorkloadGenerator

        pop, truth = self._inject()
        (new_id,) = truth.r_sql_ids
        gen = WorkloadGenerator(pop)
        assert gen.rows_at(0)[new_id] == pytest.approx(
            pop.specs[new_id].examined_rows_mean
        )
        assert gen.rows_at(DURATION + 100)[new_id] == pytest.approx(
            pop.rows_profiles[new_id][-1]
        )
        assert gen.rows_at(AS_)[new_id] > 50 * gen.rows_at(self.CS)[new_id]

    def test_creep_start_must_precede_onset(self):
        from repro.workload import inject_slow_creep

        pop = make_population(13)
        with pytest.raises(ValueError):
            inject_slow_creep(pop, np.random.default_rng(1), AS_, AS_, AE)
