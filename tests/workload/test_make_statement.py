"""Tests for synthetic statement generation and its fingerprint round trip."""

import pytest

from repro.sqltemplate import StatementKind, fingerprint
from repro.workload.catalog import make_statement


class TestMakeStatement:
    @pytest.mark.parametrize(
        "kind",
        [
            StatementKind.SELECT,
            StatementKind.UPDATE,
            StatementKind.INSERT,
            StatementKind.DELETE,
            StatementKind.DDL,
            StatementKind.OTHER,
        ],
    )
    def test_kind_round_trips_through_fingerprint(self, kind):
        statement = make_statement(kind, "orders", variant=7)
        fp = fingerprint(statement)
        assert fp.kind is kind

    @pytest.mark.parametrize(
        "kind",
        [StatementKind.SELECT, StatementKind.UPDATE, StatementKind.INSERT,
         StatementKind.DELETE, StatementKind.DDL],
    )
    def test_table_recovered(self, kind):
        statement = make_statement(kind, "orders", variant=3)
        fp = fingerprint(statement)
        assert "orders" in fp.tables

    def test_variants_produce_distinct_digests(self):
        ids = {
            fingerprint(make_statement(StatementKind.SELECT, "t", v)).sql_id
            for v in range(20)
        }
        assert len(ids) > 1

    def test_literals_do_not_change_digest(self):
        a = fingerprint(make_statement(StatementKind.UPDATE, "t", 5))
        b = fingerprint(
            make_statement(StatementKind.UPDATE, "t", 5).replace("= 5", "= 99")
        )
        assert a.sql_id == b.sql_id
