"""Tests for the in-process broker."""

import pytest

from repro.collection import Broker


class TestBroker:
    def test_publish_and_read(self):
        broker = Broker()
        broker.publish("t", key="a", value=1)
        broker.publish("t", key="b", value=2)
        messages = broker.read("t", 0, 10)
        assert [m.value for m in messages] == [1, 2]
        assert [m.offset for m in messages] == [0, 1]

    def test_topics_autocreated(self):
        broker = Broker()
        broker.publish("x", key="k", value=0)
        assert "x" in broker.topics

    def test_create_topic_idempotent(self):
        broker = Broker()
        broker.create_topic("t")
        broker.publish("t", key="k", value=1)
        broker.create_topic("t")
        assert broker.size("t") == 1

    def test_read_bounds(self):
        broker = Broker()
        for i in range(5):
            broker.publish("t", key="k", value=i)
        assert [m.value for m in broker.read("t", 3, 10)] == [3, 4]
        assert broker.read("t", 10, 5) == []

    def test_invalid_read_args(self):
        with pytest.raises(ValueError):
            Broker().read("t", -1, 5)


class TestConsumer:
    def test_poll_advances_offset(self):
        broker = Broker()
        for i in range(10):
            broker.publish("t", key="k", value=i)
        consumer = broker.consumer("t")
        first = consumer.poll(4)
        second = consumer.poll(4)
        assert [m.value for m in first] == [0, 1, 2, 3]
        assert [m.value for m in second] == [4, 5, 6, 7]
        assert consumer.lag == 2

    def test_independent_consumers(self):
        broker = Broker()
        broker.publish("t", key="k", value=1)
        c1, c2 = broker.consumer("t"), broker.consumer("t")
        assert c1.poll() and c2.poll()

    def test_seek_replays(self):
        broker = Broker()
        for i in range(3):
            broker.publish("t", key="k", value=i)
        consumer = broker.consumer("t")
        consumer.poll()
        consumer.seek(0)
        assert [m.value for m in consumer.poll()] == [0, 1, 2]

    def test_seek_negative_rejected(self):
        broker = Broker()
        with pytest.raises(ValueError):
            broker.consumer("t").seek(-1)

    def test_poll_on_empty_topic(self):
        broker = Broker()
        consumer = broker.consumer("empty")
        assert consumer.poll() == []
        assert consumer.lag == 0
