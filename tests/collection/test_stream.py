"""Tests for the in-process broker."""

import pytest

from repro.collection import Broker


class TestBroker:
    def test_publish_and_read(self):
        broker = Broker()
        broker.publish("t", key="a", value=1)
        broker.publish("t", key="b", value=2)
        messages = broker.read("t", 0, 10)
        assert [m.value for m in messages] == [1, 2]
        assert [m.offset for m in messages] == [0, 1]

    def test_topics_autocreated(self):
        broker = Broker()
        broker.publish("x", key="k", value=0)
        assert "x" in broker.topics

    def test_create_topic_idempotent(self):
        broker = Broker()
        broker.create_topic("t")
        broker.publish("t", key="k", value=1)
        broker.create_topic("t")
        assert broker.size("t") == 1

    def test_read_bounds(self):
        broker = Broker()
        for i in range(5):
            broker.publish("t", key="k", value=i)
        assert [m.value for m in broker.read("t", 3, 10)] == [3, 4]
        assert broker.read("t", 10, 5) == []

    def test_invalid_read_args(self):
        with pytest.raises(ValueError):
            Broker().read("t", -1, 5)


class TestConsumer:
    def test_poll_advances_offset(self):
        broker = Broker()
        for i in range(10):
            broker.publish("t", key="k", value=i)
        consumer = broker.consumer("t")
        first = consumer.poll(4)
        second = consumer.poll(4)
        assert [m.value for m in first] == [0, 1, 2, 3]
        assert [m.value for m in second] == [4, 5, 6, 7]
        assert consumer.lag == 2

    def test_independent_consumers(self):
        broker = Broker()
        broker.publish("t", key="k", value=1)
        c1, c2 = broker.consumer("t"), broker.consumer("t")
        assert c1.poll() and c2.poll()

    def test_seek_replays(self):
        broker = Broker()
        for i in range(3):
            broker.publish("t", key="k", value=i)
        consumer = broker.consumer("t")
        consumer.poll()
        consumer.seek(0)
        assert [m.value for m in consumer.poll()] == [0, 1, 2]

    def test_seek_negative_rejected(self):
        broker = Broker()
        with pytest.raises(ValueError):
            broker.consumer("t").seek(-1)

    def test_poll_on_empty_topic(self):
        broker = Broker()
        consumer = broker.consumer("empty")
        assert consumer.poll() == []
        assert consumer.lag == 0


class TestInstanceTopics:
    def test_instance_topic_roundtrip(self):
        from repro.collection import instance_topic, split_topic

        topic = instance_topic("query_logs", "db-07")
        assert topic == "query_logs.db-07"
        assert split_topic(topic) == ("query_logs", "db-07")

    def test_empty_instance_is_shared_topic(self):
        from repro.collection import instance_topic, split_topic

        assert instance_topic("query_logs") == "query_logs"
        assert split_topic("query_logs") == ("query_logs", "")

    def test_dot_in_instance_id_rejected(self):
        from repro.collection import instance_topic

        with pytest.raises(ValueError, match=r"\."):
            instance_topic("query_logs", "a.b")


class TestPruning:
    def _loaded_broker(self, n=10):
        from repro.telemetry import MetricsRegistry

        broker = Broker(registry=MetricsRegistry())
        for i in range(n):
            broker.publish("t", key="k", value=i)
        return broker

    def test_prune_drops_fully_acked_messages(self):
        broker = self._loaded_broker()
        consumer = broker.consumer("t")
        consumer.poll(6)
        assert broker.prune("t") == 6
        assert broker.retained("t") == 4
        assert broker.base_offset("t") == 6
        # Total published count is unaffected by pruning.
        assert broker.size("t") == 10

    def test_slowest_consumer_bounds_prune(self):
        broker = self._loaded_broker()
        fast, slow = broker.consumer("t"), broker.consumer("t")
        fast.poll(10)
        slow.poll(3)
        assert broker.prune() == 3
        assert broker.retained("t") == 7

    def test_topics_without_consumers_untouched(self):
        broker = self._loaded_broker()
        assert broker.prune() == 0
        assert broker.retained("t") == 10

    def test_absolute_offsets_survive_prune(self):
        broker = self._loaded_broker()
        consumer = broker.consumer("t")
        consumer.poll(5)
        broker.prune("t")
        rest = consumer.poll(10)
        assert [m.value for m in rest] == [5, 6, 7, 8, 9]
        assert [m.offset for m in rest] == [5, 6, 7, 8, 9]

    def test_read_below_base_resumes_at_base(self):
        broker = self._loaded_broker()
        broker.consumer("t").poll(4)
        broker.prune("t")
        messages = broker.read("t", 0, 10)
        assert [m.value for m in messages] == [4, 5, 6, 7, 8, 9]

    def test_seek_below_base_replays_retained_only(self):
        broker = self._loaded_broker()
        consumer = broker.consumer("t")
        consumer.poll(10)
        broker.prune("t")
        consumer.seek(0)
        assert consumer.poll(10) == []
        # A new publish is visible again.
        broker.publish("t", key="k", value=99)
        assert [m.value for m in consumer.poll(10)] == [99]

    def test_prune_counter_and_gauge(self):
        broker = self._loaded_broker()
        broker.consumer("t").poll(7)
        broker.prune()
        registry = broker.registry
        assert registry.get("broker_pruned_messages_total", topic="t").value == 7
        assert registry.get("broker_retained_messages", topic="t").value == 3

    def test_repeated_prune_is_idempotent(self):
        broker = self._loaded_broker()
        broker.consumer("t").poll(5)
        assert broker.prune("t") == 5
        assert broker.prune("t") == 0
