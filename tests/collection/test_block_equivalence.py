"""Batched (columnar) ingestion must reproduce the per-record path.

The equivalence contract of the columnar dataplane: shipping the same
queries as blocks instead of per-(second, template) records changes
nothing downstream — LogStore aggregates are byte-identical, the
stream aggregator's snapshot is byte-identical to the batch
aggregation, and the full-scan fallback telemetry fires only when
ingestion actually goes out of order.
"""

import numpy as np

from repro.collection import (
    Broker,
    LogStore,
    StreamAggregator,
    aggregate_logstore,
    aggregate_query_log,
    query_block_from_log,
)
from repro.dbsim import QueryLog, SecondBatch
from repro.telemetry import MetricsRegistry


def make_log(seed=7, templates=3, seconds=30):
    """A deterministic multi-template log with irregular arrivals."""
    rng = np.random.default_rng(seed)
    log = QueryLog()
    for t in range(templates):
        for s in range(0, seconds, 1 + t):
            n = int(rng.integers(1, 6))
            arrive = np.sort(rng.integers(s * 1000, (s + 1) * 1000, size=n))
            log.append(
                SecondBatch(
                    f"q{t}",
                    arrive.astype(np.int64),
                    rng.uniform(1.0, 50.0, size=n),
                    rng.uniform(10.0, 500.0, size=n),
                )
            )
    return log


def ingest_per_record(log):
    store = LogStore(registry=MetricsRegistry())
    for tq in log.iter_templates():
        # The wire format ships one batch per (second, template); split
        # the template stream on second boundaries the way the
        # collector does.
        seconds = tq.arrive_ms // 1000
        for s in np.unique(seconds):
            mask = seconds == s
            store.ingest_batch(
                SecondBatch(
                    tq.sql_id,
                    tq.arrive_ms[mask],
                    tq.response_ms[mask],
                    tq.examined_rows[mask],
                )
            )
    return store


def ingest_as_block(log, instance=""):
    store = LogStore(registry=MetricsRegistry())
    store.ingest_block(query_block_from_log(log, instance=instance))
    return store


class TestLogStoreEquivalence:
    def test_second_aggregates_are_byte_identical(self):
        log = make_log()
        per_record = ingest_per_record(log)
        block = ingest_as_block(log)
        assert set(per_record.sql_ids) == set(block.sql_ids)
        for sql_id in per_record.sql_ids:
            for a, b in zip(
                per_record.second_aggregates(sql_id, 0, 30),
                block.second_aggregates(sql_id, 0, 30),
            ):
                np.testing.assert_array_equal(a, b)

    def test_window_reads_are_byte_identical(self):
        log = make_log()
        per_record = ingest_per_record(log)
        block = ingest_as_block(log)
        for sql_id in per_record.sql_ids:
            a = per_record.queries_in_window(sql_id, 5, 25)
            b = block.queries_in_window(sql_id, 5, 25)
            np.testing.assert_array_equal(a.arrive_ms, b.arrive_ms)
            np.testing.assert_array_equal(a.response_ms, b.response_ms)
            np.testing.assert_array_equal(a.examined_rows, b.examined_rows)

    def test_aggregate_logstore_output_is_byte_identical(self):
        log = make_log()
        from_records = aggregate_logstore(ingest_per_record(log), 0, 30)
        from_blocks = aggregate_logstore(ingest_as_block(log), 0, 30)
        assert set(from_records.sql_ids) == set(from_blocks.sql_ids)
        for sql_id in from_records.sql_ids:
            for metric in (
                "#execution",
                "total_tres",
                "avg_tres",
                "total_examined_rows",
            ):
                np.testing.assert_array_equal(
                    from_records.get(sql_id, metric).values,
                    from_blocks.get(sql_id, metric).values,
                )

    def test_query_counts_match(self):
        log = make_log()
        assert (
            ingest_per_record(log).total_queries()
            == ingest_as_block(log).total_queries()
        )


class TestStreamAggregatorEquivalence:
    def test_block_path_matches_batch_aggregation_bit_for_bit(self):
        log = make_log()
        broker = Broker(registry=MetricsRegistry())
        broker.publish_block("query_logs", query_block_from_log(log))
        aggregator = StreamAggregator(broker.consumer("query_logs"), start=0, end=30)
        aggregator.drain()
        snapshot = aggregator.snapshot()
        reference = aggregate_query_log(log, 0, 30)
        assert set(snapshot.sql_ids) == set(reference.sql_ids)
        for sql_id in reference.sql_ids:
            for metric in ("#execution", "total_tres", "total_examined_rows"):
                np.testing.assert_array_equal(
                    snapshot.get(sql_id, metric).values,
                    reference.get(sql_id, metric).values,
                )

    def test_instance_filter_skips_foreign_blocks(self):
        log = make_log()
        broker = Broker(registry=MetricsRegistry())
        broker.publish_block(
            "query_logs", query_block_from_log(log, instance="db-other")
        )
        aggregator = StreamAggregator(
            broker.consumer("query_logs"), start=0, end=30, instance_id="db-a"
        )
        aggregator.drain()
        assert aggregator.snapshot().sql_ids == []


class TestFullScanFallbackTelemetry:
    def test_chronological_ingestion_never_full_scans(self):
        registry = MetricsRegistry()
        store = LogStore(registry=registry)
        store.ingest_block(query_block_from_log(make_log()))
        for sql_id in store.sql_ids:
            store.queries_in_window(sql_id, 0, 30)
            store.second_aggregates(sql_id, 0, 30)
        assert registry.get("logstore_fullscan_reads_total").value == 0

    def test_out_of_order_ingestion_counts_each_fallback_read(self):
        registry = MetricsRegistry()
        store = LogStore(registry=registry)
        late = SecondBatch(
            "q0",
            np.array([9_000, 9_500], dtype=np.int64),
            np.array([1.0, 2.0]),
            np.array([10.0, 20.0]),
        )
        early = SecondBatch(
            "q0",
            np.array([1_000], dtype=np.int64),
            np.array([3.0]),
            np.array([30.0]),
        )
        store.ingest_batch(late)
        store.ingest_batch(early)  # out of order: index invalidated
        counter = registry.get("logstore_fullscan_reads_total")
        assert counter.value == 0  # ingestion alone does not scan

        tq = store.queries_in_window("q0", 0, 30)
        assert counter.value == 1
        # The fallback still returns every query, time-sorted.
        np.testing.assert_array_equal(tq.arrive_ms, [1_000, 9_000, 9_500])

        count, tres, _rows = store.second_aggregates("q0", 0, 30)
        assert counter.value == 2
        assert count.sum() == 3
        assert tres.sum() == 6.0

        # Templates that stayed chronological keep the indexed path.
        store.ingest_batch(
            SecondBatch(
                "q1",
                np.array([2_000], dtype=np.int64),
                np.array([1.0]),
                np.array([1.0]),
            )
        )
        store.queries_in_window("q1", 0, 30)
        store.second_aggregates("q1", 0, 30)
        assert counter.value == 2
