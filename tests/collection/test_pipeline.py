"""Tests for collectors, aggregation and the log store."""

import numpy as np
import pytest

from repro.collection import (
    Broker,
    LogStore,
    MetricsCollector,
    QueryLogCollector,
    StreamAggregator,
    TEMPLATE_METRICS,
    TemplateMetricStore,
    aggregate_query_log,
)
from repro.dbsim import QueryLog, SecondBatch
from repro.timeseries import TimeSeries


def make_log():
    """Two templates over seconds 10..12."""
    log = QueryLog()
    log.append(
        SecondBatch(
            "A",
            np.array([10_000, 10_500, 11_200], dtype=np.int64),
            np.array([10.0, 20.0, 30.0]),
            np.array([100.0, 200.0, 300.0]),
        )
    )
    log.append(
        SecondBatch(
            "B",
            np.array([12_100], dtype=np.int64),
            np.array([5.0]),
            np.array([50.0]),
        )
    )
    return log


class TestBatchAggregation:
    def test_execution_counts(self):
        store = aggregate_query_log(make_log(), start=10, end=13)
        assert list(store.executions("A").values) == [2.0, 1.0, 0.0]
        assert list(store.executions("B").values) == [0.0, 0.0, 1.0]

    def test_total_and_avg_tres(self):
        store = aggregate_query_log(make_log(), start=10, end=13)
        assert list(store.get("A", "total_tres").values) == [30.0, 30.0, 0.0]
        assert list(store.get("A", "avg_tres").values) == [15.0, 30.0, 0.0]

    def test_examined_rows(self):
        store = aggregate_query_log(make_log(), start=10, end=13)
        assert list(store.get("A", "total_examined_rows").values) == [300.0, 300.0, 0.0]

    def test_out_of_window_records_dropped(self):
        store = aggregate_query_log(make_log(), start=11, end=12)
        assert list(store.executions("A").values) == [1.0]
        assert list(store.executions("B").values) == [0.0]

    def test_unknown_template_returns_zeros(self):
        store = aggregate_query_log(make_log(), start=10, end=13)
        assert store.get("ZZZ", "#execution").total() == 0.0

    def test_all_metrics_present(self):
        store = aggregate_query_log(make_log(), start=10, end=13)
        for metric in TEMPLATE_METRICS:
            assert len(store.get("A", metric)) == 3

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            aggregate_query_log(make_log(), start=13, end=10)


class TestStoreOperations:
    def test_put_length_checked(self):
        store = TemplateMetricStore(start=0, end=10)
        with pytest.raises(ValueError):
            store.put("A", "#execution", TimeSeries(np.zeros(5)))

    def test_resample_to_minutes(self):
        store = TemplateMetricStore(start=0, end=120)
        store.put("A", "#execution", TimeSeries(np.ones(120), start=0, name="#execution"))
        minute = store.resample(60)
        assert minute.interval == 60
        assert list(minute.executions("A").values) == [60.0, 60.0]

    def test_window_restriction(self):
        store = aggregate_query_log(make_log(), start=10, end=13)
        sub = store.window(11, 13)
        assert list(sub.executions("A").values) == [1.0, 0.0]
        assert sub.start == 11

    def test_membership(self):
        store = aggregate_query_log(make_log(), start=10, end=13)
        assert "A" in store and "ZZZ" not in store
        assert len(store) == 2


class TestStreamingPath:
    def test_stream_matches_batch(self):
        log = make_log()
        broker = Broker()
        collector = QueryLogCollector(broker)
        n_batches = collector.collect(log)
        assert n_batches == 3  # A has two seconds, B one

        aggregator = StreamAggregator(broker.consumer(collector.topic), start=10, end=13)
        aggregator.drain()
        streamed = aggregator.snapshot()
        batch = aggregate_query_log(log, start=10, end=13)
        for sql_id in ("A", "B"):
            for metric in TEMPLATE_METRICS:
                assert np.allclose(
                    streamed.get(sql_id, metric).values,
                    batch.get(sql_id, metric).values,
                ), (sql_id, metric)

    def test_incremental_polling(self):
        broker = Broker()
        QueryLogCollector(broker).collect(make_log())
        aggregator = StreamAggregator(broker.consumer("query_logs"), start=10, end=13)
        handled = aggregator.poll(max_messages=1)
        assert handled == 1
        aggregator.drain()
        assert aggregator.consumer.lag == 0

    def test_metrics_collector(self):
        from repro.dbsim.monitor import InstanceMetrics

        metrics = InstanceMetrics(
            {"cpu_usage": TimeSeries(np.array([1.0, 2.0]), start=100, name="cpu_usage")}
        )
        broker = Broker()
        sent = MetricsCollector(broker).collect(metrics)
        assert sent == 2
        messages = broker.consumer("performance_metrics").poll()
        assert messages[0].value == {"metric": "cpu_usage", "timestamp": 100, "value": 1.0}


class TestLogStore:
    def test_ingest_and_window_query(self):
        store = LogStore()
        store.ingest_query_log(make_log())
        tq = store.queries_in_window("A", 10, 11)
        assert len(tq) == 2
        assert store.total_queries() == 4

    def test_window_excludes_outside(self):
        store = LogStore()
        store.ingest_query_log(make_log())
        assert len(store.queries_in_window("A", 12, 20)) == 0
        assert len(store.queries_in_window("MISSING", 0, 100)) == 0

    def test_expiry(self):
        store = LogStore(retention_s=100)
        store.ingest_query_log(make_log())
        dropped = store.expire(now_s=111)  # cutoff at 11 s
        assert dropped == 2  # A's two queries at second 10
        assert store.total_queries() == 2

    def test_expiry_removes_empty_templates(self):
        store = LogStore(retention_s=1)
        store.ingest_query_log(make_log())
        store.expire(now_s=1000)
        assert store.sql_ids == []

    def test_invalid_retention(self):
        with pytest.raises(ValueError):
            LogStore(retention_s=0)
