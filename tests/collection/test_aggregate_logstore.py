"""Tests for LogStore-based aggregation (the service's case-assembly path)."""

import numpy as np
import pytest

from repro.collection import LogStore, aggregate_logstore, aggregate_query_log
from repro.dbsim import QueryLog, SecondBatch


def make_log():
    log = QueryLog()
    log.append(
        SecondBatch(
            "A",
            np.array([5_000, 5_500, 7_200], dtype=np.int64),
            np.array([10.0, 20.0, 30.0]),
            np.array([100.0, 200.0, 300.0]),
        )
    )
    log.append(
        SecondBatch(
            "B",
            np.array([6_100], dtype=np.int64),
            np.array([5.0]),
            np.array([50.0]),
        )
    )
    return log


class TestAggregateLogstore:
    def test_matches_query_log_aggregation(self):
        log = make_log()
        store = LogStore()
        store.ingest_query_log(log)
        from_store = aggregate_logstore(store, 5, 8)
        from_log = aggregate_query_log(log, 5, 8)
        assert set(from_store.sql_ids) == set(from_log.sql_ids)
        for sid in from_log.sql_ids:
            for metric in ("#execution", "total_tres", "total_examined_rows"):
                assert np.allclose(
                    from_store.get(sid, metric).values,
                    from_log.get(sid, metric).values,
                )

    def test_window_restriction(self):
        store = LogStore()
        store.ingest_query_log(make_log())
        sub = aggregate_logstore(store, 6, 7)
        assert sub.executions("B").total() == 1.0
        assert sub.executions("A").total() == 0.0

    def test_empty_window(self):
        store = LogStore()
        store.ingest_query_log(make_log())
        out = aggregate_logstore(store, 100, 200)
        assert out.sql_ids == []

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            aggregate_logstore(LogStore(), 5, 5)
