"""Columnar block types, codec, validation, and broker publication."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collection import Broker
from repro.collection.blocks import (
    BLOCK_KEY,
    METRIC_BLOCK_DTYPE,
    QUERY_BLOCK_DTYPE,
    BlockDecodeError,
    MetricBlock,
    QueryLogBlock,
    decode_block,
    encode_block,
    metric_block_from_records,
    query_block_from_batches,
    split_query_block,
    validate_metric_block,
    validate_query_block,
)
from repro.dbsim.query import SecondBatch
from repro.telemetry.tracing import TraceContext


def _batch(sql_id="q1", arrive=(1000, 2500, 2600), resp=None, rows=None):
    arrive_ms = np.asarray(arrive, dtype=np.int64)
    n = len(arrive_ms)
    return SecondBatch(
        sql_id=sql_id,
        arrive_ms=arrive_ms,
        response_ms=np.asarray(resp if resp is not None else np.arange(n) + 1.0),
        examined_rows=np.asarray(rows if rows is not None else np.arange(n) * 10.0),
    )


def _query_block(**kwargs):
    return query_block_from_batches(
        [_batch("q1"), _batch("q2", arrive=(500, 900))], **kwargs
    )


def _metric_block(instance=""):
    return metric_block_from_records(
        [
            {"metric": "cpu", "timestamp": 10, "value": 0.5},
            {"metric": "active_session", "timestamp": 10, "value": 4.0},
            {"metric": "cpu", "timestamp": 11, "value": 0.6},
        ],
        instance=instance,
    )


class TestConstruction:
    def test_from_batches_builds_dictionary_and_rows(self):
        block = _query_block(instance="db-a")
        assert block.sql_ids == ("q1", "q2")
        assert len(block) == 5
        assert block.n_templates == 2
        assert block.instance == "db-a"
        assert block.data.dtype == QUERY_BLOCK_DTYPE
        assert validate_query_block(block) is None

    def test_iter_template_batches_round_trips_per_template(self):
        block = _query_block()
        by_id = {b.sql_id: b for b in block.iter_template_batches()}
        assert set(by_id) == {"q1", "q2"}
        np.testing.assert_array_equal(by_id["q1"].arrive_ms, [1000, 2500, 2600])
        np.testing.assert_array_equal(by_id["q2"].arrive_ms, [500, 900])
        # Arrival order is restored even if the rows were shuffled.
        shuffled = QueryLogBlock(
            sql_ids=block.sql_ids, data=block.data[::-1].copy()
        )
        for batch in shuffled.iter_template_batches():
            assert (np.diff(batch.arrive_ms) >= 0).all()

    def test_metric_block_series_iteration(self):
        block = _metric_block()
        assert block.metrics == ("cpu", "active_session")
        assert block.data.dtype == METRIC_BLOCK_DTYPE
        series = {name: (ts, values) for name, ts, values in block.iter_metric_series()}
        np.testing.assert_array_equal(series["cpu"][0], [10, 11])
        np.testing.assert_array_equal(series["cpu"][1], [0.5, 0.6])
        np.testing.assert_array_equal(series["active_session"][1], [4.0])

    def test_split_query_block_bounds_rows_and_shares_dictionary(self):
        block = _query_block()
        pieces = split_query_block(block, 2)
        assert [len(p) for p in pieces] == [2, 2, 1]
        assert all(p.sql_ids is block.sql_ids for p in pieces)
        rejoined = np.concatenate([p.data for p in pieces])
        np.testing.assert_array_equal(rejoined, block.data)
        with pytest.raises(ValueError):
            split_query_block(block, 0)


class TestCodec:
    def test_query_round_trip(self):
        block = _query_block(instance="db-a")
        block = QueryLogBlock(
            sql_ids=block.sql_ids,
            data=block.data,
            instance="db-a",
            statements=("SELECT 1", "SELECT 2"),
        )
        decoded = decode_block(encode_block(block))
        assert isinstance(decoded, QueryLogBlock)
        assert decoded.sql_ids == block.sql_ids
        assert decoded.instance == "db-a"
        assert decoded.statements == ("SELECT 1", "SELECT 2")
        np.testing.assert_array_equal(decoded.data, block.data)

    def test_metric_round_trip(self):
        block = _metric_block(instance="db-b")
        decoded = decode_block(encode_block(block))
        assert isinstance(decoded, MetricBlock)
        assert decoded.metrics == block.metrics
        assert decoded.instance == "db-b"
        np.testing.assert_array_equal(decoded.data, block.data)

    def test_decoded_data_is_read_only_view(self):
        decoded = decode_block(encode_block(_query_block()))
        assert not decoded.data.flags.writeable
        with pytest.raises(ValueError):
            decoded.data["response_ms"][0] = 1.0

    @pytest.mark.parametrize(
        "mangle",
        [
            lambda raw: raw[:4],                           # shorter than header
            lambda raw: b"XXXX" + raw[4:],                 # bad magic
            lambda raw: raw[:-8],                          # truncated payload
            lambda raw: raw + b"\x00" * 8,                 # oversized payload
            lambda raw: raw[:8] + b"{not json" + raw[17:], # broken header json
        ],
    )
    def test_mangled_frames_raise_decode_error(self, mangle):
        raw = encode_block(_query_block())
        with pytest.raises(BlockDecodeError):
            decode_block(mangle(raw))

    def test_encode_rejects_non_blocks_and_bad_dtype(self):
        with pytest.raises(TypeError):
            encode_block({"not": "a block"})
        bad = QueryLogBlock(
            sql_ids=("q1",), data=np.zeros(3, dtype=np.float64)
        )
        with pytest.raises(ValueError):
            encode_block(bad)


class TestValidation:
    def test_valid_blocks_pass(self):
        assert validate_query_block(_query_block()) is None
        assert validate_metric_block(_metric_block()) is None

    def test_rejects_foreign_objects(self):
        assert validate_query_block({"second": 1}) == "not_a_block"
        assert validate_metric_block(b"bytes") == "not_a_block"

    def test_rejects_empty_rows_and_missing_dictionary(self):
        block = _query_block()
        assert (
            validate_query_block(QueryLogBlock(block.sql_ids, block.data[:0]))
            == "bad_shape:data"
        )
        assert (
            validate_query_block(QueryLogBlock((), block.data))
            == "missing_dictionary"
        )

    def test_rejects_out_of_range_template(self):
        block = _query_block()
        data = block.data.copy()
        data["template"][0] = 99
        assert (
            validate_query_block(QueryLogBlock(block.sql_ids, data))
            == "bad_index:template"
        )

    def test_rejects_non_finite_columns(self):
        block = _query_block()
        data = block.data.copy()
        data["response_ms"][1] = np.nan
        assert (
            validate_query_block(QueryLogBlock(block.sql_ids, data))
            == "non_finite:response_ms"
        )
        mblock = _metric_block()
        mdata = mblock.data.copy()
        mdata["value"][0] = np.inf
        assert (
            validate_metric_block(MetricBlock(mblock.metrics, mdata))
            == "non_finite:value"
        )

    def test_rejects_negative_timestamps(self):
        mblock = _metric_block()
        mdata = mblock.data.copy()
        mdata["timestamp"][0] = -5
        assert (
            validate_metric_block(MetricBlock(mblock.metrics, mdata))
            == "bad_type:timestamp"
        )

    def test_rejects_statement_dictionary_mismatch(self):
        block = _query_block()
        bad = QueryLogBlock(
            sql_ids=block.sql_ids, data=block.data, statements=("only one",)
        )
        assert validate_query_block(bad) == "length_mismatch:statements"


class TestBrokerPublication:
    def test_publish_block_counts_batch_telemetry(self):
        from repro.telemetry import MetricsRegistry

        registry = MetricsRegistry()
        broker = Broker(registry=registry)
        block = _query_block(instance="db-a")
        message = broker.publish_block("query_logs.db-a", block)
        assert message is not None
        assert message.key == BLOCK_KEY
        # The published block is the same payload stamped with the
        # publish span's trace context and the publish wall-time.
        assert message.value.data is block.data
        assert message.value.sql_ids == block.sql_ids
        assert message.value.trace is not None
        assert message.value.trace.trace_id
        assert message.value.created_unix > 0
        # The publish itself was traced.
        publish_span = broker.tracer.last_root()
        assert publish_span.name == "broker.publish_block"
        assert publish_span.attrs["span_id"] == message.value.trace.span_id
        assert (
            registry.get("broker_blocks_published_total", topic="query_logs.db-a").value
            == 1
        )
        assert (
            registry.get("broker_block_records_total", topic="query_logs.db-a").value
            == len(block)
        )
        assert (
            registry.get("broker_block_bytes_total", topic="query_logs.db-a").value
            == block.nbytes
        )

    def test_publish_block_quarantines_invalid_blocks(self):
        from repro.telemetry import MetricsRegistry

        registry = MetricsRegistry()
        broker = Broker(registry=registry)
        block = _query_block()
        bad = QueryLogBlock(sql_ids=(), data=block.data)
        assert broker.publish_block("query_logs.db-a", bad) is None
        assert broker.retained("query_logs.db-a") == 0
        dead = broker.read("dead_letter.query_logs.db-a", 0, 10)
        assert len(dead) == 1
        assert dead[0].key == "missing_dictionary"
        assert (
            registry.get(
                "collector_quarantined_total",
                topic="query_logs.db-a",
                reason="missing_dictionary",
            ).value
            == 1
        )

    def test_publish_block_rejects_non_blocks(self):
        broker = Broker()
        assert broker.publish_block("query_logs.db-a", {"second": 1}) is None
        assert broker.retained("query_logs.db-a") == 0


@st.composite
def query_blocks(draw):
    n_templates = draw(st.integers(min_value=1, max_value=4))
    sql_ids = tuple(f"q{i}" for i in range(n_templates))
    n_rows = draw(st.integers(min_value=1, max_value=40))
    data = np.empty(n_rows, dtype=QUERY_BLOCK_DTYPE)
    data["template"] = draw(
        st.lists(
            st.integers(min_value=0, max_value=n_templates - 1),
            min_size=n_rows,
            max_size=n_rows,
        )
    )
    data["arrive_ms"] = draw(
        st.lists(
            st.integers(min_value=0, max_value=10**9),
            min_size=n_rows,
            max_size=n_rows,
        )
    )
    finite = st.floats(
        min_value=0.0, max_value=1e9, allow_nan=False, allow_infinity=False
    )
    data["response_ms"] = draw(st.lists(finite, min_size=n_rows, max_size=n_rows))
    data["examined_rows"] = draw(st.lists(finite, min_size=n_rows, max_size=n_rows))
    instance = draw(st.sampled_from(["", "db-a", "db-zz"]))
    # v2 header coverage: blocks randomly carry a trace context and a
    # publish stamp (absent on both = the v1-compatible shape).
    trace = draw(
        st.one_of(
            st.none(),
            st.builds(
                TraceContext,
                trace_id=st.text(
                    alphabet="0123456789abcdef", min_size=1, max_size=32
                ),
                span_id=st.text(
                    alphabet="0123456789abcdef", min_size=1, max_size=32
                ),
                process=st.integers(min_value=0, max_value=2**31 - 1),
            ),
        )
    )
    created_unix = draw(
        st.one_of(
            st.just(0.0),
            st.floats(
                min_value=1.0, max_value=4e9,
                allow_nan=False, allow_infinity=False,
            ),
        )
    )
    return QueryLogBlock(
        sql_ids=sql_ids,
        data=data,
        instance=instance,
        trace=trace,
        created_unix=created_unix,
    )


class TestCodecProperties:
    @settings(max_examples=60, deadline=None)
    @given(block=query_blocks())
    def test_round_trip_is_lossless(self, block):
        decoded = decode_block(encode_block(block))
        assert isinstance(decoded, QueryLogBlock)
        assert decoded.sql_ids == block.sql_ids
        assert decoded.instance == block.instance
        assert decoded.trace == block.trace
        assert decoded.created_unix == pytest.approx(block.created_unix)
        np.testing.assert_array_equal(decoded.data, block.data)
        # Validation agrees across the codec boundary.
        assert validate_query_block(decoded) == validate_query_block(block)

    @settings(max_examples=40, deadline=None)
    @given(block=query_blocks(), cut=st.integers(min_value=1, max_value=200))
    def test_truncation_always_raises(self, block, cut):
        # The header pins the exact row count, so any truncation — in
        # the payload, the header, or the magic — must be detected; a
        # silent partial block would corrupt downstream aggregates.
        raw = encode_block(block)
        cut = min(cut, len(raw) - 1)
        with pytest.raises(BlockDecodeError):
            decode_block(raw[:-cut])
