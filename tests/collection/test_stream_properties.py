"""Property-based broker invariants (hypothesis stateful testing).

The chaos harness leans hard on the broker's offset arithmetic —
pruning, seeks behind the log head, duplicate publishes, stuck-consumer
resync.  This state machine drives arbitrary interleavings of those
operations and checks the conservation laws that every other component
assumes:

* ``size == base_offset + retained`` at all times;
* consumer lag is exactly ``size - offset`` and never negative after a
  poll;
* polled offsets are strictly increasing and values match what was
  published at those offsets;
* pruning never advances the base past the slowest registered consumer;
* ``resync_to_base`` fires exactly when a consumer is :attr:`stuck`,
  after which the consumer can always make progress.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.collection import Broker
from repro.telemetry import MetricsRegistry

TOPIC = "query_logs"


class BrokerMachine(RuleBasedStateMachine):
    @initialize(n_consumers=st.integers(1, 3))
    def setup(self, n_consumers):
        self.broker = Broker(registry=MetricsRegistry())
        self.consumers = [self.broker.consumer(TOPIC) for _ in range(n_consumers)]
        self.published = []  # value at absolute offset i
        self.last_polled = {c.name: -1 for c in self.consumers}

    # -- operations ----------------------------------------------------
    @rule(n=st.integers(1, 5))
    def publish(self, n):
        for _ in range(n):
            value = {"i": len(self.published)}
            msg = self.broker.publish(TOPIC, "k", value)
            assert msg.offset == len(self.published)
            self.published.append(value)

    @rule(data=st.data(), max_messages=st.integers(0, 7))
    def poll(self, data, max_messages):
        consumer = data.draw(st.sampled_from(self.consumers))
        before = consumer.offset
        messages = consumer.poll(max_messages)
        assert len(messages) <= max_messages
        for msg in messages:
            # Strictly increasing offsets, values matching the ledger.
            assert msg.offset > self.last_polled[consumer.name]
            assert msg.offset >= before
            assert self.published[msg.offset] == msg.value
            self.last_polled[consumer.name] = msg.offset
        if messages:
            assert consumer.offset == messages[-1].offset + 1

    @rule(data=st.data())
    def seek(self, data):
        consumer = data.draw(st.sampled_from(self.consumers))
        offset = data.draw(st.integers(0, max(len(self.published), 1)))
        consumer.seek(offset)
        # A rewind may replay: relax the strict-increase ledger floor.
        self.last_polled[consumer.name] = offset - 1

    @rule()
    def prune(self):
        slowest = min(c.offset for c in self.consumers)
        base_before = self.broker.base_offset(TOPIC)
        retained_before = self.broker.retained(TOPIC)
        pruned = self.broker.prune(TOPIC)
        # Prunes exactly the acked span, clamped to what is retained.
        assert pruned == min(max(0, slowest - base_before), retained_before)
        assert self.broker.base_offset(TOPIC) == base_before + pruned

    @rule(data=st.data())
    def resync(self, data):
        consumer = data.draw(st.sampled_from(self.consumers))
        was_stuck = consumer.stuck
        resynced = consumer.resync_to_base()
        assert resynced == was_stuck
        if resynced:
            assert consumer.offset == self.broker.base_offset(TOPIC)
            self.last_polled[consumer.name] = consumer.offset - 1
        assert not consumer.stuck

    @rule(n=st.integers(1, 3))
    def publish_duplicates(self, n):
        # Same key/value appended twice still gets distinct offsets.
        for _ in range(n):
            value = {"i": len(self.published)}
            a = self.broker.publish(TOPIC, "dup", value)
            b = self.broker.publish(TOPIC, "dup", value)
            assert b.offset == a.offset + 1
            self.published.extend([value, value])

    # -- conservation laws ---------------------------------------------
    @invariant()
    def size_is_base_plus_retained(self):
        if not hasattr(self, "broker"):
            return
        assert self.broker.size(TOPIC) == (
            self.broker.base_offset(TOPIC) + self.broker.retained(TOPIC)
        )

    @invariant()
    def size_matches_ledger(self):
        if not hasattr(self, "broker"):
            return
        assert self.broker.size(TOPIC) == len(self.published)

    @invariant()
    def lag_is_size_minus_offset(self):
        if not hasattr(self, "broker"):
            return
        for consumer in self.consumers:
            assert consumer.lag == self.broker.size(TOPIC) - consumer.offset

    @invariant()
    def stuck_iff_behind_empty_head(self):
        if not hasattr(self, "broker"):
            return
        base = self.broker.base_offset(TOPIC)
        retained = self.broker.retained(TOPIC)
        for consumer in self.consumers:
            assert consumer.stuck == (consumer.offset < base and retained == 0)


TestBrokerInvariants = BrokerMachine.TestCase
TestBrokerInvariants.settings = settings(
    max_examples=50, stateful_step_count=40, deadline=None
)
