"""Tests for payload validation, dead-letter quarantine, and consumer resync."""

import numpy as np
import pytest

from repro.collection import Broker, MetricsCollector
from repro.collection.quarantine import (
    dead_letter_topic,
    quarantine,
    validate_metric_record,
    validate_query_record,
)
from repro.dbsim.monitor import InstanceMetrics
from repro.telemetry import MetricsRegistry
from repro.timeseries import TimeSeries


def good_query_record(second: int = 5) -> dict:
    return {
        "second": second,
        "sql_id": "q-001",
        "arrive_ms": np.array([5000.0, 5100.0]),
        "response_ms": np.array([12.0, 15.0]),
        "examined_rows": np.array([100.0, 120.0]),
    }


def good_metric_record(t: int = 10) -> dict:
    return {"metric": "active_session", "timestamp": t, "value": 3.0}


class TestValidateQueryRecord:
    def test_accepts_valid_record(self):
        assert validate_query_record(good_query_record()) is None

    @pytest.mark.parametrize(
        "mutate,reason",
        [
            (lambda r: "not a dict", "not_a_mapping"),
            (lambda r: {k: v for k, v in r.items() if k != "sql_id"},
             "missing_key:sql_id"),
            (lambda r: {**r, "second": "soon"}, "bad_type:second"),
            (lambda r: {**r, "second": -1}, "bad_type:second"),
            (lambda r: {**r, "sql_id": ""}, "bad_type:sql_id"),
            (lambda r: {**r, "response_ms": "fast"}, "bad_type:response_ms"),
            (lambda r: {**r, "arrive_ms": np.array([])}, "bad_shape:arrive_ms"),
            (lambda r: {**r, "response_ms": np.array([1.0, np.nan])},
             "non_finite:response_ms"),
            (lambda r: {**r, "examined_rows": np.array([1.0])},
             "length_mismatch"),
            (lambda r: {**r, "instance": 7}, "bad_type:instance"),
        ],
    )
    def test_rejects_with_reason(self, mutate, reason):
        assert validate_query_record(mutate(good_query_record())) == reason


class TestValidateMetricRecord:
    def test_accepts_valid_record(self):
        assert validate_metric_record(good_metric_record()) is None

    @pytest.mark.parametrize(
        "mutate,reason",
        [
            (lambda r: None, "not_a_mapping"),
            (lambda r: {k: v for k, v in r.items() if k != "value"},
             "missing_key:value"),
            (lambda r: {**r, "metric": ""}, "bad_type:metric"),
            (lambda r: {**r, "timestamp": "not-a-timestamp"},
             "bad_type:timestamp"),
            (lambda r: {**r, "timestamp": -5}, "bad_type:timestamp"),
            (lambda r: {**r, "value": float("nan")}, "non_finite:value"),
            (lambda r: {**r, "value": True}, "non_finite:value"),
            (lambda r: {**r, "instance": 3}, "bad_type:instance"),
        ],
    )
    def test_rejects_with_reason(self, mutate, reason):
        assert validate_metric_record(mutate(good_metric_record())) == reason


class TestQuarantine:
    def test_publishes_to_dead_letter_and_counts(self):
        registry = MetricsRegistry()
        broker = Broker(registry=registry)
        record = {"second": "bad"}
        quarantine(broker, "query_logs.db-00", record, "bad_type:second")
        dl_topic = dead_letter_topic("query_logs.db-00")
        assert dl_topic == "dead_letter.query_logs.db-00"
        (msg,) = broker.read(dl_topic, 0, 10)
        assert msg.value["reason"] == "bad_type:second"
        assert msg.value["record"] is record
        counter = registry.get(
            "collector_quarantined_total",
            topic="query_logs.db-00",
            reason="bad_type:second",
        )
        assert counter.value == 1

    def test_dead_letter_topics_survive_pruning(self):
        broker = Broker(registry=MetricsRegistry())
        quarantine(broker, "query_logs", {"bad": 1}, "not_a_mapping")
        # A live consumer fully drains the source topic, then prunes.
        consumer = broker.consumer("query_logs")
        broker.publish("query_logs", "k", good_query_record())
        consumer.poll()
        broker.prune()
        assert broker.retained("query_logs") == 0
        # No consumer is registered on the dead-letter topic: untouched.
        assert broker.retained(dead_letter_topic("query_logs")) == 1


class TestCollectorQuarantine:
    def test_metrics_collector_quarantines_non_finite_points(self):
        registry = MetricsRegistry()
        broker = Broker(registry=registry)
        collector = MetricsCollector(broker, instance_id="db-00")
        metrics = InstanceMetrics(
            series={
                "active_session": TimeSeries(
                    np.array([1.0, np.nan, 2.0]), start=0, name="active_session"
                )
            }
        )
        sent = collector.collect(metrics)
        assert sent == 2
        assert broker.retained(dead_letter_topic(collector.topic)) == 1
        counter = registry.get(
            "collector_quarantined_total",
            topic=collector.topic,
            reason="non_finite:value",
        )
        assert counter.value == 1


class TestConsumerResync:
    def make_pruned_gap(self):
        """A consumer left behind a fully pruned log head."""
        broker = Broker(registry=MetricsRegistry())
        ahead = broker.consumer("query_logs")
        behind = broker.consumer("query_logs")
        for i in range(5):
            broker.publish("query_logs", "k", {"i": i})
        ahead.poll()
        behind.poll()
        # `behind` rewinds to 2, then the broker prunes past it: its
        # registered offset was 5 at prune time, so base jumps to 5.
        broker.prune()
        behind.seek(2)
        return broker, behind

    def test_stuck_detection(self):
        broker, behind = self.make_pruned_gap()
        assert broker.base_offset("query_logs") == 5
        assert broker.retained("query_logs") == 0
        assert behind.stuck
        assert behind.poll() == []  # spins forever without a resync
        assert behind.lag > 0

    def test_resync_recovers_and_counts(self):
        broker, behind = self.make_pruned_gap()
        assert behind.resync_to_base()
        assert behind.offset == 5
        assert not behind.stuck
        counter = broker.registry.get(
            "broker_offset_resyncs_total", topic="query_logs", consumer=behind.name
        )
        assert counter.value == 1
        # New traffic flows again after the resync.
        broker.publish("query_logs", "k", {"i": 5})
        assert [m.value["i"] for m in behind.poll()] == [5]

    def test_resync_is_a_noop_when_healthy(self):
        broker = Broker(registry=MetricsRegistry())
        consumer = broker.consumer("query_logs")
        broker.publish("query_logs", "k", {"i": 0})
        assert not consumer.stuck
        assert not consumer.resync_to_base()

    def test_not_stuck_while_messages_retained(self):
        # With retained messages, Broker.read self-heals at base offset.
        broker = Broker(registry=MetricsRegistry())
        ahead = broker.consumer("query_logs")
        behind = broker.consumer("query_logs")
        for i in range(5):
            broker.publish("query_logs", "k", {"i": i})
        ahead.poll()
        behind.poll()
        broker.publish("query_logs", "k", {"i": 5})
        broker.prune()
        behind.seek(0)
        assert not behind.stuck
        assert [m.value["i"] for m in behind.poll()] == [5]
