"""End-to-end: structural findings flow diagnosis → repair → incident report.

The ISSUE acceptance chain: a poor-SQL case is diagnosed, the repair
engine's optimization action carries static-analysis evidence for the
root-cause template, and that evidence (plus the per-template findings)
lands in the persisted incident record and both rendered reports.
"""

import pytest

from repro.core import (
    PinSQL,
    QueryOptimizationAction,
    RepairConfig,
    RepairEngine,
    RepairRule,
)
from repro.core.report import render_report
from repro.detection import DetectedAnomaly
from repro.fleet import Diagnosis
from repro.incidents import (
    IncidentRecorder,
    IncidentStore,
    render_incident_html,
    render_incident_text,
)
from repro.sqlanalysis import SqlAnalyzer


@pytest.fixture(scope="module")
def evidence_chain(poor_sql_case, tmp_path_factory):
    """Run the full chain once; tests assert on its stages."""
    case = poor_sql_case.case
    result = PinSQL().analyze(case)
    config = RepairConfig(rules=(RepairRule(("cpu_anomaly",), "query_optimization"),))
    engine = RepairEngine(config, analyzer=SqlAnalyzer())
    plan = engine.plan(case, result, anomaly_types=("cpu_anomaly",))

    analyzer = SqlAnalyzer()
    findings = {}
    for sql_id in result.rsql_ids[:5]:
        info = case.catalog.get(sql_id)
        if info is not None:
            template_findings = analyzer.analyze_template(info)
            if template_findings:
                findings[sql_id] = tuple(template_findings)

    diagnosis = Diagnosis(
        anomaly=DetectedAnomaly(
            start=case.anomaly_start,
            end=case.anomaly_end,
            types=("cpu_anomaly",),
        ),
        case=case,
        result=result,
        report=render_report(case, result, plan=plan),
        plan=plan,
        executed=False,
        findings=findings,
        instance_id="db-e2e",
    )
    store = IncidentStore(tmp_path_factory.mktemp("incidents"))
    record = IncidentRecorder(store).record(diagnosis)
    return poor_sql_case, result, plan, diagnosis, store, record


class TestRepairEvidence:
    def test_action_targets_root_cause_with_structural_evidence(self, evidence_chain):
        labeled, result, plan, *_ = evidence_chain
        assert result.rsql_ids[0] in labeled.r_sqls
        (action,) = [a for a in plan.actions if a.sql_id == result.rsql_ids[0]]
        assert isinstance(action, QueryOptimizationAction)
        assert action.evidence  # structural findings, not just statistics
        assert any("non-sargable-function" in e for e in action.evidence)
        assert action.rows_gain > 0.9  # structural cause keeps the full gain


class TestIncidentRecord:
    def test_record_persists_findings_and_evidence(self, evidence_chain):
        *_, store, record = evidence_chain
        assert record is not None
        stored = store.get(record.incident_id)
        assert stored.analysis, "per-template findings must reach the record"
        rules = {f.rule for f in stored.analysis}
        assert "non-sargable-function" in rules
        planned = [
            a for a in stored.repair.planned
            if a.get("kind") == "QueryOptimizationAction"
        ]
        assert planned and planned[0]["evidence"]
        assert any("non-sargable-function" in e for e in planned[0]["evidence"])

    def test_record_round_trips_through_json(self, evidence_chain):
        *_, record = evidence_chain
        back = type(record).from_dict(record.to_dict())
        assert back.analysis == record.analysis


class TestRenderedReports:
    def test_text_report_carries_the_evidence(self, evidence_chain):
        *_, record = evidence_chain
        text = render_incident_text(record)
        assert "Static analysis findings" in text
        assert "non-sargable-function" in text
        assert "evidence: non-sargable-function" in text

    def test_html_report_carries_the_evidence(self, evidence_chain):
        *_, record = evidence_chain
        html = render_incident_html(record)
        assert "Static analysis findings" in html
        assert "non-sargable-function" in html
