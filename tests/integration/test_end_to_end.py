"""End-to-end integration: simulate → collect → detect → diagnose → repair.

These tests run the whole system the way the examples do, asserting the
contract between stages rather than any single module's behaviour.
"""

import numpy as np
import pytest

from repro.collection import (
    Broker,
    LogStore,
    QueryLogCollector,
    StreamAggregator,
    aggregate_query_log,
)
from repro.core import (
    AnomalyCase,
    DEFAULT_REPAIR_CONFIG,
    PinSQL,
    RepairConfig,
    RepairEngine,
    RepairRule,
)
from repro.dbsim import DatabaseInstance
from repro.detection import BasicPerception, CaseBuilder, PhenomenonPerception
from repro.sqltemplate import TemplateCatalog
from repro.workload import (
    AnomalyCategory,
    WorkloadGenerator,
    build_population,
    inject_anomaly,
)


@pytest.fixture(scope="module")
def simulated_run():
    duration, onset = 700, 450
    rng = np.random.default_rng(77)
    population = build_population(duration, rng, n_businesses=5)
    truth = inject_anomaly(
        population, rng, AnomalyCategory.ROW_LOCK, onset, duration,
        target_rate=(35.0, 45.0), lock_hold_ms=(250.0, 350.0),
    )
    instance = DatabaseInstance(schema=population.schema, cpu_cores=8, seed=6)
    result = instance.run(WorkloadGenerator(population), duration=duration)
    return population, truth, result, duration, onset


class TestPipelineContract:
    def test_streaming_equals_batch_aggregation(self, simulated_run):
        _, _, result, duration, _ = simulated_run
        broker = Broker()
        QueryLogCollector(broker).collect(result.query_log)
        aggregator = StreamAggregator(broker.consumer("query_logs"), 0, duration)
        aggregator.drain()
        streamed = aggregator.snapshot()
        batch = aggregate_query_log(result.query_log, 0, duration)
        assert set(streamed.sql_ids) == set(batch.sql_ids)
        for sid in batch.sql_ids:
            assert np.allclose(
                streamed.executions(sid).values, batch.executions(sid).values
            )

    def test_detection_finds_injected_window(self, simulated_run):
        _, truth, result, duration, onset = simulated_run
        features = BasicPerception().perceive(result.metrics)
        phenomena = PhenomenonPerception().recognise(features)
        anomalies = CaseBuilder(min_duration_s=30).build(phenomena)
        assert anomalies
        overlapping = [
            a for a in anomalies
            if min(a.end, duration) > onset and a.start < duration
        ]
        assert overlapping
        best = max(overlapping, key=lambda a: a.duration)
        assert abs(best.start - onset) < 120

    def test_diagnosis_finds_injected_root(self, simulated_run):
        population, truth, result, duration, onset = simulated_run
        templates = aggregate_query_log(result.query_log, 0, duration)
        logs = LogStore()
        logs.ingest_query_log(result.query_log)
        catalog = TemplateCatalog()
        for spec in population.specs.values():
            catalog.register_template(spec.sql_id, spec.template, spec.kind, spec.tables)
        case = AnomalyCase(
            metrics=result.metrics, templates=templates, logs=logs,
            catalog=catalog, anomaly_start=onset, anomaly_end=duration,
        )
        analysis = PinSQL().analyze(case)
        assert analysis.rsql_ids
        assert analysis.rsql_ids[0] in truth.r_sql_ids
        # The catalog can explain every ranked template.
        for sql_id in analysis.rsql_ids[:5]:
            assert catalog.get(sql_id) is not None

    def test_estimated_sessions_sum_close_to_observed(self, simulated_run):
        population, _, result, duration, onset = simulated_run
        templates = aggregate_query_log(result.query_log, 0, duration)
        logs = LogStore()
        logs.ingest_query_log(result.query_log)
        case = AnomalyCase(
            metrics=result.metrics, templates=templates, logs=logs,
            catalog=TemplateCatalog(), anomaly_start=onset, anomaly_end=duration,
        )
        analysis = PinSQL().analyze(case)
        observed = case.active_session.values
        estimated = analysis.sessions.total.values
        from repro.timeseries import pearson

        assert pearson(estimated, observed) > 0.9


class TestRepairLoopIntegration:
    def test_throttle_then_optimize_resolves_anomaly(self):
        duration, onset, act_at = 1400, 400, 800
        rng = np.random.default_rng(21)
        population = build_population(duration, rng, n_businesses=5)
        truth = inject_anomaly(
            population, rng, AnomalyCategory.ROW_LOCK, onset, duration
        )
        instance = DatabaseInstance(schema=population.schema, cpu_cores=8, seed=2)
        engine = instance.start(WorkloadGenerator(population))
        engine.run(act_at)

        metrics, _, _ = engine.monitor.finalize(engine.query_log)
        templates = aggregate_query_log(engine.query_log, 0, engine.now)
        logs = LogStore()
        logs.ingest_query_log(engine.query_log)
        case = AnomalyCase(
            metrics=metrics, templates=templates, logs=logs,
            catalog=TemplateCatalog(), anomaly_start=onset, anomaly_end=engine.now,
        )
        analysis = PinSQL().analyze(case)
        config = RepairConfig(
            rules=(
                RepairRule(("*",), "sql_throttle",
                           params=(("factor", 0.0), ("duration_s", duration))),
            ),
            auto_execute=True,
        )
        repair = RepairEngine(config)
        plan = repair.plan(case, analysis, anomaly_types=("active_session_anomaly",))
        executed = repair.execute(plan, instance, now_s=engine.now)
        assert executed
        engine.run(duration - engine.now)
        result = instance.finish()
        session = result.metrics.active_session.values
        during = session[onset + 100 : act_at - 20].mean()
        after = session[act_at + 120 :].mean()
        assert analysis.rsql_ids[0] in truth.r_sql_ids
        assert after < during * 0.5  # killing the R-SQL resolves the anomaly

    def test_default_config_gates_throttling(self, simulated_run):
        population, _, result, duration, onset = simulated_run
        templates = aggregate_query_log(result.query_log, 0, duration)
        logs = LogStore()
        logs.ingest_query_log(result.query_log)
        case = AnomalyCase(
            metrics=result.metrics, templates=templates, logs=logs,
            catalog=TemplateCatalog(), anomaly_start=onset, anomaly_end=duration,
        )
        analysis = PinSQL().analyze(case)
        plan = RepairEngine(DEFAULT_REPAIR_CONFIG).plan(
            case, analysis, anomaly_types=("active_session_anomaly",)
        )
        # Suggested actions exist or not depending on severity, but the
        # default config never auto-executes.
        instance = DatabaseInstance(seed=1)
        instance.start(WorkloadGenerator(population))
        assert RepairEngine(DEFAULT_REPAIR_CONFIG).execute(plan, instance, 0) == []
        instance.finish()
