"""Incident capture wired through the fleet: engines, threads, processes.

Satellite of the flight-recorder PR: every diagnosed anomaly must leave
a durable incident record — under the thread-pooled fleet service and
under the multiprocess shard runner, where each shard writes its own
store directory and the health rollup merges them.
"""

from repro.collection.stream import Broker
from repro.fleet import (
    FleetConfig,
    FleetDiagnosisService,
    ShardTask,
    feed_from_broker,
    run_shard,
    run_sharded,
)
from repro.incidents import IncidentRecorder, IncidentStore, load_health
from repro.telemetry import MetricsRegistry
from tests.fleet.conftest import ANOMALOUS, INSTANCE_IDS


def _replay(fleet_stream):
    """Private broker copy (capture tests must not drain the shared one)."""
    broker, populations, truths = fleet_stream
    clone = Broker()
    for instance_id in INSTANCE_IDS:
        feed = feed_from_broker(broker, instance_id)
        for key, value in feed.query_records:
            clone.publish(f"query_logs.{instance_id}", key, value)
        for key, value in feed.metric_records:
            clone.publish(f"performance_metrics.{instance_id}", key, value)
    return clone, populations, truths


class TestFleetServiceCapture:
    def test_each_diagnosis_becomes_an_incident(self, fleet_stream, tmp_path):
        broker, populations, _ = _replay(fleet_stream)
        reg = MetricsRegistry()
        store = IncidentStore(tmp_path, registry=reg)
        recorder = IncidentRecorder(store, registry=reg)
        service = FleetDiagnosisService(
            broker, FleetConfig(workers=2), registry=reg, recorder=recorder
        )
        for instance_id, population in populations.items():
            engine = service.register_instance(instance_id)
            for spec in population.specs.values():
                engine.register_statement(spec.template.replace("?", "1"))
        diagnoses = service.run_until_drained()
        service.close()

        assert diagnoses, "fixture must produce at least one diagnosis"
        assert store.record_count == len(diagnoses)
        recorded_instances = {m.instance_id for m in store.metas()}
        assert set(ANOMALOUS) <= recorded_instances
        for diagnosis in diagnoses:
            assert diagnosis.incident_id is not None
            record = store.get(diagnosis.incident_id)
            assert record is not None
            assert record.instance_id == diagnosis.instance_id
            # The chain is populated end to end.
            assert record.metric_traces
            assert any(t.name == "active_session" for t in record.metric_traces)
            assert record.hsql and record.rsql
            assert record.timings["total"] > 0
            assert record.report_text
            assert record.trace is not None
            assert record.trace.name == "service.diagnose"
            assert {c.name for c in record.trace.children} >= {"pinsql.analyze"}

    def test_triggering_samples_cover_the_evidence_window(
        self, fleet_stream, tmp_path
    ):
        broker, populations, _ = _replay(fleet_stream)
        store = IncidentStore(tmp_path)
        service = FleetDiagnosisService(
            broker, FleetConfig(workers=1), recorder=IncidentRecorder(store)
        )
        for instance_id, population in populations.items():
            engine = service.register_instance(instance_id)
            for spec in population.specs.values():
                engine.register_statement(spec.template.replace("?", "1"))
        service.run_until_drained()
        service.close()
        meta = store.latest()
        record = store.get(meta.incident_id)
        trace = next(t for t in record.metric_traces if t.name == "active_session")
        times = [t for t, _ in trace.samples]
        # Samples are raw, sorted, and stay inside [ts, te) — i.e. they
        # include the δs context before the anomaly start.
        assert times == sorted(times)
        assert times[0] < record.anomaly.start
        assert times[-1] < record.anomaly.end


class TestShardedCapture:
    def test_run_shard_writes_its_own_store(self, fleet_stream, tmp_path):
        broker, _, _ = fleet_stream
        feeds = [feed_from_broker(broker, i) for i in INSTANCE_IDS]
        counts = run_shard(
            ShardTask(feeds=feeds, incident_dir=str(tmp_path / "solo"))
        )
        store = IncidentStore(tmp_path / "solo")
        assert store.record_count == sum(counts.values())
        assert {m.instance_id for m in store.metas()} == {
            i for i in INSTANCE_IDS if counts[i] > 0
        }

    def test_run_shard_without_dir_records_nothing(self, fleet_stream, tmp_path):
        broker, _, _ = fleet_stream
        feeds = [feed_from_broker(broker, "db-a")]
        run_shard(ShardTask(feeds=feeds))
        assert list(tmp_path.iterdir()) == []

    def test_multiprocess_shards_write_separate_stores_and_health_merges(
        self, fleet_stream, tmp_path
    ):
        broker, _, truths = fleet_stream
        feeds = [feed_from_broker(broker, i) for i in INSTANCE_IDS]
        counts = run_sharded(
            feeds, processes=2, incident_dir=str(tmp_path / "fleet")
        )
        assert set(counts) == set(INSTANCE_IDS)
        for instance_id in ANOMALOUS:
            assert counts[instance_id] >= 1

        shard_dirs = sorted(p.name for p in (tmp_path / "fleet").iterdir())
        assert len(shard_dirs) >= 2
        assert all(name.startswith("shard-") for name in shard_dirs)

        # A shard whose instances stayed healthy appends nothing, so it
        # holds no segment files and doesn't count as a store.
        populated = [
            d for d in shard_dirs
            if any((tmp_path / "fleet" / d).glob("incidents-*.jsonl"))
        ]
        health = load_health(tmp_path / "fleet")
        assert health.stores == len(populated) >= 1
        assert health.total_incidents == sum(counts.values())
        for instance_id in ANOMALOUS:
            assert health.per_instance.get(instance_id, 0) == counts[instance_id]

    def test_inline_path_uses_shard_00(self, fleet_stream, tmp_path):
        broker, _, _ = fleet_stream
        feeds = [feed_from_broker(broker, "db-a")]
        counts = run_sharded(feeds, processes=1, incident_dir=str(tmp_path / "one"))
        assert (tmp_path / "one" / "shard-00").is_dir()
        health = load_health(tmp_path / "one")
        assert health.total_incidents == counts["db-a"]
