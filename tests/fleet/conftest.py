"""Shared fleet-test fixture: one simulated 3-instance stream.

Simulation is the expensive part (three full workload runs), so the
broker is built once per test session; tests that mutate broker state
(pruning) replay it onto a private broker first.
"""

import numpy as np
import pytest

from repro.collection import Broker, MetricsCollector, QueryLogCollector
from repro.dbsim import DatabaseInstance
from repro.workload import (
    AnomalyCategory,
    WorkloadGenerator,
    build_population,
    inject_anomaly,
)

DURATION, ONSET = 600, 400
INSTANCE_IDS = ("db-a", "db-b", "db-c")
ANOMALOUS = ("db-a", "db-b")


@pytest.fixture(scope="session")
def fleet_stream():
    """Broker + populations + truths for a 3-instance fleet."""
    broker = Broker()
    populations, truths = {}, {}
    for i, instance_id in enumerate(INSTANCE_IDS):
        rng = np.random.default_rng(60 + i)
        population = build_population(DURATION, rng, n_businesses=4)
        truth = None
        if instance_id in ANOMALOUS:
            truth = inject_anomaly(
                population, rng, AnomalyCategory.ROW_LOCK, ONSET, DURATION,
                target_rate=(25.0, 35.0), lock_hold_ms=(300.0, 400.0),
            )
        db = DatabaseInstance(schema=population.schema, cpu_cores=8, seed=9 + i)
        run = db.run(WorkloadGenerator(population), duration=DURATION)
        QueryLogCollector(broker, instance_id=instance_id).collect(run.query_log)
        MetricsCollector(broker, instance_id=instance_id).collect(run.metrics)
        populations[instance_id] = population
        truths[instance_id] = truth
    return broker, populations, truths
