"""Tests for the fleet instance registry."""

import pytest

from repro.fleet import InstanceDescriptor, InstanceRegistry


class TestDescriptor:
    def test_rejects_empty_id(self):
        with pytest.raises(ValueError, match="non-empty"):
            InstanceDescriptor("")

    def test_rejects_dot(self):
        with pytest.raises(ValueError, match=r"\."):
            InstanceDescriptor("a.b")

    def test_tags(self):
        d = InstanceDescriptor("db-01", tags={"region": "eu-1"})
        assert d.tags["region"] == "eu-1"


class TestRegistry:
    def test_register_by_string(self):
        registry = InstanceRegistry()
        d = registry.register("db-01")
        assert d.instance_id == "db-01"
        assert "db-01" in registry
        assert registry.instance_ids == ["db-01"]

    def test_register_updates_descriptor(self):
        registry = InstanceRegistry()
        registry.register("db-01")
        registry.register(InstanceDescriptor("db-01", tags={"tier": "gold"}))
        assert len(registry) == 1
        assert registry.get("db-01").tags == {"tier": "gold"}

    def test_handle_storage(self):
        registry = InstanceRegistry()
        sentinel = object()
        registry.register("db-01", handle=sentinel)
        assert registry.handle("db-01") is sentinel
        assert registry.handle("db-02") is None

    def test_deregister(self):
        registry = InstanceRegistry()
        registry.register("db-01")
        registry.deregister("db-01")
        assert "db-01" not in registry
        registry.deregister("db-01")  # idempotent

    def test_iteration_order(self):
        registry = InstanceRegistry()
        for i in range(3):
            registry.register(f"db-{i}")
        assert [d.instance_id for d in registry] == ["db-0", "db-1", "db-2"]
