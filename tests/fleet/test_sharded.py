"""Tests for the process-sharded fleet runner (picklable feeds)."""

import pickle

from repro.fleet import (
    InstanceFeed,
    ShardTask,
    feed_from_broker,
    run_shard,
    run_sharded,
    stable_shard,
)
from tests.fleet.conftest import ANOMALOUS, INSTANCE_IDS


class TestFeeds:
    def test_feed_from_broker_captures_streams(self, fleet_stream):
        broker, _, _ = fleet_stream
        feed = feed_from_broker(broker, "db-a")
        assert feed.instance_id == "db-a"
        assert feed.query_records and feed.metric_records
        key, record = feed.metric_records[0]
        assert record["instance"] == "db-a"

    def test_feeds_pickle(self, fleet_stream):
        broker, _, _ = fleet_stream
        feed = feed_from_broker(broker, "db-b")
        clone = pickle.loads(pickle.dumps(feed))
        assert clone.instance_id == "db-b"
        assert len(clone.query_records) == len(feed.query_records)


class TestRunShard:
    def test_run_shard_reproduces_fleet_diagnoses(self, fleet_stream):
        broker, _, _ = fleet_stream
        feeds = [feed_from_broker(broker, i) for i in INSTANCE_IDS]
        counts = run_shard(ShardTask(feeds=feeds))
        assert set(counts) == set(INSTANCE_IDS)
        for instance_id in ANOMALOUS:
            assert counts[instance_id] >= 1
        assert counts["db-c"] == 0

    def test_run_sharded_inline_path(self, fleet_stream):
        broker, _, _ = fleet_stream
        feeds = [feed_from_broker(broker, i) for i in INSTANCE_IDS]
        assert run_sharded(feeds, processes=1) == run_shard(ShardTask(feeds=feeds))

    def test_shard_partition_is_stable(self):
        feeds = [InstanceFeed(instance_id=f"db-{i}") for i in range(8)]
        by_shard = {}
        for feed in feeds:
            by_shard.setdefault(stable_shard(feed.instance_id, 3), []).append(
                feed.instance_id
            )
        again = {}
        for feed in feeds:
            again.setdefault(stable_shard(feed.instance_id, 3), []).append(
                feed.instance_id
            )
        assert by_shard == again
