"""The engine attaches static-analysis findings to each diagnosis."""

from repro.collection import Broker
from repro.core import PinSQL
from repro.fleet import InstanceDiagnosisEngine


def _engine_with_catalog(labeled):
    engine = InstanceDiagnosisEngine(Broker(), instance_id="db-t", selfmon=None)
    engine.register_catalog(labeled.case.catalog)
    return engine


class TestTemplateFindings:
    def test_root_cause_template_gets_findings(self, poor_sql_case):
        engine = _engine_with_catalog(poor_sql_case)
        result = PinSQL().analyze(poor_sql_case.case)
        findings = engine._template_findings(result)
        root = result.rsql_ids[0]
        assert root in findings
        rules = {f.rule for f in findings[root]}
        # inject_poor_sql plants SELECT * plus a function-wrapped filter.
        assert "non-sargable-function" in rules
        assert all(f.sql_id == root for f in findings[root])

    def test_exemplars_survive_catalog_merge(self, poor_sql_case):
        engine = _engine_with_catalog(poor_sql_case)
        root = next(iter(poor_sql_case.r_sqls))
        merged = engine.catalog.get(root)
        original = poor_sql_case.case.catalog.get(root)
        assert merged.exemplar == original.exemplar

    def test_unknown_templates_are_skipped(self, poor_sql_case):
        engine = InstanceDiagnosisEngine(Broker(), instance_id="db-t", selfmon=None)
        result = PinSQL().analyze(poor_sql_case.case)  # catalog never registered
        assert engine._template_findings(result) == {}

    def test_clean_templates_omitted_from_map(self, poor_sql_case):
        engine = _engine_with_catalog(poor_sql_case)
        result = PinSQL().analyze(poor_sql_case.case)
        findings = engine._template_findings(result)
        for sql_id, template_findings in findings.items():
            assert template_findings, f"{sql_id} mapped to an empty tuple"
