"""Cross-process span export: worker envelopes, pool merge, crash loss."""

import os

from repro.fleet import (
    PersistentWorkerPool,
    WorkItem,
    block_feed_from_broker,
    execute_work_item,
)
from repro.fleet.workers import columnarize_feed
from repro.fleet.sharded import InstanceFeed
from repro.telemetry import MetricsRegistry, Tracer
from repro.telemetry.tracing import TraceContext
from tests.fleet.conftest import ANOMALOUS


def _counter(registry, name, **labels):
    instrument = registry.get(name, **labels)
    return 0 if instrument is None else instrument.value


def _tiny_feed(instance_id="db-t", trace=None):
    records = [
        (
            instance_id,
            {
                "second": s,
                "sql_id": "q1",
                "arrive_ms": [s * 1000 + 10],
                "response_ms": [5.0],
                "examined_rows": [40.0],
                "instance": instance_id,
            },
        )
        for s in range(20)
    ]
    metrics = [
        (
            instance_id,
            {
                "metric": "cpu",
                "timestamp": s,
                "value": 0.2,
                "instance": instance_id,
            },
        )
        for s in range(20)
    ]
    feed = columnarize_feed(
        InstanceFeed(
            instance_id=instance_id, query_records=records, metric_records=metrics
        )
    )
    if trace is not None:
        feed.trace = trace
    return feed


class TestWorkerEnvelope:
    def test_envelope_carries_counts_spans_and_telemetry(self):
        export = execute_work_item(WorkItem(feed=_tiny_feed()))
        assert set(export) == {"counts", "spans", "telemetry"}
        assert export["counts"] == {"db-t": 0}
        assert isinstance(export["spans"], list)
        snap = export["telemetry"]
        assert any(
            e["name"] == "pipeline_lag_seconds"
            and e["labels"].get("stage") == "dispatch"
            for e in snap["histograms"]
        )

    def test_block_traces_parent_worker_spans(self, fleet_stream):
        # An anomalous instance actually diagnoses, so spans exist.
        # Re-publish the stream's blocks through a parent-process broker
        # (``publish_block`` stamps unstamped blocks with its own span's
        # context; existing stamps win on the worker's replay), then
        # assert the worker's diagnosis spans join one of those traces —
        # the block context beats the feed-level fallback.
        from repro.collection.blocks import decode_block
        from repro.collection.collector import METRIC_TOPIC, QUERY_TOPIC
        from repro.collection.stream import Broker, instance_topic

        broker, _, _ = fleet_stream
        raw = block_feed_from_broker(broker, ANOMALOUS[0])
        parent = Broker()
        for topic, payloads in (
            (QUERY_TOPIC, raw.query_payloads),
            (METRIC_TOPIC, raw.metric_payloads),
        ):
            for payload in payloads:
                parent.publish_block(
                    instance_topic(topic, ANOMALOUS[0]), decode_block(payload)
                )
        feed = block_feed_from_broker(parent, ANOMALOUS[0])
        block_contexts = {}
        for payload in feed.query_payloads + feed.metric_payloads:
            block = decode_block(payload)
            if block.trace is not None:
                block_contexts[block.trace.span_id] = block.trace.trace_id
        assert block_contexts, "published blocks should carry trace contexts"
        export = execute_work_item(WorkItem(feed=feed))
        roots = [s for s in export["spans"] if s["name"] == "service.diagnose"]
        assert roots
        for span in roots:
            attrs = span["attrs"]
            assert attrs["process"] == os.getpid()
            parent = attrs["parent_span_id"]
            assert block_contexts[parent] == attrs["trace_id"]

    def test_unstamped_stream_still_yields_traced_spans(self, fleet_stream):
        # Legacy records columnarise into traceless blocks; the worker's
        # own replay publish stamps them, so diagnosis spans still join
        # a fully linked (locally minted) trace.
        broker, _, _ = fleet_stream
        feed = block_feed_from_broker(broker, ANOMALOUS[0])
        export = execute_work_item(WorkItem(feed=feed))
        roots = [s for s in export["spans"] if s["name"] == "service.diagnose"]
        assert roots
        for span in roots:
            attrs = span["attrs"]
            assert attrs["trace_id"]
            assert attrs["parent_span_id"]
            assert attrs["process"] == os.getpid()


class TestPoolMerge:
    def test_merge_export_adopts_spans_and_telemetry(self, fleet_stream):
        broker, _, _ = fleet_stream
        feed = block_feed_from_broker(broker, ANOMALOUS[0])
        registry = MetricsRegistry()
        tracer = Tracer()
        pool = PersistentWorkerPool(processes=1, registry=registry, tracer=tracer)
        export = execute_work_item(WorkItem(feed=feed))
        assert export["spans"]
        pool._merge_export(export)
        assert len(tracer.roots) == len(export["spans"])
        assert _counter(registry, "fleet_spans_imported_total") == len(
            export["spans"]
        )
        # The worker's dispatch-lag histogram now lives in the parent.
        assert registry.get(
            "pipeline_lag_seconds", stage="dispatch", instance=ANOMALOUS[0]
        ) is not None

    def test_merge_export_tolerates_garbage(self):
        registry = MetricsRegistry()
        pool = PersistentWorkerPool(processes=1, registry=registry, tracer=Tracer())
        pool._merge_export(None)
        pool._merge_export("broken")
        pool._merge_export({"spans": "nope", "telemetry": 7})
        assert _counter(registry, "fleet_spans_imported_total") == 0

    def test_pool_run_imports_worker_spans(self, fleet_stream):
        broker, _, _ = fleet_stream
        feed = block_feed_from_broker(broker, ANOMALOUS[0])
        registry = MetricsRegistry()
        tracer = Tracer()
        pool = PersistentWorkerPool(processes=1, registry=registry, tracer=tracer)
        counts = pool.run([WorkItem(feed=feed)])
        assert counts[ANOMALOUS[0]] >= 1
        assert tracer.roots, "worker spans should merge into the parent tracer"
        # The spans really crossed a process boundary.
        procs = {s.attrs.get("process") for s in tracer.roots}
        assert procs and os.getpid() not in procs


class TestCrashAccounting:
    def test_flush_counts_loss_and_links_synthetic_span(self):
        registry = MetricsRegistry()
        tracer = Tracer()
        pool = PersistentWorkerPool(processes=1, registry=registry, tracer=tracer)
        ctx = TraceContext(trace_id="a" * 16, span_id="b" * 16, process=1)
        item = WorkItem(feed=_tiny_feed(trace=ctx), shard_key="shard-03")
        pool._flush_crashed_item(item, exitcode=17)
        assert _counter(
            registry, "span_export_dropped_total", instance="db-t"
        ) == 1
        [span] = tracer.roots
        assert span.name == "fleet.worker_crash"
        assert span.attrs["status"] == "error"
        assert span.attrs["trace_id"] == ctx.trace_id
        assert span.attrs["parent_span_id"] == ctx.span_id
        assert span.attrs["shard"] == "shard-03"

    def test_flush_without_trace_still_counts(self):
        registry = MetricsRegistry()
        tracer = Tracer()
        pool = PersistentWorkerPool(processes=1, registry=registry, tracer=tracer)
        pool._flush_crashed_item(WorkItem(feed=_tiny_feed()), exitcode=1)
        assert _counter(
            registry, "span_export_dropped_total", instance="db-t"
        ) == 1
        [span] = tracer.roots
        assert "trace_id" not in span.attrs
