"""Persistent shard worker pool: columnar feeds, supervision, telemetry.

The multiprocess fleet path (``run_sharded`` with ``processes > 1``)
runs on :class:`PersistentWorkerPool` — long-lived worker processes
pulling one columnarised :class:`WorkItem` at a time.  These tests pin
the contracts: block shipping loses nothing relative to the inline
per-record path, a chaos-crashed worker process is respawned and its
item resubmitted, an item that keeps crashing is abandoned with zero
counts instead of failing the run, and every outcome is counted.
"""

import pytest

from repro.chaos import FaultPlan, FaultSpec
from repro.fleet import (
    PersistentWorkerPool,
    ShardTask,
    WorkItem,
    block_feed_from_broker,
    columnarize_feed,
    feed_from_broker,
    process_work_item,
    run_shard,
    run_sharded,
    stable_shard,
)
from repro.fleet.sharded import InstanceFeed
from repro.telemetry import MetricsRegistry
from tests.fleet.conftest import ANOMALOUS, INSTANCE_IDS


def _counter(registry, name, **labels):
    instrument = registry.get(name, **labels)
    return 0 if instrument is None else instrument.value


def _tiny_feed(instance_id="db-t"):
    """A minimal but valid feed: enough to drain a service quickly."""
    records = [
        (
            instance_id,
            {
                "second": s,
                "sql_id": "q1",
                "arrive_ms": [s * 1000 + 10],
                "response_ms": [5.0],
                "examined_rows": [40.0],
                "instance": instance_id,
            },
        )
        for s in range(20)
    ]
    metrics = [
        (
            instance_id,
            {
                "metric": "cpu",
                "timestamp": s,
                "value": 0.2,
                "instance": instance_id,
            },
        )
        for s in range(20)
    ]
    return columnarize_feed(
        InstanceFeed(
            instance_id=instance_id, query_records=records, metric_records=metrics
        )
    )


class TestColumnarize:
    def test_valid_records_become_blocks(self, fleet_stream):
        broker, _, _ = fleet_stream
        feed = feed_from_broker(broker, "db-a")
        block_feed = columnarize_feed(feed)
        assert block_feed.instance_id == "db-a"
        assert block_feed.query_payloads and block_feed.metric_payloads
        # Everything in the simulated stream is valid → no leftovers.
        assert not block_feed.query_records
        assert not block_feed.metric_records
        assert block_feed.nbytes > 0
        assert block_feed.n_blocks == len(block_feed.query_payloads) + len(
            block_feed.metric_payloads
        )
        assert block_feed_from_broker(broker, "db-a").nbytes == block_feed.nbytes

    def test_invalid_records_ride_along_as_leftovers(self):
        feed = InstanceFeed(
            instance_id="db-x",
            query_records=[("db-x", {"second": 1, "garbage": True})],
            metric_records=[("db-x", {"metric": "cpu", "timestamp": -1, "value": 1})],
        )
        block_feed = columnarize_feed(feed)
        assert not block_feed.query_payloads
        assert not block_feed.metric_payloads
        assert len(block_feed.query_records) == 1
        assert len(block_feed.metric_records) == 1

    def test_block_shipping_is_smaller_than_record_pickles(self, fleet_stream):
        import pickle

        broker, _, _ = fleet_stream
        feed = feed_from_broker(broker, "db-a")
        block_feed = columnarize_feed(feed)
        assert block_feed.nbytes < len(pickle.dumps(feed))


class TestEquivalence:
    def test_work_item_matches_inline_shard(self, fleet_stream):
        """One instance through process_work_item == through run_shard."""
        broker, _, _ = fleet_stream
        feed = feed_from_broker(broker, "db-a")
        inline = run_shard(ShardTask(feeds=[feed]))
        columnar = process_work_item(WorkItem(feed=columnarize_feed(feed)))
        assert columnar == inline
        assert columnar["db-a"] >= 1

    def test_pool_matches_inline_counts(self, fleet_stream):
        broker, _, _ = fleet_stream
        feeds = [feed_from_broker(broker, i) for i in INSTANCE_IDS]
        inline = run_shard(ShardTask(feeds=feeds))
        pooled = run_sharded(feeds, processes=2)
        assert pooled == inline
        for instance_id in ANOMALOUS:
            assert pooled[instance_id] >= 1

    def test_pool_with_more_instances_than_workers(self, fleet_stream):
        """All items complete even when instances queue behind workers."""
        broker, _, _ = fleet_stream
        items = [
            WorkItem(
                feed=block_feed_from_broker(broker, instance_id),
                shard_key=f"shard-{stable_shard(instance_id, 1):02d}",
            )
            for instance_id in INSTANCE_IDS
        ]
        registry = MetricsRegistry()
        pool = PersistentWorkerPool(processes=1, registry=registry)
        counts = pool.run(items)
        assert set(counts) == set(INSTANCE_IDS)
        assert _counter(registry, "fleet_work_items_total", status="submitted") == 3
        assert _counter(registry, "fleet_work_items_total", status="completed") == 3
        assert _counter(registry, "fleet_shard_bytes_shipped_total") == sum(
            item.feed.nbytes for item in items
        )


class TestSupervision:
    def test_crashed_worker_is_respawned_and_item_resubmitted(self):
        plan = FaultPlan(
            name="crash-once",
            seed=11,
            specs=(
                FaultSpec(kind="worker_crash", rate=1.0, params={"max_crashes": 1}),
            ),
        )
        registry = MetricsRegistry()
        pool = PersistentWorkerPool(
            processes=1, max_restarts=2, registry=registry, poll_interval_s=0.05
        )
        counts = pool.run([_tiny_feed_item("db-t", plan)])
        # The retried attempt runs clean (max_crashes=1) and completes.
        assert counts == {"db-t": 0}
        assert _counter(registry, "fleet_work_items_total", status="resubmitted") == 1
        assert _counter(registry, "fleet_work_items_total", status="completed") == 1
        assert (
            _counter(registry, "fleet_worker_restarts_total", instance="shard-00")
            == 1
        )
        assert _counter(registry, "fleet_work_items_total", status="abandoned") == 0

    def test_unrecoverable_item_is_abandoned_not_fatal(self):
        plan = FaultPlan(
            name="crash-forever",
            seed=11,
            specs=(
                FaultSpec(kind="worker_crash", rate=1.0, params={"max_crashes": 10}),
            ),
        )
        registry = MetricsRegistry()
        pool = PersistentWorkerPool(
            processes=1, max_restarts=1, registry=registry, poll_interval_s=0.05
        )
        counts = pool.run([_tiny_feed_item("db-z", plan)])
        assert counts == {"db-z": 0}
        assert _counter(registry, "fleet_work_items_total", status="abandoned") == 1
        assert _counter(registry, "fleet_worker_failures_total", instance="db-z") == 1
        # submitted: initial + one resubmission that also crashed.
        assert _counter(registry, "fleet_work_items_total", status="resubmitted") == 1

    def test_worker_error_without_crash_is_supervised_too(self):
        """A worker exception (not a process death) follows the same path."""
        feed = _tiny_feed("db-e")
        feed.query_payloads.insert(0, b"PQB1 this is not a frame")
        registry = MetricsRegistry()
        pool = PersistentWorkerPool(processes=1, registry=registry)
        # Undecodable frames are quarantined inside the worker, not
        # fatal: the item still completes.
        counts = pool.run([WorkItem(feed=feed)])
        assert counts == {"db-e": 0}
        assert _counter(registry, "fleet_work_items_total", status="completed") == 1

    def test_empty_run_is_a_no_op(self):
        assert PersistentWorkerPool(processes=2).run([]) == {}

    def test_rejects_zero_processes(self):
        with pytest.raises(ValueError):
            PersistentWorkerPool(processes=0)


def _tiny_feed_item(instance_id, plan):
    return WorkItem(feed=_tiny_feed(instance_id), fault_plan=plan, shard_key="shard-00")


class TestDiagnosisIdentity:
    def test_block_fed_service_produces_identical_diagnoses(self, fleet_stream):
        """Not just equal counts: the diagnoses themselves must match.

        The per-record service and a service fed the same traffic as
        columnar blocks must agree on the anomaly window, the phenomenon
        types, the full H-SQL/R-SQL rankings, the rule verdict and the
        evidence confidence — the columnar wire format is an encoding,
        not a different detector.
        """
        from repro.collection import Broker
        from repro.collection.collector import METRIC_TOPIC, QUERY_TOPIC
        from repro.collection.stream import instance_topic
        from repro.fleet import FleetConfig, FleetDiagnosisService
        from repro.fleet.workers import BlockDecodeError, decode_block

        broker, _, _ = fleet_stream
        instance_id = "db-a"
        feed = feed_from_broker(broker, instance_id)
        query_topic = instance_topic(QUERY_TOPIC, instance_id)
        metric_topic = instance_topic(METRIC_TOPIC, instance_id)

        record_broker = Broker()
        for key, value in feed.query_records:
            record_broker.publish(query_topic, key, value)
        for key, value in feed.metric_records:
            record_broker.publish(metric_topic, key, value)

        block_feed = columnarize_feed(feed)
        block_broker = Broker()
        for payload in block_feed.query_payloads:
            block_broker.publish_block(query_topic, decode_block(payload))
        for payload in block_feed.metric_payloads:
            block_broker.publish_block(metric_topic, decode_block(payload))

        def drain(b):
            service = FleetDiagnosisService(b, FleetConfig(workers=1))
            service.register_instance(instance_id)
            service.run_until_drained()
            return service.diagnoses_for(instance_id)

        from_records = drain(record_broker)
        from_blocks = drain(block_broker)
        assert len(from_records) == len(from_blocks) >= 1
        for a, b in zip(from_records, from_blocks):
            assert (a.anomaly.start, a.anomaly.end) == (b.anomaly.start, b.anomaly.end)
            assert a.anomaly.types == b.anomaly.types
            assert a.result.hsql_ids == b.result.hsql_ids
            assert a.result.rsql_ids == b.result.rsql_ids
            assert (a.verdict is None) == (b.verdict is None)
            if a.verdict is not None:
                assert a.verdict.category == b.verdict.category
            assert a.confidence == b.confidence
            assert a.degraded_reasons == b.degraded_reasons
