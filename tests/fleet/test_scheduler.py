"""Tests for shard hashing and the diagnosis scheduler."""

import pytest

from repro.fleet import DiagnosisScheduler, stable_shard


class TestStableShard:
    def test_deterministic_across_calls(self):
        assert stable_shard("db-03", 4) == stable_shard("db-03", 4)

    def test_known_values_pinned(self):
        # blake2b is process-independent; pin a few assignments so an
        # accidental switch to the randomised builtin hash() fails loudly.
        assert [stable_shard(f"db-{i:02d}", 4) for i in range(6)] == [
            1, 1, 0, 2, 1, 1,
        ]
        assert stable_shard("db-00", 1) == 0

    def test_range(self):
        for i in range(50):
            assert 0 <= stable_shard(f"inst-{i}", 7) < 7

    def test_invalid_shards(self):
        with pytest.raises(ValueError):
            stable_shard("x", 0)
        with pytest.raises(ValueError):
            DiagnosisScheduler(0)


class TestPartition:
    def test_partition_covers_all_preserving_order(self):
        scheduler = DiagnosisScheduler(3)
        ids = [f"db-{i:02d}" for i in range(12)]
        shards = scheduler.partition(ids)
        assert len(shards) == 3
        flat = [i for shard in shards for i in shard]
        assert sorted(flat) == sorted(ids)
        for shard in shards:
            assert shard == [i for i in ids if i in shard]

    def test_partition_matches_shard_of(self):
        scheduler = DiagnosisScheduler(4)
        ids = [f"inst-{i}" for i in range(20)]
        for shard_idx, shard in enumerate(scheduler.partition(ids)):
            for instance_id in shard:
                assert scheduler.shard_of(instance_id) == shard_idx

    def test_single_shard_gets_everything(self):
        scheduler = DiagnosisScheduler(1)
        ids = ["a", "b", "c"]
        assert scheduler.partition(ids) == [ids]

    def test_imbalance_reasonable(self):
        scheduler = DiagnosisScheduler(4)
        ids = [f"db-{i:03d}" for i in range(200)]
        assert scheduler.imbalance(ids) < 1.5
        assert scheduler.imbalance([]) == 1.0
