"""End-to-end tests for the fleet diagnosis service.

One shared broker carries three simulated instances (two with injected
row-lock anomalies, one healthy); the fleet must diagnose each anomaly
on the right instance with zero cross-instance bleed.
"""

from repro.collection import Broker
from repro.fleet import FleetConfig, FleetDiagnosisService, ServiceConfig
from repro.telemetry import MetricsRegistry
from tests.fleet.conftest import ANOMALOUS, DURATION, INSTANCE_IDS


def _build_service(broker, populations, workers, registry=None, prune=False):
    service = FleetDiagnosisService(
        broker,
        FleetConfig(
            service=ServiceConfig(delta_start_s=300, detector_window_s=DURATION),
            workers=workers,
            prune_broker=prune,
        ),
        registry=registry,
    )
    for instance_id, population in populations.items():
        engine = service.register_instance(instance_id)
        for spec in population.specs.values():
            engine.register_statement(spec.template.replace("?", "1"))
    return service


class TestFleetDiagnosis:
    def test_multi_worker_attribution(self, fleet_stream):
        broker, populations, truths = fleet_stream
        with _build_service(broker, populations, workers=2) as service:
            diagnoses = service.run_until_drained()
        assert diagnoses
        # Every anomalous instance diagnosed, the healthy one untouched.
        by_instance = {i: service.diagnoses_for(i) for i in service.instance_ids}
        top_hits = 0
        for instance_id in ANOMALOUS:
            assert by_instance[instance_id], f"{instance_id} must be diagnosed"
            diagnosis = by_instance[instance_id][0]
            # The detected window overlaps the injected one.
            truth = truths[instance_id]
            assert diagnosis.anomaly.end > truth.anomaly_start
            assert diagnosis.anomaly.start < truth.anomaly_end
            # Every ranked candidate is a statement from this instance's
            # own workload (a bleed would surface foreign templates).
            catalog = service.engine(instance_id).catalog
            assert all(sql_id in catalog for sql_id in diagnosis.result.rsql_ids)
            top_hits += diagnosis.result.rsql_ids[0] in truth.r_sql_ids
        # Exact top-1 accuracy on this short 600 s window is the service
        # suite's concern; here it suffices that ranking works end to end
        # for at least one instance under concurrent workers.
        assert top_hits >= 1
        assert by_instance["db-c"] == []
        # Diagnoses carry their instance and land on the right engine.
        for instance_id, diagnoses_ in by_instance.items():
            assert all(d.instance_id == instance_id for d in diagnoses_)

    def test_single_worker_matches_multi_worker(self, fleet_stream):
        broker, populations, truths = fleet_stream
        with _build_service(broker, populations, workers=1) as single:
            single.run_until_drained()
        with _build_service(broker, populations, workers=3) as multi:
            multi.run_until_drained()
        for instance_id in INSTANCE_IDS:
            s = [d.anomaly.start for d in single.diagnoses_for(instance_id)]
            m = [d.anomaly.start for d in multi.diagnoses_for(instance_id)]
            assert s == m

    def test_no_cross_instance_state_bleed(self, fleet_stream):
        broker, populations, _ = fleet_stream
        with _build_service(broker, populations, workers=2) as service:
            service.run_until_drained()
        engines = [service.engine(i) for i in INSTANCE_IDS]
        # Disjoint log partitions: each engine's store only holds its
        # own instance's templates, keyed in the shared fleet store.
        for instance_id in INSTANCE_IDS:
            assert instance_id in service.logstore
            partition = service.logstore.partition(instance_id)
            assert partition is service.engine(instance_id).logstore
        # Detector buffers are private objects per engine.
        buffer_ids = {id(e.detector._buffers) for e in engines}
        assert len(buffer_ids) == len(engines)

    def test_prune_bounds_broker_memory(self, fleet_stream):
        broker, populations, _ = fleet_stream
        registry = MetricsRegistry()
        pruned_broker = Broker(registry=registry)
        # Replay the stream onto a private broker so pruning cannot
        # disturb the module-scoped fixture.
        for topic in broker.topics:
            for message in broker.read(topic, 0, 1 << 31):
                pruned_broker.publish(topic, message.key, message.value)
        with _build_service(
            pruned_broker, populations, workers=2, registry=registry, prune=True
        ) as service:
            service.run_until_drained()
        for topic in pruned_broker.topics:
            assert pruned_broker.retained(topic) == 0
            assert pruned_broker.size(topic) > 0

    def test_reregistering_returns_same_engine(self, fleet_stream):
        broker, populations, _ = fleet_stream
        service = FleetDiagnosisService(broker)
        first = service.register_instance("db-a")
        second = service.register_instance("db-a")
        assert first is second

    def test_instance_labelled_metrics(self, fleet_stream):
        broker, populations, _ = fleet_stream
        registry = MetricsRegistry()
        with _build_service(
            broker, populations, workers=2, registry=registry
        ) as service:
            service.run_until_drained()
        for instance_id in ANOMALOUS:
            counter = registry.get("service_diagnoses_total", instance=instance_id)
            assert counter is not None and counter.value >= 1
        clean = registry.get("service_diagnoses_total", instance="db-c")
        assert clean is not None and clean.value == 0


class TestFleetDrainGuard:
    def test_stalled_broker_abandons_drain(self, fleet_stream):
        broker, populations, _ = fleet_stream

        class StuckBroker(Broker):
            """Reports lag but never returns messages."""

            def read(self, topic, offset, max_messages):
                return []

            def size(self, topic):
                return 5

        registry = MetricsRegistry()
        service = FleetDiagnosisService(
            StuckBroker(registry=registry), registry=registry
        )
        service.register_instance("db-a")
        assert service.run_until_drained(max_idle_iterations=3) == []
        stalled = registry.get("fleet_drain_stalled_total")
        assert stalled is not None and stalled.value == 1
