"""Tests for supervised recovery of crashed fleet workers and shards."""

from repro.chaos import single_fault_plan
from repro.collection import Broker
from repro.fleet.service import FleetConfig, FleetDiagnosisService
from repro.fleet.sharded import InstanceFeed, ShardTask, run_shard_supervised
from repro.telemetry import MetricsRegistry


class FlakyHook:
    """A chaos fault hook that crashes the first ``failures`` calls."""

    def __init__(self, failures: int) -> None:
        self.failures = failures
        self.calls = 0

    def __call__(self, instance_id: str) -> None:
        self.calls += 1
        if self.calls <= self.failures:
            raise RuntimeError(f"injected crash #{self.calls} on {instance_id}")


def make_service(hook, registry, max_worker_restarts=3):
    broker = Broker(registry=registry)
    service = FleetDiagnosisService(
        broker,
        config=FleetConfig(max_worker_restarts=max_worker_restarts),
        registry=registry,
        fault_hook=hook,
    )
    service.register_instance("db-00")
    return service


class TestWorkerRestarts:
    def test_crashing_step_is_restarted_and_counted(self):
        registry = MetricsRegistry()
        hook = FlakyHook(failures=2)
        service = make_service(hook, registry)
        service.step()  # two crashes, then the third attempt completes
        assert hook.calls == 3
        restarts = registry.get("fleet_worker_restarts_total", instance="db-00")
        assert restarts.value == 2

    def test_exhausted_restarts_skip_the_instance_not_the_fleet(self):
        registry = MetricsRegistry()
        hook = FlakyHook(failures=10 ** 6)
        service = make_service(hook, registry, max_worker_restarts=2)
        produced = service.step()  # must not raise
        assert produced == []
        assert hook.calls == 3  # the first try plus two restarts
        restarts = registry.get("fleet_worker_restarts_total", instance="db-00")
        failures = registry.get("fleet_worker_failures_total", instance="db-00")
        assert restarts.value == 2
        assert failures.value == 1

    def test_next_fleet_step_retries_a_skipped_instance(self):
        registry = MetricsRegistry()
        hook = FlakyHook(failures=3)
        service = make_service(hook, registry, max_worker_restarts=1)
        service.step()  # crashes twice, skipped
        service.step()  # one more crash, then completes
        failures = registry.get("fleet_worker_failures_total", instance="db-00")
        assert failures.value == 1
        assert hook.calls == 4


class TestShardSupervision:
    def make_task(self, plan):
        feeds = [InstanceFeed("db-00"), InstanceFeed("db-01")]
        return ShardTask(feeds=feeds, fault_plan=plan, shard_key="shard-00")

    def test_crashed_shard_converges_within_restart_budget(self):
        plan = single_fault_plan("worker_crash", rate=1.0, max_crashes=1)
        result = run_shard_supervised(self.make_task(plan), max_restarts=2)
        # Attempt 0 crashes (rate 1.0); attempt 1 exceeds max_crashes and
        # runs clean, so every instance still reports in.
        assert set(result) == {"db-00", "db-01"}

    def test_unrecoverable_shard_is_abandoned_with_zero_counts(self):
        plan = single_fault_plan("worker_crash", rate=1.0, max_crashes=10)
        result = run_shard_supervised(self.make_task(plan), max_restarts=1)
        assert result == {"db-00": 0, "db-01": 0}

    def test_clean_plan_runs_on_first_attempt(self):
        result = run_shard_supervised(self.make_task(None), max_restarts=0)
        assert result == {"db-00": 0, "db-01": 0}
