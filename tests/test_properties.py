"""Cross-module property-based tests (hypothesis).

These check structural invariants that must hold for *any* input, not
just the fixtures: conservation laws of the aggregation pipeline,
idempotence of template normalization, partition properties of the
clustering, and monotonicity of the ranking metrics.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collection import aggregate_query_log
from repro.core.rsql import _safe_corrcoef
from repro.core.session_estimation import CoverageFunction
from repro.dbsim import QueryLog, SecondBatch
from repro.evaluation.metrics import first_hit_rank, hits_at_k, reciprocal_rank
from repro.sqltemplate import normalize_statement, sql_id
from repro.timeseries import TimeSeries
from repro.workload.trends import ramp_profile, spike_profile


@st.composite
def query_batches(draw):
    """Random query logs with a handful of templates."""
    n_templates = draw(st.integers(1, 4))
    log = QueryLog()
    for i in range(n_templates):
        n = draw(st.integers(0, 40))
        if n == 0:
            continue
        arrive = draw(
            st.lists(st.integers(0, 29_999), min_size=n, max_size=n)
        )
        resp = draw(
            st.lists(st.floats(0.1, 5_000.0), min_size=n, max_size=n)
        )
        log.append(
            SecondBatch(
                f"Q{i}",
                np.asarray(sorted(arrive), dtype=np.int64),
                np.asarray(resp),
                np.ones(n),
            )
        )
    return log


class TestAggregationConservation:
    @given(query_batches())
    @settings(max_examples=50, deadline=None)
    def test_execution_counts_conserved(self, log):
        store = aggregate_query_log(log, start=0, end=30)
        total = sum(store.executions(sid).total() for sid in store.sql_ids)
        assert total == log.total_queries

    @given(query_batches())
    @settings(max_examples=50, deadline=None)
    def test_response_time_conserved(self, log):
        store = aggregate_query_log(log, start=0, end=30)
        aggregated = sum(
            store.get(sid, "total_tres").total() for sid in store.sql_ids
        )
        raw = sum(
            tq.response_ms.sum() for tq in log.iter_templates()
        )
        assert aggregated == pytest.approx(raw)

    @given(query_batches(), st.integers(2, 10))
    @settings(max_examples=30, deadline=None)
    def test_resample_conserves_counts(self, log, factor):
        store = aggregate_query_log(log, start=0, end=30)
        coarse = store.resample(factor)
        usable = (30 // factor) * factor
        for sid in store.sql_ids:
            fine_total = store.executions(sid).values[:usable].sum()
            assert coarse.executions(sid).total() == pytest.approx(fine_total)


class TestCoverageProperties:
    @given(query_batches())
    @settings(max_examples=50, deadline=None)
    def test_expected_session_integrates_to_total_response(self, log):
        arrive, end = log.all_intervals()
        cov = CoverageFunction(arrive, end - arrive)
        # Integral of the active-session process equals total busy time.
        total = cov(np.array([1e12]))[0]
        assert total == pytest.approx(float((end - arrive).sum()), rel=1e-9)

    @given(query_batches(), st.integers(1, 20))
    @settings(max_examples=50, deadline=None)
    def test_bucket_means_average_to_second_mean(self, log, k):
        arrive, end = log.all_intervals()
        cov = CoverageFunction(arrive, end - arrive)
        second = 3
        edges = second * 1000.0 + np.arange(k + 1) * (1000.0 / k)
        per_bucket = cov.expected_session(edges[:-1], edges[1:])
        whole = cov.expected_session(
            np.array([second * 1000.0]), np.array([(second + 1) * 1000.0])
        )[0]
        assert per_bucket.mean() == pytest.approx(whole, rel=1e-9, abs=1e-12)


class TestTemplateNormalization:
    @given(st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=120))
    @settings(max_examples=100)
    def test_normalization_idempotent(self, sql):
        once = normalize_statement(sql)
        twice = normalize_statement(once)
        assert once == twice

    @given(st.integers(0, 10**9), st.integers(0, 10**9))
    @settings(max_examples=50)
    def test_literal_invariance(self, a, b):
        ta = normalize_statement(f"SELECT * FROM t WHERE id = {a}")
        tb = normalize_statement(f"SELECT * FROM t WHERE id = {b}")
        assert ta == tb
        assert sql_id(ta) == sql_id(tb)


class TestSafeCorrcoef:
    @given(st.integers(2, 8), st.integers(3, 30), st.integers(0, 10_000))
    @settings(max_examples=50)
    def test_symmetric_bounded_unit_diagonal(self, rows, cols, seed):
        rng = np.random.default_rng(seed)
        m = rng.normal(size=(rows, cols))
        m[0] = 5.0  # force one constant row
        corr = _safe_corrcoef(m)
        assert corr.shape == (rows, rows)
        assert np.allclose(corr, corr.T)
        assert (np.abs(corr) <= 1.0 + 1e-12).all()
        assert (corr[0] == 0.0).all()  # constant row maps to zero
        for i in range(1, rows):
            assert corr[i, i] == pytest.approx(1.0)


class TestRankingMetricProperties:
    @given(
        st.lists(st.integers(0, 30), min_size=1, max_size=30, unique=True),
        st.sets(st.integers(0, 30), min_size=1, max_size=10),
    )
    @settings(max_examples=100)
    def test_hits_monotone_in_k(self, ranked_ints, truth_ints):
        ranked = [str(i) for i in ranked_ints]
        truth = {str(i) for i in truth_ints}
        hits = [hits_at_k(ranked, truth, k) for k in range(1, len(ranked) + 1)]
        assert all(a <= b for a, b in zip(hits, hits[1:]))

    @given(
        st.lists(st.integers(0, 30), min_size=1, max_size=30, unique=True),
        st.sets(st.integers(0, 30), min_size=1, max_size=10),
    )
    @settings(max_examples=100)
    def test_reciprocal_rank_consistent_with_first_hit(self, ranked_ints, truth_ints):
        ranked = [str(i) for i in ranked_ints]
        truth = {str(i) for i in truth_ints}
        rank = first_hit_rank(ranked, truth)
        rr = reciprocal_rank(ranked, truth)
        if rank is None:
            assert rr == 0.0
        else:
            assert rr == pytest.approx(1.0 / rank)
            assert ranked[rank - 1] in truth


class TestTrendProfiles:
    @given(st.integers(10, 500), st.integers(0, 500), st.floats(0.0, 50.0))
    @settings(max_examples=60)
    def test_spike_profile_bounds(self, duration, start, magnitude):
        start = min(start, duration)
        end = min(start + duration // 3, duration)
        p = spike_profile(duration, start, end, magnitude, ramp=10)
        lo, hi = min(1.0, magnitude), max(1.0, magnitude)
        assert (p >= lo - 1e-9).all() and (p <= hi + 1e-9).all()

    @given(st.integers(10, 500), st.integers(0, 499))
    @settings(max_examples=60)
    def test_ramp_profile_monotone(self, duration, start):
        start = min(start, duration)
        p = ramp_profile(duration, start, ramp=30)
        assert (np.diff(p) >= -1e-12).all()
        assert p.min() >= 0.0 and p.max() <= 1.0


class TestTimeSeriesProperties:
    @given(
        st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=200),
        st.integers(1, 10),
    )
    @settings(max_examples=60)
    def test_resample_sum_conserves_total(self, values, factor):
        ts = TimeSeries(np.asarray(values))
        usable = (len(values) // factor) * factor
        out = ts.resample(factor, how="sum")
        assert out.total() == pytest.approx(float(np.sum(values[:usable])), rel=1e-9, abs=1e-6)

    @given(st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=200))
    @settings(max_examples=60)
    def test_window_roundtrip(self, values):
        ts = TimeSeries(np.asarray(values), start=100)
        w = ts.window(ts.start, ts.end)
        assert np.array_equal(w.values, ts.values)
