"""Tests for the anomaly-detection module (both perception layers)."""

import numpy as np
import pytest

from repro.detection import (
    BasicPerception,
    CaseBuilder,
    PhenomenonPerception,
    PhenomenonRule,
)
from repro.dbsim.monitor import InstanceMetrics
from repro.timeseries import AnomalousFeature, FeatureKind, TimeSeries


def noisy(n, seed=0, loc=10.0):
    return loc + np.random.default_rng(seed).normal(size=n)


def metrics_with_spike(metric="active_session", at=(300, 340), n=900):
    values = noisy(n)
    values[at[0]:at[1]] += 60.0
    series = {metric: TimeSeries(values, start=0, name=metric)}
    # A quiet second metric for realism.
    series["qps"] = TimeSeries(noisy(n, seed=99, loc=100.0), start=0, name="qps")
    return InstanceMetrics(series)


class TestBasicPerception:
    def test_detects_active_session_spike(self):
        features = BasicPerception().perceive(metrics_with_spike())
        spikes = [f for f in features if f.metric == "active_session"]
        assert len(spikes) >= 1
        assert spikes[0].kind is FeatureKind.SPIKE_UP
        assert 290 <= spikes[0].start <= 310

    def test_quiet_metrics_produce_nothing(self):
        metrics = InstanceMetrics(
            {"cpu_usage": TimeSeries(noisy(600), name="cpu_usage")}
        )
        assert BasicPerception().perceive(metrics) == []

    def test_min_spike_length_filters_blips(self):
        values = noisy(600)
        values[100] += 60.0
        metrics = InstanceMetrics({"m": TimeSeries(values, name="m")})
        assert BasicPerception(min_spike_length=3).perceive(metrics) == []

    def test_features_sorted_by_start(self):
        values = noisy(900)
        values[100:140] += 60.0
        values[500:540] += 60.0
        metrics = InstanceMetrics({"m": TimeSeries(values, name="m")})
        features = BasicPerception().perceive(metrics)
        starts = [f.start for f in features]
        assert starts == sorted(starts)


class TestPhenomenonPerception:
    def _feature(self, metric, kind, start, end):
        return AnomalousFeature(metric, kind, start, end, severity=5.0)

    def test_default_rule_fires_on_session_spike(self):
        features = [
            self._feature("active_session", FeatureKind.SPIKE_UP, 100, 160)
        ]
        phenomena = PhenomenonPerception().recognise(features)
        assert len(phenomena) == 1
        assert phenomena[0].rule == "active_session_anomaly"
        assert phenomena[0].start == 100 and phenomena[0].end == 160

    def test_level_shift_also_matches(self):
        features = [
            self._feature("active_session", FeatureKind.LEVEL_SHIFT_UP, 100, 400)
        ]
        assert PhenomenonPerception().recognise(features)

    def test_downward_features_ignored_by_defaults(self):
        features = [
            self._feature("active_session", FeatureKind.SPIKE_DOWN, 100, 160)
        ]
        assert PhenomenonPerception().recognise(features) == []

    def test_overlapping_features_grouped(self):
        features = [
            self._feature("cpu_usage", FeatureKind.SPIKE_UP, 100, 150),
            self._feature("cpu_usage", FeatureKind.SPIKE_UP, 140, 200),
        ]
        phenomena = PhenomenonPerception().recognise(features)
        assert len(phenomena) == 1
        assert phenomena[0].end == 200

    def test_disjoint_features_separate(self):
        features = [
            self._feature("cpu_usage", FeatureKind.SPIKE_UP, 100, 150),
            self._feature("cpu_usage", FeatureKind.SPIKE_UP, 500, 550),
        ]
        assert len(PhenomenonPerception().recognise(features)) == 2

    def test_custom_rule(self):
        rule = PhenomenonRule("rowlock_anomaly", ("innodb_row_lock_waits.spike_up",))
        perception = PhenomenonPerception((rule,))
        features = [
            self._feature("innodb_row_lock_waits", FeatureKind.SPIKE_UP, 10, 40)
        ]
        assert perception.recognise(features)[0].rule == "rowlock_anomaly"

    def test_empty_rule_rejected(self):
        with pytest.raises(ValueError):
            PhenomenonRule("x", ())
        with pytest.raises(ValueError):
            PhenomenonPerception(())


class TestCaseBuilder:
    def _phen(self, rule, start, end):
        from repro.detection.phenomenon import AnomalyPhenomenon

        return AnomalyPhenomenon(rule=rule, start=start, end=end)

    def test_merges_close_same_type(self):
        anomalies = CaseBuilder(merge_gap_s=120).build(
            [self._phen("a", 100, 200), self._phen("a", 250, 300)]
        )
        assert len(anomalies) == 1
        assert anomalies[0].start == 100 and anomalies[0].end == 300

    def test_distant_same_type_separate(self):
        anomalies = CaseBuilder(merge_gap_s=60, min_duration_s=10).build(
            [self._phen("a", 100, 200), self._phen("a", 500, 600)]
        )
        assert len(anomalies) == 2

    def test_overlapping_types_merge_into_one_case(self):
        anomalies = CaseBuilder(min_duration_s=10).build(
            [self._phen("a", 100, 200), self._phen("b", 150, 260)]
        )
        assert len(anomalies) == 1
        assert anomalies[0].types == ("a", "b")

    def test_min_duration_filter(self):
        anomalies = CaseBuilder(min_duration_s=60).build(
            [self._phen("a", 100, 120)]
        )
        assert anomalies == []

    def test_empty_input(self):
        assert CaseBuilder().build([]) == []

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            CaseBuilder(merge_gap_s=-1)


class TestEndToEndDetection:
    def test_spike_detected_into_case(self):
        metrics = metrics_with_spike(at=(300, 360))
        features = BasicPerception().perceive(metrics)
        phenomena = PhenomenonPerception().recognise(features)
        anomalies = CaseBuilder(min_duration_s=30).build(phenomena)
        assert len(anomalies) == 1
        a = anomalies[0]
        assert "active_session_anomaly" in a.types
        assert 280 <= a.start <= 310
        assert 350 <= a.end <= 380
