"""Tests for the real-time streaming anomaly detector."""

import numpy as np
import pytest

from repro.collection import Broker, MetricsCollector
from repro.dbsim.monitor import InstanceMetrics
from repro.detection import RealtimeAnomalyDetector
from repro.timeseries import TimeSeries


def publish_metrics(broker, values, metric="active_session", start=0):
    metrics = InstanceMetrics(
        {metric: TimeSeries(np.asarray(values, float), start=start, name=metric)}
    )
    MetricsCollector(broker).collect(metrics)


def quiet_then_spike(n=1200, at=(900, 1000), seed=0, loc=10.0):
    values = loc + np.random.default_rng(seed).normal(size=n)
    values[at[0]:at[1]] += 80.0
    return values


class TestRealtimeDetection:
    def test_detects_spike_once(self):
        broker = Broker()
        publish_metrics(broker, quiet_then_spike())
        detector = RealtimeAnomalyDetector(
            broker.consumer("performance_metrics"), window_s=1200
        )
        events = detector.run_until_drained()
        fresh = [e for e in events if not e.is_update]
        assert len(fresh) >= 1
        anomaly = fresh[0].anomaly
        assert "active_session_anomaly" in anomaly.types
        assert 870 <= anomaly.start <= 930
        # No duplicate emission of the same anomaly.
        keys = [(e.anomaly.types, e.anomaly.start // 60) for e in fresh]
        assert len(keys) == len(set(keys))

    def test_quiet_stream_emits_nothing(self):
        broker = Broker()
        values = 10.0 + np.random.default_rng(1).normal(size=900)
        publish_metrics(broker, values)
        detector = RealtimeAnomalyDetector(broker.consumer("performance_metrics"))
        assert detector.run_until_drained() == []

    def test_incremental_polling_matches_stream_time(self):
        broker = Broker()
        publish_metrics(broker, quiet_then_spike(n=600, at=(400, 460)))
        detector = RealtimeAnomalyDetector(
            broker.consumer("performance_metrics"), window_s=600
        )
        while detector.consumer.lag > 0:
            detector.poll(max_messages=100)
        assert detector.stream_time == 599

    def test_ongoing_anomaly_update_events(self):
        # A level shift keeps growing; later evaluations emit updates.
        broker = Broker()
        n = 1400
        values = 10.0 + np.random.default_rng(2).normal(size=n)
        values[900:] += 60.0
        publish_metrics(broker, values)
        detector = RealtimeAnomalyDetector(
            broker.consumer("performance_metrics"),
            window_s=1200,
            evaluation_interval_s=60,
        )
        events = []
        while detector.consumer.lag > 0:
            # Live arrival: one message per stream second.
            events.extend(detector.poll(max_messages=60))
        assert any(not e.is_update for e in events)
        assert any(e.is_update for e in events)

    def test_multiple_metrics(self):
        broker = Broker()
        publish_metrics(broker, quiet_then_spike(n=900, at=(700, 760), seed=3))
        publish_metrics(
            broker, quiet_then_spike(n=900, at=(700, 760), seed=4, loc=40.0),
            metric="cpu_usage",
        )
        detector = RealtimeAnomalyDetector(
            broker.consumer("performance_metrics"), window_s=900
        )
        events = detector.run_until_drained()
        types = {t for e in events for t in e.anomaly.types}
        assert "active_session_anomaly" in types
        assert "cpu_anomaly" in types

    def test_invalid_parameters(self):
        broker = Broker()
        with pytest.raises(ValueError):
            RealtimeAnomalyDetector(broker.consumer("x"), window_s=0)

    def test_empty_topic(self):
        broker = Broker()
        detector = RealtimeAnomalyDetector(broker.consumer("performance_metrics"))
        assert detector.poll() == []
        assert detector.stream_time is None


class TestBufferGapHandling:
    def test_missing_samples_forward_filled(self):
        from repro.detection.realtime import _MetricBuffer

        buffer = _MetricBuffer(window_s=100)
        for t in range(0, 50):
            buffer.add(t, 10.0)
        buffer.add(60, 99.0)  # gap between 50 and 60
        series = buffer.series(now=60)
        assert series is not None
        assert series.start == 0
        # The gap carries the last value forward.
        assert series.values[55 - series.start] == 10.0
        assert series.values[-1] == 99.0

    def test_too_few_samples_returns_none(self):
        from repro.detection.realtime import _MetricBuffer

        buffer = _MetricBuffer(window_s=100)
        for t in range(3):
            buffer.add(t, 1.0)
        assert buffer.series(now=3) is None

    def test_trim_discards_old_samples(self):
        from repro.detection.realtime import _MetricBuffer

        buffer = _MetricBuffer(window_s=10)
        for t in range(50):
            buffer.add(t, 1.0)
        buffer.trim(now=49)
        assert all(t >= 39 for t in buffer.samples)


class TestPerInstanceIsolation:
    """One broker, two instance-keyed streams, one detector per instance."""

    @staticmethod
    def _publish(broker, instance_id, values):
        metrics = InstanceMetrics(
            {
                "active_session": TimeSeries(
                    np.asarray(values, float), start=0, name="active_session"
                )
            }
        )
        MetricsCollector(broker, instance_id=instance_id).collect(metrics)

    def test_anomaly_on_a_leaves_b_baseline_untouched(self):
        from repro.collection import METRIC_TOPIC, instance_topic

        spiky = quiet_then_spike(n=1200, at=(900, 1000), seed=7)
        quiet = 10.0 + np.random.default_rng(8).normal(size=1200)
        shared = Broker()
        self._publish(shared, "db-a", spiky)
        self._publish(shared, "db-b", quiet)
        # Control: db-b's stream alone on a private broker.
        solo = Broker()
        self._publish(solo, "db-b", quiet)

        topic_b = instance_topic(METRIC_TOPIC, "db-b")
        detector_a = RealtimeAnomalyDetector(
            shared.consumer(instance_topic(METRIC_TOPIC, "db-a")),
            window_s=1200,
            instance_id="db-a",
        )
        detector_b = RealtimeAnomalyDetector(
            shared.consumer(topic_b), window_s=1200, instance_id="db-b"
        )
        control = RealtimeAnomalyDetector(
            solo.consumer(topic_b), window_s=1200, instance_id="db-b"
        )

        events_a = detector_a.run_until_drained()
        fresh = [e for e in events_a if not e.is_update]
        assert fresh and all(e.instance_id == "db-a" for e in fresh)
        # db-b sees nothing, and its baseline buffer is sample-identical
        # to the control run that never shared a broker with db-a.
        assert detector_b.run_until_drained() == []
        assert control.run_until_drained() == []
        assert (
            detector_b._buffers["active_session"].samples
            == control._buffers["active_session"].samples
        )

    def test_detector_skips_misrouted_records(self):
        from repro.collection import METRIC_TOPIC, instance_topic

        # A collector misconfigured to write db-a records onto db-b's
        # topic: the instance-aware detector must drop them.
        broker = Broker()
        topic_b = instance_topic(METRIC_TOPIC, "db-b")
        MetricsCollector(broker, topic=topic_b, instance_id="db-a").collect(
            InstanceMetrics(
                {
                    "active_session": TimeSeries(
                        np.asarray(quiet_then_spike(), float),
                        start=0,
                        name="active_session",
                    )
                }
            )
        )
        detector = RealtimeAnomalyDetector(
            broker.consumer(topic_b), window_s=1200, instance_id="db-b"
        )
        assert detector.run_until_drained() == []
        assert detector._buffers == {}
