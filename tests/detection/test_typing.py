"""Tests for the anomaly-category classifier."""


from repro.detection import classify_case
from repro.workload import AnomalyCategory


class TestClassifyFixtures:
    def test_business_spike_typed(self, spike_case):
        verdict = classify_case(spike_case.case)
        assert verdict.category is AnomalyCategory.BUSINESS_SPIKE
        assert verdict.qps_ratio >= 2.0

    def test_poor_sql_typed(self, poor_sql_case):
        verdict = classify_case(poor_sql_case.case)
        assert verdict.category is AnomalyCategory.POOR_SQL
        assert max(verdict.cpu_during, verdict.io_during) >= 85.0

    def test_mdl_lock_typed(self, mdl_lock_case):
        verdict = classify_case(mdl_lock_case.case)
        assert verdict.category is AnomalyCategory.MDL_LOCK

    def test_row_lock_typed(self, row_lock_case):
        verdict = classify_case(row_lock_case.case)
        assert verdict.category in (
            AnomalyCategory.ROW_LOCK,
            AnomalyCategory.MDL_LOCK,  # a mild lock storm can look MDL-ish
        )

    def test_evidence_string(self, poor_sql_case):
        verdict = classify_case(poor_sql_case.case)
        assert "cpu" in verdict.evidence and "qps" in verdict.evidence


class TestClassifierAccuracy:
    def test_majority_accuracy_over_fixture_set(self, all_cases):
        hits = sum(
            classify_case(lc.case).category is lc.category for lc in all_cases
        )
        assert hits >= 3  # at least 3 of the 4 categories typed correctly
