"""Tests for the autonomous diagnosis service."""

import numpy as np
import pytest

from repro.collection import Broker, MetricsCollector, QueryLogCollector
from repro.dbsim import DatabaseInstance
from repro.service import Diagnosis, PinSqlService, ServiceConfig
from repro.workload import (
    AnomalyCategory,
    WorkloadGenerator,
    build_population,
    inject_anomaly,
)


@pytest.fixture(scope="module")
def anomaly_stream():
    """A broker loaded with a simulated run containing a row-lock anomaly."""
    duration, onset = 900, 600
    rng = np.random.default_rng(55)
    population = build_population(duration, rng, n_businesses=5)
    truth = inject_anomaly(
        population, rng, AnomalyCategory.ROW_LOCK, onset, duration,
        target_rate=(25.0, 35.0), lock_hold_ms=(300.0, 400.0),
    )
    instance = DatabaseInstance(schema=population.schema, cpu_cores=8, seed=4)
    result = instance.run(WorkloadGenerator(population), duration=duration)
    broker = Broker()
    QueryLogCollector(broker).collect(result.query_log)
    MetricsCollector(broker).collect(result.metrics)
    return broker, population, truth, onset


class TestServiceLoop:
    def test_detects_and_diagnoses(self, anomaly_stream):
        broker, population, truth, onset = anomaly_stream
        service = PinSqlService(
            broker,
            ServiceConfig(delta_start_s=500, detector_window_s=900),
        )
        # Teach the service the statement catalog (production collectors
        # ship statements; our simulated topic carries only metrics).
        for spec in population.specs.values():
            service.register_statement(spec.template.replace("?", "1"))
        diagnoses = service.run_until_drained()
        assert diagnoses, "the anomaly must be diagnosed"
        diagnosis = diagnoses[0]
        # The detected window must cover the injected anomaly (nearby
        # phenomena may merge in, extending the window's start earlier).
        assert diagnosis.anomaly.start < onset + 120
        assert diagnosis.anomaly.end > onset + 60
        assert diagnosis.result.rsql_ids
        assert diagnosis.result.rsql_ids[0] in truth.r_sql_ids
        assert "PinSQL diagnosis report" in diagnosis.report.text

    def test_notification_hook_invoked(self, anomaly_stream):
        broker, population, truth, onset = anomaly_stream
        # Fresh consumers: new service instance re-reads the topics.
        received = []
        service = PinSqlService(
            broker,
            ServiceConfig(delta_start_s=500, detector_window_s=900),
            notify=received.append,
        )
        service.run_until_drained()
        assert received
        assert isinstance(received[0], Diagnosis)

    def test_register_catalog_merges(self, anomaly_stream):
        broker, population, _, _ = anomaly_stream
        from repro.sqltemplate import TemplateCatalog

        external = TemplateCatalog()
        for spec in population.specs.values():
            external.register_template(spec.sql_id, spec.template, spec.kind, spec.tables)
        service = PinSqlService(broker)
        service.register_catalog(external)
        some_id = next(iter(population.specs))
        assert some_id in service.catalog

    def test_quiet_stream_produces_no_diagnoses(self):
        duration = 400
        rng = np.random.default_rng(66)
        population = build_population(duration, rng, n_businesses=4)
        instance = DatabaseInstance(schema=population.schema, cpu_cores=16, seed=3)
        result = instance.run(WorkloadGenerator(population), duration=duration)
        broker = Broker()
        QueryLogCollector(broker).collect(result.query_log)
        MetricsCollector(broker).collect(result.metrics)
        service = PinSqlService(broker, ServiceConfig(detector_window_s=400))
        assert service.run_until_drained() == []

    def test_min_duration_filter(self, anomaly_stream):
        broker, *_ = anomaly_stream
        service = PinSqlService(
            broker,
            ServiceConfig(
                delta_start_s=500,
                detector_window_s=900,
                min_anomaly_duration_s=10_000,  # unreachably long
            ),
        )
        assert service.run_until_drained() == []


class TestServiceExtras:
    def test_history_provider_consulted(self, anomaly_stream):
        broker, population, truth, onset = anomaly_stream
        queried = []

        def provider(sql_id, days, ts, te):
            queried.append((sql_id, days))
            return None

        service = PinSqlService(
            broker,
            ServiceConfig(delta_start_s=500, detector_window_s=900),
            history_provider=provider,
        )
        diagnoses = service.run_until_drained()
        assert diagnoses
        assert queried  # the provider was asked for history
        days_asked = {d for _, d in queried}
        assert days_asked <= {1, 3, 7}

    def test_verdict_attached(self, anomaly_stream):
        broker, *_ = anomaly_stream
        service = PinSqlService(
            broker, ServiceConfig(delta_start_s=500, detector_window_s=900)
        )
        diagnoses = service.run_until_drained()
        assert diagnoses
        verdict = diagnoses[0].verdict
        assert verdict is not None
        assert verdict.category in AnomalyCategory
        assert "qps" in verdict.evidence

    def test_auto_execution_with_instance(self, anomaly_stream):
        from repro.core import RepairConfig, RepairRule

        broker, population, truth, onset = anomaly_stream
        config = ServiceConfig(
            delta_start_s=500,
            detector_window_s=900,
            repair=RepairConfig(
                rules=(RepairRule(("*",), "sql_throttle"),),
                auto_execute=True,
            ),
        )
        # A live instance handle for the service to act on.
        live = DatabaseInstance(schema=population.schema, cpu_cores=8, seed=9)
        live.start(WorkloadGenerator(population))
        service = PinSqlService(broker, config, instance=live)
        diagnoses = service.run_until_drained()
        assert diagnoses
        assert diagnoses[0].executed
        assert diagnoses[0].plan.executed
        live.finish()
