"""Tests for the autonomous diagnosis service."""

import numpy as np
import pytest

from repro.collection import Broker, MetricsCollector, QueryLogCollector
from repro.dbsim import DatabaseInstance
from repro.service import Diagnosis, PinSqlService, ServiceConfig
from repro.telemetry import MetricsRegistry
from repro.workload import (
    AnomalyCategory,
    WorkloadGenerator,
    build_population,
    inject_anomaly,
)


@pytest.fixture(scope="module")
def anomaly_stream():
    """A broker loaded with a simulated run containing a row-lock anomaly."""
    duration, onset = 900, 600
    rng = np.random.default_rng(55)
    population = build_population(duration, rng, n_businesses=5)
    truth = inject_anomaly(
        population, rng, AnomalyCategory.ROW_LOCK, onset, duration,
        target_rate=(25.0, 35.0), lock_hold_ms=(300.0, 400.0),
    )
    instance = DatabaseInstance(schema=population.schema, cpu_cores=8, seed=4)
    result = instance.run(WorkloadGenerator(population), duration=duration)
    broker = Broker()
    QueryLogCollector(broker).collect(result.query_log)
    MetricsCollector(broker).collect(result.metrics)
    return broker, population, truth, onset


class TestServiceLoop:
    def test_detects_and_diagnoses(self, anomaly_stream):
        broker, population, truth, onset = anomaly_stream
        service = PinSqlService(
            broker,
            ServiceConfig(delta_start_s=500, detector_window_s=900),
        )
        # Teach the service the statement catalog (production collectors
        # ship statements; our simulated topic carries only metrics).
        for spec in population.specs.values():
            service.register_statement(spec.template.replace("?", "1"))
        diagnoses = service.run_until_drained()
        assert diagnoses, "the anomaly must be diagnosed"
        diagnosis = diagnoses[0]
        # The detected window must cover the injected anomaly (nearby
        # phenomena may merge in, extending the window's start earlier).
        assert diagnosis.anomaly.start < onset + 120
        assert diagnosis.anomaly.end > onset + 60
        assert diagnosis.result.rsql_ids
        assert diagnosis.result.rsql_ids[0] in truth.r_sql_ids
        assert "PinSQL diagnosis report" in diagnosis.report.text

    def test_notification_hook_invoked(self, anomaly_stream):
        broker, population, truth, onset = anomaly_stream
        # Fresh consumers: new service instance re-reads the topics.
        received = []
        service = PinSqlService(
            broker,
            ServiceConfig(delta_start_s=500, detector_window_s=900),
            notify=received.append,
        )
        service.run_until_drained()
        assert received
        assert isinstance(received[0], Diagnosis)

    def test_register_catalog_merges(self, anomaly_stream):
        broker, population, _, _ = anomaly_stream
        from repro.sqltemplate import TemplateCatalog

        external = TemplateCatalog()
        for spec in population.specs.values():
            external.register_template(spec.sql_id, spec.template, spec.kind, spec.tables)
        service = PinSqlService(broker)
        service.register_catalog(external)
        some_id = next(iter(population.specs))
        assert some_id in service.catalog

    def test_quiet_stream_produces_no_diagnoses(self):
        duration = 400
        rng = np.random.default_rng(66)
        population = build_population(duration, rng, n_businesses=4)
        instance = DatabaseInstance(schema=population.schema, cpu_cores=16, seed=3)
        result = instance.run(WorkloadGenerator(population), duration=duration)
        broker = Broker()
        QueryLogCollector(broker).collect(result.query_log)
        MetricsCollector(broker).collect(result.metrics)
        service = PinSqlService(broker, ServiceConfig(detector_window_s=400))
        assert service.run_until_drained() == []

    def test_min_duration_filter(self, anomaly_stream):
        broker, *_ = anomaly_stream
        service = PinSqlService(
            broker,
            ServiceConfig(
                delta_start_s=500,
                detector_window_s=900,
                min_anomaly_duration_s=10_000,  # unreachably long
            ),
        )
        assert service.run_until_drained() == []


class TestServiceExtras:
    def test_history_provider_consulted(self, anomaly_stream):
        broker, population, truth, onset = anomaly_stream
        queried = []

        def provider(sql_id, days, ts, te):
            queried.append((sql_id, days))
            return None

        service = PinSqlService(
            broker,
            ServiceConfig(delta_start_s=500, detector_window_s=900),
            history_provider=provider,
        )
        diagnoses = service.run_until_drained()
        assert diagnoses
        assert queried  # the provider was asked for history
        days_asked = {d for _, d in queried}
        assert days_asked <= {1, 3, 7}

    def test_verdict_attached(self, anomaly_stream):
        broker, *_ = anomaly_stream
        service = PinSqlService(
            broker, ServiceConfig(delta_start_s=500, detector_window_s=900)
        )
        diagnoses = service.run_until_drained()
        assert diagnoses
        verdict = diagnoses[0].verdict
        assert verdict is not None
        assert verdict.category in AnomalyCategory
        assert "qps" in verdict.evidence

    def test_idle_guard_breaks_on_non_advancing_broker(self, anomaly_stream):
        class StuckBroker(Broker):
            """Reports lag but never hands out messages."""

            def read(self, topic, offset, max_messages):
                return []

        broker, population, *_ = anomaly_stream
        stuck = StuckBroker()
        # Republish the metric stream so lag is positive from the start.
        for message in broker.read("performance_metrics", 0, 10):
            stuck.publish("performance_metrics", message.key, message.value)
        registry = MetricsRegistry()
        service = PinSqlService(stuck, registry=registry)
        assert service.run_until_drained(max_idle_iterations=3) == []
        assert service.detector.consumer.lag > 0  # still stuck, but we returned
        skipped = registry.get(
            "service_anomalies_skipped_total", reason="drain_stalled"
        )
        assert skipped is not None and skipped.value == 1

    def test_auto_execution_with_instance(self, anomaly_stream):
        from repro.core import RepairConfig, RepairRule

        broker, population, truth, onset = anomaly_stream
        config = ServiceConfig(
            delta_start_s=500,
            detector_window_s=900,
            repair=RepairConfig(
                rules=(RepairRule(("*",), "sql_throttle"),),
                auto_execute=True,
            ),
        )
        # A live instance handle for the service to act on.
        live = DatabaseInstance(schema=population.schema, cpu_cores=8, seed=9)
        live.start(WorkloadGenerator(population))
        service = PinSqlService(broker, config, instance=live)
        diagnoses = service.run_until_drained()
        assert diagnoses
        assert diagnoses[0].executed
        assert diagnoses[0].plan.executed
        live.finish()


class TestServiceTelemetry:
    """The service self-reports through an injected registry."""

    @pytest.fixture()
    def diagnosed(self, anomaly_stream):
        broker, population, truth, onset = anomaly_stream
        registry = MetricsRegistry()
        service = PinSqlService(
            broker,
            ServiceConfig(delta_start_s=500, detector_window_s=900),
            registry=registry,
        )
        for spec in population.specs.values():
            service.register_statement(spec.template.replace("?", "1"))
        diagnoses = service.run_until_drained()
        return service, registry, diagnoses

    def test_step_increments_expected_counters(self, diagnosed):
        service, registry, diagnoses = diagnosed
        assert diagnoses
        assert registry.get("service_steps_total").value >= 1
        assert registry.get("service_diagnoses_total").value == len(diagnoses)
        assert registry.get("service_querylog_messages_total").value > 0
        assert registry.get("logstore_queries_ingested_total").value > 0
        assert registry.get("detector_points_consumed_total").value > 0
        assert registry.get("detector_evaluations_total").value > 0
        assert registry.get("detector_events_total", kind="new").value >= len(
            diagnoses
        )

    def test_pipeline_spans_recorded_per_stage(self, diagnosed):
        service, registry, diagnoses = diagnosed
        for stage in (
            "pinsql.analyze",
            "session_estimation",
            "hsql_ranking",
            "clustering_and_filtering",
            "history_verification",
            "service.diagnose",
        ):
            hist = registry.get("span_duration_seconds", span=stage)
            assert hist is not None, stage
            assert hist.count >= len(diagnoses)

    def test_broker_lag_gauges_drained_to_zero(self, diagnosed):
        service, registry, _ = diagnosed
        lag = registry.get(
            "broker_consumer_lag",
            topic="performance_metrics",
            consumer=service.detector.consumer.name,
        )
        # The service's consumers live on the shared module fixture broker,
        # whose registry is the global one; the service registry sees lag
        # gauges only when the broker was built with it.  Either way the
        # consumer itself must be drained.
        assert service.detector.consumer.lag == 0
        if lag is not None:
            assert lag.value == 0

    def test_metric_sample_mirror_is_bounded_and_public(self, diagnosed):
        service, registry, _ = diagnosed
        # The mirror is populated via the detector's public accessor …
        names = dict(service.detector.iter_buffer_samples())
        assert "active_session" in names
        with pytest.raises(TypeError):
            names["active_session"][0] = 1.0  # read-only view
        # … and bounded by window_s + delta_start_s.
        now = service.detector.stream_time
        bound = service.detector.window_s + service.config.delta_start_s
        for samples in service._metric_samples.values():
            assert all(t >= now - bound for t in samples)
        assert registry.get("service_metric_samples_resident").value == sum(
            len(s) for s in service._metric_samples.values()
        )

    def test_selfmon_history_feeds_repo_detectors(self, anomaly_stream):
        """Watch-the-watcher: detectors run on the service's own gauges.

        Replays the metric topic in chunks so the service samples its
        own registry at many distinct stream times, then runs the repo's
        detectors on the exported gauge history.
        """
        from repro.timeseries import LevelShiftDetector, SpikeDetector

        broker, population, *_ = anomaly_stream
        registry = MetricsRegistry()
        staged = Broker(registry=registry)
        for message in broker.read("query_logs", 0, broker.size("query_logs")):
            staged.publish("query_logs", message.key, message.value)
        service = PinSqlService(
            staged,
            ServiceConfig(delta_start_s=500, detector_window_s=900),
            registry=registry,
        )
        for spec in population.specs.values():
            service.register_statement(spec.template.replace("?", "1"))
        metrics = broker.read(
            "performance_metrics", 0, broker.size("performance_metrics")
        )
        for i in range(0, len(metrics), 300):
            for message in metrics[i : i + 300]:
                staged.publish("performance_metrics", message.key, message.value)
            service.step()
        series = service.selfmon.series("logstore_resident_bytes")
        assert series is not None
        assert len(series) > 8
        assert series.values.max() > 0
        for detector in (SpikeDetector(), LevelShiftDetector()):
            assert isinstance(detector.detect(series), list)
        # The lag gauge history is exported too (the series the paper's
        # deployment would alert on when the loop falls behind).
        lag_key = (
            "broker_consumer_lag{consumer="
            + service.detector.consumer.name
            + ",topic=performance_metrics}"
        )
        assert lag_key in service.selfmon.names()
