"""Tests for the Repairing Module (paper Section VII)."""

import pytest

from repro.core import (
    DEFAULT_REPAIR_CONFIG,
    AutoScaleAction,
    OptimizationSkip,
    PinSQL,
    QueryOptimizationAction,
    RepairConfig,
    RepairEngine,
    RepairRule,
    SqlThrottleAction,
    plan_optimization,
)
from repro.dbsim import DatabaseInstance, TemplateSpec
from repro.sqltemplate import StatementKind


class TestRules:
    def test_rule_matching(self):
        rule = RepairRule(("cpu_anomaly",), "query_optimization")
        assert rule.matches(("cpu_anomaly", "active_session_anomaly"))
        assert not rule.matches(("iops_anomaly",))

    def test_wildcard_rule(self):
        rule = RepairRule(("*",), "sql_throttle")
        assert rule.matches(("anything",))

    def test_invalid_action_rejected(self):
        with pytest.raises(ValueError):
            RepairRule(("x",), "reboot_the_world")

    def test_empty_types_rejected(self):
        with pytest.raises(ValueError):
            RepairRule((), "sql_throttle")

    def test_config_validation(self):
        with pytest.raises(ValueError):
            RepairConfig(rules=())
        with pytest.raises(ValueError):
            RepairConfig(rules=DEFAULT_REPAIR_CONFIG.rules, top_k=0)

    def test_default_config_shape(self):
        # Paper default: throttling first, then query optimization.
        actions = [r.action for r in DEFAULT_REPAIR_CONFIG.rules]
        assert actions == ["sql_throttle", "query_optimization"]
        assert not DEFAULT_REPAIR_CONFIG.auto_execute


class TestPlanning:
    def test_plan_optimization_gains_from_observed_rows(self, poor_sql_case):
        sql_id = next(iter(poor_sql_case.r_sqls))
        action = plan_optimization(poor_sql_case.case, sql_id)
        assert action.rows_gain > 0.9  # full scan → huge gain
        assert 0 < action.tres_gain <= action.rows_gain

    def test_plan_optimization_skips_cheap_template(self, poor_sql_case):
        case = poor_sql_case.case
        cheap = min(
            case.sql_ids,
            key=lambda sid: case.templates.get(sid, "total_examined_rows").total(),
        )
        action = plan_optimization(case, cheap)
        assert isinstance(action, OptimizationSkip)
        assert action.sql_id == cheap
        assert "index-backed" in action.reason

    def test_plan_optimization_findings_become_evidence(self, poor_sql_case):
        from repro.sqlanalysis import Finding, Severity

        sql_id = next(iter(poor_sql_case.r_sqls))
        finding = Finding(
            rule="non-sargable-function",
            severity=Severity.HIGH,
            message="predicate applies LOWER(c1)",
            sql_id=sql_id,
        )
        action = plan_optimization(poor_sql_case.case, sql_id, [finding])
        assert action.rows_gain > 0.9  # structural cause → full gain kept
        assert action.evidence == ("non-sargable-function: predicate applies LOWER(c1)",)

    def test_plan_optimization_tempered_without_structural_cause(self, poor_sql_case):
        sql_id = next(iter(poor_sql_case.r_sqls))
        statistical = plan_optimization(poor_sql_case.case, sql_id)
        clean = plan_optimization(poor_sql_case.case, sql_id, findings=[])
        assert clean.rows_gain < statistical.rows_gain
        assert clean.evidence == ()

    def test_engine_records_skips_with_analyzer(self, poor_sql_case):
        from repro.sqlanalysis import SqlAnalyzer

        result = PinSQL().analyze(poor_sql_case.case)
        # Force optimization planning over several targets: the poor SQL
        # stays actionable, index-backed background templates are skipped.
        cheap = min(
            poor_sql_case.case.sql_ids,
            key=lambda sid: poor_sql_case.case.templates.get(
                sid, "total_examined_rows"
            ).total(),
        )
        result.rsql.ranked = [(next(iter(poor_sql_case.r_sqls)), 1.0), (cheap, 0.5)]
        config = RepairConfig(
            rules=(RepairRule(("*",), "query_optimization"),), top_k=2
        )
        engine = RepairEngine(config, analyzer=SqlAnalyzer())
        plan = engine.plan(poor_sql_case.case, result)
        assert [s.sql_id for s in plan.skips] == [cheap]
        assert "index-backed" in plan.skips[0].reason
        assert all(a.sql_id != cheap for a in plan.actions)

    def test_engine_plans_for_top_rsql(self, poor_sql_case):
        result = PinSQL().analyze(poor_sql_case.case)
        engine = RepairEngine(DEFAULT_REPAIR_CONFIG)
        plan = engine.plan(
            poor_sql_case.case, result, anomaly_types=("cpu_anomaly",)
        )
        assert "QueryOptimizationAction" in plan.suggested_kinds
        assert plan.session_lift > 0

    def test_throttle_gated_by_session_lift(self, poor_sql_case):
        result = PinSQL().analyze(poor_sql_case.case)
        config = RepairConfig(
            rules=(
                RepairRule(
                    ("active_session_anomaly",),
                    "sql_throttle",
                    min_session_lift=1e9,  # unreachable threshold
                ),
            ),
        )
        plan = RepairEngine(config).plan(
            poor_sql_case.case, result, anomaly_types=("active_session_anomaly",)
        )
        assert plan.actions == []

    def test_empty_rsql_list_plans_nothing(self, poor_sql_case):
        result = PinSQL().analyze(poor_sql_case.case)
        result.rsql.ranked = []
        plan = RepairEngine().plan(poor_sql_case.case, result)
        assert plan.actions == []


def _index_advisory(sql_id, table="t", columns="c5,c6", rows_per_call=250_000.0):
    from repro.sqlanalysis import Severity
    from repro.sqlanalysis.workload import Advisory

    return Advisory(
        advisor="index-advisor",
        severity=Severity.HIGH,
        message=f"an index on {table} ({columns}) would avoid scans",
        table=table,
        tables=(table,),
        sql_ids=(sql_id,),
        suggestion=f"CREATE INDEX idx ON {table} ({columns})",
        score=1e8,
        evidence={"columns": columns, "rows_per_call": rows_per_call},
    )


class TestAdvisoryCorroboration:
    def test_index_advisory_upgrades_skip_to_action(self, poor_sql_case):
        case = poor_sql_case.case
        cheap = min(
            case.sql_ids,
            key=lambda sid: case.templates.get(sid, "total_examined_rows").total(),
        )
        # Without the advisory the index-backed profile is skipped ...
        assert isinstance(plan_optimization(case, cheap), OptimizationSkip)
        # ... with it, the plan carries a concrete add-index action.
        action = plan_optimization(
            case, cheap, advisories=[_index_advisory(cheap)]
        )
        assert isinstance(action, QueryOptimizationAction)
        assert action.rows_gain > 0
        assert action.index_table == "t"
        assert action.index_columns == ("c5", "c6")
        assert any("index-advisor" in line for line in action.evidence)

    def test_unrelated_advisory_does_not_upgrade(self, poor_sql_case):
        case = poor_sql_case.case
        cheap = min(
            case.sql_ids,
            key=lambda sid: case.templates.get(sid, "total_examined_rows").total(),
        )
        action = plan_optimization(
            case, cheap, advisories=[_index_advisory("SOMEOTHER")]
        )
        assert isinstance(action, OptimizationSkip)

    def test_advisory_evidence_joins_scan_gain(self, poor_sql_case):
        sql_id = next(iter(poor_sql_case.r_sqls))
        action = plan_optimization(
            poor_sql_case.case, sql_id, advisories=[_index_advisory(sql_id)]
        )
        assert action.rows_gain > 0.9
        assert action.evidence[0].startswith("index-advisor:")
        assert action.index_columns == ("c5", "c6")

    def test_executing_indexed_action_materialises_index(self):
        inst = DatabaseInstance(seed=1)
        from tests.dbsim.test_engine import ConstantWorkload

        spec = TemplateSpec(
            sql_id="POOR0001",
            template="SELECT * FROM t WHERE c5 = ?",
            kind=StatementKind.SELECT,
            tables=("t",),
            examined_rows_mean=1_000_000.0,
        )
        inst.start(ConstantWorkload([spec], {"POOR0001": 1.0}))
        inst.schema.ensure_table("t", row_count=1_000_000)
        QueryOptimizationAction(
            "POOR0001",
            rows_gain=0.9,
            tres_gain=0.85,
            index_table="t",
            index_columns=("c5", "c6"),
        ).execute(inst, 0)
        table = inst.schema.get("t")
        assert table.covers(("c5", "c6"))
        assert table.has_index("c5")
        inst.finish()


class TestExecution:
    def _spec(self):
        return TemplateSpec(
            sql_id="POOR0001",
            template="SELECT * FROM t WHERE x = ?",
            kind=StatementKind.SELECT,
            tables=("t",),
            base_response_ms=50.0,
            examined_rows_mean=1_000_000.0,
        )

    def _workload(self):
        from tests.dbsim.test_engine import ConstantWorkload

        return ConstantWorkload([self._spec()], {"POOR0001": 10.0})

    def test_throttle_action_executes(self):
        inst = DatabaseInstance(seed=1)
        engine = inst.start(self._workload())
        SqlThrottleAction("POOR0001", factor=0.0, duration_s=10).execute(inst, now_s=0)
        engine.run(5)
        result = inst.finish()
        assert result.metrics["qps"].total() == 0.0

    def test_optimization_action_executes(self):
        inst = DatabaseInstance(cpu_cores=2, seed=1)
        engine = inst.start(self._workload())
        QueryOptimizationAction("POOR0001", rows_gain=0.95, tres_gain=0.9).execute(inst, 0)
        engine.run(10)
        result = inst.finish()
        assert result.metrics.cpu_usage.mean() < 60.0

    def test_autoscale_action_executes(self):
        inst = DatabaseInstance(cpu_cores=2, seed=1)
        inst.start(self._workload())
        AutoScaleAction(sql_id="", new_cores=16).execute(inst, 0)
        assert inst.resources.cpu_cores == 16
        inst.finish()

    def test_auto_execute_flag_respected(self, poor_sql_case):
        result = PinSQL().analyze(poor_sql_case.case)
        engine = RepairEngine(DEFAULT_REPAIR_CONFIG)  # auto_execute=False
        plan = engine.plan(poor_sql_case.case, result, anomaly_types=("cpu_anomaly",))
        inst = DatabaseInstance(seed=1)
        inst.start(self._workload())
        executed = engine.execute(plan, inst, now_s=0)
        assert executed == []
        inst.finish()


class TestAutoScaleReadReplicas:
    def test_read_offload_executes(self):
        from tests.dbsim.test_engine import ConstantWorkload, select_spec

        inst = DatabaseInstance(cpu_cores=2, seed=1)
        inst.start(ConstantWorkload([select_spec()], {"SEL00001": 10.0}))
        AutoScaleAction(sql_id="", new_cores=8, read_offload=0.5).execute(inst, 0)
        assert inst.resources.cpu_cores == 8
        assert inst.engine.read_offload_fraction == 0.5
        inst.finish()

    def test_engine_builds_action_with_offload(self, poor_sql_case):
        from repro.core import PinSQL, RepairConfig, RepairEngine, RepairRule

        result = PinSQL().analyze(poor_sql_case.case)
        config = RepairConfig(
            rules=(
                RepairRule(
                    ("*",), "autoscale",
                    params=(("new_cores", 64), ("read_offload", 0.3)),
                ),
            ),
        )
        plan = RepairEngine(config).plan(poor_sql_case.case, result)
        (action,) = plan.actions
        assert action.new_cores == 64
        assert action.read_offload == 0.3
