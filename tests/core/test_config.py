"""Tests for PinSQLConfig."""

import pytest

from repro.core import PinSQLConfig, SessionEstimationMode


class TestDefaults:
    def test_paper_defaults(self):
        cfg = PinSQLConfig()
        assert cfg.delta_start_s == 1800          # δs = 30 min
        assert cfg.smooth_factor == 30.0          # ks
        assert cfg.cluster_threshold == 0.8       # τ
        assert cfg.max_clusters == 5              # Kc
        assert cfg.cumulative_threshold == 0.95   # τc
        assert cfg.session_buckets == 10          # K
        assert cfg.history_days == (1, 3, 7)
        assert cfg.session_estimation is SessionEstimationMode.BUCKETS

    def test_all_components_enabled_by_default(self):
        cfg = PinSQLConfig()
        assert cfg.use_trend_score
        assert cfg.use_scale_score
        assert cfg.use_scale_trend_score
        assert cfg.use_weighted_final_score
        assert cfg.use_cumulative_threshold
        assert cfg.use_direct_cause_ranking
        assert cfg.use_history_verification
        assert cfg.use_metric_temp_nodes


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"delta_start_s": -1},
            {"session_buckets": 0},
            {"smooth_factor": 0},
            {"cluster_threshold": 1.5},
            {"max_clusters": 0},
            {"cumulative_threshold": -2.0},
            {"clustering_interval_s": 0},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            PinSQLConfig(**kwargs)


class TestAblations:
    def test_each_named_ablation(self):
        base = PinSQLConfig()
        assert base.without("estimate_session").session_estimation is (
            SessionEstimationMode.RESPONSE_TIME
        )
        assert base.without("buckets").session_estimation is (
            SessionEstimationMode.NO_BUCKETS
        )
        assert not base.without("trend_score").use_trend_score
        assert not base.without("scale_score").use_scale_score
        assert not base.without("scale_trend_score").use_scale_trend_score
        assert not base.without("weighted_final_score").use_weighted_final_score
        assert not base.without("cumulative_threshold").use_cumulative_threshold
        assert not base.without("direct_cause_ranking").use_direct_cause_ranking
        assert not base.without("history_verification").use_history_verification
        assert not base.without("metric_temp_nodes").use_metric_temp_nodes

    def test_ablation_does_not_mutate_original(self):
        base = PinSQLConfig()
        base.without("trend_score")
        assert base.use_trend_score

    def test_unknown_ablation_rejected(self):
        with pytest.raises(ValueError, match="unknown ablation"):
            PinSQLConfig().without("nonsense")
