"""Tests for H-SQL identification (paper Section V)."""

import numpy as np
import pytest

from repro.core import HsqlIdentifier, SessionEstimator
from repro.core.session_estimation import SessionEstimate
from repro.core.case import AnomalyCase
from repro.collection import LogStore, TemplateMetricStore
from repro.dbsim.monitor import InstanceMetrics
from repro.sqltemplate import TemplateCatalog
from repro.timeseries import TimeSeries


def synthetic_case_and_sessions(n=600, as_=400, ae=600):
    """Hand-built sessions: one template drives the anomaly, one has big
    stable traffic, one is tiny noise."""
    rng = np.random.default_rng(0)
    driver = np.full(n, 0.5) + 0.05 * rng.normal(size=n)
    driver[as_:ae] += 30.0
    stable = np.full(n, 20.0) + 0.5 * rng.normal(size=n)
    tiny = np.abs(0.01 * rng.normal(size=n))
    total = driver + stable + tiny

    metrics = InstanceMetrics(
        {"active_session": TimeSeries(total, start=0, name="active_session")}
    )
    templates = TemplateMetricStore(start=0, end=n)
    for sid in ("DRIVER", "STABLE", "TINY"):
        templates.put(sid, "#execution", TimeSeries(np.ones(n), start=0))
    case = AnomalyCase(
        metrics=metrics,
        templates=templates,
        logs=LogStore(),
        catalog=TemplateCatalog(),
        anomaly_start=as_,
        anomaly_end=ae,
    )
    sessions = SessionEstimate(
        per_template={
            "DRIVER": TimeSeries(driver, start=0),
            "STABLE": TimeSeries(stable, start=0),
            "TINY": TimeSeries(tiny, start=0),
        },
        total=TimeSeries(total, start=0),
        selected_buckets=np.zeros(0, dtype=np.int64),
    )
    return case, sessions


class TestScores:
    def test_driver_ranks_first(self):
        case, sessions = synthetic_case_and_sessions()
        ranking = HsqlIdentifier().identify(case, sessions)
        assert ranking.ranked_ids[0] == "DRIVER"

    def test_scores_bounded(self):
        case, sessions = synthetic_case_and_sessions()
        ranking = HsqlIdentifier().identify(case, sessions)
        for s in ranking.scores:
            assert -1.0 <= s.trend <= 1.0
            assert -1.0 <= s.scale <= 1.0
            assert -1.0 <= s.scale_trend <= 1.0

    def test_driver_has_high_trend(self):
        case, sessions = synthetic_case_and_sessions()
        ranking = HsqlIdentifier().identify(case, sessions)
        driver = next(s for s in ranking.scores if s.sql_id == "DRIVER")
        tiny = next(s for s in ranking.scores if s.sql_id == "TINY")
        assert driver.trend > 0.9
        assert driver.trend > tiny.trend

    def test_scale_minmax_normalisation(self):
        case, sessions = synthetic_case_and_sessions()
        ranking = HsqlIdentifier().identify(case, sessions)
        scales = sorted(s.scale for s in ranking.scores)
        assert scales[0] == pytest.approx(-1.0)
        assert scales[-1] == pytest.approx(1.0)

    def test_impact_of_unknown(self):
        case, sessions = synthetic_case_and_sessions()
        ranking = HsqlIdentifier().identify(case, sessions)
        assert ranking.impact_of("NOPE") == float("-inf")
        assert ranking.impact_of("DRIVER") == ranking.scores[0].impact


class TestWeighting:
    def test_alpha_reflects_largest_template(self):
        case, sessions = synthetic_case_and_sessions()
        ranking = HsqlIdentifier().identify(case, sessions)
        # DRIVER has the largest anomaly-window session total, and it
        # correlates strongly with the instance session.
        assert ranking.alpha > 0.9
        assert ranking.beta == pytest.approx(-ranking.alpha)

    def test_constant_weights_when_disabled(self):
        case, sessions = synthetic_case_and_sessions()
        ranking = HsqlIdentifier(use_weighted_final_score=False).identify(case, sessions)
        assert ranking.alpha == 1.0 and ranking.beta == 1.0

    def test_level_ablations_change_impacts(self):
        case, sessions = synthetic_case_and_sessions()
        full = HsqlIdentifier().identify(case, sessions)
        no_scale = HsqlIdentifier(use_scale=False).identify(case, sessions)
        assert any(
            full.impact_of(s.sql_id) != no_scale.impact_of(s.sql_id)
            for s in full.scores
        )

    def test_empty_sessions(self):
        case, _ = synthetic_case_and_sessions()
        empty = SessionEstimate(
            per_template={},
            total=TimeSeries.zeros(case.duration, start=case.ts),
            selected_buckets=np.zeros(0, dtype=np.int64),
        )
        ranking = HsqlIdentifier().identify(case, empty)
        assert ranking.ranked_ids == []


class TestOnSimulatedCase:
    def test_hsql_truth_found_top1(self, poor_sql_case):
        from repro.core import PinSQLConfig

        cfg = PinSQLConfig()
        estimator = SessionEstimator(cfg.session_estimation, cfg.session_buckets)
        case = poor_sql_case.case
        sessions = estimator.estimate(case.logs, case.sql_ids, case.active_session)
        ranking = HsqlIdentifier().identify(case, sessions)
        assert ranking.ranked_ids[0] in poor_sql_case.h_sqls
