"""Tests for the ``repro lint`` CLI (exit codes, formats, artifacts)."""

import json

import pytest

from repro.cli import build_parser, main

BAD_SQL = "SELECT * FROM orders WHERE LOWER(region) = 'emea'"
CLEAN_SQL = "SELECT id FROM orders WHERE region = 1 LIMIT 10"


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["lint"])
        assert args.format == "text"
        assert args.fail_on == "warning"
        assert args.cases is None and args.sql is None

    def test_sql_and_cases_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["lint", "--cases", "x", "--sql", "SELECT 1"])

    def test_bad_fail_on_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["lint", "--fail-on", "loud"])


class TestSingleStatement:
    def test_findings_fail_at_default_threshold(self, capsys):
        code = main(["lint", "--sql", BAD_SQL])
        assert code == 1
        out = capsys.readouterr().out
        assert "select-star" in out and "non-sargable-function" in out

    def test_clean_statement_exits_zero(self, capsys):
        assert main(["lint", "--sql", CLEAN_SQL]) == 0
        assert "0 with findings" in capsys.readouterr().out

    def test_fail_on_never_forces_zero(self):
        assert main(["lint", "--sql", BAD_SQL, "--fail-on", "never"]) == 0

    def test_json_format(self, capsys):
        main(["lint", "--sql", BAD_SQL, "--format", "json", "--fail-on", "never"])
        data = json.loads(capsys.readouterr().out)
        assert data["analyzed"] == 1
        rules = {
            f["rule"] for e in data["entries"] for f in e["findings"]
        }
        assert "select-star" in rules


class TestDefaultCatalog:
    def test_planted_catalog_reports_evaluation(self, capsys):
        code = main(["lint", "--format", "json", "--fail-on", "never", "--seed", "7"])
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["analyzed"] > 50
        evaluation = data["evaluation"]
        assert evaluation["recall"] == 1.0
        assert evaluation["precision"] >= 0.8

    def test_out_writes_artifact(self, tmp_path, capsys):
        out = tmp_path / "lint" / "report.json"
        code = main(
            ["lint", "--format", "json", "--fail-on", "never", "--out", str(out)]
        )
        assert code == 0
        assert "wrote" in capsys.readouterr().out
        data = json.loads(out.read_text(encoding="utf-8"))
        assert "counts_by_rule" in data

    def test_text_format_mentions_evaluation(self, capsys):
        main(["lint", "--fail-on", "never"])
        out = capsys.readouterr().out
        assert "Planted anti-pattern evaluation" in out
        assert "recall=1.000" in out


class TestCasesDir:
    def test_missing_corpus_is_usage_error(self, tmp_path, capsys):
        assert main(["lint", "--cases", str(tmp_path)]) == 2
        assert "no case_" in capsys.readouterr().err

    def test_lints_saved_corpus(self, tmp_path, poor_sql_case, capsys):
        from repro.evaluation.persistence import save_case

        save_case(poor_sql_case, tmp_path / "case_000.npz")
        code = main(
            ["lint", "--cases", str(tmp_path), "--format", "json", "--fail-on", "never"]
        )
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["analyzed"] > 0
        assert "evaluation" not in data
