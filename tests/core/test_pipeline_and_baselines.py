"""Tests for the PinSQL pipeline, baselines and evaluation metrics."""

import pytest

from repro.core import PinSQL, PinSQLConfig, top_en, top_er, top_rt
from repro.evaluation import (
    evaluate_pinsql,
    evaluate_ranker,
    hits_at_k,
    reciprocal_rank,
    summarize_ranks,
    top_all_report,
)
from repro.evaluation.metrics import first_hit_rank


class TestMetrics:
    def test_first_hit_rank(self):
        assert first_hit_rank(["a", "b", "c"], {"b", "c"}) == 2
        assert first_hit_rank(["a"], {"z"}) is None

    def test_empty_truth_rejected(self):
        with pytest.raises(ValueError):
            first_hit_rank(["a"], set())

    def test_reciprocal_rank(self):
        assert reciprocal_rank(["a", "b"], {"b"}) == pytest.approx(0.5)
        assert reciprocal_rank(["a"], {"z"}) == 0.0

    def test_hits_at_k(self):
        assert hits_at_k(["a", "b"], {"b"}, 5)
        assert not hits_at_k(["a", "b"], {"b"}, 1)
        with pytest.raises(ValueError):
            hits_at_k(["a"], {"a"}, 0)

    def test_summarize(self):
        summary = summarize_ranks([1, 2, None, 1])
        assert summary.hits_at_1 == pytest.approx(50.0)
        assert summary.hits_at_5 == pytest.approx(75.0)
        assert summary.mrr == pytest.approx((1 + 0.5 + 0 + 1) / 4)
        assert "H@1" in str(summary)

    def test_summarize_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_ranks([])


class TestBaselines:
    def test_rankings_cover_all_templates(self, poor_sql_case):
        case = poor_sql_case.case
        for ranker in (top_rt(), top_er(), top_en()):
            ranking = ranker.rank(case)
            assert sorted(ranking) == sorted(case.sql_ids)

    def test_top_er_finds_poor_sql_quickly(self, poor_sql_case):
        # A full-scan template tops the examined-rows page.
        ranking = top_er().rank(poor_sql_case.case)
        rank = first_hit_rank(ranking, poor_sql_case.r_sqls)
        assert rank is not None and rank <= 10

    def test_names(self):
        assert top_rt().name == "Top-RT"
        assert top_er().name == "Top-ER"
        assert top_en().name == "Top-EN"


class TestPipeline:
    def test_analyze_produces_complete_result(self, row_lock_case):
        result = PinSQL().analyze(row_lock_case.case)
        assert result.hsql_ids
        assert result.rsql_ids
        assert result.timings.total > 0
        assert result.timings.session_estimation > 0
        assert result.timings.hsql_total < result.timings.total

    def test_finds_row_lock_root_cause(self, row_lock_case):
        result = PinSQL().analyze(row_lock_case.case)
        rank = first_hit_rank(result.rsql_ids, row_lock_case.r_sqls)
        assert rank is not None and rank <= 5

    def test_finds_poor_sql_root_cause(self, poor_sql_case):
        result = PinSQL().analyze(poor_sql_case.case)
        rank = first_hit_rank(result.rsql_ids, poor_sql_case.r_sqls)
        assert rank is not None and rank <= 5

    def test_finds_hsql_top1(self, all_cases):
        pinsql = PinSQL()
        hits = 0
        for labeled in all_cases:
            result = pinsql.analyze(labeled.case)
            if first_hit_rank(result.hsql_ids, labeled.h_sqls) == 1:
                hits += 1
        assert hits >= 3  # at least 3 of 4 categories top-1

    def test_ranker_protocol_adapters(self, poor_sql_case):
        pinsql = PinSQL()
        assert pinsql.rank(poor_sql_case.case) == pinsql.analyze(poor_sql_case.case).rsql_ids
        assert pinsql.rank_hsql(poor_sql_case.case)

    def test_ablated_configs_still_run(self, poor_sql_case):
        for ablation in (
            "estimate_session",
            "buckets",
            "trend_score",
            "scale_score",
            "scale_trend_score",
            "weighted_final_score",
            "cumulative_threshold",
            "direct_cause_ranking",
            "history_verification",
        ):
            cfg = PinSQLConfig().without(ablation)
            result = PinSQL(cfg).analyze(poor_sql_case.case)
            assert result.hsql_ids, ablation


class TestHarness:
    def test_evaluate_ranker(self, all_cases):
        report = evaluate_ranker(top_rt(), all_cases)
        assert len(report.r_ranks) == len(all_cases)
        assert report.mean_r_time > 0
        assert 0 <= report.r_summary.hits_at_1 <= 100

    def test_evaluate_pinsql(self, all_cases):
        report = evaluate_pinsql(PinSQL(), all_cases)
        assert len(report.h_ranks) == len(all_cases)
        assert report.h_summary.hits_at_1 >= 50.0

    def test_top_all_is_per_case_best(self, all_cases):
        reports = [evaluate_ranker(r, all_cases) for r in (top_rt(), top_er(), top_en())]
        top_all = top_all_report(reports)
        for i in range(len(all_cases)):
            candidates = [rep.r_ranks[i] for rep in reports if rep.r_ranks[i] is not None]
            expected = min(candidates) if candidates else None
            assert top_all.r_ranks[i] == expected

    def test_top_all_requires_reports(self):
        with pytest.raises(ValueError):
            top_all_report([])

    def test_table_row_formatting(self, all_cases):
        report = evaluate_ranker(top_rt(), all_cases)
        row = report.table_row()
        assert "Top-RT" in row
