"""Tests for the diagnosis report renderer and the CLI."""

import pytest

from repro.cli import build_parser, main
from repro.core import PinSQL, RepairEngine
from repro.core.report import render_report
from repro.evaluation.persistence import save_case


class TestReport:
    def test_report_contains_key_sections(self, row_lock_case):
        result = PinSQL().analyze(row_lock_case.case)
        report = render_report(row_lock_case.case, result)
        assert "Root cause SQLs" in report.text
        assert "High-impact SQLs" in report.text
        assert "Propagation-chain evidence" in report.text
        assert report.top_r_sql == result.rsql_ids[0]
        assert report.top_h_sql == result.hsql_ids[0]
        assert str(report) == report.text

    def test_report_shows_statements(self, row_lock_case):
        result = PinSQL().analyze(row_lock_case.case)
        report = render_report(row_lock_case.case, result)
        info = row_lock_case.case.catalog.get(result.rsql_ids[0])
        assert info.template[:30] in report.text

    def test_report_with_plan(self, row_lock_case):
        result = PinSQL().analyze(row_lock_case.case)
        plan = RepairEngine().plan(row_lock_case.case, result)
        report = render_report(row_lock_case.case, result, plan=plan)
        assert "Suggested repair actions" in report.text

    def test_lock_narrative_on_shared_table(self, row_lock_case):
        result = PinSQL().analyze(row_lock_case.case)
        report = render_report(row_lock_case.case, result)
        if report.top_r_sql != report.top_h_sql:
            r_info = row_lock_case.case.catalog.get(report.top_r_sql)
            h_info = row_lock_case.case.catalog.get(report.top_h_sql)
            if set(r_info.tables) & set(h_info.tables):
                assert "lock-based blocking" in report.text


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_args(self):
        args = build_parser().parse_args(
            ["generate", "--seed", "3", "--category", "mdl_lock", "--out", "x.npz"]
        )
        assert args.seed == 3
        assert args.category == "mdl_lock"

    def test_evaluate_requires_source(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["evaluate"])

    def test_telemetry_flags(self):
        args = build_parser().parse_args(["demo", "--telemetry"])
        assert args.telemetry
        args = build_parser().parse_args(["obs", "--format", "prometheus"])
        assert args.format == "prometheus"
        assert args.log_format == "kv"


class TestCliCommands:
    def test_generate_then_diagnose(self, tmp_path, capsys):
        out = tmp_path / "case.npz"
        code = main(
            [
                "generate", "--seed", "5", "--category", "poor_sql",
                "--delta-start", "360", "--anomaly-length", "180",
                "--businesses", "4", "--out", str(out),
            ]
        )
        assert code == 0
        assert out.exists()
        code = main(["diagnose", str(out), "--suggest-repairs"])
        assert code == 0
        captured = capsys.readouterr().out
        assert "PinSQL diagnosis report" in captured
        assert "ground truth check" in captured

    def test_diagnose_saved_fixture(self, poor_sql_case, tmp_path, capsys):
        path = save_case(poor_sql_case, tmp_path / "case.npz")
        assert main(["diagnose", str(path), "--no-buckets"]) == 0
        assert "Root cause SQLs" in capsys.readouterr().out

    def test_evaluate_saved_corpus(self, poor_sql_case, row_lock_case, tmp_path, capsys):
        from repro.evaluation.persistence import save_corpus

        save_corpus([poor_sql_case, row_lock_case], tmp_path)
        assert main(["evaluate", "--cases", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "PinSQL" in out and "Top-RT" in out

    def test_evaluate_empty_directory_fails(self, tmp_path, capsys):
        assert main(["evaluate", "--cases", str(tmp_path)]) == 1

    def test_evaluate_telemetry_dumps_snapshot(
        self, poor_sql_case, row_lock_case, tmp_path, capsys
    ):
        from repro.evaluation.persistence import save_corpus

        save_corpus([poor_sql_case, row_lock_case], tmp_path)
        assert main(["evaluate", "--cases", str(tmp_path), "--telemetry"]) == 0
        out = capsys.readouterr().out
        assert "telemetry: metrics snapshot" in out
        assert "telemetry: span tree" in out
        assert "span_duration_seconds" in out


class TestCliObs:
    @pytest.fixture(autouse=True)
    def _fast_case(self, monkeypatch):
        """Shrink the obs demo case so these tests stay quick."""
        import repro.evaluation as evaluation
        from repro.evaluation import CorpusConfig

        original = evaluation.generate_case

        def fast(seed, cfg, category=None):
            small = CorpusConfig(
                delta_start_s=360, anomaly_length_s=(150, 200),
                n_businesses=(4, 4),
            )
            return original(seed, small, category=category)

        monkeypatch.setattr(evaluation, "generate_case", fast)

    def test_obs_prometheus_is_valid_exposition(self, capsys):
        import re

        assert main(["obs", "--format", "prometheus", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        sample_re = re.compile(
            r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"'
            r'(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? -?[0-9.+eE\-]+$'
        )
        lines = out.strip().splitlines()
        assert lines
        for line in lines:
            assert line.startswith("#") or sample_re.match(line), line
        assert "# TYPE span_duration_seconds histogram" in out
        assert 'span="pinsql.analyze"' in out
        assert "# TYPE logstore_queries_ingested_total counter" in out

    def test_obs_json_snapshot(self, capsys):
        import json

        assert main(["obs", "--format", "json", "--seed", "3"]) == 0
        snap = json.loads(capsys.readouterr().out)
        assert set(snap) == {"counters", "gauges", "histograms"}
        names = {h["name"] for h in snap["histograms"]}
        assert "span_duration_seconds" in names

    def test_obs_summary_shows_span_tree(self, capsys):
        assert main(["obs", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "metrics snapshot" in out
        assert "span tree" in out
        assert "pinsql.analyze" in out
        assert "session_estimation" in out


class TestCliDemo:
    def test_demo_runs(self, capsys, monkeypatch):
        # Shrink the demo corpus so the test stays quick.
        import repro.cli as cli
        from repro.evaluation import CorpusConfig

        def fast_demo(args):
            from repro.core import PinSQL
            from repro.core.report import render_report
            from repro.evaluation import generate_case
            from repro.workload import AnomalyCategory

            cfg = CorpusConfig(
                delta_start_s=360, anomaly_length_s=(150, 200),
                n_businesses=(4, 4),
            )
            labeled = generate_case(args.seed, cfg, category=AnomalyCategory(args.category))
            result = PinSQL().analyze(labeled.case)
            print(render_report(labeled.case, result).text)
            return 0

        monkeypatch.setattr(cli, "cmd_demo", fast_demo)
        monkeypatch.setitem(cli._COMMANDS, "demo", fast_demo)
        assert cli.main(["demo", "--seed", "3", "--category", "row_lock"]) == 0
        assert "PinSQL diagnosis report" in capsys.readouterr().out


class TestReportEdges:
    def test_empty_rsql_ranking_escalates(self, row_lock_case):
        result = PinSQL().analyze(row_lock_case.case)
        result.rsql.ranked = []
        report = render_report(row_lock_case.case, result)
        assert "escalate to a DBA" in report.text
        assert report.top_r_sql is None

    def test_widened_note_shown(self, row_lock_case):
        result = PinSQL().analyze(row_lock_case.case)
        result.rsql.widened = True
        report = render_report(row_lock_case.case, result)
        assert "widened" in report.text

    def test_self_caused_narrative(self, row_lock_case):
        result = PinSQL().analyze(row_lock_case.case)
        # Force top H == top R to exercise the self-caused narrative.
        top_r = result.rsql_ids[0]
        from repro.core.hsql import HsqlScores

        result.hsql.scores.insert(
            0, HsqlScores(top_r, trend=1.0, scale=1.0, scale_trend=1.0, impact=99.0)
        )
        report = render_report(row_lock_case.case, result)
        assert "both root cause and top H-SQL" in report.text
