"""Tests for individual active-session estimation (paper Sec. IV-C)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collection import LogStore
from repro.core import CoverageFunction, SessionEstimationMode, SessionEstimator
from repro.dbsim import QueryLog, SecondBatch
from repro.timeseries import TimeSeries


class TestCoverageFunction:
    def test_single_interval(self):
        cov = CoverageFunction(np.array([1000.0]), np.array([500.0]))
        # Query active on [1000, 1500).
        assert cov(np.array([1000.0]))[0] == 0.0
        assert cov(np.array([1250.0]))[0] == 250.0
        assert cov(np.array([2000.0]))[0] == 500.0

    def test_sum_over_intervals(self):
        cov = CoverageFunction(np.array([0.0, 100.0]), np.array([50.0, 50.0]))
        assert cov(np.array([200.0]))[0] == 100.0

    def test_expected_session_full_overlap(self):
        # One query covering the whole evaluation interval → session 1.
        cov = CoverageFunction(np.array([0.0]), np.array([10_000.0]))
        out = cov.expected_session(np.array([1000.0]), np.array([2000.0]))
        assert out[0] == pytest.approx(1.0)

    def test_expected_session_partial_overlap(self):
        cov = CoverageFunction(np.array([1500.0]), np.array([250.0]))
        out = cov.expected_session(np.array([1000.0]), np.array([2000.0]))
        assert out[0] == pytest.approx(0.25)

    def test_empty_interval_set(self):
        cov = CoverageFunction(np.zeros(0), np.zeros(0))
        assert cov.expected_session(np.array([0.0]), np.array([1000.0]))[0] == 0.0

    def test_invalid_interval_rejected(self):
        cov = CoverageFunction(np.array([0.0]), np.array([1.0]))
        with pytest.raises(ValueError):
            cov.expected_session(np.array([5.0]), np.array([5.0]))

    @given(st.integers(1, 30), st.integers(0, 10_000))
    @settings(max_examples=40)
    def test_property_monotone_nondecreasing(self, n, seed):
        rng = np.random.default_rng(seed)
        arrive = rng.uniform(0, 10_000, n)
        resp = rng.uniform(1, 2_000, n)
        cov = CoverageFunction(arrive, resp)
        xs = np.sort(rng.uniform(-1_000, 20_000, 50))
        values = cov(xs)
        assert (np.diff(values) >= -1e-9).all()
        assert values[0] >= -1e-9
        # Total coverage equals the summed durations once past all ends.
        assert cov(np.array([1e9]))[0] == pytest.approx(resp.sum())


def _make_logstore(batches):
    log = QueryLog()
    for b in batches:
        log.append(b)
    store = LogStore()
    store.ingest_query_log(log)
    return store


def _batch(sql_id, arrive, resp):
    arrive = np.asarray(arrive, dtype=np.int64)
    resp = np.asarray(resp, dtype=np.float64)
    return SecondBatch(sql_id, arrive, resp, np.ones(len(arrive)))


class TestEstimatorModes:
    def _setup(self):
        # Template A: one long query covering seconds 0-9 entirely.
        # Template B: short queries in second 5.
        store = _make_logstore(
            [
                _batch("A", [0], [10_000.0]),
                _batch("B", [5_100, 5_400], [200.0, 200.0]),
            ]
        )
        observed = TimeSeries(np.array([1.0] * 5 + [1.0] * 5), start=0)
        return store, observed

    def test_no_buckets_expectation(self):
        store, observed = self._setup()
        est = SessionEstimator(SessionEstimationMode.NO_BUCKETS).estimate(
            store, ["A", "B"], observed
        )
        assert est.get("A").values[3] == pytest.approx(1.0)
        # B: 400 ms of activity within second 5 → expectation 0.4.
        assert est.get("B").values[5] == pytest.approx(0.4)
        assert est.total.values[5] == pytest.approx(1.4)

    def test_response_time_mode(self):
        store, observed = self._setup()
        est = SessionEstimator(SessionEstimationMode.RESPONSE_TIME).estimate(
            store, ["A", "B"], observed
        )
        # A's whole 10 s response is attributed to its arrival second.
        assert est.get("A").values[0] == pytest.approx(10.0)
        assert est.get("A").values[5] == 0.0
        assert est.get("B").values[5] == pytest.approx(0.4)

    def test_bucket_mode_shapes(self):
        store, observed = self._setup()
        est = SessionEstimator(SessionEstimationMode.BUCKETS, buckets=10).estimate(
            store, ["A", "B"], observed
        )
        assert len(est.selected_buckets) == 10
        assert (est.selected_buckets >= 0).all() and (est.selected_buckets < 10).all()
        assert est.get("A").values[3] == pytest.approx(1.0)

    def test_unknown_template_zeros(self):
        store, observed = self._setup()
        est = SessionEstimator(SessionEstimationMode.BUCKETS).estimate(
            store, ["A"], observed
        )
        assert est.get("ZZZ").total() == 0.0

    def test_invalid_buckets(self):
        with pytest.raises(ValueError):
            SessionEstimator(buckets=0)


class TestBucketSelectionAccuracy:
    def test_buckets_recover_true_sampling_instant(self):
        # The observed value is sampled at a known instant inside each
        # second; bucket selection should pick (nearly) that bucket.
        rng = np.random.default_rng(0)
        n_seconds, n_queries = 30, 3000
        arrive = np.sort(rng.uniform(0, n_seconds * 1000.0, n_queries))
        resp = rng.exponential(400.0, n_queries) + 50.0
        log = QueryLog()
        log.append(
            SecondBatch(
                "Q",
                arrive.astype(np.int64),
                resp,
                np.ones(n_queries),
            )
        )
        store = LogStore()
        store.ingest_query_log(log)

        # True sampling instants: fixed offset 730 ms into each second.
        from repro.dbsim.monitor import ActiveSessionSampler

        sampler = ActiveSessionSampler(log)
        t3 = np.arange(n_seconds) * 1000.0 + 730.0
        observed = TimeSeries(sampler.active_at(t3).astype(float), start=0)

        est10 = SessionEstimator(SessionEstimationMode.BUCKETS, buckets=10).estimate(
            store, ["Q"], observed
        )
        est1 = SessionEstimator(SessionEstimationMode.NO_BUCKETS).estimate(
            store, ["Q"], observed
        )
        err10 = np.abs(est10.total.values - observed.values).mean()
        err1 = np.abs(est1.total.values - observed.values).mean()
        assert err10 <= err1  # bucket selection must not hurt
        # Selected buckets should concentrate near index 7 (730 ms).
        med = np.median(est10.selected_buckets)
        assert 5 <= med <= 9


class TestMultiSecondSpan:
    def test_span_extension_runs_and_matches_quality(self):
        # Paper Sec. IV-C extension: when SHOW STATUS may finish outside
        # [t, t+1), the bucket search extends over N seconds.  With the
        # sample actually inside the second, the extension must not hurt.
        rng = np.random.default_rng(5)
        n_seconds, n_queries = 20, 1500
        arrive = np.sort(rng.uniform(0, n_seconds * 1000.0, n_queries))
        resp = rng.exponential(300.0, n_queries) + 50.0
        log = QueryLog()
        log.append(SecondBatch("Q", arrive.astype(np.int64), resp, np.ones(n_queries)))
        store = LogStore()
        store.ingest_query_log(log)
        from repro.dbsim.monitor import ActiveSessionSampler

        sampler = ActiveSessionSampler(log)
        t3 = np.arange(n_seconds) * 1000.0 + 400.0
        observed = TimeSeries(sampler.active_at(t3).astype(float), start=0)
        est1 = SessionEstimator(SessionEstimationMode.BUCKETS, buckets=10).estimate(
            store, ["Q"], observed
        )
        est2 = SessionEstimator(
            SessionEstimationMode.BUCKETS, buckets=10, span_seconds=2
        ).estimate(store, ["Q"], observed)
        err1 = np.abs(est1.total.values - observed.values).mean()
        err2 = np.abs(est2.total.values - observed.values).mean()
        assert err2 <= err1 + 0.5
        assert (est2.selected_buckets < 20).all()

    def test_invalid_span(self):
        with pytest.raises(ValueError):
            SessionEstimator(span_seconds=0)
