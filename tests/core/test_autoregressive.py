"""Tests for the Granger-causality extension baseline."""

import numpy as np
import pytest

from repro.core.autoregressive import GrangerRanker
from repro.evaluation.metrics import first_hit_rank


class TestCausalityScore:
    def test_causal_driver_scores_higher(self):
        # session[t] responds to execution[t-1]; noise does not.
        rng = np.random.default_rng(0)
        n = 300
        execution = np.abs(rng.normal(10, 3, n))
        session = np.zeros(n)
        for t in range(1, n):
            session[t] = 0.5 * session[t - 1] + 0.8 * execution[t - 1] + rng.normal(0, 0.5)
        noise = np.abs(rng.normal(10, 3, n))
        ranker = GrangerRanker(lags=3, interval_s=1)
        causal = ranker.causality_score(session, execution)
        spurious = ranker.causality_score(session, noise)
        assert causal > spurious
        assert causal > 0.1

    def test_short_series_scores_zero(self):
        ranker = GrangerRanker(lags=5, interval_s=1)
        assert ranker.causality_score(np.ones(8), np.ones(8)) == 0.0

    def test_invalid_lags(self):
        with pytest.raises(ValueError):
            GrangerRanker(lags=0)


class TestRankOnCases:
    def test_produces_full_ranking(self, poor_sql_case):
        ranker = GrangerRanker(interval_s=60)
        ranking = ranker.rank(poor_sql_case.case)
        assert sorted(ranking) == sorted(poor_sql_case.case.sql_ids)

    def test_max_templates_cap(self, poor_sql_case):
        ranker = GrangerRanker(interval_s=60, max_templates=5)
        ranking = ranker.rank(poor_sql_case.case)
        assert sorted(ranking) == sorted(poor_sql_case.case.sql_ids)

    def test_collinearity_degrades_attribution(self, all_cases):
        # The paper's argument: at template scale, autoregressive methods
        # stop pinpointing.  On our cases the Granger ranker is expected
        # to be far from reliable — assert only that it runs and that it
        # is not systematically perfect (which would contradict the
        # premise for skipping it).
        ranker = GrangerRanker(interval_s=60)
        ranks = []
        for labeled in all_cases:
            ranking = ranker.rank(labeled.case)
            ranks.append(first_hit_rank(ranking, labeled.r_sqls))
        assert any(r is None or r > 1 for r in ranks)
