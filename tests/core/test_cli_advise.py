"""Tests for the ``repro advise`` CLI (exit codes, formats, artifacts)."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["advise"])
        assert args.format == "text"
        assert args.fail_on == "warning"
        assert args.out is None

    def test_bad_fail_on_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["advise", "--fail-on", "loud"])


class TestDefaultCatalog:
    def test_planted_catalog_fails_at_default_threshold(self, capsys):
        # The planted baits produce WARNING+ advisories: exit 1.
        code = main(["advise", "--seed", "7"])
        assert code == 1
        out = capsys.readouterr().out
        assert "index-advisor" in out
        assert "lock-conflict" in out
        assert "Planted advisory evaluation" in out

    def test_fail_on_never_forces_zero(self, capsys):
        assert main(["advise", "--fail-on", "never"]) == 0
        assert "join-fanout" in capsys.readouterr().out

    def test_json_format_and_gate(self, capsys):
        code = main(["advise", "--format", "json", "--fail-on", "never"])
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["analyzed"] > 50
        assert data["advisories_total"] == len(data["advisories"])
        advisors = {a["advisor"] for a in data["advisories"]}
        assert advisors == {"lock-conflict", "index-advisor", "join-fanout"}
        evaluation = data["evaluation"]
        assert evaluation["precision"] >= 0.9
        assert evaluation["recall"] >= 0.9

    def test_out_writes_artifact(self, tmp_path, capsys):
        out = tmp_path / "advise" / "advisory-report.json"
        code = main(
            ["advise", "--format", "json", "--fail-on", "never", "--out", str(out)]
        )
        assert code == 0
        assert "wrote" in capsys.readouterr().out
        data = json.loads(out.read_text(encoding="utf-8"))
        assert "counts_by_advisor" in data
        assert "evaluation" in data
