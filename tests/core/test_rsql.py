"""Tests for R-SQL identification (paper Section VI)."""

import numpy as np

from repro.collection import LogStore, TemplateMetricStore
from repro.core import PinSQLConfig, RsqlIdentifier, SessionEstimator
from repro.core.case import AnomalyCase
from repro.core.hsql import HsqlRanking, HsqlScores
from repro.core.session_estimation import SessionEstimate
from repro.dbsim.monitor import InstanceMetrics
from repro.sqltemplate import TemplateCatalog
from repro.timeseries import TimeSeries


def build_case(exec_series: dict, session, as_, ae, history=None, metrics_extra=None):
    """Construct a minimal AnomalyCase from raw #execution arrays."""
    n = len(session)
    metrics = {"active_session": TimeSeries(np.asarray(session, float), start=0, name="active_session")}
    for name, values in (metrics_extra or {}).items():
        metrics[name] = TimeSeries(np.asarray(values, float), start=0, name=name)
    store = TemplateMetricStore(start=0, end=n)
    for sid, values in exec_series.items():
        store.put(sid, "#execution", TimeSeries(np.asarray(values, float), start=0))
        store.put(sid, "total_tres", TimeSeries(np.asarray(values, float) * 5.0, start=0))
    return AnomalyCase(
        metrics=InstanceMetrics(metrics),
        templates=store,
        logs=LogStore(),
        catalog=TemplateCatalog(),
        anomaly_start=as_,
        anomaly_end=ae,
        history=history or {},
    )


def sessions_for(case, values: dict):
    n = case.duration
    per = {sid: TimeSeries(np.asarray(v, float), start=0) for sid, v in values.items()}
    total = np.sum([np.asarray(v, float) for v in values.values()], axis=0)
    return SessionEstimate(
        per_template=per,
        total=TimeSeries(total, start=0),
        selected_buckets=np.zeros(0, dtype=np.int64),
    )


def hsql_ranking(impacts: dict) -> HsqlRanking:
    scores = [
        HsqlScores(sid, trend=0.0, scale=0.0, scale_trend=0.0, impact=v)
        for sid, v in impacts.items()
    ]
    scores.sort(key=lambda s: s.impact, reverse=True)
    return HsqlRanking(scores=scores, alpha=1.0, beta=-1.0)


class TestClustering:
    def _correlated_case(self):
        rng = np.random.default_rng(0)
        latent_a = 10 + np.cumsum(rng.normal(0, 0.3, 600))
        latent_a -= latent_a.min() - 1
        latent_b = 10 + np.cumsum(rng.normal(0, 0.3, 600))
        latent_b -= latent_b.min() - 1
        session = np.full(600, 5.0)
        session[400:] += 50
        return build_case(
            {
                "A1": latent_a + rng.normal(0, 0.1, 600),
                "A2": 2 * latent_a + rng.normal(0, 0.1, 600),
                "B1": latent_b + rng.normal(0, 0.1, 600),
                "B2": 3 * latent_b + rng.normal(0, 0.1, 600),
            },
            session, 400, 600,
        )

    def test_same_business_clusters_together(self):
        case = self._correlated_case()
        ident = RsqlIdentifier(clustering_interval_s=1, use_metric_temp_nodes=False)
        clusters = ident.cluster_templates(case)
        groups = [set(c.sql_ids) for c in clusters]
        assert {"A1", "A2"} in groups
        assert {"B1", "B2"} in groups

    def test_metric_temp_nodes_bridge(self):
        # A template correlated only with the session metric joins a
        # cluster through the temporary node.
        n = 600
        session = np.full(n, 5.0)
        session[400:] += 50
        job = np.zeros(n)
        job[400:] = 10.0
        other = np.zeros(n)
        other[400:] = 7.0
        case = build_case({"JOB": job, "OTHER": other}, session, 400, 600)
        with_nodes = RsqlIdentifier(clustering_interval_s=1, use_metric_temp_nodes=True)
        clusters = with_nodes.cluster_templates(case)
        merged = next(c for c in clusters if "JOB" in c.sql_ids)
        assert "OTHER" in merged.sql_ids  # both correlate with the session node

    def test_temp_nodes_filtered_from_results(self):
        case = self._correlated_case()
        clusters = RsqlIdentifier(clustering_interval_s=1).cluster_templates(case)
        for c in clusters:
            assert all(not sid.startswith("__metric__") for sid in c.sql_ids)

    def test_constant_series_isolated(self):
        n = 600
        session = np.full(n, 5.0)
        session[400:] += 50
        case = build_case(
            {"FLAT": np.full(n, 3.0), "VAR": session.copy()}, session, 400, 600
        )
        clusters = RsqlIdentifier(clustering_interval_s=1).cluster_templates(case)
        flat_cluster = next(c for c in clusters if "FLAT" in c.sql_ids)
        assert flat_cluster.sql_ids == ["FLAT"]


class TestClusterRankingAndSelection:
    def _case(self):
        n = 600
        session = np.full(n, 5.0)
        session[400:] += 50
        execs = {
            "H1": np.full(n, 20.0),
            "R1": np.concatenate([np.zeros(400), np.full(200, 10.0)]),
        }
        return build_case(execs, session, 400, 600)

    def test_rank_by_impact(self):
        case = self._case()
        ident = RsqlIdentifier(clustering_interval_s=1)
        clusters = [
            type(ident).cluster_templates.__annotations__ and c
            for c in ident.cluster_templates(case)
        ]
        ranking = hsql_ranking({"H1": 2.0, "R1": -0.5})
        ranked = ident.rank_clusters(case, ident.cluster_templates(case), ranking)
        assert "H1" in ranked[0].sql_ids

    def test_rank_by_top_rt_when_disabled(self):
        case = self._case()
        ident = RsqlIdentifier(clustering_interval_s=1, use_direct_cause_ranking=False)
        ranking = hsql_ranking({"H1": -5.0, "R1": -5.0})
        ranked = ident.rank_clusters(case, ident.cluster_templates(case), ranking)
        # H1 has far larger total_tres in the window.
        assert "H1" in ranked[0].sql_ids

    def test_cumulative_threshold_extends_selection(self):
        # Session = H1's step + R1's ramp: cluster 1 (H1) alone cannot
        # reach the cumulative correlation threshold, so the selection
        # must continue into R1's cluster.
        n = 600
        h1_sess = np.concatenate([np.full(400, 4.0), np.full(200, 30.0)])
        r1_sess = np.concatenate([np.full(400, 1.0), np.linspace(1, 41, 200)])
        session = h1_sess + r1_sess
        case = build_case(
            {
                "H1": np.full(n, 20.0),
                "R1": np.concatenate([np.zeros(400), np.full(200, 10.0)]),
            },
            session, 400, 600,
        )
        sessions = sessions_for(case, {"H1": h1_sess, "R1": r1_sess})
        ident = RsqlIdentifier(clustering_interval_s=1, cumulative_threshold=0.999,
                               use_metric_temp_nodes=False)
        clusters = ident.rank_clusters(
            case, ident.cluster_templates(case), hsql_ranking({"H1": 2.0, "R1": 0.0})
        )
        selected = ident.select_clusters(case, clusters, sessions)
        assert "R1" in selected  # threshold not reached by cluster 1 alone

    def test_top1_only_when_cumulative_disabled(self):
        case = self._case()
        sessions = sessions_for(
            case,
            {"H1": np.full(600, 4.0), "R1": np.full(600, 1.0)},
        )
        ident = RsqlIdentifier(clustering_interval_s=1, use_cumulative_threshold=False,
                               use_metric_temp_nodes=False)
        clusters = ident.rank_clusters(
            case, ident.cluster_templates(case), hsql_ranking({"H1": 2.0, "R1": 0.0})
        )
        selected = ident.select_clusters(case, clusters, sessions)
        assert set(selected) <= set(clusters[0].sql_ids)

    def test_empty_clusters(self):
        case = self._case()
        ident = RsqlIdentifier()
        assert ident.select_clusters(case, [], sessions_for(case, {"H1": np.zeros(600)})) == []


class TestHistoryVerification:
    def _case_with_history(self, history_anomalous: bool):
        n = 600
        session = np.full(n, 5.0)
        session[400:] += 50
        surge = np.concatenate([np.full(400, 10.0), np.full(200, 60.0)])
        flat = np.full(n, 10.0)
        history_values = np.full(n // 60, 600.0)
        if history_anomalous:
            history_values[400 // 60 :] = 3600.0
        history = {
            "SURGE": {1: TimeSeries(history_values, start=0, interval=60)},
        }
        case = build_case({"SURGE": surge, "FLAT": flat}, session, 400, 600, history=history)
        return case

    def test_surge_without_history_anomaly_passes(self):
        case = self._case_with_history(history_anomalous=False)
        ident = RsqlIdentifier(clustering_interval_s=60, history_days=(1,))
        assert "SURGE" in ident.verify_history(case, ["SURGE", "FLAT"])

    def test_flat_template_fails_rule_one(self):
        case = self._case_with_history(history_anomalous=False)
        ident = RsqlIdentifier(clustering_interval_s=60, history_days=(1,))
        assert "FLAT" not in ident.verify_history(case, ["SURGE", "FLAT"])

    def test_recurring_surge_fails_rule_two(self):
        case = self._case_with_history(history_anomalous=True)
        ident = RsqlIdentifier(clustering_interval_s=60, history_days=(1,))
        assert "SURGE" not in ident.verify_history(case, ["SURGE"])

    def test_missing_history_treated_as_new_sql(self):
        case = self._case_with_history(history_anomalous=False)
        ident = RsqlIdentifier(clustering_interval_s=60, history_days=(1, 3, 7))
        # SURGE only has day-1 history; days 3 and 7 are missing → fine.
        assert "SURGE" in ident.verify_history(case, ["SURGE"])

    def test_disabled_verification_passes_everything(self):
        case = self._case_with_history(history_anomalous=True)
        ident = RsqlIdentifier(use_history_verification=False)
        assert ident.verify_history(case, ["SURGE", "FLAT"]) == ["SURGE", "FLAT"]


class TestFinalRanking:
    def test_rank_by_execution_session_correlation(self):
        n = 600
        session = np.full(n, 5.0)
        session[400:] += 50
        aligned = np.concatenate([np.zeros(400), np.full(200, 10.0)])
        rng = np.random.default_rng(1)
        noise = 10 + rng.normal(0, 1, n)
        case = build_case({"ALIGNED": aligned, "NOISY": noise}, session, 400, 600)
        ranked = RsqlIdentifier().rank_candidates(case, ["NOISY", "ALIGNED"])
        assert ranked[0][0] == "ALIGNED"
        assert ranked[0][1] > ranked[1][1]

    def test_empty_candidates(self):
        n = 600
        session = np.full(n, 5.0)
        session[400:] += 50
        case = build_case({"A": np.ones(n)}, session, 400, 600)
        assert RsqlIdentifier().rank_candidates(case, []) == []


class TestEndToEndRsql:
    def test_identify_on_simulated_case(self, row_lock_case):
        cfg = PinSQLConfig()
        case = row_lock_case.case
        estimator = SessionEstimator(cfg.session_estimation, cfg.session_buckets)
        sessions = estimator.estimate(case.logs, case.sql_ids, case.active_session)
        from repro.core import HsqlIdentifier

        hsql = HsqlIdentifier().identify(case, sessions)
        result = RsqlIdentifier().identify(case, hsql, sessions)
        assert result.ranked_ids  # non-empty ranking
        assert set(result.ranked_ids) & set(case.sql_ids) == set(result.ranked_ids)
