"""Shared fixtures: small labelled anomaly cases, generated once per session."""

import pytest

from repro.evaluation import CorpusConfig, generate_case
from repro.workload import AnomalyCategory

#: A compact configuration so test cases generate in about a second.
FAST_CORPUS = CorpusConfig(
    n_cases=4,
    seed=123,
    delta_start_s=420,
    anomaly_length_s=(150, 240),
    n_businesses=(4, 6),
    cpu_cores_choices=(8, 16),
)


@pytest.fixture(scope="session")
def poor_sql_case():
    return generate_case(11, FAST_CORPUS, category=AnomalyCategory.POOR_SQL)


@pytest.fixture(scope="session")
def row_lock_case():
    return generate_case(12, FAST_CORPUS, category=AnomalyCategory.ROW_LOCK)


@pytest.fixture(scope="session")
def mdl_lock_case():
    return generate_case(13, FAST_CORPUS, category=AnomalyCategory.MDL_LOCK)


@pytest.fixture(scope="session")
def spike_case():
    return generate_case(14, FAST_CORPUS, category=AnomalyCategory.BUSINESS_SPIKE)


@pytest.fixture(scope="session")
def all_cases(poor_sql_case, row_lock_case, mdl_lock_case, spike_case):
    return [poor_sql_case, row_lock_case, mdl_lock_case, spike_case]
