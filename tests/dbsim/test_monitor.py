"""Tests for the monitor: true active session and metric assembly."""

import numpy as np
import pytest

from repro.dbsim import QueryLog, SecondBatch
from repro.dbsim.monitor import ActiveSessionSampler, InstanceMetrics, Monitor
from repro.timeseries import TimeSeries


def log_with(intervals):
    """intervals: list of (arrive_ms, response_ms)."""
    log = QueryLog()
    arrive = np.array([a for a, _ in intervals], dtype=np.int64)
    resp = np.array([r for _, r in intervals], dtype=np.float64)
    log.append(SecondBatch("Q", arrive, resp, np.ones(len(intervals))))
    return log


class TestActiveSessionSampler:
    def test_counts_overlapping_queries(self):
        sampler = ActiveSessionSampler(
            log_with([(0, 1000.0), (500, 1000.0), (2000, 100.0)])
        )
        assert sampler.active_at(250.0) == 1
        assert sampler.active_at(750.0) == 2
        assert sampler.active_at(1200.0) == 1
        assert sampler.active_at(1600.0) == 0
        assert sampler.active_at(2050.0) == 1

    def test_half_open_semantics(self):
        sampler = ActiveSessionSampler(log_with([(100, 400.0)]))
        assert sampler.active_at(100.0) == 1   # inclusive start
        assert sampler.active_at(500.0) == 0   # exclusive end

    def test_vectorized(self):
        sampler = ActiveSessionSampler(log_with([(0, 1000.0)]))
        out = sampler.active_at(np.array([500.0, 1500.0]))
        assert list(out) == [1, 0]

    def test_empty_log(self):
        sampler = ActiveSessionSampler(QueryLog())
        assert sampler.active_at(123.0) == 0


class TestMonitor:
    def test_finalize_produces_all_metrics(self):
        monitor = Monitor(start_time=10, rng=np.random.default_rng(0))
        for _ in range(5):
            monitor.record_second(50.0, 20.0, 40.0, 100.0, 2.0, 30.0)
        log = log_with([(10_000, 3000.0)])
        metrics, sampler, t3 = monitor.finalize(log)
        for name in Monitor.METRIC_NAMES:
            assert name in metrics
            assert len(metrics[name]) == 5
            assert metrics[name].start == 10
        assert len(t3) == 5
        # t3 instants lie inside their seconds.
        assert np.array_equal(t3 // 1000, np.arange(10, 15))

    def test_sampled_session_consistent_with_truth(self):
        monitor = Monitor(start_time=0, rng=np.random.default_rng(1))
        for _ in range(3):
            monitor.record_second(0, 0, 0, 0, 0, 0)
        log = log_with([(0, 2500.0), (500, 1000.0)])
        metrics, sampler, t3 = monitor.finalize(log)
        truth = sampler.active_at(t3)
        assert np.array_equal(metrics.active_session.values, truth.astype(float))


class TestInstanceMetrics:
    def test_window(self):
        metrics = InstanceMetrics(
            {
                "active_session": TimeSeries(np.arange(10.0), start=0, name="active_session"),
                "cpu_usage": TimeSeries(np.arange(10.0) * 2, start=0, name="cpu_usage"),
            }
        )
        sub = metrics.window(3, 7)
        assert len(sub.active_session) == 4
        assert sub.cpu_usage.values[0] == 6.0

    def test_names_and_access(self):
        metrics = InstanceMetrics(
            {"qps": TimeSeries(np.ones(3), name="qps")}
        )
        assert metrics.names == ["qps"]
        assert "qps" in metrics
        with pytest.raises(KeyError):
            metrics["nope"]
