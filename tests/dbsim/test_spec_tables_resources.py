"""Tests for TemplateSpec, Schema and the resource model."""

import pytest

from repro.dbsim import ResourceModel, Schema, Table, TemplateSpec
from repro.sqltemplate import StatementKind


def make_spec(**kwargs):
    defaults = dict(
        sql_id="AAAA0001",
        template="SELECT * FROM t WHERE id = ?",
        kind=StatementKind.SELECT,
        tables=("t",),
    )
    defaults.update(kwargs)
    return TemplateSpec(**defaults)


class TestTemplateSpec:
    def test_service_time_grows_with_examined_rows(self):
        cheap = make_spec(examined_rows_mean=100)
        poor = make_spec(examined_rows_mean=1_000_000)
        assert poor.service_time_ms > cheap.service_time_ms
        assert poor.cpu_ms_per_query > cheap.cpu_ms_per_query
        assert poor.io_per_query > cheap.io_per_query

    def test_kind_flags(self):
        assert make_spec(kind=StatementKind.UPDATE).is_write
        assert not make_spec().is_write
        assert make_spec(kind=StatementKind.DDL).is_ddl

    def test_primary_table(self):
        assert make_spec().table == "t"
        assert make_spec(tables=()).table is None

    def test_invalid_base_response(self):
        with pytest.raises(ValueError):
            make_spec(base_response_ms=0)

    def test_invalid_examined_rows(self):
        with pytest.raises(ValueError):
            make_spec(examined_rows_mean=-1)

    def test_optimized_reduces_costs(self):
        spec = make_spec(examined_rows_mean=500_000, base_response_ms=10.0)
        opt = spec.optimized(rows_gain=0.9, tres_gain=0.8)
        assert opt.examined_rows_mean == pytest.approx(50_000)
        assert opt.base_response_ms == pytest.approx(2.0)
        assert opt.sql_id == spec.sql_id
        # Original untouched.
        assert spec.examined_rows_mean == 500_000

    def test_optimized_rejects_bad_gains(self):
        spec = make_spec()
        with pytest.raises(ValueError):
            spec.optimized(rows_gain=1.0, tres_gain=0.5)
        with pytest.raises(ValueError):
            spec.optimized(rows_gain=0.5, tres_gain=-0.1)


class TestSchema:
    def test_add_and_lookup(self):
        schema = Schema([Table("a", 1000)])
        assert "a" in schema
        assert schema["a"].row_count == 1000
        assert schema.get("b") is None

    def test_duplicate_rejected(self):
        schema = Schema([Table("a")])
        with pytest.raises(ValueError, match="already exists"):
            schema.add_table(Table("a"))

    def test_ensure_table_idempotent(self):
        schema = Schema()
        t1 = schema.ensure_table("x", row_count=5)
        t2 = schema.ensure_table("x", row_count=99)
        assert t1 is t2
        assert t1.row_count == 5

    def test_indexes(self):
        t = Table("a", indexes={"id"})
        assert t.has_index("id")
        assert not t.add_index("id")
        assert t.add_index("uid")
        assert t.has_index("uid")

    def test_negative_rows_rejected(self):
        with pytest.raises(ValueError):
            Table("a", row_count=-1)

    def test_iteration_and_names(self):
        schema = Schema([Table("a"), Table("b")])
        assert schema.table_names == ["a", "b"]
        assert len(schema) == 2


class TestResourceModel:
    def test_idle_instance(self):
        model = ResourceModel(cpu_cores=4)
        usage = model.step(cpu_demand_ms=100.0, io_demand=10.0)
        assert usage.cpu_usage == pytest.approx(2.5)
        assert usage.cpu_slowdown == 1.0
        assert usage.io_slowdown == 1.0

    def test_saturation_builds_backlog(self):
        model = ResourceModel(cpu_cores=1)  # 1000 cpu-ms capacity
        u1 = model.step(cpu_demand_ms=2000.0, io_demand=0.0)
        assert u1.cpu_usage == 100.0
        assert u1.cpu_slowdown == pytest.approx(2.0)
        # Backlog of 1000 ms carries into the next second.
        u2 = model.step(cpu_demand_ms=1500.0, io_demand=0.0)
        assert u2.cpu_slowdown == pytest.approx(2.5)

    def test_backlog_drains(self):
        model = ResourceModel(cpu_cores=1)
        model.step(cpu_demand_ms=1500.0, io_demand=0.0)
        usage = model.step(cpu_demand_ms=0.0, io_demand=0.0)
        assert usage.cpu_slowdown == 1.0
        usage = model.step(cpu_demand_ms=0.0, io_demand=0.0)
        assert usage.cpu_usage == 0.0

    def test_io_saturation(self):
        model = ResourceModel(cpu_cores=16, iops_capacity=100.0)
        usage = model.step(cpu_demand_ms=0.0, io_demand=300.0)
        assert usage.iops_usage == 100.0
        assert usage.io_slowdown == pytest.approx(3.0)

    def test_scale_cores(self):
        model = ResourceModel(cpu_cores=2)
        model.scale_cores(8)
        usage = model.step(cpu_demand_ms=4000.0, io_demand=0.0)
        assert usage.cpu_usage == pytest.approx(50.0)

    def test_reset_clears_backlog(self):
        model = ResourceModel(cpu_cores=1)
        model.step(cpu_demand_ms=5000.0, io_demand=0.0)
        model.reset()
        usage = model.step(cpu_demand_ms=0.0, io_demand=0.0)
        assert usage.cpu_usage == 0.0

    def test_mem_usage_tracks_io(self):
        model = ResourceModel(cpu_cores=16, iops_capacity=100.0)
        low = [model.step(0.0, 0.0).mem_usage for _ in range(5)][-1]
        model.reset()
        high = None
        for _ in range(50):
            high = model.step(0.0, 100.0).mem_usage
        assert high > low

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            ResourceModel(cpu_cores=0)
        with pytest.raises(ValueError):
            ResourceModel(iops_capacity=0)

    def test_negative_demand_rejected(self):
        with pytest.raises(ValueError):
            ResourceModel().step(-1.0, 0.0)
