"""Tests for the columnar query log."""

import numpy as np
import pytest

from repro.dbsim import QueryLog, SecondBatch


def make_batch(sql_id="Q1", arrive=(0, 100, 200), resp=(10.0, 20.0, 30.0), rows=(1.0, 2.0, 3.0)):
    return SecondBatch(
        sql_id=sql_id,
        arrive_ms=np.asarray(arrive, dtype=np.int64),
        response_ms=np.asarray(resp, dtype=np.float64),
        examined_rows=np.asarray(rows, dtype=np.float64),
    )


class TestSecondBatch:
    def test_length(self):
        assert len(make_batch()) == 3

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(ValueError):
            SecondBatch(
                "Q1",
                np.array([1, 2], dtype=np.int64),
                np.array([1.0]),
                np.array([1.0, 2.0]),
            )


class TestQueryLog:
    def test_append_and_count(self):
        log = QueryLog()
        log.append(make_batch())
        log.append(make_batch(arrive=(1000,), resp=(5.0,), rows=(1.0,)))
        assert log.total_queries == 4
        assert log.sql_ids == ["Q1"]
        assert "Q1" in log

    def test_empty_batch_ignored(self):
        log = QueryLog()
        log.append(make_batch(arrive=(), resp=(), rows=()))
        assert log.total_queries == 0
        assert log.sql_ids == []

    def test_queries_of_sorted_by_arrival(self):
        log = QueryLog()
        log.append(make_batch(arrive=(2000, 2100), resp=(1.0, 1.0), rows=(1.0, 1.0)))
        log.append(make_batch(arrive=(0, 100), resp=(1.0, 1.0), rows=(1.0, 1.0)))
        tq = log.queries_of("Q1")
        assert list(tq.arrive_ms) == [0, 100, 2000, 2100]
        assert len(tq) == 4

    def test_queries_of_unknown_template_empty(self):
        log = QueryLog()
        tq = log.queries_of("NOPE")
        assert len(tq) == 0
        assert tq.end_ms.shape == (0,)

    def test_end_ms(self):
        log = QueryLog()
        log.append(make_batch(arrive=(0, 100), resp=(10.0, 20.0), rows=(1.0, 1.0)))
        tq = log.queries_of("Q1")
        assert list(tq.end_ms) == [10.0, 120.0]

    def test_all_intervals(self):
        log = QueryLog()
        log.append(make_batch(sql_id="A", arrive=(0,), resp=(10.0,), rows=(1.0,)))
        log.append(make_batch(sql_id="B", arrive=(5,), resp=(10.0,), rows=(1.0,)))
        arrive, end = log.all_intervals()
        assert len(arrive) == 2
        assert set(end) == {10.0, 15.0}

    def test_all_intervals_empty(self):
        arrive, end = QueryLog().all_intervals()
        assert len(arrive) == 0 and len(end) == 0

    def test_iter_templates(self):
        log = QueryLog()
        log.append(make_batch(sql_id="A"))
        log.append(make_batch(sql_id="B"))
        ids = {tq.sql_id for tq in log.iter_templates()}
        assert ids == {"A", "B"}
