"""Tests for the Performance Schema overhead model (Table IV substrate)."""

import pytest

from repro.dbsim import (
    PerformanceSchemaConfig,
    StressWorkloadKind,
    run_stress_test,
)
from repro.dbsim.perfschema import instrumentation_overhead_ms


class TestConfig:
    def test_labels(self):
        assert PerformanceSchemaConfig.normal().label == "normal"
        assert PerformanceSchemaConfig.pfs().label == "pfs"
        assert PerformanceSchemaConfig.pfs_ins().label == "pfs+ins"
        assert PerformanceSchemaConfig.pfs_con().label == "pfs+con"
        assert PerformanceSchemaConfig.pfs_con_ins().label == "pfs+con+ins"

    def test_requires_enabled(self):
        with pytest.raises(ValueError):
            PerformanceSchemaConfig(enabled=False, all_instruments=True)


class TestOverheadModel:
    def test_normal_has_zero_overhead(self):
        for wl in StressWorkloadKind:
            assert instrumentation_overhead_ms(PerformanceSchemaConfig.normal(), wl) == 0.0

    def test_overhead_ordering(self):
        for wl in StressWorkloadKind:
            base = instrumentation_overhead_ms(PerformanceSchemaConfig.pfs(), wl)
            ins = instrumentation_overhead_ms(PerformanceSchemaConfig.pfs_ins(), wl)
            con = instrumentation_overhead_ms(PerformanceSchemaConfig.pfs_con(), wl)
            both = instrumentation_overhead_ms(PerformanceSchemaConfig.pfs_con_ins(), wl)
            assert 0 < base < ins < both
            assert base < con < both


class TestStressTest:
    def test_normal_qps_near_paper_values(self):
        ro = run_stress_test(PerformanceSchemaConfig.normal(), StressWorkloadKind.READ_ONLY)
        rw = run_stress_test(PerformanceSchemaConfig.normal(), StressWorkloadKind.READ_WRITE)
        wo = run_stress_test(PerformanceSchemaConfig.normal(), StressWorkloadKind.WRITE_ONLY)
        assert ro.qps == pytest.approx(72_983, rel=0.05)
        assert rw.qps == pytest.approx(41_867, rel=0.05)
        assert wo.qps == pytest.approx(37_400, rel=0.05)

    def test_decline_band_matches_paper_shape(self):
        # Paper Table IV: declines range ~8 % (pfs alone) to ~30 %
        # (pfs+con+ins) depending on workload.
        for wl in StressWorkloadKind:
            normal = run_stress_test(PerformanceSchemaConfig.normal(), wl, seed=1)
            pfs = run_stress_test(PerformanceSchemaConfig.pfs(), wl, seed=2)
            full = run_stress_test(PerformanceSchemaConfig.pfs_con_ins(), wl, seed=3)
            d_pfs = pfs.decline_vs(normal)
            d_full = full.decline_vs(normal)
            assert 5.0 < d_pfs < 20.0
            assert 20.0 < d_full < 40.0
            assert d_full > d_pfs

    def test_decline_requires_positive_baseline(self):
        normal = run_stress_test(PerformanceSchemaConfig.normal(), StressWorkloadKind.READ_ONLY)
        broken = type(normal)(
            config=normal.config, workload=normal.workload, qps=0.0,
            per_second_qps=normal.per_second_qps,
        )
        with pytest.raises(ValueError):
            normal.decline_vs(broken)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            run_stress_test(
                PerformanceSchemaConfig.normal(), StressWorkloadKind.READ_ONLY, threads=0
            )

    def test_per_second_series_length(self):
        res = run_stress_test(
            PerformanceSchemaConfig.pfs(), StressWorkloadKind.READ_ONLY, duration_s=30
        )
        assert len(res.per_second_qps) == 30
