"""Integration tests: engine + instance causal behaviour.

These verify the couplings PinSQL's diagnosis depends on:
CPU saturation slows queries, DDL piles up sessions, row locks
delay co-table readers, throttling reduces traffic.
"""

import numpy as np
import pytest

from repro.dbsim import DatabaseInstance, TemplateSpec, Throttle
from repro.sqltemplate import StatementKind


class ConstantWorkload:
    """Minimal RateProvider with constant rates, optional time windows
    and optional exact one-shot counts (``counts``: sql_id → {t: n})."""

    def __init__(self, specs, rates, windows=None, counts=None):
        self._specs = {s.sql_id: s for s in specs}
        self._rates = dict(rates)
        self._windows = windows or {}
        self._counts = counts or {}

    @property
    def specs(self):
        return self._specs

    def rates_at(self, t):
        out = {}
        for sql_id, rate in self._rates.items():
            window = self._windows.get(sql_id)
            if window is not None and not (window[0] <= t < window[1]):
                continue
            out[sql_id] = rate
        return out

    def counts_at(self, t):
        out = {}
        for sql_id, schedule in self._counts.items():
            if t in schedule:
                out[sql_id] = schedule[t]
        return out


def select_spec(sql_id="SEL00001", table="t", rows=100.0, base=2.0):
    return TemplateSpec(
        sql_id=sql_id,
        template=f"SELECT * FROM {table} WHERE id = ?",
        kind=StatementKind.SELECT,
        tables=(table,),
        base_response_ms=base,
        examined_rows_mean=rows,
    )


def update_spec(sql_id="UPD00001", table="t", hold=200.0, rate_rows=50.0):
    return TemplateSpec(
        sql_id=sql_id,
        template=f"UPDATE {table} SET x = ? WHERE id = ?",
        kind=StatementKind.UPDATE,
        tables=(table,),
        base_response_ms=3.0,
        examined_rows_mean=rate_rows,
        lock_hold_ms=hold,
    )


def ddl_spec(sql_id="DDL00001", table="t", duration=20_000.0):
    return TemplateSpec(
        sql_id=sql_id,
        template=f"ALTER TABLE {table} ADD COLUMN c INT",
        kind=StatementKind.DDL,
        tables=(table,),
        base_response_ms=5.0,
        examined_rows_mean=0.0,
        ddl_duration_ms=duration,
    )


class TestBasicRun:
    def test_logs_and_metrics_produced(self):
        wl = ConstantWorkload([select_spec()], {"SEL00001": 50.0})
        inst = DatabaseInstance(seed=1)
        result = inst.run(wl, duration=30)
        assert result.query_log.total_queries > 1000
        assert len(result.metrics.active_session) == 30
        assert result.metrics["qps"].mean() == pytest.approx(50.0, rel=0.2)
        assert result.duration == 30

    def test_deterministic_given_seed(self):
        wl = ConstantWorkload([select_spec()], {"SEL00001": 20.0})
        r1 = DatabaseInstance(seed=7).run(wl, duration=10)
        r2 = DatabaseInstance(seed=7).run(wl, duration=10)
        assert np.array_equal(
            r1.metrics.active_session.values, r2.metrics.active_session.values
        )
        assert r1.query_log.total_queries == r2.query_log.total_queries

    def test_different_seeds_differ(self):
        wl = ConstantWorkload([select_spec(base=200.0)], {"SEL00001": 20.0})
        r1 = DatabaseInstance(seed=1).run(wl, duration=10)
        r2 = DatabaseInstance(seed=2).run(wl, duration=10)
        assert not np.array_equal(
            r1.metrics.active_session.values, r2.metrics.active_session.values
        )

    def test_start_time_offsets_series(self):
        wl = ConstantWorkload([select_spec()], {"SEL00001": 10.0})
        result = DatabaseInstance(seed=1).run(wl, duration=5, start_time=1000)
        assert result.metrics.active_session.start == 1000
        assert result.end_time == 1005

    def test_active_session_reflects_load(self):
        # Roughly rate × response: 50 qps × ~2.1 ms → session ≈ 0.1, while
        # 50 qps of 500 ms queries → session ≈ 25.
        light = ConstantWorkload([select_spec()], {"SEL00001": 50.0})
        heavy = ConstantWorkload(
            [select_spec(base=500.0)], {"SEL00001": 50.0}
        )
        light_session = DatabaseInstance(seed=3).run(light, 30).metrics.active_session.mean()
        heavy_session = DatabaseInstance(seed=3).run(heavy, 30).metrics.active_session.mean()
        assert heavy_session > light_session + 10


class TestCpuSaturation:
    def test_poor_sql_raises_cpu_and_sessions(self):
        normal = select_spec("SEL00001", rows=100.0)
        poor = select_spec("POOR0001", rows=3_000_000.0, base=50.0)
        wl_quiet = ConstantWorkload([normal], {"SEL00001": 100.0})
        wl_poor = ConstantWorkload(
            [normal, poor],
            {"SEL00001": 100.0, "POOR0001": 10.0},
        )
        inst_q = DatabaseInstance(cpu_cores=4, seed=5)
        quiet = inst_q.run(wl_quiet, duration=60)
        inst_p = DatabaseInstance(cpu_cores=4, seed=5)
        loaded = inst_p.run(wl_poor, duration=60)
        assert loaded.metrics.cpu_usage.mean() > quiet.metrics.cpu_usage.mean() + 30
        assert loaded.metrics.active_session.mean() > quiet.metrics.active_session.mean()

    def test_autoscale_relieves_cpu(self):
        poor = select_spec("POOR0001", rows=2_000_000.0, base=50.0)
        wl = ConstantWorkload([poor], {"POOR0001": 10.0})
        small = DatabaseInstance(cpu_cores=2, seed=5).run(wl, 40)
        big = DatabaseInstance(cpu_cores=32, seed=5).run(wl, 40)
        assert big.metrics.cpu_usage.mean() < small.metrics.cpu_usage.mean()


class TestLockEffects:
    def test_ddl_blocks_co_table_queries(self):
        sel = select_spec("SEL00001", table="sales")
        ddl = ddl_spec("DDL00001", table="sales", duration=20_000.0)
        wl = ConstantWorkload(
            [sel, ddl],
            {"SEL00001": 50.0},
            counts={"DDL00001": {30: 1}},  # exactly one DDL at t=30
        )
        result = DatabaseInstance(seed=9).run(wl, duration=90)
        session = result.metrics.active_session.values
        before = session[:28].mean()
        during = session[35:48].mean()
        assert during > before + 100  # massive pile-up

    def test_ddl_does_not_block_other_tables(self):
        sel = select_spec("SEL00001", table="orders")
        ddl = ddl_spec("DDL00001", table="sales")
        wl = ConstantWorkload(
            [sel, ddl],
            {"SEL00001": 50.0},
            counts={"DDL00001": {30: 1}},
        )
        result = DatabaseInstance(seed=9).run(wl, duration=90)
        session = result.metrics.active_session.values
        # The lone DDL session itself is active, hence the +2 allowance.
        assert session[35:48].mean() < session[:28].mean() + 2

    def test_row_locks_slow_readers_and_bump_counters(self):
        sel = select_spec("SEL00001", table="sales")
        upd = update_spec("UPD00001", table="sales", hold=300.0)
        quiet = ConstantWorkload([sel], {"SEL00001": 80.0})
        hot = ConstantWorkload(
            [sel, upd], {"SEL00001": 80.0, "UPD00001": 40.0}
        )
        rq = DatabaseInstance(seed=11).run(quiet, 40)
        rh = DatabaseInstance(seed=11).run(hot, 40)
        assert rh.metrics["innodb_row_lock_waits"].total() > 100
        assert rq.metrics["innodb_row_lock_waits"].total() == 0
        assert rh.metrics.active_session.mean() > rq.metrics.active_session.mean()


class TestRepairHooks:
    def test_throttle_cuts_traffic(self):
        sel = select_spec()
        wl = ConstantWorkload([sel], {"SEL00001": 100.0})
        inst = DatabaseInstance(seed=13)
        engine = inst.start(wl)
        inst.throttle("SEL00001", factor=0.0, start=10, end=20)
        engine.run(30)
        result = inst.finish()
        qps = result.metrics["qps"].values
        assert qps[:10].mean() > 80
        assert qps[10:20].mean() == 0.0
        assert qps[20:].mean() > 80

    def test_invalid_throttle_factor(self):
        with pytest.raises(ValueError):
            Throttle("X", factor=1.5, start=0, end=10)

    def test_optimization_override_takes_effect(self):
        poor = select_spec("POOR0001", rows=2_000_000.0, base=50.0)
        wl = ConstantWorkload([poor], {"POOR0001": 10.0})
        inst = DatabaseInstance(cpu_cores=4, seed=15)
        engine = inst.start(wl)
        engine.run(20)
        inst.apply_optimization(poor, rows_gain=0.99, tres_gain=0.9)
        # The accumulated CPU backlog takes a while to drain before the
        # optimization's effect becomes visible in the usage metric.
        engine.run(120)
        result = inst.finish()
        cpu = result.metrics.cpu_usage.values
        assert cpu[-20:].mean() < cpu[5:20].mean() * 0.5

    def test_engine_access_requires_run(self):
        inst = DatabaseInstance()
        with pytest.raises(RuntimeError):
            _ = inst.engine

    def test_on_second_callback(self):
        wl = ConstantWorkload([select_spec()], {"SEL00001": 10.0})
        seen = []
        DatabaseInstance(seed=1).run(
            wl, duration=5, on_second=lambda t, eng: seen.append(t)
        )
        assert seen == [0, 1, 2, 3, 4]


class TestTruthSampler:
    def test_sampled_session_matches_truth_at_t3(self):
        wl = ConstantWorkload([select_spec(base=100.0)], {"SEL00001": 50.0})
        result = DatabaseInstance(seed=17).run(wl, duration=20)
        truth_at_t3 = result.truth.active_at(result.t3_ms)
        assert np.array_equal(
            truth_at_t3, result.metrics.active_session.values.astype(int)
        )

    def test_t3_within_each_second(self):
        wl = ConstantWorkload([select_spec()], {"SEL00001": 5.0})
        result = DatabaseInstance(seed=17).run(wl, duration=10, start_time=100)
        seconds = result.t3_ms // 1000
        assert np.array_equal(seconds, np.arange(100, 110))


class TestReadReplicaOffload:
    def test_offload_sheds_read_traffic(self):
        sel = select_spec()
        upd = update_spec("UPD00001", table="t")
        wl = ConstantWorkload([sel, upd], {"SEL00001": 100.0, "UPD00001": 20.0})
        inst = DatabaseInstance(seed=21)
        engine = inst.start(wl)
        engine.run(20)
        inst.add_read_replicas(0.8)
        engine.run(20)
        result = inst.finish()
        log = result.query_log
        sel_q = log.queries_of("SEL00001")
        sel_before = ((sel_q.arrive_ms // 1000) < 20).sum()
        sel_after = ((sel_q.arrive_ms // 1000) >= 20).sum()
        # Roughly 80 % of SELECTs vanish from the primary's logs.
        assert sel_after < 0.45 * sel_before
        # Writes keep flowing to the primary.
        upd_q = log.queries_of("UPD00001")
        upd_after = ((upd_q.arrive_ms // 1000) >= 20).sum()
        assert upd_after > 0.5 * ((upd_q.arrive_ms // 1000) < 20).sum()

    def test_invalid_offload_rejected(self):
        inst = DatabaseInstance(seed=1)
        inst.start(ConstantWorkload([select_spec()], {"SEL00001": 1.0}))
        import pytest as _pytest

        with _pytest.raises(ValueError):
            inst.add_read_replicas(1.0)
        inst.finish()


class GrowingRowsWorkload(ConstantWorkload):
    """ConstantWorkload plus the optional ``rows_at`` hook: one template's
    examined-rows mean grows linearly over the run (data growth)."""

    def __init__(self, specs, rates, growing_id, rows_start, rows_end, duration):
        super().__init__(specs, rates)
        self._growing_id = growing_id
        self._profile = np.linspace(rows_start, rows_end, duration)

    def rows_at(self, t):
        idx = min(max(int(t), 0), len(self._profile) - 1)
        return {self._growing_id: float(self._profile[idx])}


class TestTimeVaryingRows:
    def test_examined_rows_track_the_profile(self):
        sel = select_spec(rows=1_000.0)
        wl = GrowingRowsWorkload(
            [sel], {"SEL00001": 50.0}, "SEL00001",
            rows_start=1_000.0, rows_end=50_000.0, duration=40,
        )
        result = DatabaseInstance(seed=5).run(wl, duration=40)
        q = result.query_log.queries_of("SEL00001")
        seconds = q.arrive_ms // 1000
        early = q.examined_rows[seconds < 1].mean()
        late = q.examined_rows[seconds >= 39].mean()
        assert early == pytest.approx(1_000.0, rel=0.5)
        assert late == pytest.approx(50_000.0, rel=0.5)
        assert late > 10 * early

    def test_growing_rows_raise_response_time(self):
        sel = select_spec(rows=1_000.0)
        wl = GrowingRowsWorkload(
            [sel], {"SEL00001": 50.0}, "SEL00001",
            rows_start=1_000.0, rows_end=200_000.0, duration=40,
        )
        result = DatabaseInstance(seed=6).run(wl, duration=40)
        q = result.query_log.queries_of("SEL00001")
        seconds = q.arrive_ms // 1000
        early_rt = q.response_ms[seconds < 5].mean()
        late_rt = q.response_ms[seconds >= 35].mean()
        # Scan cost dominates: response time creeps with the data.
        assert late_rt > 3 * early_rt

    def test_other_templates_unaffected(self):
        sel = select_spec(rows=1_000.0)
        other = select_spec("SEL00002", rows=500.0)
        wl = GrowingRowsWorkload(
            [sel, other], {"SEL00001": 20.0, "SEL00002": 20.0},
            "SEL00001", rows_start=1_000.0, rows_end=50_000.0, duration=30,
        )
        result = DatabaseInstance(seed=7).run(wl, duration=30)
        q = result.query_log.queries_of("SEL00002")
        seconds = q.arrive_ms // 1000
        early = q.examined_rows[seconds < 5].mean()
        late = q.examined_rows[seconds >= 25].mean()
        assert late == pytest.approx(early, rel=0.4)
