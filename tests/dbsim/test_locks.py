"""Tests for the lock manager (MDL + row locks)."""

import numpy as np
import pytest

from repro.dbsim import LockManager


class TestMdl:
    def test_blocking_window(self):
        lm = LockManager()
        lm.acquire_mdl("sales", start_ms=1000.0, duration_ms=5000.0)
        arrive = np.array([500.0, 1500.0, 5999.0, 6000.0])
        wait = lm.mdl_wait("sales", arrive)
        assert wait[0] == 0.0            # before the lock
        assert wait[1] == pytest.approx(4500.0)
        assert wait[2] == pytest.approx(1.0)
        assert wait[3] == 0.0            # after release

    def test_other_table_unaffected(self):
        lm = LockManager()
        lm.acquire_mdl("sales", 0.0, 10_000.0)
        wait = lm.mdl_wait("orders", np.array([100.0]))
        assert wait[0] == 0.0

    def test_overlapping_locks_take_max(self):
        lm = LockManager()
        lm.acquire_mdl("t", 0.0, 2000.0)
        lm.acquire_mdl("t", 500.0, 5000.0)  # ends at 5500
        wait = lm.mdl_wait("t", np.array([600.0]))
        assert wait[0] == pytest.approx(4900.0)

    def test_prune_drops_expired(self):
        lm = LockManager()
        lm.acquire_mdl("t", 0.0, 1000.0)
        lm.acquire_mdl("t", 0.0, 10_000.0)
        lm.prune_mdl(5000.0)
        assert len(lm.active_mdl_windows("t")) == 1

    def test_blocked_until(self):
        lm = LockManager()
        lm.acquire_mdl("t", 1000.0, 2000.0)
        assert lm.mdl_blocked_until("t", 1500.0) == pytest.approx(3000.0)
        assert lm.mdl_blocked_until("t", 4000.0) is None

    def test_invalid_duration(self):
        with pytest.raises(ValueError):
            LockManager().acquire_mdl("t", 0.0, 0.0)


class TestRowLocks:
    def test_no_pressure_no_waits(self):
        lm = LockManager()
        lm.begin_second()
        rng = np.random.default_rng(0)
        waits, stats = lm.row_lock_wait("t", 100, rng)
        assert waits.sum() == 0.0
        assert stats.waits == 0

    def test_pressure_induces_waits(self):
        lm = LockManager(conflict_rate=0.5)
        lm.begin_second()
        lm.add_write_load("t", writes_per_second=200.0, hold_ms=50.0)  # pressure 10
        rng = np.random.default_rng(1)
        waits, stats = lm.row_lock_wait("t", 1000, rng)
        assert stats.waits > 500  # p_wait = 1 - e^-5 ≈ 0.993
        assert stats.wait_time_ms == pytest.approx(waits.sum())
        assert waits.max() <= lm.max_wait_ms

    def test_self_pressure_excluded(self):
        lm = LockManager(conflict_rate=0.5)
        lm.begin_second()
        lm.add_write_load("t", 200.0, 50.0)
        rng = np.random.default_rng(2)
        waits, stats = lm.row_lock_wait("t", 1000, rng, exclude_self_pressure=10.0)
        assert stats.waits == 0

    def test_pressure_resets_each_second(self):
        lm = LockManager()
        lm.begin_second()
        lm.add_write_load("t", 100.0, 100.0)
        assert lm.pressure("t") == pytest.approx(10.0)
        lm.begin_second()
        assert lm.pressure("t") == 0.0

    def test_pressure_accumulates_within_second(self):
        lm = LockManager()
        lm.begin_second()
        lm.add_write_load("t", 100.0, 100.0)
        lm.add_write_load("t", 50.0, 100.0)
        assert lm.pressure("t") == pytest.approx(15.0)

    def test_other_table_isolated(self):
        lm = LockManager(conflict_rate=0.5)
        lm.begin_second()
        lm.add_write_load("a", 200.0, 50.0)
        rng = np.random.default_rng(3)
        _, stats = lm.row_lock_wait("b", 500, rng)
        assert stats.waits == 0

    def test_zero_queries(self):
        lm = LockManager()
        lm.begin_second()
        waits, stats = lm.row_lock_wait("t", 0, np.random.default_rng(0))
        assert len(waits) == 0 and stats.waits == 0

    def test_negative_load_rejected(self):
        lm = LockManager()
        lm.begin_second()
        with pytest.raises(ValueError):
            lm.add_write_load("t", -1.0, 10.0)

    def test_invalid_conflict_rate(self):
        with pytest.raises(ValueError):
            LockManager(conflict_rate=-0.1)
