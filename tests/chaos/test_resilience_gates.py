"""Accuracy-under-faults gates: the chaos harness run end to end.

One fixed-seed suite (clean baseline + every fault class) runs once per
test session; every gate below reads the resulting scorecard.  These
are the acceptance criteria of the resilience layer:

* every fault class completes with zero uncaught exceptions;
* attribution accuracy under ≤10% message loss stays within tolerance
  of the clean baseline;
* corrupted evidence produces *degraded-stamped* diagnoses that are
  visible in the persisted incident records, not silently full-
  confidence verdicts.
"""

import pytest

from repro.chaos import FAULT_KINDS
from repro.evaluation import ChaosHarnessConfig, run_chaos_suite
from repro.incidents import IncidentStore

#: Accuracy may drop under faults, but not collapse: a run that loses
#: more than this much R-SQL accuracy vs the clean baseline fails.
ACCURACY_TOLERANCE = 0.5


@pytest.fixture(scope="module")
def chaos_setup(tmp_path_factory):
    record_dir = tmp_path_factory.mktemp("chaos-incidents")
    cfg = ChaosHarnessConfig(
        seed=7,
        n_instances=3,
        anomalous=2,
        duration_s=480,
        workers=2,
        record_dir=str(record_dir),
    )
    return cfg, run_chaos_suite(cfg)


@pytest.fixture(scope="module")
def scorecard(chaos_setup):
    return chaos_setup[1]


class TestCompletionGates:
    def test_every_fault_class_ran(self, scorecard):
        assert scorecard.clean is not None
        assert tuple(r.fault for r in scorecard.faults) == FAULT_KINDS

    def test_all_runs_completed_without_uncaught_exceptions(self, scorecard):
        for report in [scorecard.clean, *scorecard.faults]:
            assert report.completed, f"{report.fault} did not complete"
            assert report.uncaught_exceptions == 0, (
                f"{report.fault} raised: {report.errors}"
            )
        assert scorecard.all_completed

    def test_stream_faults_actually_fired(self, scorecard):
        # Worker faults may legitimately never fire at low rates over few
        # steps; the stream fault classes must inject something, or the
        # gates are vacuous.
        for fault in ("drop", "duplicate", "reorder", "corrupt", "backpressure"):
            report = scorecard.report_for(fault)
            assert report.faults_injected > 0, f"{fault} injected nothing"


class TestAccuracyGates:
    def test_clean_baseline_attributes_every_injected_rsql(self, scorecard):
        clean = scorecard.clean
        assert clean.r_expected == 2
        assert clean.r_accuracy == 1.0
        assert clean.missed_instances == 0

    def test_rsql_accuracy_survives_message_loss(self, scorecard):
        # The drop plan loses ~10% of every stream — the headline gate.
        drop = scorecard.report_for("drop")
        clean = scorecard.clean
        assert drop.r_accuracy >= clean.r_accuracy - ACCURACY_TOLERANCE
        assert drop.r_accuracy >= 0.5

    @pytest.mark.parametrize(
        "fault", [k for k in FAULT_KINDS if k not in ("worker_crash", "worker_hang")]
    )
    def test_every_stream_fault_keeps_accuracy_within_tolerance(
        self, scorecard, fault
    ):
        report = scorecard.report_for(fault)
        clean = scorecard.clean
        assert report.r_accuracy >= clean.r_accuracy - ACCURACY_TOLERANCE
        assert report.h_accuracy >= clean.h_accuracy - ACCURACY_TOLERANCE

    def test_anomalies_still_detected_under_faults(self, scorecard):
        for report in [scorecard.clean, *scorecard.faults]:
            assert report.detected_instances >= 1, (
                f"{report.fault}: no anomalous instance got any diagnosis"
            )


class TestDegradedEvidenceGates:
    def test_corruption_yields_degraded_diagnoses(self, scorecard):
        corrupt = scorecard.report_for("corrupt")
        assert corrupt.quarantined > 0
        assert corrupt.degraded_diagnoses > 0

    def test_degraded_confidence_is_persisted_in_incident_records(
        self, chaos_setup
    ):
        cfg, scorecard = chaos_setup
        store = IncidentStore(f"{cfg.record_dir}/corrupt")
        metas = store.metas()
        assert metas, "corrupt run persisted no incidents"
        degraded = [m for m in metas if m.confidence == "degraded"]
        assert len(degraded) == scorecard.report_for("corrupt").degraded_diagnoses

    def test_clean_run_keeps_full_confidence(self, chaos_setup):
        cfg, _ = chaos_setup
        metas = IncidentStore(f"{cfg.record_dir}/clean").metas()
        assert metas
        assert all(m.confidence == "full" for m in metas)


class TestRecoveryGates:
    def test_supervised_restarts_recover_crashed_workers(self, scorecard):
        crash = scorecard.report_for("worker_crash")
        assert crash.worker_restarts >= 1
        assert crash.completed and crash.uncaught_exceptions == 0

    def test_quarantine_only_engages_under_corruption(self, scorecard):
        assert scorecard.clean.quarantined == 0
        assert scorecard.report_for("drop").quarantined == 0
