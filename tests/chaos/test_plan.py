"""Tests for fault plans: validation, defaults, JSON round-trips."""

import pytest

from repro.chaos import FAULT_KINDS, FaultPlan, FaultSpec, single_fault_plan


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(kind="gremlins")

    def test_rate_bounds_enforced(self):
        with pytest.raises(ValueError):
            FaultSpec(kind="drop", rate=1.5)
        with pytest.raises(ValueError):
            FaultSpec(kind="drop", rate=-0.1)

    def test_default_params_merged_under_explicit(self):
        spec = FaultSpec(kind="reorder", params={"window": 12})
        assert spec.param("window") == 12
        spec = FaultSpec(kind="reorder")
        assert spec.param("window") == 6  # the documented default

    def test_round_trip(self):
        spec = FaultSpec(kind="late", rate=0.2, topic="query_logs.*",
                         params={"hold_messages": 4})
        again = FaultSpec.from_dict(spec.to_dict())
        assert again == spec


class TestFaultPlan:
    def test_kinds_deduplicated_in_order(self):
        plan = FaultPlan(
            name="p", seed=1,
            specs=(FaultSpec(kind="drop"), FaultSpec(kind="corrupt"),
                   FaultSpec(kind="drop", topic="metrics.*")),
        )
        assert plan.kinds == ("drop", "corrupt")

    def test_spec_for_returns_first_match(self):
        plan = FaultPlan(
            name="p",
            specs=(FaultSpec(kind="drop", rate=0.5), FaultSpec(kind="drop")),
        )
        assert plan.spec_for("drop").rate == 0.5
        assert plan.spec_for("late") is None

    def test_json_file_round_trip(self, tmp_path):
        plan = FaultPlan(
            name="ci-chaos", seed=99,
            specs=(FaultSpec(kind="drop", rate=0.1),
                   FaultSpec(kind="worker_crash", params={"max_crashes": 1})),
        )
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json(), encoding="utf-8")
        loaded = FaultPlan.load(path)
        assert loaded == plan


class TestSingleFaultPlan:
    @pytest.mark.parametrize("kind", FAULT_KINDS)
    def test_every_kind_builds(self, kind):
        plan = single_fault_plan(kind, seed=3)
        assert plan.kinds == (kind,)
        assert plan.seed == 3
        assert 0.0 < plan.specs[0].rate <= 1.0

    def test_rate_and_params_overridable(self):
        plan = single_fault_plan("backpressure", rate=1.0, stall_polls=7)
        assert plan.specs[0].rate == 1.0
        assert plan.specs[0].param("stall_polls") == 7
