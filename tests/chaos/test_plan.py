"""Tests for fault plans: validation, defaults, JSON round-trips."""

import pytest

from repro.chaos import FAULT_KINDS, FaultPlan, FaultSpec, single_fault_plan


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(kind="gremlins")

    def test_rate_bounds_enforced(self):
        with pytest.raises(ValueError):
            FaultSpec(kind="drop", rate=1.5)
        with pytest.raises(ValueError):
            FaultSpec(kind="drop", rate=-0.1)

    def test_default_params_merged_under_explicit(self):
        spec = FaultSpec(kind="reorder", params={"window": 12})
        assert spec.param("window") == 12
        spec = FaultSpec(kind="reorder")
        assert spec.param("window") == 6  # the documented default

    def test_round_trip(self):
        spec = FaultSpec(kind="late", rate=0.2, topic="query_logs.*",
                         params={"hold_messages": 4})
        again = FaultSpec.from_dict(spec.to_dict())
        assert again == spec


class TestFaultPlan:
    def test_kinds_deduplicated_in_order(self):
        plan = FaultPlan(
            name="p", seed=1,
            specs=(FaultSpec(kind="drop"), FaultSpec(kind="corrupt"),
                   FaultSpec(kind="drop", topic="metrics.*")),
        )
        assert plan.kinds == ("drop", "corrupt")

    def test_spec_for_returns_first_match(self):
        plan = FaultPlan(
            name="p",
            specs=(FaultSpec(kind="drop", rate=0.5), FaultSpec(kind="drop")),
        )
        assert plan.spec_for("drop").rate == 0.5
        assert plan.spec_for("late") is None

    def test_json_file_round_trip(self, tmp_path):
        plan = FaultPlan(
            name="ci-chaos", seed=99,
            specs=(FaultSpec(kind="drop", rate=0.1),
                   FaultSpec(kind="worker_crash", params={"max_crashes": 1})),
        )
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json(), encoding="utf-8")
        loaded = FaultPlan.load(path)
        assert loaded == plan


class TestSingleFaultPlan:
    @pytest.mark.parametrize("kind", FAULT_KINDS)
    def test_every_kind_builds(self, kind):
        plan = single_fault_plan(kind, seed=3)
        assert plan.kinds == (kind,)
        assert plan.seed == 3
        assert 0.0 < plan.specs[0].rate <= 1.0

    def test_rate_and_params_overridable(self):
        plan = single_fault_plan("backpressure", rate=1.0, stall_polls=7)
        assert plan.specs[0].rate == 1.0
        assert plan.specs[0].param("stall_polls") == 7


class TestFromJson:
    """Strict parsing: a generated plan is rejected at load time with a
    message naming the offending spec, not at injection time."""

    def test_round_trip(self):
        plan = single_fault_plan("reorder", seed=5)
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_invalid_json_named(self):
        with pytest.raises(ValueError, match="chaos.json: not valid JSON"):
            FaultPlan.from_json("{nope", source="chaos.json")

    def test_non_object_document_rejected(self):
        with pytest.raises(ValueError, match="must be a JSON object"):
            FaultPlan.from_json("[1, 2]")

    def test_specs_must_be_a_list(self):
        with pytest.raises(ValueError, match="'specs' must be a list"):
            FaultPlan.from_json('{"name": "p", "specs": {"kind": "drop"}}')

    def test_spec_entries_must_be_objects(self):
        with pytest.raises(ValueError, match=r"specs\[0\] must be an object"):
            FaultPlan.from_json('{"name": "p", "specs": ["drop"]}')

    def test_missing_kind_pinpointed(self):
        with pytest.raises(
            ValueError, match=r"specs\[1\] is missing required key 'kind'"
        ):
            FaultPlan.from_json(
                '{"name": "p", "specs": [{"kind": "drop"}, {"rate": 0.5}]}'
            )

    def test_unknown_kind_lists_known_kinds(self):
        with pytest.raises(ValueError) as err:
            FaultPlan.from_json(
                '{"name": "p", "specs": [{"kind": "gamma_ray"}]}'
            )
        message = str(err.value)
        assert "unknown fault kind 'gamma_ray'" in message
        for kind in FAULT_KINDS:
            assert kind in message

    def test_malformed_plan_wrapped_with_context(self):
        with pytest.raises(ValueError, match="malformed fault plan"):
            FaultPlan.from_json(
                '{"name": "p", "specs": [{"kind": "drop", "rate": 7.0}]}'
            )

    def test_load_names_the_file(self, tmp_path):
        path = tmp_path / "broken-plan.json"
        path.write_text('{"specs": [{"kind": "cosmic"}]}', encoding="utf-8")
        with pytest.raises(ValueError, match="broken-plan.json"):
            FaultPlan.load(path)
