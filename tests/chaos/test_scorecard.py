"""Tests for the resilience scorecard artifact."""

import json

from repro.chaos import FaultClassReport, ResilienceScorecard


def make_report(**kwargs) -> FaultClassReport:
    defaults = dict(
        fault="drop", completed=True, diagnoses=2, r_hits=2, r_expected=2,
        h_hits=1, h_expected=2, faults_injected=37,
    )
    defaults.update(kwargs)
    return FaultClassReport(**defaults)


class TestFaultClassReport:
    def test_accuracy_ratios(self):
        report = make_report()
        assert report.r_accuracy == 1.0
        assert report.h_accuracy == 0.5

    def test_accuracy_is_one_when_nothing_expected(self):
        report = make_report(r_hits=0, r_expected=0, h_hits=0, h_expected=0)
        assert report.r_accuracy == 1.0
        assert report.h_accuracy == 1.0

    def test_round_trip(self):
        report = make_report(
            errors=("ValueError: boom",), notes=("released 3 held messages",),
            degraded_diagnoses=1, quarantined=12, offset_resyncs=2,
            worker_restarts=1, detected_instances=2, missed_instances=0,
            spurious_diagnoses=1,
        )
        again = FaultClassReport.from_dict(report.to_dict())
        assert again == report


class TestResilienceScorecard:
    def make_scorecard(self) -> ResilienceScorecard:
        return ResilienceScorecard(
            seed=7, instances=3, duration_s=480,
            clean=make_report(fault="clean", faults_injected=0),
            faults=[make_report(fault="drop"), make_report(fault="corrupt")],
        )

    def test_report_for_finds_clean_and_faults(self):
        card = self.make_scorecard()
        assert card.report_for("clean").fault == "clean"
        assert card.report_for("corrupt").fault == "corrupt"
        assert card.report_for("nonexistent") is None

    def test_all_completed_requires_every_run_clean(self):
        card = self.make_scorecard()
        assert card.all_completed
        card.faults[1].uncaught_exceptions = 1
        assert not card.all_completed
        card.faults[1].uncaught_exceptions = 0
        card.faults[0].completed = False
        assert not card.all_completed

    def test_empty_scorecard_is_not_a_pass(self):
        assert not ResilienceScorecard(seed=0, instances=0, duration_s=0).all_completed

    def test_json_round_trip(self):
        card = self.make_scorecard()
        data = json.loads(card.to_json())
        again = ResilienceScorecard.from_dict(data)
        assert again.seed == card.seed
        assert again.clean == card.clean
        assert again.faults == card.faults
        assert data["all_completed"] is True

    def test_render_text_shows_verdict_and_rows(self):
        card = self.make_scorecard()
        text = card.render_text()
        assert "PASS" in text
        assert "clean" in text and "drop" in text and "corrupt" in text
        card.faults[0].completed = False
        card.faults[0].errors = ("RuntimeError: boom",)
        text = card.render_text()
        assert "FAIL" in text
        assert "RuntimeError: boom" in text
