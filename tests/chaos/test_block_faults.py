"""Chaos faults against columnar block messages.

The fault injector predates the columnar dataplane; these tests pin
that it kept up.  ``ChaosBroker.publish_block`` must route batch
messages through the same drop / corrupt / skew / duplicate pipeline
as per-record traffic (``__getattr__`` delegation to the inner broker
would silently bypass injection), every corruption mode must produce a
block the validators catch, and a consumer positioned behind the chaos
facade must quarantine the damage instead of aggregating it.
"""

import numpy as np
import pytest

from repro.chaos import ChaosBroker, FaultInjector, FaultPlan, FaultSpec, single_fault_plan
from repro.collection import Broker, LogStore, StreamAggregator
from repro.collection.blocks import (
    MetricBlock,
    QueryLogBlock,
    metric_block_from_records,
    query_block_from_batches,
    validate_metric_block,
    validate_query_block,
)
from repro.dbsim.query import SecondBatch
from repro.telemetry import MetricsRegistry


def query_block(instance=""):
    return query_block_from_batches(
        [
            SecondBatch(
                "q1",
                np.array([5_000, 5_400, 6_100], dtype=np.int64),
                np.array([10.0, 20.0, 30.0]),
                np.array([100.0, 200.0, 300.0]),
            ),
            SecondBatch(
                "q2",
                np.array([5_200], dtype=np.int64),
                np.array([5.0]),
                np.array([50.0]),
            ),
        ],
        instance=instance,
    )


def metric_block(instance=""):
    return metric_block_from_records(
        [
            {"metric": "cpu", "timestamp": 5, "value": 0.5},
            {"metric": "cpu", "timestamp": 6, "value": 0.7},
        ],
        instance=instance,
    )


def chaos_broker(kind, rate=1.0, seed=7, registry=None, **params):
    registry = registry or MetricsRegistry()
    broker = Broker(registry=registry)
    injector = FaultInjector(
        single_fault_plan(kind, seed=seed, rate=rate, **params), registry=registry
    )
    return injector.wrap_broker(broker), broker, registry


class TestCorruptionModes:
    """Every deterministic block-corruption mode is validator-visible."""

    @pytest.mark.parametrize("draw", [i / 8 + 0.01 for i in range(8)])
    def test_corrupted_query_blocks_fail_validation(self, draw):
        inj = FaultInjector(
            single_fault_plan("corrupt", rate=1.0), registry=MetricsRegistry()
        )
        mangled = inj.corrupt(query_block(), draw)
        assert validate_query_block(mangled) is not None

    @pytest.mark.parametrize("draw", [i / 8 + 0.01 for i in range(8)])
    def test_corrupted_metric_blocks_fail_validation(self, draw):
        inj = FaultInjector(
            single_fault_plan("corrupt", rate=1.0), registry=MetricsRegistry()
        )
        mangled = inj.corrupt(metric_block(), draw)
        assert validate_metric_block(mangled) is not None

    def test_corruption_does_not_mutate_the_original(self):
        inj = FaultInjector(
            single_fault_plan("corrupt", rate=1.0), registry=MetricsRegistry()
        )
        block = query_block()
        before = block.data.copy()
        inj.corrupt(block, 0.4)
        np.testing.assert_array_equal(block.data, before)

    def test_skewed_blocks_stay_valid_with_exact_shift(self):
        inj = FaultInjector(
            single_fault_plan("clock_skew", rate=1.0), registry=MetricsRegistry()
        )
        qb = inj.skew(query_block(), 90)
        assert isinstance(qb, QueryLogBlock)
        assert validate_query_block(qb) is None
        np.testing.assert_array_equal(
            qb.data["arrive_ms"], query_block().data["arrive_ms"] + 90_000
        )
        mb = inj.skew(metric_block(), 90)
        assert isinstance(mb, MetricBlock)
        assert validate_metric_block(mb) is None
        np.testing.assert_array_equal(
            mb.data["timestamp"], metric_block().data["timestamp"] + 90
        )


class TestChaosPublishBlock:
    def test_dropped_blocks_never_reach_the_topic(self):
        chaos, broker, registry = chaos_broker("drop", rate=1.0)
        message = chaos.publish_block("query_logs.db-a", query_block())
        assert message.offset == -1  # chaos sentinel: nothing was retained
        assert broker.retained("query_logs.db-a") == 0
        assert (
            registry.get("chaos_faults_injected_total", kind="drop").value == 1
        )

    def test_corrupted_blocks_are_delivered_then_quarantined_downstream(self):
        chaos, broker, registry = chaos_broker("corrupt", rate=1.0)
        chaos.publish_block("query_logs.db-a", query_block())
        messages = broker.read("query_logs.db-a", 0, 10)
        assert len(messages) == 1
        # Chaos delivered a damaged block — but one the validator catches.
        assert validate_query_block(messages[0].value) is not None

    def test_invalid_blocks_are_quarantined_before_injection(self):
        chaos, broker, registry = chaos_broker("drop", rate=1.0)
        bad = QueryLogBlock(sql_ids=(), data=query_block().data)
        assert chaos.publish_block("query_logs.db-a", bad) is None
        dead = broker.read("dead_letter.query_logs.db-a", 0, 10)
        assert len(dead) == 1 and dead[0].key == "missing_dictionary"
        # The quarantine consumed the message; no drop fault fired.
        assert registry.get("chaos_faults_injected_total", kind="drop") is None

    def test_duplicate_blocks_double_aggregates_honestly(self):
        chaos, broker, _ = chaos_broker("duplicate", rate=1.0)
        chaos.publish_block("query_logs", query_block())
        assert broker.retained("query_logs") == 2
        aggregator = StreamAggregator(broker.consumer("query_logs"), start=0, end=10)
        aggregator.drain()
        # Both copies aggregate — duplication is a data fault the
        # detector layer sees, not one the transport hides.
        assert aggregator.snapshot().get("q1", "#execution").values.sum() == 6


class TestDownstreamResilience:
    def test_aggregator_skips_chaos_corrupted_blocks(self):
        """A consumer validates blocks and quarantines the damage."""
        registry = MetricsRegistry()
        broker = Broker(registry=registry)
        injector = FaultInjector(
            FaultPlan(
                name="mixed",
                seed=3,
                specs=(FaultSpec(kind="corrupt", rate=0.5),),
            ),
            registry=registry,
        )
        chaos = injector.wrap_broker(broker)
        delivered_valid = 0
        for seed in range(20):
            block = query_block()
            chaos.publish_block("query_logs", block)
        chaos.flush()
        store = LogStore(registry=registry)
        consumer = broker.consumer("query_logs")
        quarantined = 0
        for message in consumer.poll(100):
            reason = validate_query_block(message.value)
            if reason is not None:
                quarantined += 1
                continue
            store.ingest_block(message.value)
            delivered_valid += 1
        assert delivered_valid + quarantined == 20
        assert quarantined > 0, "corrupt rate 0.5 over 20 blocks must hit"
        assert delivered_valid > 0, "corrupt rate 0.5 over 20 blocks must miss"
        # The store only absorbed intact blocks: counts are a multiple
        # of one block's four queries.
        assert store.total_queries() == delivered_valid * 4

    def test_fault_counts_are_deterministic_across_runs(self):
        def run():
            chaos, broker, registry = chaos_broker("corrupt", rate=0.5, seed=42)
            for _ in range(30):
                chaos.publish_block("query_logs", query_block())
            damaged = sum(
                1
                for m in broker.read("query_logs", 0, 100)
                if validate_query_block(m.value) is not None
            )
            return damaged

        assert run() == run() > 0
