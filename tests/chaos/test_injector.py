"""Tests for the deterministic fault injector and its broker facades."""

import pytest

from repro.chaos import (
    ChaosBroker,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedWorkerCrash,
    InjectedWorkerHang,
    single_fault_plan,
)
from repro.chaos.injector import _uniform
from repro.collection.stream import Broker
from repro.telemetry import MetricsRegistry


def make_injector(plan: FaultPlan) -> FaultInjector:
    return FaultInjector(plan, registry=MetricsRegistry())


def metric_record(t: int) -> dict:
    return {"metric": "active_session", "timestamp": t, "value": 1.0}


class TestDeterminism:
    def test_uniform_is_pure_and_bounded(self):
        a = _uniform(7, "drop", "metrics", 3)
        b = _uniform(7, "drop", "metrics", 3)
        assert a == b
        assert 0.0 <= a < 1.0
        assert _uniform(8, "drop", "metrics", 3) != a

    def test_hit_repeats_bit_for_bit(self):
        inj = make_injector(single_fault_plan("drop", seed=7))
        spec = inj.plan.specs[0]
        decisions = [inj.hit(spec, "metrics", i) for i in range(200)]
        again = [inj.hit(spec, "metrics", i) for i in range(200)]
        assert decisions == again
        # The default 10% rate should land in a sane band over 200 draws.
        assert 5 <= sum(decisions) <= 40

    def test_spec_for_respects_topic_pattern(self):
        plan = FaultPlan(
            name="p", seed=1,
            specs=(FaultSpec(kind="drop", rate=1.0, topic="metrics.*"),),
        )
        inj = make_injector(plan)
        assert inj.spec_for("drop", "metrics.db-00") is not None
        assert inj.spec_for("drop", "query_logs.db-00") is None

    def test_dead_letter_topics_are_exempt(self):
        inj = make_injector(single_fault_plan("drop", rate=1.0))
        assert inj.spec_for("drop", "dead_letter.query_logs") is None


class TestStreamFaults:
    def wrapped(self, kind: str, rate: float = 1.0, **params):
        inj = make_injector(single_fault_plan(kind, seed=7, rate=rate, **params))
        broker = Broker(registry=MetricsRegistry())
        return inj.wrap_broker(broker), broker, inj

    def test_drop_loses_messages(self):
        chaos, broker, inj = self.wrapped("drop")
        for i in range(10):
            chaos.publish("metrics.db-00", "db-00", metric_record(i))
        assert broker.size("metrics.db-00") == 0
        assert inj.injected["drop"] == 10

    def test_duplicate_delivers_twice(self):
        chaos, broker, inj = self.wrapped("duplicate")
        for i in range(10):
            chaos.publish("metrics.db-00", "db-00", metric_record(i))
        assert broker.size("metrics.db-00") == 20
        assert inj.injected["duplicate"] == 10

    def test_corrupt_mutates_payloads(self):
        chaos, broker, inj = self.wrapped("corrupt")
        consumer = broker.consumer("metrics.db-00")
        for i in range(10):
            chaos.publish("metrics.db-00", "db-00", metric_record(i))
        messages = consumer.poll()
        assert len(messages) == 10
        assert inj.injected["corrupt"] == 10
        assert any(m.value != metric_record(i) for i, m in enumerate(messages))

    def test_clock_skew_shifts_timestamps(self):
        chaos, broker, inj = self.wrapped("clock_skew", skew_s=90)
        consumer = broker.consumer("metrics.db-00")
        chaos.publish("metrics.db-00", "db-00", metric_record(100))
        (msg,) = consumer.poll()
        assert msg.value["timestamp"] == 190
        assert inj.injected["clock_skew"] == 1

    def test_late_messages_held_then_released(self):
        chaos, broker, inj = self.wrapped("late", hold_messages=3)
        for i in range(3):
            chaos.publish("metrics.db-00", "db-00", metric_record(i))
        # Everything is being held back so far.
        assert broker.size("metrics.db-00") < 3
        released = chaos.flush()
        assert released > 0
        assert broker.size("metrics.db-00") == 3
        assert inj.injected["late"] == 3

    def test_reorder_preserves_the_message_set(self):
        chaos, broker, inj = self.wrapped("reorder", window=4)
        consumer = broker.consumer("metrics.db-00")
        for i in range(12):
            chaos.publish("metrics.db-00", "db-00", metric_record(i))
        chaos.flush()
        values = [m.value["timestamp"] for m in consumer.poll()]
        assert sorted(values) == list(range(12))
        assert values != list(range(12))  # the shuffle actually fired
        assert inj.injected["reorder"] >= 1

    def test_flush_is_idempotent(self):
        chaos, _, _ = self.wrapped("late", hold_messages=5)
        chaos.publish("metrics.db-00", "db-00", metric_record(0))
        assert chaos.flush() == 1
        assert chaos.flush() == 0

    def test_rate_zero_passes_everything_through(self):
        chaos, broker, inj = self.wrapped("drop", rate=0.0)
        for i in range(10):
            chaos.publish("metrics.db-00", "db-00", metric_record(i))
        assert broker.size("metrics.db-00") == 10
        assert inj.injected == {}


class TestChaosConsumer:
    def test_backpressure_stalls_polls(self):
        inj = make_injector(
            single_fault_plan("backpressure", rate=1.0, stall_polls=3)
        )
        broker = Broker(registry=MetricsRegistry())
        chaos = inj.wrap_broker(broker)
        consumer = chaos.consumer("query_logs.db-00")
        broker.publish("query_logs.db-00", "db-00", {"sql_id": "q1"})
        for _ in range(5):
            assert consumer.poll() == []
        assert consumer.lag == 1  # nothing consumed while stalled
        assert inj.injected["backpressure"] == 5

    def test_consumer_exposes_the_inner_broker(self):
        # Quarantine publishes via consumer.broker must bypass the chaos.
        inj = make_injector(single_fault_plan("drop", rate=1.0))
        broker = Broker(registry=MetricsRegistry())
        chaos = inj.wrap_broker(broker)
        consumer = chaos.consumer("query_logs.db-00")
        assert consumer.broker is broker

    def test_unfaulted_consumer_delegates(self):
        inj = make_injector(single_fault_plan("drop", rate=0.0))
        broker = Broker(registry=MetricsRegistry())
        chaos = inj.wrap_broker(broker)
        consumer = chaos.consumer("query_logs.db-00")
        broker.publish("query_logs.db-00", "db-00", {"sql_id": "q1"})
        (msg,) = consumer.poll()
        assert msg.value == {"sql_id": "q1"}
        assert consumer.lag == 0


class TestWorkerFaults:
    def test_crashes_bounded_by_max_crashes(self):
        inj = make_injector(
            single_fault_plan("worker_crash", rate=1.0, max_crashes=2)
        )
        hook = inj.fleet_hook()
        crashes = 0
        for _ in range(10):
            try:
                hook("db-00")
            except InjectedWorkerCrash:
                crashes += 1
        assert crashes == 2
        assert inj.injected["worker_crash"] == 2

    def test_hang_stalls_for_hang_steps(self):
        inj = make_injector(
            single_fault_plan("worker_hang", rate=1.0, hang_steps=3)
        )
        hook = inj.fleet_hook()
        for _ in range(4):
            with pytest.raises(InjectedWorkerHang):
                hook("db-00")
        assert inj.injected["worker_hang"] == 4

    def test_instances_crash_independently(self):
        inj = make_injector(
            single_fault_plan("worker_crash", rate=1.0, max_crashes=1)
        )
        hook = inj.fleet_hook()
        with pytest.raises(InjectedWorkerCrash):
            hook("db-00")
        with pytest.raises(InjectedWorkerCrash):
            hook("db-01")
        hook("db-00")  # both exhausted their budget: clean from now on
        hook("db-01")

    def test_should_crash_shard_bounded(self):
        inj = make_injector(
            single_fault_plan("worker_crash", rate=1.0, max_crashes=1)
        )
        assert inj.should_crash_shard("shard-0", attempt=0)
        assert not inj.should_crash_shard("shard-0", attempt=1)

    def test_no_worker_spec_means_no_faults(self):
        inj = make_injector(single_fault_plan("drop", rate=1.0))
        hook = inj.fleet_hook()
        for _ in range(20):
            hook("db-00")
        assert not inj.should_crash_shard("shard-0", attempt=0)
