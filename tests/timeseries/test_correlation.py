"""Tests for Pearson / weighted Pearson / sigmoid weights."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.timeseries import (
    TimeSeries,
    pearson,
    sigmoid_anomaly_weights,
    weighted_pearson,
)


class TestPearson:
    def test_perfect_positive(self):
        x = np.arange(10.0)
        assert pearson(x, 2 * x + 1) == pytest.approx(1.0)

    def test_perfect_negative(self):
        x = np.arange(10.0)
        assert pearson(x, -x) == pytest.approx(-1.0)

    def test_constant_series_yields_zero(self):
        assert pearson(np.ones(10), np.arange(10.0)) == 0.0

    def test_single_sample_yields_zero(self):
        assert pearson([1.0], [2.0]) == 0.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="length mismatch"):
            pearson([1.0, 2.0], [1.0])

    def test_accepts_timeseries(self):
        a = TimeSeries(np.arange(5.0))
        b = TimeSeries(np.arange(5.0) * 3)
        assert pearson(a, b) == pytest.approx(1.0)

    def test_matches_numpy_corrcoef(self):
        rng = np.random.default_rng(7)
        x = rng.normal(size=100)
        y = 0.5 * x + rng.normal(size=100)
        assert pearson(x, y) == pytest.approx(np.corrcoef(x, y)[0, 1])

    @given(
        hnp.arrays(np.float64, st.integers(2, 50),
                   elements=st.floats(-1e6, 1e6)),
        hnp.arrays(np.float64, st.integers(2, 50),
                   elements=st.floats(-1e6, 1e6)),
    )
    @settings(max_examples=60)
    def test_property_bounded(self, x, y):
        n = min(len(x), len(y))
        r = pearson(x[:n], y[:n])
        assert -1.0 <= r <= 1.0

    @given(hnp.arrays(np.float64, st.integers(2, 50),
                      elements=st.floats(-1e6, 1e6)))
    @settings(max_examples=60)
    def test_property_symmetric(self, x):
        y = x[::-1].copy()
        assert pearson(x, y) == pytest.approx(pearson(y, x))


class TestWeightedPearson:
    def test_uniform_weights_match_plain_pearson(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=60)
        y = rng.normal(size=60)
        w = np.ones(60)
        assert weighted_pearson(x, y, w) == pytest.approx(pearson(x, y))

    def test_indicator_weights_match_window_pearson(self):
        rng = np.random.default_rng(4)
        x = rng.normal(size=100)
        y = rng.normal(size=100)
        w = np.zeros(100)
        w[30:70] = 1.0
        expected = pearson(x[30:70], y[30:70])
        assert weighted_pearson(x, y, w) == pytest.approx(expected)

    def test_zero_weights_yield_zero(self):
        assert weighted_pearson([1.0, 2.0], [3.0, 4.0], [0.0, 0.0]) == 0.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            weighted_pearson([1.0, 2.0], [3.0, 4.0], [1.0])

    def test_emphasis_changes_result(self):
        # x correlates with y only in the second half; weighting that
        # half must raise the coefficient.
        n = 100
        rng = np.random.default_rng(5)
        x = rng.normal(size=n)
        y = rng.normal(size=n)
        y[50:] = x[50:] + 0.01 * rng.normal(size=50)
        w_uniform = np.ones(n)
        w_focus = np.zeros(n)
        w_focus[50:] = 1.0
        assert weighted_pearson(x, y, w_focus) > weighted_pearson(x, y, w_uniform)

    @given(
        st.integers(5, 40),
        st.integers(0, 1_000),
    )
    @settings(max_examples=40)
    def test_property_bounded(self, n, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=n)
        y = rng.normal(size=n)
        w = rng.uniform(0, 1, size=n)
        r = weighted_pearson(x, y, w)
        assert -1.0 <= r <= 1.0


class TestSigmoidWeights:
    def test_high_inside_anomaly_window(self):
        w = sigmoid_anomaly_weights(0, 600, 200, 400, smooth_factor=10)
        inside = w[250:350]
        outside = np.concatenate([w[:100], w[550:]])
        assert inside.min() > 0.9
        assert outside.max() < 0.1

    def test_small_ks_approaches_indicator(self):
        w = sigmoid_anomaly_weights(0, 100, 40, 60, smooth_factor=0.01)
        assert w[50] == pytest.approx(1.0, abs=1e-6)
        assert w[10] == pytest.approx(0.0, abs=1e-6)

    def test_large_ks_approaches_uniform(self):
        # As ks → ∞ the weights flatten to a common (small, positive)
        # constant, so the weighted Pearson degenerates to the naive one —
        # the behaviour the paper's Eq. (1) limit describes.
        w = sigmoid_anomaly_weights(0, 100, 40, 60, smooth_factor=1e6)
        assert np.allclose(w, w[0])
        assert w[0] > 0.0
        rng = np.random.default_rng(11)
        x = rng.normal(size=100)
        y = 0.7 * x + rng.normal(size=100)
        assert weighted_pearson(x, y, w) == pytest.approx(pearson(x, y), abs=1e-6)

    def test_weights_in_unit_interval(self):
        w = sigmoid_anomaly_weights(0, 1000, 100, 200, smooth_factor=30)
        assert (w >= 0).all() and (w <= 1).all()

    def test_smooth_transition(self):
        # Weights should grow monotonically approaching the anomaly start.
        w = sigmoid_anomaly_weights(0, 400, 200, 300, smooth_factor=30)
        ramp = w[100:200]
        assert (np.diff(ramp) >= 0).all()

    def test_invalid_smooth_factor_rejected(self):
        with pytest.raises(ValueError):
            sigmoid_anomaly_weights(0, 10, 2, 5, smooth_factor=0)

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError):
            sigmoid_anomaly_weights(10, 10, 2, 5, smooth_factor=1)

    def test_length_matches_window(self):
        w = sigmoid_anomaly_weights(100, 700, 300, 500, smooth_factor=30)
        assert len(w) == 600
