"""Tests for spike / level-shift / Tukey detectors."""

import numpy as np
import pytest

from repro.timeseries import (
    FeatureKind,
    LevelShiftDetector,
    SpikeDetector,
    TimeSeries,
    TukeyDetector,
    detect_anomalous_features,
)


def _noise(n, seed=0, scale=1.0, loc=10.0):
    rng = np.random.default_rng(seed)
    return loc + scale * rng.normal(size=n)


class TestSpikeDetector:
    def test_detects_upward_spike(self):
        v = _noise(600)
        v[300:320] += 40.0
        dets = SpikeDetector().detect(v)
        ups = [d for d in dets if d.kind is FeatureKind.SPIKE_UP]
        assert len(ups) == 1
        assert 295 <= ups[0].start_index <= 305
        assert 315 <= ups[0].end_index <= 325

    def test_detects_downward_spike(self):
        v = _noise(600, loc=100.0)
        v[100:110] -= 80.0
        dets = SpikeDetector().detect(v)
        assert any(d.kind is FeatureKind.SPIKE_DOWN for d in dets)

    def test_flat_series_no_detection(self):
        assert SpikeDetector().detect(np.full(100, 5.0)) == []

    def test_unrecovered_tail_not_a_spike(self):
        v = _noise(600)
        v[550:] += 40.0  # extends to window end: level shift, not spike
        dets = SpikeDetector().detect(v)
        assert all(d.kind is not FeatureKind.SPIKE_UP for d in dets)

    def test_short_series_no_crash(self):
        assert SpikeDetector().detect(np.array([1.0, 2.0])) == []

    def test_min_length_filters_blips(self):
        v = _noise(300)
        v[100] += 50.0  # single-sample blip
        dets = SpikeDetector(min_length=3).detect(v)
        assert dets == []

    def test_severity_positive(self):
        v = _noise(300)
        v[100:105] += 30.0
        dets = SpikeDetector().detect(v)
        assert all(d.severity > 0 for d in dets)

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            SpikeDetector(threshold=0)


class TestLevelShiftDetector:
    def test_detects_upward_shift(self):
        v = np.concatenate([_noise(300, seed=1), _noise(300, seed=2, loc=50.0)])
        dets = LevelShiftDetector().detect(v)
        assert len(dets) == 1
        d = dets[0]
        assert d.kind is FeatureKind.LEVEL_SHIFT_UP
        assert 280 <= d.start_index <= 320

    def test_detects_downward_shift(self):
        v = np.concatenate([_noise(300, seed=1, loc=50.0), _noise(300, seed=2, loc=10.0)])
        dets = LevelShiftDetector().detect(v)
        assert len(dets) == 1
        assert dets[0].kind is FeatureKind.LEVEL_SHIFT_DOWN

    def test_spike_is_not_a_level_shift(self):
        v = _noise(600, seed=3)
        v[300:310] += 40.0
        assert LevelShiftDetector().detect(v) == []

    def test_flat_series_no_detection(self):
        assert LevelShiftDetector().detect(np.full(200, 3.0)) == []

    def test_too_short_series(self):
        assert LevelShiftDetector().detect(np.array([1.0, 2.0, 3.0])) == []


class TestTukeyDetector:
    def test_mask_flags_outliers(self):
        v = _noise(500, seed=4)
        v[100] += 100.0
        mask = TukeyDetector().mask(v)
        assert mask[100]
        assert mask.sum() <= 5

    def test_has_anomaly_upward_only(self):
        v = _noise(500, seed=5, loc=100.0)
        v[50] -= 90.0  # downward outlier
        det = TukeyDetector()
        assert not det.has_anomaly(v, upward_only=True)
        assert det.has_anomaly(v, upward_only=False)

    def test_window_restriction(self):
        v = _noise(500, seed=6)
        v[400] += 100.0
        det = TukeyDetector()
        assert det.has_anomaly(v, window=(390, 410))
        assert not det.has_anomaly(v, window=(0, 100))

    def test_empty_series(self):
        det = TukeyDetector()
        assert not det.has_anomaly(np.array([]))
        assert det.mask(np.array([])).shape == (0,)

    def test_empty_window(self):
        v = _noise(100)
        assert not TukeyDetector().has_anomaly(v, window=(50, 50))

    def test_constant_series_flags_deviants(self):
        v = np.full(100, 7.0)
        v[10] = 8.0
        mask = TukeyDetector().mask(v)
        assert mask[10]
        assert mask.sum() == 1

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            TukeyDetector(k=0)


class TestDetectAnomalousFeatures:
    def test_feature_timestamps_on_series_axis(self):
        v = _noise(600, seed=8)
        v[300:320] += 40.0
        series = TimeSeries(v, start=10_000, name="active_session")
        feats = detect_anomalous_features("active_session", series)
        assert len(feats) >= 1
        f = feats[0]
        assert f.metric == "active_session"
        assert 10_290 <= f.start <= 10_310
        assert f.duration > 0

    def test_pattern_matching(self):
        v = _noise(600, seed=9)
        v[300:320] += 40.0
        series = TimeSeries(v, start=0)
        feats = detect_anomalous_features("cpu_usage", series)
        spike = next(f for f in feats if f.kind.is_spike)
        assert spike.matches("cpu_usage.spike")
        assert spike.matches("cpu_usage.spike_up")
        assert spike.matches("cpu_usage.*")
        assert spike.matches("cpu_usage")
        assert not spike.matches("cpu_usage.level_shift")
        assert not spike.matches("iops_usage.spike")

    def test_no_features_on_quiet_series(self):
        series = TimeSeries(_noise(600, seed=10), start=0)
        assert detect_anomalous_features("m", series) == []
