"""Tests for the anomalous-feature vocabulary."""


from repro.timeseries import AnomalousFeature, FeatureKind


def feature(kind, metric="active_session", start=100, end=200):
    return AnomalousFeature(metric=metric, kind=kind, start=start, end=end, severity=4.0)


class TestFeatureKind:
    def test_spike_classification(self):
        assert FeatureKind.SPIKE_UP.is_spike
        assert FeatureKind.SPIKE_DOWN.is_spike
        assert not FeatureKind.LEVEL_SHIFT_UP.is_spike

    def test_level_shift_classification(self):
        assert FeatureKind.LEVEL_SHIFT_UP.is_level_shift
        assert FeatureKind.LEVEL_SHIFT_DOWN.is_level_shift
        assert not FeatureKind.SPIKE_UP.is_level_shift

    def test_direction(self):
        assert FeatureKind.SPIKE_UP.is_upward
        assert FeatureKind.LEVEL_SHIFT_UP.is_upward
        assert not FeatureKind.SPIKE_DOWN.is_upward
        assert not FeatureKind.LEVEL_SHIFT_DOWN.is_upward


class TestPatternMatching:
    def test_exact_feature_pattern(self):
        f = feature(FeatureKind.SPIKE_UP)
        assert f.matches("active_session.spike_up")
        assert not f.matches("active_session.spike_down")

    def test_family_patterns(self):
        up = feature(FeatureKind.SPIKE_UP)
        shift = feature(FeatureKind.LEVEL_SHIFT_DOWN)
        assert up.matches("active_session.spike")
        assert not up.matches("active_session.level_shift")
        assert shift.matches("active_session.level_shift")
        assert not shift.matches("active_session.spike")

    def test_wildcard_and_bare_metric(self):
        f = feature(FeatureKind.SPIKE_UP)
        assert f.matches("active_session.*")
        assert f.matches("active_session")

    def test_metric_mismatch(self):
        f = feature(FeatureKind.SPIKE_UP, metric="cpu_usage")
        assert not f.matches("active_session.spike")

    def test_duration(self):
        assert feature(FeatureKind.SPIKE_UP, start=10, end=40).duration == 30
