"""Tests for the TimeSeries container."""

import numpy as np
import pytest

from repro.timeseries import TimeSeries


class TestConstruction:
    def test_values_coerced_to_float64(self):
        ts = TimeSeries([1, 2, 3])
        assert ts.values.dtype == np.float64

    def test_rejects_2d_values(self):
        with pytest.raises(ValueError, match="one-dimensional"):
            TimeSeries(np.zeros((2, 2)))

    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError, match="interval"):
            TimeSeries([1.0], interval=0)

    def test_zeros_factory(self):
        ts = TimeSeries.zeros(5, start=100, interval=60, name="m")
        assert len(ts) == 5
        assert ts.start == 100
        assert ts.interval == 60
        assert ts.name == "m"
        assert ts.total() == 0.0

    def test_aligned_like_builds_on_same_axis(self):
        base = TimeSeries([1, 2, 3], start=10)
        other = TimeSeries.aligned_like(base, [4, 5, 6], name="x")
        assert other.start == 10 and other.interval == 1

    def test_aligned_like_rejects_length_mismatch(self):
        base = TimeSeries([1, 2, 3], start=10)
        with pytest.raises(ValueError):
            TimeSeries.aligned_like(base, [1, 2])


class TestAddressing:
    def test_timestamp_and_index_equivalence(self):
        # Paper Def II.1: X[t1] and X[1] access the same element.
        ts = TimeSeries([10.0, 11.0, 12.0], start=1000)
        assert ts[1000] == 10.0
        assert ts[0] == 10.0
        assert ts[1002] == 12.0
        assert ts[2] == 12.0

    def test_to_index_out_of_range(self):
        ts = TimeSeries([1.0, 2.0], start=100)
        with pytest.raises(IndexError):
            ts.to_index(99)
        with pytest.raises(IndexError):
            ts.to_index(102)

    def test_explicit_accessors(self):
        ts = TimeSeries([10.0, 11.0, 12.0], start=1000)
        assert ts.at_index(1) == 11.0
        assert ts.at_index(-1) == 12.0
        assert ts.at_timestamp(1001) == 11.0
        with pytest.raises(IndexError, match="out of range"):
            ts.at_index(3)
        with pytest.raises(IndexError, match="outside series range"):
            ts.at_timestamp(1003)
        with pytest.raises(IndexError, match="outside series range"):
            ts.at_timestamp(2)

    def test_gap_key_raises_clear_error(self):
        # Keys in (len, start) used to fall through to numpy as a plain
        # index and raise a confusing out-of-bounds error.
        ts = TimeSeries([10.0, 11.0, 12.0], start=1000)
        with pytest.raises(IndexError, match="neither a valid index"):
            ts[500]
        with pytest.raises(IndexError, match="at_index"):
            ts[1003]

    def test_negative_key_nonzero_start_rejected(self):
        # Previously -5 silently indexed from the end of a start=1000
        # series; addressing is now explicit.
        ts = TimeSeries([10.0, 11.0, 12.0], start=1000)
        with pytest.raises(IndexError, match="neither"):
            ts[-1]

    def test_zero_start_plain_indexing(self):
        ts = TimeSeries([1.0, 2.0, 3.0], start=0)
        assert ts[-1] == 3.0
        with pytest.raises(IndexError, match="out of range"):
            ts[3]

    def test_timestamps_property(self):
        ts = TimeSeries([1, 2, 3], start=50, interval=10)
        assert list(ts.timestamps) == [50, 60, 70]

    def test_end_is_exclusive(self):
        ts = TimeSeries([1, 2], start=0, interval=60)
        assert ts.end == 120


class TestWindow:
    def test_window_extracts_range(self):
        ts = TimeSeries(np.arange(10.0), start=100)
        w = ts.window(103, 106)
        assert list(w.values) == [3.0, 4.0, 5.0]
        assert w.start == 103

    def test_window_clips_to_bounds(self):
        ts = TimeSeries(np.arange(5.0), start=100)
        w = ts.window(90, 200)
        assert len(w) == 5
        assert w.start == 100

    def test_empty_window(self):
        ts = TimeSeries(np.arange(5.0), start=100)
        w = ts.window(200, 210)
        assert len(w) == 0


class TestResample:
    def test_sum_resample(self):
        ts = TimeSeries(np.ones(120), start=0, interval=1)
        minute = ts.resample(60, how="sum")
        assert len(minute) == 2
        assert minute.interval == 60
        assert list(minute.values) == [60.0, 60.0]

    def test_mean_resample(self):
        ts = TimeSeries([2.0, 4.0, 6.0, 8.0], start=0)
        out = ts.resample(2, how="mean")
        assert list(out.values) == [3.0, 7.0]

    def test_max_resample(self):
        ts = TimeSeries([1.0, 9.0, 3.0, 4.0], start=0)
        out = ts.resample(2, how="max")
        assert list(out.values) == [9.0, 4.0]

    def test_partial_trailing_bucket_dropped(self):
        ts = TimeSeries(np.arange(7.0))
        out = ts.resample(3)
        assert len(out) == 2

    def test_unknown_aggregation_rejected(self):
        with pytest.raises(ValueError, match="unknown aggregation"):
            TimeSeries([1.0, 2.0]).resample(2, how="median")

    def test_factor_one_is_copy(self):
        ts = TimeSeries([1.0, 2.0])
        out = ts.resample(1)
        out.values[0] = 99.0
        assert ts.values[0] == 1.0


class TestArithmetic:
    def test_add_series(self):
        a = TimeSeries([1.0, 2.0])
        b = TimeSeries([3.0, 4.0])
        assert list((a + b).values) == [4.0, 6.0]

    def test_add_scalar(self):
        assert list((TimeSeries([1.0]) + 1.5).values) == [2.5]

    def test_div_handles_zero_denominator(self):
        a = TimeSeries([1.0, 2.0])
        b = TimeSeries([0.0, 4.0])
        out = a / b
        assert list(out.values) == [0.0, 0.5]

    def test_misaligned_add_rejected(self):
        a = TimeSeries([1.0, 2.0], start=0)
        b = TimeSeries([1.0, 2.0], start=5)
        with pytest.raises(ValueError, match="not aligned"):
            a + b

    def test_mean_of_empty_series(self):
        assert TimeSeries(np.array([])).mean() == 0.0
