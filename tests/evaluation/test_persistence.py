"""Tests for case persistence (save/load round trips)."""

import numpy as np
import pytest

from repro.core import PinSQL
from repro.evaluation.persistence import (
    load_case,
    load_corpus,
    save_case,
    save_corpus,
)


class TestRoundTrip:
    def test_labels_preserved(self, poor_sql_case, tmp_path):
        path = save_case(poor_sql_case, tmp_path / "case.npz")
        loaded = load_case(path)
        assert loaded.r_sqls == poor_sql_case.r_sqls
        assert loaded.h_sqls == poor_sql_case.h_sqls
        assert loaded.category is poor_sql_case.category
        assert loaded.detected == poor_sql_case.detected
        assert loaded.seed == poor_sql_case.seed

    def test_window_and_metrics_preserved(self, poor_sql_case, tmp_path):
        loaded = load_case(save_case(poor_sql_case, tmp_path / "case.npz"))
        orig = poor_sql_case.case
        assert loaded.case.anomaly_start == orig.anomaly_start
        assert loaded.case.anomaly_end == orig.anomaly_end
        assert loaded.case.ts == orig.ts and loaded.case.te == orig.te
        assert np.array_equal(
            loaded.case.active_session.values, orig.active_session.values
        )
        for name in orig.metrics.names:
            assert np.array_equal(
                loaded.case.metrics[name].values, orig.metrics[name].values
            )

    def test_template_series_preserved(self, poor_sql_case, tmp_path):
        loaded = load_case(save_case(poor_sql_case, tmp_path / "case.npz"))
        orig = poor_sql_case.case
        assert set(loaded.case.sql_ids) == set(orig.sql_ids)
        sid = orig.sql_ids[0]
        assert np.array_equal(
            loaded.case.templates.executions(sid).values,
            orig.templates.executions(sid).values,
        )

    def test_logs_preserved(self, poor_sql_case, tmp_path):
        loaded = load_case(save_case(poor_sql_case, tmp_path / "case.npz"))
        orig = poor_sql_case.case
        assert loaded.case.logs.total_queries() == orig.logs.total_queries()
        sid = orig.logs.sql_ids[0]
        a = orig.logs.queries_in_window(sid, orig.ts, orig.te)
        b = loaded.case.logs.queries_in_window(sid, orig.ts, orig.te)
        assert np.array_equal(a.arrive_ms, b.arrive_ms)
        assert np.array_equal(a.response_ms, b.response_ms)

    def test_history_and_catalog_preserved(self, poor_sql_case, tmp_path):
        loaded = load_case(save_case(poor_sql_case, tmp_path / "case.npz"))
        orig = poor_sql_case.case
        assert set(loaded.case.history) == set(orig.history)
        sid = next(iter(orig.history))
        assert np.array_equal(
            loaded.case.history_of(sid, 1).values, orig.history_of(sid, 1).values
        )
        assert loaded.case.history_of(sid, 1).interval == 60
        for info in orig.catalog:
            got = loaded.case.catalog.get(info.sql_id)
            assert got is not None
            assert got.template == info.template
            assert got.kind is info.kind
            assert got.tables == info.tables

    def test_diagnosis_identical_after_roundtrip(self, poor_sql_case, tmp_path):
        loaded = load_case(save_case(poor_sql_case, tmp_path / "case.npz"))
        a = PinSQL().analyze(poor_sql_case.case)
        b = PinSQL().analyze(loaded.case)
        assert a.rsql_ids == b.rsql_ids
        assert a.hsql_ids == b.hsql_ids


class TestCorpusIO:
    def test_save_and_load_corpus(self, poor_sql_case, row_lock_case, tmp_path):
        paths = save_corpus([poor_sql_case, row_lock_case], tmp_path / "corpus")
        assert len(paths) == 2
        corpus = load_corpus(tmp_path / "corpus")
        assert len(corpus) == 2
        assert corpus[0].category is poor_sql_case.category
        assert corpus[1].category is row_lock_case.category

    def test_load_empty_directory(self, tmp_path):
        assert load_corpus(tmp_path) == []

    def test_version_check(self, poor_sql_case, tmp_path):
        import json

        path = save_case(poor_sql_case, tmp_path / "case.npz")
        data = dict(np.load(path))
        meta = json.loads(bytes(data["__meta__"]).decode())
        meta["version"] = 999
        data["__meta__"] = np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)
        np.savez_compressed(path, **data)
        with pytest.raises(ValueError, match="version"):
            load_case(path)


class TestMultiInstance:
    def test_instance_id_survives_roundtrip(self, poor_sql_case, tmp_path):
        import dataclasses

        labelled = dataclasses.replace(poor_sql_case, instance_id="inst-03")
        loaded = load_case(save_case(labelled, tmp_path / "case.npz"))
        assert loaded.instance_id == "inst-03"
        assert loaded.r_sqls == labelled.r_sqls
        assert loaded.category is labelled.category

    def test_corpus_preserves_per_case_instances(
        self, poor_sql_case, row_lock_case, tmp_path
    ):
        import dataclasses

        cases = [
            dataclasses.replace(poor_sql_case, instance_id="inst-00"),
            dataclasses.replace(row_lock_case, instance_id="inst-01"),
        ]
        save_corpus(cases, tmp_path / "corpus")
        corpus = load_corpus(tmp_path / "corpus")
        assert [c.instance_id for c in corpus] == ["inst-00", "inst-01"]

    def test_pre_fleet_archive_loads_unattributed(self, poor_sql_case, tmp_path):
        import json

        # Archives written before instance_id existed have no such label;
        # they must load with the unattributed sentinel, not fail.
        path = save_case(poor_sql_case, tmp_path / "case.npz")
        data = dict(np.load(path))
        meta = json.loads(bytes(data["__meta__"]).decode())
        meta["labels"].pop("instance_id")
        data["__meta__"] = np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)
        np.savez_compressed(path, **data)
        assert load_case(path).instance_id == ""
