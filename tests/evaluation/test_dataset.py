"""Tests for the synthetic ADAC dataset generator."""

import numpy as np
import pytest

from repro.evaluation import CorpusConfig, generate_case, generate_corpus
from repro.workload import AnomalyCategory
from tests.conftest import FAST_CORPUS


class TestCorpusConfig:
    def test_defaults_valid(self):
        cfg = CorpusConfig()
        assert cfg.n_cases == 40
        assert sum(w for _, w in cfg.category_weights) == pytest.approx(1.0)

    def test_invalid_n_cases(self):
        with pytest.raises(ValueError):
            CorpusConfig(n_cases=0)

    def test_invalid_weights(self):
        with pytest.raises(ValueError):
            CorpusConfig(category_weights=((AnomalyCategory.POOR_SQL, 0.0),))


class TestGeneratedCase:
    def test_case_structure(self, poor_sql_case):
        case = poor_sql_case.case
        assert case.ts == 0
        assert case.te == case.duration
        assert case.ts <= case.anomaly_start < case.anomaly_end <= case.te
        assert len(case.sql_ids) > 20
        assert case.metrics.active_session.values.max() > 0
        assert case.logs.total_queries() > 0

    def test_r_sqls_observed_in_case(self, all_cases):
        for labeled in all_cases:
            assert labeled.r_sqls
            assert labeled.r_sqls <= set(labeled.case.sql_ids)

    def test_h_sqls_nonempty(self, all_cases):
        for labeled in all_cases:
            assert labeled.h_sqls

    def test_new_templates_have_no_history(self, poor_sql_case):
        for sql_id in poor_sql_case.injected.new_sql_ids:
            assert poor_sql_case.case.history_of(sql_id, 1) is None

    def test_existing_templates_have_history(self, poor_sql_case):
        case = poor_sql_case.case
        with_history = [sid for sid in case.sql_ids if case.history_of(sid, 1) is not None]
        # The vast majority of observed templates have day-1 history.
        assert len(with_history) > 0.5 * len(case.sql_ids)
        series = case.history_of(with_history[0], 1)
        assert series.interval == 60
        assert series.start == case.ts

    def test_catalog_covers_observed_templates(self, poor_sql_case):
        case = poor_sql_case.case
        covered = sum(1 for sid in case.sql_ids if sid in case.catalog)
        assert covered >= 0.95 * len(case.sql_ids)

    def test_determinism(self):
        a = generate_case(99, FAST_CORPUS, category=AnomalyCategory.POOR_SQL)
        b = generate_case(99, FAST_CORPUS, category=AnomalyCategory.POOR_SQL)
        assert a.r_sqls == b.r_sqls
        assert a.case.anomaly_start == b.case.anomaly_start
        assert np.array_equal(
            a.case.metrics.active_session.values,
            b.case.metrics.active_session.values,
        )

    def test_anomaly_visible_in_session(self, all_cases):
        for labeled in all_cases:
            session = labeled.case.active_session.values
            lo, hi = labeled.case.anomaly_indices()
            baseline = session[30:max(lo - 10, 31)].mean()
            during = session[lo:hi].mean()
            assert during > baseline * 1.5, labeled.category


class TestCorpus:
    def test_generate_corpus_counts_and_mix(self):
        cfg = CorpusConfig(
            n_cases=3,
            seed=5,
            delta_start_s=360,
            anomaly_length_s=(120, 180),
            n_businesses=(4, 5),
        )
        corpus = generate_corpus(cfg)
        assert len(corpus) == 3
        assert len({lc.seed for lc in corpus}) == 3


class TestStratifiedComposition:
    def test_every_category_represented(self):
        from repro.evaluation.dataset import _stratified_categories

        cfg = CorpusConfig(n_cases=32)
        assignment = _stratified_categories(cfg)
        assert len(assignment) == 32
        present = set(assignment)
        configured = {c for c, w in cfg.category_weights if w > 0}
        assert present == configured

    def test_counts_match_weights(self):
        from collections import Counter
        from repro.evaluation.dataset import _stratified_categories

        cfg = CorpusConfig(n_cases=100)
        counts = Counter(_stratified_categories(cfg))
        for category, weight in cfg.category_weights:
            assert abs(counts[category] - weight * 100) <= 1

    def test_deterministic_per_seed(self):
        from repro.evaluation.dataset import _stratified_categories

        a = _stratified_categories(CorpusConfig(n_cases=20, seed=5))
        b = _stratified_categories(CorpusConfig(n_cases=20, seed=5))
        c = _stratified_categories(CorpusConfig(n_cases=20, seed=6))
        assert a == b
        assert a != c or len(set(a)) == 1
