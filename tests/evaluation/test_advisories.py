"""Planted-ground-truth gate for the workload advisor.

ISSUE acceptance criterion: exact-pair precision and recall both >= 0.9
on the default catalog with planted advisory baits.  The healthy
background templates are the negative class — an advisory implicating
one of them costs precision.
"""

import numpy as np
import pytest

from repro.evaluation.advisories import (
    advisor_for_population,
    evaluate_advisor,
    population_weights,
)
from repro.workload import build_population, plant_advisory_baits


def _planted_population(seed):
    rng = np.random.default_rng(seed)
    population = build_population(600, rng, n_businesses=6)
    planted = plant_advisory_baits(population, rng)
    return population, planted


class TestAdvisoryGate:
    @pytest.mark.parametrize("seed", [0, 7, 123])
    def test_precision_and_recall_gate(self, seed):
        population, planted = _planted_population(seed)
        analyzer = advisor_for_population(population)
        evaluation = evaluate_advisor(analyzer, population, planted)
        assert evaluation.precision >= 0.9, evaluation.spurious
        assert evaluation.recall >= 0.9, evaluation.missed

    def test_every_pass_represented(self):
        population, planted = _planted_population(0)
        advisors = {a for p in planted for a in p.advisors}
        assert advisors == {"lock-conflict", "index-advisor", "join-fanout"}
        analyzer = advisor_for_population(population)
        evaluation = evaluate_advisor(analyzer, population, planted)
        for advisor in advisors:
            bucket = evaluation.per_advisor[advisor]
            assert bucket["tp"] > 0

    def test_to_dict_shape(self):
        population, planted = _planted_population(7)
        analyzer = advisor_for_population(population)
        data = evaluate_advisor(analyzer, population, planted).to_dict()
        assert set(data) >= {
            "true_positives", "false_positives", "false_negatives",
            "precision", "recall", "per_advisor", "missed", "spurious",
            "templates_analyzed", "advisories_emitted",
        }
        assert data["templates_analyzed"] >= len(planted)

    def test_reusing_precomputed_report(self):
        population, planted = _planted_population(0)
        analyzer = advisor_for_population(population)
        report = analyzer.analyze(
            population.specs.values(), population_weights(population)
        )
        ev_fresh = evaluate_advisor(analyzer, population, planted)
        ev_reused = evaluate_advisor(analyzer, population, planted, report=report)
        assert ev_fresh.to_dict() == ev_reused.to_dict()

    def test_unplanted_population_is_clean(self):
        rng = np.random.default_rng(3)
        population = build_population(600, rng, n_businesses=6)
        analyzer = advisor_for_population(population)
        evaluation = evaluate_advisor(analyzer, population, [])
        assert evaluation.false_positives == 0
        assert evaluation.precision == 1.0
