"""Tests for diagnosis deadlines and the stage watchdog."""

import pytest

from repro.resilience import Deadline, DeadlineExceeded, StageWatchdog
from repro.telemetry import MetricsRegistry


class FakeClock:
    def __init__(self, t: float = 0.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


class TestDeadline:
    def test_tracks_elapsed_and_remaining(self):
        clock = FakeClock()
        deadline = Deadline(5.0, clock=clock)
        clock.advance(2.0)
        assert deadline.elapsed == pytest.approx(2.0)
        assert deadline.remaining == pytest.approx(3.0)
        assert not deadline.expired

    def test_check_raises_once_budget_spent(self):
        clock = FakeClock()
        deadline = Deadline(1.0, clock=clock)
        deadline.check("early")  # within budget: no-op
        clock.advance(1.5)
        assert deadline.expired
        with pytest.raises(DeadlineExceeded) as err:
            deadline.check("analyze")
        assert err.value.stage == "analyze"
        assert err.value.budget_s == pytest.approx(1.0)
        assert err.value.elapsed_s == pytest.approx(1.5)

    def test_rejects_non_positive_budget(self):
        with pytest.raises(ValueError):
            Deadline(0)


class TestStageWatchdog:
    def test_disabled_watchdog_hands_out_no_deadline(self):
        watchdog = StageWatchdog(None, registry=MetricsRegistry())
        assert not watchdog.enabled
        assert watchdog.deadline() is None
        # stage() with a None deadline never raises, however long it ran.
        with watchdog.stage(None, "assemble"):
            pass

    def test_stage_within_budget_passes(self):
        clock = FakeClock()
        watchdog = StageWatchdog(10.0, clock=clock, registry=MetricsRegistry())
        deadline = watchdog.deadline()
        with watchdog.stage(deadline, "assemble"):
            clock.advance(3.0)
        with watchdog.stage(deadline, "analyze"):
            clock.advance(3.0)

    def test_overrunning_stage_raises_and_counts(self):
        clock = FakeClock()
        registry = MetricsRegistry()
        watchdog = StageWatchdog(
            5.0, clock=clock, registry=registry, instance="db-00"
        )
        deadline = watchdog.deadline()
        with pytest.raises(DeadlineExceeded) as err:
            with watchdog.stage(deadline, "analyze"):
                clock.advance(6.0)
        assert err.value.stage == "analyze"
        timeouts = registry.get(
            "diagnosis_stage_timeouts_total", stage="analyze", instance="db-00"
        )
        assert timeouts.value == 1

    def test_budget_spans_stages_cumulatively(self):
        clock = FakeClock()
        watchdog = StageWatchdog(5.0, clock=clock, registry=MetricsRegistry())
        deadline = watchdog.deadline()
        with watchdog.stage(deadline, "assemble"):
            clock.advance(4.0)
        # The second stage inherits the spent budget: 2 more seconds
        # pushes the *diagnosis* past 5s even though the stage took 2s.
        with pytest.raises(DeadlineExceeded):
            with watchdog.stage(deadline, "analyze"):
                clock.advance(2.0)

    def test_rejects_non_positive_budget(self):
        with pytest.raises(ValueError):
            StageWatchdog(0, registry=MetricsRegistry())
