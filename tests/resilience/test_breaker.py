"""Tests for the repair-execution circuit breaker."""

import pytest

from repro.resilience import BreakerState, CircuitBreaker, CircuitOpenError
from repro.telemetry import MetricsRegistry


class FakeClock:
    def __init__(self, t: float = 0.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


def make_breaker(clock=None, registry=None, **kwargs):
    return CircuitBreaker(
        name="test",
        failure_threshold=kwargs.pop("failure_threshold", 3),
        recovery_s=kwargs.pop("recovery_s", 10.0),
        clock=clock or FakeClock(),
        registry=registry or MetricsRegistry(),
        **kwargs,
    )


class TestStateMachine:
    def test_starts_closed(self):
        breaker = make_breaker()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow()

    def test_opens_after_threshold_consecutive_failures(self):
        breaker = make_breaker()
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow()

    def test_success_resets_the_failure_streak(self):
        breaker = make_breaker()
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED

    def test_half_open_after_recovery_window(self):
        clock = FakeClock()
        breaker = make_breaker(clock=clock)
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        clock.advance(9.9)
        assert breaker.state is BreakerState.OPEN
        clock.advance(0.2)
        assert breaker.state is BreakerState.HALF_OPEN
        assert breaker.allow()

    def test_half_open_probe_failure_reopens(self):
        clock = FakeClock()
        breaker = make_breaker(clock=clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(11)
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.record_failure()  # a single probe failure, not a streak
        assert breaker.state is BreakerState.OPEN

    def test_half_open_probe_success_closes(self):
        clock = FakeClock()
        breaker = make_breaker(clock=clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(11)
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED


class TestCall:
    def test_call_passes_through_when_closed(self):
        breaker = make_breaker()
        assert breaker.call(lambda x: x * 2, 21) == 42

    def test_open_breaker_rejects_without_calling(self):
        registry = MetricsRegistry()
        clock = FakeClock()
        breaker = make_breaker(clock=clock, registry=registry)
        for _ in range(3):
            with pytest.raises(RuntimeError):
                breaker.call(self._boom)
        calls = {"n": 0}
        with pytest.raises(CircuitOpenError) as err:
            breaker.call(lambda: calls.__setitem__("n", 1))
        assert calls["n"] == 0
        assert err.value.retry_in_s == pytest.approx(10.0)
        rejected = registry.get(
            "circuit_breaker_rejections_total", breaker="test"
        )
        assert rejected.value == 1

    def test_call_recovers_through_half_open(self):
        clock = FakeClock()
        breaker = make_breaker(clock=clock)
        for _ in range(3):
            with pytest.raises(RuntimeError):
                breaker.call(self._boom)
        clock.advance(11)
        assert breaker.call(lambda: "ok") == "ok"
        assert breaker.state is BreakerState.CLOSED

    def test_state_gauge_tracks_transitions(self):
        registry = MetricsRegistry()
        clock = FakeClock()
        breaker = make_breaker(clock=clock, registry=registry)
        gauge = registry.get("circuit_breaker_state", breaker="test")
        assert gauge.value == BreakerState.CLOSED.value
        for _ in range(3):
            breaker.record_failure()
        assert gauge.value == BreakerState.OPEN.value
        clock.advance(11)
        assert breaker.state is BreakerState.HALF_OPEN
        assert gauge.value == BreakerState.HALF_OPEN.value

    @staticmethod
    def _boom():
        raise RuntimeError("repair API down")


class TestValidation:
    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0, registry=MetricsRegistry())

    def test_rejects_negative_recovery(self):
        with pytest.raises(ValueError):
            CircuitBreaker(recovery_s=-1, registry=MetricsRegistry())
