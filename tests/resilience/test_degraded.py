"""Tests for the degraded-mode policy (gap detection and fallbacks)."""

import numpy as np
import pytest

from repro.resilience import (
    DegradedModePolicy,
    DiagnosisConfidence,
    interpolate_series,
    window_gap_fraction,
)
from repro.telemetry import MetricsRegistry


def dense_samples(ts: int, te: int, value: float = 1.0) -> dict:
    return {t: value for t in range(ts, te)}


class TestWindowGapFraction:
    def test_full_window_has_no_gap(self):
        assert window_gap_fraction(dense_samples(0, 100), 0, 100) == 0.0

    def test_empty_window_is_all_gap(self):
        assert window_gap_fraction({}, 0, 100) == 1.0

    def test_half_missing(self):
        samples = {t: 1.0 for t in range(0, 100, 2)}
        assert window_gap_fraction(samples, 0, 100) == pytest.approx(0.5)

    def test_samples_outside_window_ignored(self):
        samples = {t: 1.0 for t in range(200, 300)}
        assert window_gap_fraction(samples, 0, 100) == 1.0

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            window_gap_fraction({}, 10, 10)


class TestInterpolateSeries:
    def test_bridges_interior_gaps_linearly(self):
        samples = {0: 0.0, 10: 10.0}
        series = interpolate_series(samples, 0, 11)
        assert series.values[5] == pytest.approx(5.0)
        assert len(series.values) == 11

    def test_edges_extend_flat(self):
        samples = {5: 3.0}
        series = interpolate_series(samples, 0, 10)
        assert np.all(series.values == 3.0)

    def test_empty_window_raises(self):
        with pytest.raises(ValueError):
            interpolate_series({}, 0, 10)


class TestDegradedModePolicy:
    def make_policy(self, **kwargs):
        return DegradedModePolicy(registry=MetricsRegistry(), **kwargs)

    def test_clean_window_is_full_confidence(self):
        policy = self.make_policy()
        assessment = policy.assess({"active_session": dense_samples(0, 100)}, 0, 100)
        assert assessment.confidence is DiagnosisConfidence.FULL
        assert not assessment.degraded
        assert assessment.reasons == ()
        assert assessment.ts == 0

    def test_gappy_metric_degrades_and_interpolates(self):
        samples = {t: 1.0 for t in range(0, 100, 3)}  # ~66% missing
        policy = self.make_policy(max_gap_fraction=0.25)
        assessment = policy.assess({"active_session": samples}, 0, 100)
        assert assessment.degraded
        assert "active_session" in assessment.interpolated
        assert any(r.startswith("metric_gap:active_session") for r in assessment.reasons)

    def test_missing_leading_context_shrinks_window(self):
        samples = dense_samples(60, 100)
        policy = self.make_policy()
        assessment = policy.assess(
            {"active_session": samples}, 0, 100, anomaly_start=80
        )
        assert assessment.degraded
        assert assessment.ts == 60
        assert any(r.startswith("shrunken_window") for r in assessment.reasons)

    def test_shrinking_below_min_fraction_flagged(self):
        samples = dense_samples(90, 100)
        policy = self.make_policy(min_window_fraction=0.5)
        assessment = policy.assess(
            {"active_session": samples}, 0, 100, anomaly_start=95
        )
        assert "window_below_min_fraction" in assessment.reasons

    def test_window_never_shrinks_past_anomaly_start(self):
        samples = dense_samples(90, 100)
        policy = self.make_policy()
        assessment = policy.assess(
            {"active_session": samples}, 0, 100, anomaly_start=50
        )
        assert assessment.ts <= 50

    def test_extra_reasons_force_degraded(self):
        policy = self.make_policy()
        assessment = policy.assess(
            {"active_session": dense_samples(0, 100)}, 0, 100,
            extra_reasons=("quarantined_logs:7",),
        )
        assert assessment.degraded
        assert "quarantined_logs:7" in assessment.reasons

    def test_degraded_counter_increments(self):
        registry = MetricsRegistry()
        policy = DegradedModePolicy(registry=registry, instance="db-00")
        policy.assess({}, 0, 100, extra_reasons=("quarantined_logs:1",))
        counter = registry.get("diagnosis_degraded_total", instance="db-00")
        assert counter.value == 1

    def test_empty_metric_not_marked_for_interpolation(self):
        policy = self.make_policy()
        assessment = policy.assess({"cpu_usage": {}}, 0, 100)
        # Nothing to interpolate from; the engine falls back elsewhere.
        assert "cpu_usage" not in assessment.interpolated

    def test_build_series_picks_fallback_per_assessment(self):
        policy = self.make_policy(max_gap_fraction=0.25)
        gappy = {0: 0.0, 99: 99.0}
        assessment = policy.assess({"m": gappy}, 0, 100)
        series = policy.build_series(gappy, assessment, 100, name="m")
        # Interpolated: values climb linearly instead of holding at 0.
        assert series.values[50] == pytest.approx(50.0)

    def test_build_series_forward_fills_healthy_metrics(self):
        policy = self.make_policy()
        samples = dense_samples(0, 100, value=2.0)
        assessment = policy.assess({"m": samples}, 0, 100)
        series = policy.build_series(samples, assessment, 100, name="m")
        assert np.all(series.values == 2.0)

    def test_invalid_thresholds_rejected(self):
        with pytest.raises(ValueError):
            self.make_policy(max_gap_fraction=0.0)
        with pytest.raises(ValueError):
            self.make_policy(min_window_fraction=1.5)
