"""Tests for bounded retries with deterministic backoff."""

import random

import pytest

from repro.resilience import RetryExhausted, backoff_delays, retry_call
from repro.telemetry import MetricsRegistry


class TestBackoffDelays:
    def test_exponential_ramp_with_cap(self):
        delays = backoff_delays(
            6, base_delay_s=0.1, max_delay_s=0.5, factor=2.0,
            rng=random.Random(0),
        )
        assert len(delays) == 6
        # Full jitter keeps each delay within [ceiling/2, ceiling].
        ceilings = [min(0.5, 0.1 * 2 ** i) for i in range(6)]
        for delay, ceiling in zip(delays, ceilings):
            assert ceiling / 2 <= delay <= ceiling

    def test_deterministic_with_seeded_rng(self):
        a = backoff_delays(4, rng=random.Random(7))
        b = backoff_delays(4, rng=random.Random(7))
        assert a == b

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError):
            backoff_delays(-1)


class TestRetryCall:
    def test_first_attempt_success_never_sleeps(self):
        slept = []
        result = retry_call(lambda: 42, retries=3, sleep=slept.append)
        assert result == 42
        assert slept == []

    def test_retries_then_succeeds(self):
        registry = MetricsRegistry()
        slept = []
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise ConnectionError("hiccup")
            return "ok"

        result = retry_call(
            flaky, retries=3, rng=random.Random(1), sleep=slept.append,
            operation="flaky", registry=registry,
        )
        assert result == "ok"
        assert calls["n"] == 3
        assert len(slept) == 2
        counter = registry.get("resilience_retries_total", operation="flaky")
        assert counter.value == 2

    def test_exhaustion_raises_with_last_error(self):
        registry = MetricsRegistry()

        def always_fails():
            raise TimeoutError("down")

        with pytest.raises(RetryExhausted) as err:
            retry_call(
                always_fails, retries=2, sleep=lambda _: None,
                operation="doomed", registry=registry,
            )
        assert err.value.attempts == 3
        assert isinstance(err.value.last, TimeoutError)
        exhausted = registry.get(
            "resilience_retries_exhausted_total", operation="doomed"
        )
        assert exhausted.value == 1

    def test_non_retryable_exception_propagates_immediately(self):
        calls = {"n": 0}

        def bad():
            calls["n"] += 1
            raise ValueError("not transient")

        with pytest.raises(ValueError):
            retry_call(
                bad, retries=5, retry_on=(ConnectionError,),
                sleep=lambda _: None,
            )
        assert calls["n"] == 1

    def test_zero_retries_is_single_attempt(self):
        calls = {"n": 0}

        def fails():
            calls["n"] += 1
            raise RuntimeError("x")

        with pytest.raises(RetryExhausted):
            retry_call(fails, retries=0, sleep=lambda _: None)
        assert calls["n"] == 1

    def test_args_and_kwargs_forwarded(self):
        assert retry_call(lambda a, b=0: a + b, 2, b=3, retries=1) == 5
