"""Real-simulation determinism: fixtures, digests, caches, artifacts.

Satellite 3 of the fuzzer issue: the same spec + seed must reproduce
bit-identical corpora — both the fuzzer's in-memory fleet fixtures
(compared by content digest) and the dataset pipeline's ``.npz``
artifacts (compared byte-for-byte on disk).
"""

import pytest

from repro.evaluation.dataset import CorpusConfig, generate_case
from repro.evaluation.persistence import save_case
from repro.fuzz import (
    ScenarioRunner,
    ScenarioSpec,
    build_fixture,
    fixture_digest,
)
from repro.workload import AnomalyCategory


@pytest.fixture(scope="module")
def small_spec():
    return ScenarioSpec(name="digest-probe", seed=19, duration_s=240)


def test_fixture_digest_stable_across_builds(small_spec):
    first = fixture_digest(build_fixture(small_spec))
    second = fixture_digest(build_fixture(small_spec))
    assert first == second


def test_fixture_digest_survives_json_round_trip(small_spec):
    round_tripped = ScenarioSpec.from_json(small_spec.to_json())
    assert fixture_digest(build_fixture(round_tripped)) == fixture_digest(
        build_fixture(small_spec)
    )


def test_fixture_digest_distinguishes_seeds(small_spec):
    other = ScenarioSpec(name="digest-probe", seed=20, duration_s=240)
    assert fixture_digest(build_fixture(other)) != fixture_digest(
        build_fixture(small_spec)
    )


def test_runner_caches_by_content_not_name(small_spec):
    runner = ScenarioRunner()
    outcome = runner.evaluate(small_spec)
    assert runner.evaluate(small_spec) is outcome
    renamed = runner.evaluate(small_spec.with_name("alias"))
    assert renamed is outcome
    assert runner.evaluations == 1


def test_runner_shares_fixture_across_harness_knobs(small_spec):
    """top_k is not part of the workload: mutating it must not rebuild
    (or change) the simulated fleet."""
    runner = ScenarioRunner()
    _, digest = runner.fixture_for(small_spec)
    from dataclasses import replace

    retuned = replace(small_spec, top_k=5)
    _, digest2 = runner.fixture_for(retuned)
    assert digest == digest2
    assert len(runner._fixtures) == 1


def test_npz_artifacts_bit_identical(tmp_path):
    cfg = CorpusConfig(delta_start_s=600, anomaly_length_s=(180, 240))
    paths = []
    for name in ("one.npz", "two.npz"):
        case = generate_case(
            23, cfg, category=AnomalyCategory.ROW_LOCK, instance_id="db-00"
        )
        paths.append(save_case(case, tmp_path / name))
    assert paths[0].read_bytes() == paths[1].read_bytes()
