"""Delta-debugging over mutation chains (no simulation involved)."""

import pytest

from repro.fuzz import (
    MutationStep,
    ScenarioSpec,
    apply_mutator,
    apply_steps,
    minimize_steps,
)


def _chain(spec, *names_seeds):
    """Build a chain of steps that all apply to the evolving spec."""
    steps = []
    for name, seed in names_seeds:
        mutated = apply_mutator(spec, name, seed)
        assert mutated is not None, (name, seed)
        steps.append(MutationStep(name, seed))
        spec = mutated
    return spec, tuple(steps)


def test_step_round_trip_strict():
    step = MutationStep("fault-add", 42)
    assert MutationStep.from_dict(step.to_dict()) == step
    with pytest.raises(ValueError, match="unknown keys"):
        MutationStep.from_dict({"mutator": "x", "seed": 1, "extra": 2})
    with pytest.raises(ValueError, match="mutator"):
        MutationStep.from_dict({"seed": 1})


def test_apply_steps_replays_chain_exactly():
    base = ScenarioSpec()
    final, steps = _chain(
        base, ("fault-add", 3), ("anomaly-timing", 7), ("plant-baits", 1)
    )
    assert apply_steps(base, steps) == final


def test_apply_steps_none_when_step_inapplicable():
    base = ScenarioSpec()  # no faults: fault-rate cannot apply
    assert apply_steps(base, (MutationStep("fault-rate", 0),)) is None


def test_minimize_drops_irrelevant_steps():
    """Failure depends only on the fault-add step; everything else
    must be shrunk away."""
    base = ScenarioSpec()
    _, steps = _chain(
        base,
        ("anomaly-timing", 11),
        ("fault-add", 3),
        ("plant-baits", 1),
        ("workload-seed", 5),
    )

    def still_failing(spec):
        return spec.faults is not None

    minimal = minimize_steps(base, steps, still_failing)
    assert [s.mutator for s in minimal] == ["fault-add"]
    spec = apply_steps(base, minimal)
    assert spec is not None and still_failing(spec)


def test_minimize_result_is_one_minimal():
    """Removing any remaining step must lose the failure or break the
    chain — the ddmin guarantee."""
    base = ScenarioSpec()
    _, steps = _chain(
        base, ("fault-add", 3), ("fault-rate", 9), ("anomaly-timing", 2)
    )

    def still_failing(spec):
        # Needs both the armed fault and a perturbed rate.
        if spec.faults is None:
            return False
        return abs(spec.faults.specs[0].rate - 0.10) > 1e-9

    minimal = minimize_steps(base, steps, still_failing)
    final = apply_steps(base, minimal)
    assert final is not None and still_failing(final)
    for i in range(len(minimal)):
        trial = minimal[:i] + minimal[i + 1:]
        spec = apply_steps(base, trial)
        assert spec is None or not still_failing(spec)


def test_minimize_keeps_single_step_chain():
    base = ScenarioSpec()
    _, steps = _chain(base, ("fault-add", 3))
    assert minimize_steps(base, steps, lambda s: s.faults is not None) == steps
