"""Mutator registry: determinism, validity, applicability contracts."""

import pytest

from repro.fuzz import (
    ScenarioSpec,
    apply_mutator,
    default_seeds,
    get_mutator,
    mutator_names,
    register_mutator,
)
from repro.fuzz.mutators import _REGISTRY


EXPECTED = {
    "anomaly-category", "anomaly-magnitude", "anomaly-overlap",
    "anomaly-timing", "fault-add", "fault-params", "fault-rate",
    "fault-remove", "fault-topic", "plant-baits", "population-shape",
    "workload-seed",
}


def test_builtin_taxonomy_registered():
    assert EXPECTED <= set(mutator_names())


def test_names_sorted_for_deterministic_indexing():
    assert list(mutator_names()) == sorted(mutator_names())


def test_unknown_mutator_has_clear_error():
    with pytest.raises(KeyError, match="unknown mutator"):
        get_mutator("cosmic-ray")


def test_duplicate_registration_rejected():
    with pytest.raises(ValueError, match="duplicate"):
        register_mutator("workload-seed")(lambda spec, rng: spec)


def test_every_mutation_is_deterministic_and_valid():
    """Same (spec, mutator, seed) twice -> identical result; results
    always re-validate through the JSON round trip."""
    for spec in default_seeds():
        for name in mutator_names():
            for seed in (0, 1, 99, 2**30):
                first = apply_mutator(spec, name, seed)
                second = apply_mutator(spec, name, seed)
                assert first == second, (name, seed)
                if first is not None:
                    assert ScenarioSpec.from_json(first.to_json()) == first


def test_fault_mutators_inapplicable_without_plan():
    spec = ScenarioSpec()  # no fault plan
    for name in ("fault-rate", "fault-params", "fault-topic", "fault-remove"):
        assert apply_mutator(spec, name, 0) is None


def test_anomaly_mutators_inapplicable_on_healthy_fleet():
    spec = ScenarioSpec(anomalous=0)
    for name in ("anomaly-category", "anomaly-magnitude", "anomaly-timing",
                 "anomaly-overlap"):
        assert apply_mutator(spec, name, 0) is None


def test_fault_add_then_remove_round_trips_to_no_plan():
    spec = ScenarioSpec()
    armed = apply_mutator(spec, "fault-add", 5)
    assert armed is not None and armed.faults is not None
    assert len(armed.faults.specs) == 1
    disarmed = apply_mutator(armed, "fault-remove", 5)
    assert disarmed is not None and disarmed.faults is None


def test_registry_is_private_per_module_state():
    """Registering a throwaway mutator then deleting it leaves the
    builtin set intact (mirrors the register_rule idiom)."""

    @register_mutator("throwaway-test-mutator")
    def _noop(spec, rng):
        return None

    try:
        assert "throwaway-test-mutator" in mutator_names()
        assert apply_mutator(ScenarioSpec(), "throwaway-test-mutator", 0) is None
    finally:
        del _REGISTRY["throwaway-test-mutator"]
    assert "throwaway-test-mutator" not in mutator_names()
