"""The fuzz loop is a pure function of (seed, budget, seeds).

Evaluation is stubbed with a hash of the spec's content key, so these
tests exercise the *loop* — population management, mutation draws,
novelty accounting, shrinking, corpus emission — without simulating a
single fleet.  The acceptance gate: same seed+budget ⇒ identical mutant
sequence, survivors and minimized corpus; a smaller budget is a strict
prefix of a larger one.
"""

import hashlib
import json
from types import SimpleNamespace

import pytest

from repro.fuzz import (
    CoverageFuzzer,
    FuzzConfig,
    RunSignature,
    ScenarioOutcome,
    apply_steps,
    default_seeds,
    entry_id_for,
)


def stub_evaluate(spec):
    """Deterministic fake harness: everything derives from content_key.

    Roughly one in five specs 'fails', so a modest budget exercises the
    shrink-and-emit path too.
    """
    digest = hashlib.blake2b(
        spec.content_key().encode(), digest_size=8
    ).digest()
    coverage = frozenset({f"cov:{digest[0] % 16}", f"cov:{digest[1] % 16}"})
    outcomes = frozenset({f"out:{digest[2] % 6}"})
    signals = (
        frozenset({f"signal:stub-{digest[3] % 4}"})
        if digest[3] % 3 == 0
        else frozenset()
    )
    failures = ()
    if digest[4] % 5 == 0:
        failures = (f"stub-break: content byte {digest[4]}",)
    return ScenarioOutcome(
        spec=spec,
        clean=SimpleNamespace(r_accuracy=1.0),
        fault=None,
        signature=RunSignature(coverage, outcomes, signals),
        failures=failures,
        fixture_digest=digest.hex(),
    )


def _run(seed=7, budget=20, **kwargs):
    cfg = FuzzConfig(seed=seed, budget=budget, **kwargs)
    return CoverageFuzzer(cfg, evaluate=stub_evaluate).run()


def test_identical_runs_produce_identical_reports():
    first = _run()
    second = _run()
    assert first.to_dict() == second.to_dict()
    assert first.to_json() == second.to_json()


def test_different_seeds_diverge():
    assert _run(seed=7).to_dict() != _run(seed=8).to_dict()


def test_smaller_budget_is_strict_prefix_of_larger():
    small = _run(budget=5)
    large = _run(budget=14)
    assert small.seed_failures == large.seed_failures
    assert [m.to_dict() for m in small.mutants] == [
        m.to_dict() for m in large.mutants[:5]
    ]


def test_emitted_entries_replay_and_still_fail_under_stub():
    report = _run(budget=30)
    assert report.failures_found >= 1
    assert report.entries, "expected at least one minimized corpus entry"
    bases = {s.name: s for s in default_seeds()}
    for entry in report.entries:
        base = bases[entry.base]
        spec = apply_steps(base, entry.steps)
        assert spec is not None, entry.entry_id
        outcome = stub_evaluate(spec)
        recorded = frozenset(r.split(":", 1)[0] for r in entry.reason)
        assert outcome.failure_kinds & recorded
        assert entry.entry_id == entry_id_for(spec, outcome.failure_kinds)
        # The checked-in spec is the same scenario under a corpus name.
        assert entry.spec.content_key() == spec.content_key()


def test_corpus_writes_are_bit_identical(tmp_path):
    dirs = (tmp_path / "a", tmp_path / "b")
    for d in dirs:
        _run(budget=30, corpus_dir=str(d))
    names = [sorted(p.name for p in d.glob("*.json")) for d in dirs]
    assert names[0] and names[0] == names[1]
    for name in names[0]:
        assert (dirs[0] / name).read_bytes() == (dirs[1] / name).read_bytes()


def test_report_json_is_loadable_and_complete():
    report = _run(budget=6)
    data = json.loads(report.to_json())
    for key in ("seed", "budget", "mutants", "survivors", "novelty_mutants",
                "failures_found", "corpus_entries", "coverage_size"):
        assert key in data


def test_config_bounds_rejected():
    with pytest.raises(ValueError, match="budget"):
        FuzzConfig(budget=-1)
    with pytest.raises(ValueError, match="mutation counts"):
        FuzzConfig(min_mutations=0)
    with pytest.raises(ValueError, match="mutation counts"):
        FuzzConfig(min_mutations=5, max_mutations=2)


def test_fuzzer_requires_seeds():
    with pytest.raises(ValueError, match="seed"):
        CoverageFuzzer(FuzzConfig(), seeds=(), evaluate=stub_evaluate)
