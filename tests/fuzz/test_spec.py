"""ScenarioSpec: strict-JSON round-trips, bounds, param whitelists."""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.chaos import FAULT_KINDS, single_fault_plan
from repro.fuzz import AnomalySpec, ScenarioSpec, default_seeds
from repro.workload import AnomalyCategory


def test_default_spec_is_valid_and_round_trips():
    spec = ScenarioSpec()
    assert ScenarioSpec.from_json(spec.to_json()) == spec


def test_default_seeds_are_distinct_and_round_trip():
    seeds = default_seeds()
    assert len({s.name for s in seeds}) == len(seeds)
    for spec in seeds:
        assert ScenarioSpec.from_json(spec.to_json()) == spec
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec


def test_unknown_top_level_key_rejected():
    data = ScenarioSpec().to_dict()
    data["surprise"] = 1
    with pytest.raises(ValueError, match="surprise"):
        ScenarioSpec.from_dict(data)


def test_unknown_anomaly_key_rejected():
    data = ScenarioSpec().to_dict()
    data["anomaly"]["surprise"] = 1
    with pytest.raises(ValueError, match="surprise"):
        ScenarioSpec.from_dict(data)


def test_unknown_category_rejected():
    with pytest.raises(ValueError, match="unknown anomaly category"):
        AnomalySpec(category="cosmic_ray")


def test_param_whitelist_enforced_per_category():
    AnomalySpec(category="row_lock", params={"lock_hold_ms": (250.0, 450.0)})
    with pytest.raises(ValueError, match="not valid for category"):
        AnomalySpec(category="business_spike", params={"lock_hold_ms": (1.0, 2.0)})


def test_pair_params_must_be_ordered_positive():
    with pytest.raises(ValueError, match="lo <= hi"):
        AnomalySpec(category="row_lock", params={"target_rate": (16.0, 6.0)})
    with pytest.raises(ValueError, match="pair"):
        AnomalySpec(category="row_lock", params={"target_rate": 6.0})


def test_composite_fields_only_on_composite():
    with pytest.raises(ValueError, match="composite"):
        AnomalySpec(category="row_lock", same_target=True)
    with pytest.raises(ValueError, match="composite"):
        AnomalySpec(category="row_lock", categories=("row_lock", "poor_sql"))


def test_repeated_composite_categories_require_same_target():
    with pytest.raises(ValueError, match="same_target"):
        AnomalySpec(category="composite", categories=("row_lock", "row_lock"))
    spec = AnomalySpec(
        category="composite",
        categories=("row_lock", "row_lock"),
        same_target=True,
    )
    kwargs = spec.injector_kwargs()
    assert kwargs["allow_same_target"] is True
    assert kwargs["categories"] == (
        AnomalyCategory.ROW_LOCK, AnomalyCategory.ROW_LOCK
    )


def test_window_bounds_enforced():
    # onset too early for the detector's history requirement.
    with pytest.raises(ValueError, match="onset_frac"):
        ScenarioSpec(anomaly=AnomalySpec(onset_frac=0.3))
    # window too narrow at the minimum duration.
    with pytest.raises(ValueError, match="narrow"):
        ScenarioSpec(
            duration_s=180,
            anomaly=AnomalySpec(onset_frac=0.9, end_frac=1.0),
        )


def test_faults_parse_through_strict_plan_parser():
    data = ScenarioSpec().to_dict()
    data["faults"] = {"name": "bad", "specs": [{"kind": "gamma_ray"}]}
    with pytest.raises(ValueError, match="unknown fault kind"):
        ScenarioSpec.from_dict(data)
    data["faults"] = {"name": "bad", "specs": [{"rate": 0.5}]}
    with pytest.raises(ValueError, match="missing required key 'kind'"):
        ScenarioSpec.from_dict(data)


def test_content_key_ignores_name_workload_key_ignores_faults():
    spec = ScenarioSpec(faults=single_fault_plan("drop"))
    assert spec.content_key() == spec.with_name("other").content_key()
    assert spec.content_key() != ScenarioSpec().content_key()
    assert spec.workload_key() == ScenarioSpec().workload_key()


def test_int_pair_params_reach_injector_as_ints():
    spec = AnomalySpec(
        category="mdl_lock", params={"ddl_interval_s": (20.0, 40.0)}
    )
    assert spec.injector_kwargs()["ddl_interval_s"] == (20, 40)


# -- hypothesis property: round-trips are exact over the spec space ----


@st.composite
def scenario_specs(draw):
    duration = draw(st.sampled_from([180, 240, 300, 480]))
    onset = draw(st.floats(0.5, 0.8))
    end = draw(st.floats(min(onset + 0.25, 1.0), 1.0))
    category = draw(st.sampled_from(
        ["business_spike", "poor_sql", "mdl_lock", "row_lock", "composite"]
    ))
    params = {}
    categories = None
    same_target = False
    if category == "composite":
        same_target = draw(st.booleans())
        if draw(st.booleans()):
            first = draw(st.sampled_from(["mdl_lock", "row_lock"]))
            second = draw(st.sampled_from(
                ["business_spike", "poor_sql", "mdl_lock", "row_lock"]
            ))
            if second == first and not same_target:
                second = "poor_sql" if first != "poor_sql" else "business_spike"
            categories = (first, second)
    elif category == "row_lock" and draw(st.booleans()):
        lo = draw(st.floats(1.0, 20.0))
        params["target_rate"] = (lo, lo + draw(st.floats(0.0, 20.0)))
    n_instances = draw(st.integers(1, 4))
    faults = None
    if draw(st.booleans()):
        faults = single_fault_plan(
            draw(st.sampled_from(FAULT_KINDS)), seed=draw(st.integers(0, 99))
        )
    return ScenarioSpec(
        name=draw(st.sampled_from(["a", "b", "long-scenario-name"])),
        seed=draw(st.integers(0, 2**20)),
        n_instances=n_instances,
        anomalous=draw(st.integers(0, n_instances)),
        duration_s=duration,
        n_businesses=draw(st.integers(2, 8)),
        anomaly=AnomalySpec(
            category=category,
            onset_frac=onset,
            end_frac=end,
            params=params,
            categories=categories,
            same_target=same_target,
        ),
        antipatterns=draw(st.booleans()),
        advisory_baits=draw(st.booleans()),
        faults=faults,
        workers=draw(st.integers(1, 2)),
        top_k=draw(st.integers(1, 5)),
    )


@settings(max_examples=60, deadline=None)
@given(spec=scenario_specs())
def test_round_trip_is_exact(spec):
    via_json = ScenarioSpec.from_json(spec.to_json())
    assert via_json == spec
    # Canonical keys are stable across the round trip — the fixture
    # cache and corpus entry ids depend on this.
    assert via_json.content_key() == spec.content_key()
    assert via_json.workload_key() == spec.workload_key()
    # Serialisation is pure: dumping twice gives identical bytes.
    assert spec.to_json() == via_json.to_json()
    assert json.loads(spec.to_json())["version"] == 1
