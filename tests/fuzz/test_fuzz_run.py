"""One real CI-sized fuzz run over the default seeds.

The acceptance criterion: a seeded, small-budget run must discover at
least one novelty-increasing mutant starting from the default seeds.
The run is module-scoped — every assertion reads the same report.
"""

import json

import pytest

from repro.fuzz import CoverageFuzzer, FuzzConfig


@pytest.fixture(scope="module")
def report(tmp_path_factory):
    corpus = tmp_path_factory.mktemp("fuzz-corpus")
    cfg = FuzzConfig(seed=7, budget=6, corpus_dir=str(corpus))
    return CoverageFuzzer(cfg).run()


def test_discovers_novelty_from_default_seeds(report):
    assert report.novelty_mutants >= 1
    novel = next(m for m in report.mutants if m.novel)
    assert novel.new_coverage or novel.new_outcomes or novel.new_signals


def test_every_evaluated_mutant_is_accounted(report):
    assert len(report.mutants) == report.budget
    for mutant in report.mutants:
        if mutant.steps:
            assert mutant.fixture_digest, mutant.name
        if mutant.survived:
            assert mutant.novel and not mutant.failures


def test_baseline_coverage_established_by_seeds(report):
    assert report.seed_names == (
        "rowlock-storm", "spike-under-drop", "poorsql-baited"
    )
    assert report.coverage_size > 0
    assert report.outcome_size > 0
    assert report.evaluations >= len(report.seed_names)


def test_default_seeds_replay_clean(report):
    """Default seeds are the trusted baseline: none may fail outright.

    (spike-under-drop legitimately misses detection — that is recorded
    as a signal, not a failure.)
    """
    assert report.seed_failures == ()


def test_report_artifact_is_json(report):
    data = json.loads(report.to_json())
    assert data["seed"] == 7
    assert data["novelty_mutants"] == report.novelty_mutants
    assert len(data["mutants"]) == report.budget


def test_emitted_entries_written_to_corpus_dir(report):
    assert len(report.written) == len(report.entries)
    for path in report.written:
        assert path.endswith(".json")
