"""Replay every checked-in corpus entry against the live harness.

Green entries (no ``xfail``) must stay green — a failure here is a
regression introduced by the change under test.  Pinned entries
(``xfail`` set) are known attribution gaps: their recorded failure must
*still* reproduce; if one stops failing it has been fixed and the pin
is stale — promote it to green or delete it (the replay reports the
stale pin as not-ok on purpose).
"""

from pathlib import Path

import pytest

from repro.fuzz import ScenarioRunner, load_corpus, replay_entry

CORPUS_DIR = Path(__file__).parent / "corpus"

ENTRIES = load_corpus(CORPUS_DIR)


@pytest.fixture(scope="module")
def runner():
    return ScenarioRunner()


def test_corpus_is_checked_in():
    assert ENTRIES, f"no corpus entries under {CORPUS_DIR}"
    assert any(e.xfail for e in ENTRIES)
    assert any(not e.xfail for e in ENTRIES)


def test_entry_files_match_their_ids():
    for entry in ENTRIES:
        assert (CORPUS_DIR / f"{entry.entry_id}.json").is_file()
        if entry.xfail:
            assert entry.reason, entry.entry_id


@pytest.mark.parametrize(
    "entry", ENTRIES, ids=[e.entry_id for e in ENTRIES]
)
def test_replay(entry, runner):
    result = replay_entry(entry, runner)
    assert result.ok, f"{entry.entry_id}: {result.note} {result.failures}"
