"""Self-telemetry for the PinSQL service (metrics, tracing, logging).

PinSQL diagnoses other databases; this package instruments PinSQL
itself so the paper's production-deployment story (Sec. III Fig. 5,
Table IV's overhead budget) is observable in the reproduction:

* :class:`MetricsRegistry` — counters / gauges / fixed-bucket
  histograms, exportable as JSON or Prometheus text exposition;
* :class:`Tracer` — nested context-manager spans replacing the old
  ad-hoc ``perf_counter`` sites while still feeding ``StageTimings``;
* structured logging (``key=value`` or JSON lines) behind a single
  :func:`configure_telemetry` entry point;
* :class:`SelfMonitor` — adapts the registry's own gauge/counter
  histories into :class:`~repro.timeseries.TimeSeries` so the repo's
  detectors can watch the watcher.

A process-wide default registry and tracer back every instrumented
component; all of them also accept explicit instances for isolation
(tests, side-by-side services).
"""

from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    DEFAULT_COUNT_BUCKETS,
    DEFAULT_LATENCY_BUCKETS,
    EXPORT_QUANTILES,
    filter_snapshot,
    fraction_at_most,
    labeled_name,
    quantile_from_buckets,
    render_summary,
)
from repro.telemetry.tracing import (
    Span,
    TraceContext,
    Tracer,
    new_trace_context,
    observed_span_names,
    set_trace_propagation,
    span_from_dict,
    span_to_dict,
    trace_propagation_enabled,
)
from repro.telemetry.logs import (
    JsonFormatter,
    KeyValueFormatter,
    configure_telemetry,
    get_logger,
)
from repro.telemetry.selfmon import SelfMonitor, forward_fill_series

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_COUNT_BUCKETS",
    "DEFAULT_LATENCY_BUCKETS",
    "EXPORT_QUANTILES",
    "filter_snapshot",
    "fraction_at_most",
    "labeled_name",
    "quantile_from_buckets",
    "render_summary",
    "Span",
    "TraceContext",
    "Tracer",
    "new_trace_context",
    "observed_span_names",
    "set_trace_propagation",
    "span_from_dict",
    "span_to_dict",
    "trace_propagation_enabled",
    "JsonFormatter",
    "KeyValueFormatter",
    "configure_telemetry",
    "get_logger",
    "SelfMonitor",
    "forward_fill_series",
    "get_registry",
    "get_tracer",
    "reset_telemetry",
]

#: Process-wide defaults used by every instrumented component unless an
#: explicit registry/tracer is injected.
_REGISTRY = MetricsRegistry()
_TRACER = Tracer(registry=_REGISTRY)


def get_registry() -> MetricsRegistry:
    """The process-wide default metrics registry."""
    return _REGISTRY


def get_tracer() -> Tracer:
    """The process-wide default tracer (bound to the default registry)."""
    return _TRACER


def reset_telemetry() -> None:
    """Clear the default registry and tracer (tests, CLI runs)."""
    _REGISTRY.reset()
    _TRACER.reset()
    set_trace_propagation(True)
