"""Span-based tracing for the diagnosis pipeline.

A :class:`Tracer` hands out context-manager spans::

    with tracer.span("hsql_ranking") as span:
        ...
    span.elapsed  # wall-clock seconds, available after exit

Spans nest: entering a span while another is open parents it, so one
``PinSQL.analyze`` call yields a tree mirroring the paper's per-stage
timing breakdown (Table I).  Finished root spans are retained in a
bounded deque for the CLI's span-tree summary, and every finished span
is observed into the registry's ``span_duration_seconds`` histogram
(labelled by span name) when the tracer carries a registry.

A disabled tracer still times — callers rely on ``elapsed`` to fill
:class:`~repro.core.pipeline.StageTimings` — but skips tree retention
and histogram observation, which is the whole measurable overhead.

Distributed tracing: every *root* span is minted a blake2b-derived
``trace_id``/``span_id`` (stamped into ``attrs`` so they survive every
existing serialization path — span trees, incident records, pickles).
A :class:`TraceContext` carries that identity across process
boundaries: stamped into columnar block headers at publish time,
adopted by the consuming engine's tracer via :meth:`Tracer.set_remote_parent`,
so a ``service.diagnose`` span in a shard worker is parented to the
``broker.publish_block`` span in the parent process.  Finished traces
round-trip through :func:`span_to_dict`/:func:`span_from_dict` for
shipment over the worker result channel (:meth:`Tracer.export_roots` /
:meth:`Tracer.adopt`).
"""

from __future__ import annotations

import itertools
import os
import time
from collections import deque
from dataclasses import dataclass, field
from hashlib import blake2b
from typing import Any, Iterable, Mapping

from repro.telemetry.metrics import MetricsRegistry

__all__ = [
    "Span",
    "TraceContext",
    "Tracer",
    "new_trace_context",
    "observed_span_names",
    "set_trace_propagation",
    "span_from_dict",
    "span_to_dict",
    "trace_propagation_enabled",
]

#: Process-wide kill switch for trace-context propagation (id minting,
#: block stamping, remote parenting).  Spans still time and observe
#: histograms when this is off — only the distributed-identity layer is
#: skipped.  ``bench_trace_overhead.py`` toggles this to measure the
#: marginal cost of the feature.
_PROPAGATION_ENABLED = True

#: Monotone per-process sequence folded into every minted id so two ids
#: minted in the same nanosecond tick still differ.
_ID_SEQ = itertools.count()


def set_trace_propagation(enabled: bool) -> None:
    """Enable/disable trace-context propagation process-wide."""
    global _PROPAGATION_ENABLED
    _PROPAGATION_ENABLED = bool(enabled)


def trace_propagation_enabled() -> bool:
    return _PROPAGATION_ENABLED


def _mint_id(kind: str) -> str:
    """A 16-hex-char blake2b id, unique within and across processes."""
    payload = f"{kind}|{os.getpid()}|{next(_ID_SEQ)}|{time.perf_counter_ns()}"
    return blake2b(payload.encode("ascii"), digest_size=8).hexdigest()


@dataclass(frozen=True)
class TraceContext:
    """The cross-process identity of one span: ``(trace_id, span_id)``.

    ``process`` records the minting pid so consumers can tell which
    process the parent span lived in (rendered in incident span trees
    and the ``repro trace`` waterfall).
    """

    trace_id: str
    span_id: str
    process: int = 0

    def to_dict(self) -> dict[str, Any]:
        return {"trace_id": self.trace_id, "span_id": self.span_id, "process": self.process}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "TraceContext | None":
        """Rebuild from a header dict; ``None`` on junk (chaos-corrupted
        headers must degrade to "no context", never raise)."""
        try:
            trace_id = payload["trace_id"]
            span_id = payload["span_id"]
        except (KeyError, TypeError):
            return None
        if not isinstance(trace_id, str) or not isinstance(span_id, str):
            return None
        process = payload.get("process", 0)
        return cls(trace_id, span_id, int(process) if isinstance(process, (int, float)) else 0)


def new_trace_context() -> TraceContext:
    """Mint a fresh root context (new trace_id, new span_id)."""
    return TraceContext(_mint_id("t"), _mint_id("s"), os.getpid())


@dataclass
class Span:
    """One timed section of work; forms a tree via ``children``."""

    name: str
    attrs: dict[str, object] = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)
    #: Wall-clock seconds; None while the span is still open.
    elapsed: float | None = None

    _t0: float = field(default=0.0, repr=False)
    _tracer: "Tracer | None" = field(default=None, repr=False)

    def __enter__(self) -> "Span":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # Elapsed is recorded FIRST, unconditionally: a span that ends
        # via exception must still report its duration (and is marked so
        # downstream consumers — span trees, incident records — can tell
        # a failed stage from a fast one).
        self.elapsed = time.perf_counter() - self._t0
        if exc_type is not None:
            self.attrs["status"] = "error"
            self.attrs["error"] = exc_type.__name__
        if self._tracer is not None:
            self._tracer._finish(self)

    def walk(self):
        """Yield ``(depth, span)`` over the subtree, pre-order."""
        stack = [(0, self)]
        while stack:
            depth, span = stack.pop()
            yield depth, span
            stack.extend((depth + 1, c) for c in reversed(span.children))


class Tracer:
    """Creates nested spans and retains finished traces.

    Not thread-safe: the diagnosis loop is single-threaded by design
    and the span stack is a plain list.
    """

    #: Histogram fed with every finished span's duration.
    SPAN_METRIC = "span_duration_seconds"

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        max_roots: int = 64,
        enabled: bool = True,
        labels: dict[str, str] | None = None,
    ) -> None:
        self.registry = registry
        self.enabled = enabled
        #: Extra labels stamped on every span histogram observation —
        #: fleet engines set ``{"instance": <id>}`` so per-stage timings
        #: stay separable per instance (and per worker thread, which
        #: also keeps the histogram instruments thread-private).
        self.labels = dict(labels) if labels else {}
        self._stack: list[Span] = []
        self._roots: deque[Span] = deque(maxlen=max_roots)
        #: Cross-process parent adopted from an ingested block's trace
        #: context: new root spans join its trace_id and record its
        #: span_id as ``parent_span_id``.
        self._remote_parent: TraceContext | None = None

    def span(self, name: str, **attrs: object) -> Span:
        """A new span; use as a context manager."""
        if not self.enabled:
            # Times itself but never touches the tree or the registry.
            return Span(name)
        span = Span(name, attrs=dict(attrs), _tracer=self)
        if self._stack:
            self._stack[-1].children.append(span)
        elif _PROPAGATION_ENABLED:
            # Root spans carry the distributed identity in attrs so it
            # survives every serialization path unchanged.
            parent = self._remote_parent
            span.attrs["trace_id"] = parent.trace_id if parent else _mint_id("t")
            span.attrs["span_id"] = _mint_id("s")
            if parent is not None:
                span.attrs["parent_span_id"] = parent.span_id
            span.attrs["process"] = os.getpid()
        self._stack.append(span)
        return span

    # -- distributed identity ------------------------------------------
    def set_remote_parent(self, ctx: TraceContext | None) -> None:
        """Parent subsequent root spans under a remote span's context."""
        self._remote_parent = ctx

    @property
    def remote_parent(self) -> TraceContext | None:
        return self._remote_parent

    def context_for(self, span: Span) -> TraceContext | None:
        """The :class:`TraceContext` identifying ``span``, minting ids
        lazily.

        Nested spans normally carry no ids of their own (the root owns
        the trace); asking for a nested span's context — e.g. to stamp
        an outgoing block at publish time — assigns it a ``span_id``
        under the enclosing root's ``trace_id``.
        """
        if not self.enabled or not _PROPAGATION_ENABLED:
            return None
        trace_id = span.attrs.get("trace_id")
        if not isinstance(trace_id, str):
            root = self._stack[0] if self._stack else span
            trace_id = root.attrs.get("trace_id")
            if not isinstance(trace_id, str):
                trace_id = _mint_id("t")
                root.attrs["trace_id"] = trace_id
            if span is not root:
                span.attrs["trace_id"] = trace_id
        span_id = span.attrs.get("span_id")
        if not isinstance(span_id, str):
            span_id = _mint_id("s")
            span.attrs["span_id"] = span_id
        return TraceContext(trace_id, span_id, os.getpid())

    # -- cross-process export ------------------------------------------
    def export_roots(self, clear: bool = False) -> list[dict[str, Any]]:
        """Finished root spans as plain dicts (oldest first), for
        shipment over a result queue; optionally drains the buffer so
        repeated exports never double-ship."""
        payloads = [span_to_dict(span) for span in self._roots]
        if clear:
            self._roots.clear()
        return payloads

    def adopt(self, payloads: Iterable[Mapping[str, Any]]) -> int:
        """Merge spans exported by another process into this tracer's
        finished roots (no histogram re-observation — metric deltas
        travel separately so nothing is double-counted)."""
        adopted = 0
        for payload in payloads:
            try:
                span = span_from_dict(payload)
            except (AttributeError, KeyError, TypeError, ValueError):
                continue
            self._roots.append(span)
            adopted += 1
        return adopted

    def _finish(self, span: Span) -> None:
        # Exits must mirror entries; tolerate a foreign span defensively.
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        if not self._stack:
            self._roots.append(span)
        if self.registry is not None:
            self.registry.histogram(
                self.SPAN_METRIC,
                help="Duration of traced pipeline spans.",
                span=span.name,
                **self.labels,
            ).observe(span.elapsed)
            if span.attrs.get("status") == "error":
                self.registry.counter(
                    "span_errors_total",
                    help="Spans that ended via an exception.",
                    span=span.name,
                    **self.labels,
                ).inc()

    # ------------------------------------------------------------------
    @property
    def current(self) -> Span | None:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    @property
    def roots(self) -> list[Span]:
        """Finished root spans, oldest first (bounded retention)."""
        return list(self._roots)

    def last_root(self) -> Span | None:
        return self._roots[-1] if self._roots else None

    def reset(self) -> None:
        self._stack.clear()
        self._roots.clear()
        self._remote_parent = None

    # ------------------------------------------------------------------
    def format_tree(self, root: Span | None = None) -> str:
        """Indented rendering of one trace (defaults to the last root)."""
        root = root or self.last_root()
        if root is None:
            return "(no finished spans)"
        lines: list[str] = []
        for depth, span in root.walk():
            elapsed = "?" if span.elapsed is None else _fmt_seconds(span.elapsed)
            label = "  " * depth + span.name
            attrs = (
                " [" + ", ".join(f"{k}={v}" for k, v in span.attrs.items()) + "]"
                if span.attrs
                else ""
            )
            lines.append(f"{label:<44} {elapsed:>10}{attrs}")
        return "\n".join(lines)


def _fmt_seconds(seconds: float) -> str:
    if seconds < 1.0:
        return f"{seconds * 1000:.2f} ms"
    return f"{seconds:.3f} s"


# ----------------------------------------------------------------------
def span_to_dict(span: Span) -> dict[str, Any]:
    """A picklable/JSON-able rendering of a finished span subtree."""
    return {
        "name": span.name,
        "elapsed": span.elapsed,
        "attrs": dict(span.attrs),
        "children": [span_to_dict(c) for c in span.children],
    }


def span_from_dict(payload: Mapping[str, Any]) -> Span:
    """Inverse of :func:`span_to_dict`."""
    elapsed = payload.get("elapsed")
    return Span(
        name=str(payload["name"]),
        attrs=dict(payload.get("attrs") or {}),
        children=[span_from_dict(c) for c in payload.get("children") or ()],
        elapsed=float(elapsed) if elapsed is not None else None,
    )


def observed_span_names(registry: MetricsRegistry) -> frozenset[str]:
    """Names of every span whose duration was observed into ``registry``.

    Every finished span lands in the ``span_duration_seconds`` histogram
    labelled by span name, so the registry snapshot doubles as a record
    of which pipeline stages actually executed — the scenario fuzzer
    reads this as its code-path coverage signal.
    """
    snap = registry.snapshot()
    return frozenset(
        h["labels"]["span"]
        for h in snap["histograms"]
        if h["name"] == Tracer.SPAN_METRIC and "span" in h["labels"]
    )
