"""Span-based tracing for the diagnosis pipeline.

A :class:`Tracer` hands out context-manager spans::

    with tracer.span("hsql_ranking") as span:
        ...
    span.elapsed  # wall-clock seconds, available after exit

Spans nest: entering a span while another is open parents it, so one
``PinSQL.analyze`` call yields a tree mirroring the paper's per-stage
timing breakdown (Table I).  Finished root spans are retained in a
bounded deque for the CLI's span-tree summary, and every finished span
is observed into the registry's ``span_duration_seconds`` histogram
(labelled by span name) when the tracer carries a registry.

A disabled tracer still times — callers rely on ``elapsed`` to fill
:class:`~repro.core.pipeline.StageTimings` — but skips tree retention
and histogram observation, which is the whole measurable overhead.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field

from repro.telemetry.metrics import MetricsRegistry

__all__ = ["Span", "Tracer"]


@dataclass
class Span:
    """One timed section of work; forms a tree via ``children``."""

    name: str
    attrs: dict[str, object] = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)
    #: Wall-clock seconds; None while the span is still open.
    elapsed: float | None = None

    _t0: float = field(default=0.0, repr=False)
    _tracer: "Tracer | None" = field(default=None, repr=False)

    def __enter__(self) -> "Span":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # Elapsed is recorded FIRST, unconditionally: a span that ends
        # via exception must still report its duration (and is marked so
        # downstream consumers — span trees, incident records — can tell
        # a failed stage from a fast one).
        self.elapsed = time.perf_counter() - self._t0
        if exc_type is not None:
            self.attrs["status"] = "error"
            self.attrs["error"] = exc_type.__name__
        if self._tracer is not None:
            self._tracer._finish(self)

    def walk(self):
        """Yield ``(depth, span)`` over the subtree, pre-order."""
        stack = [(0, self)]
        while stack:
            depth, span = stack.pop()
            yield depth, span
            stack.extend((depth + 1, c) for c in reversed(span.children))


class Tracer:
    """Creates nested spans and retains finished traces.

    Not thread-safe: the diagnosis loop is single-threaded by design
    and the span stack is a plain list.
    """

    #: Histogram fed with every finished span's duration.
    SPAN_METRIC = "span_duration_seconds"

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        max_roots: int = 64,
        enabled: bool = True,
        labels: dict[str, str] | None = None,
    ) -> None:
        self.registry = registry
        self.enabled = enabled
        #: Extra labels stamped on every span histogram observation —
        #: fleet engines set ``{"instance": <id>}`` so per-stage timings
        #: stay separable per instance (and per worker thread, which
        #: also keeps the histogram instruments thread-private).
        self.labels = dict(labels) if labels else {}
        self._stack: list[Span] = []
        self._roots: deque[Span] = deque(maxlen=max_roots)

    def span(self, name: str, **attrs: object) -> Span:
        """A new span; use as a context manager."""
        if not self.enabled:
            # Times itself but never touches the tree or the registry.
            return Span(name)
        span = Span(name, attrs=dict(attrs), _tracer=self)
        if self._stack:
            self._stack[-1].children.append(span)
        self._stack.append(span)
        return span

    def _finish(self, span: Span) -> None:
        # Exits must mirror entries; tolerate a foreign span defensively.
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        if not self._stack:
            self._roots.append(span)
        if self.registry is not None:
            self.registry.histogram(
                self.SPAN_METRIC,
                help="Duration of traced pipeline spans.",
                span=span.name,
                **self.labels,
            ).observe(span.elapsed)
            if span.attrs.get("status") == "error":
                self.registry.counter(
                    "span_errors_total",
                    help="Spans that ended via an exception.",
                    span=span.name,
                    **self.labels,
                ).inc()

    # ------------------------------------------------------------------
    @property
    def current(self) -> Span | None:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    @property
    def roots(self) -> list[Span]:
        """Finished root spans, oldest first (bounded retention)."""
        return list(self._roots)

    def last_root(self) -> Span | None:
        return self._roots[-1] if self._roots else None

    def reset(self) -> None:
        self._stack.clear()
        self._roots.clear()

    # ------------------------------------------------------------------
    def format_tree(self, root: Span | None = None) -> str:
        """Indented rendering of one trace (defaults to the last root)."""
        root = root or self.last_root()
        if root is None:
            return "(no finished spans)"
        lines: list[str] = []
        for depth, span in root.walk():
            elapsed = "?" if span.elapsed is None else _fmt_seconds(span.elapsed)
            label = "  " * depth + span.name
            attrs = (
                " [" + ", ".join(f"{k}={v}" for k, v in span.attrs.items()) + "]"
                if span.attrs
                else ""
            )
            lines.append(f"{label:<44} {elapsed:>10}{attrs}")
        return "\n".join(lines)


def _fmt_seconds(seconds: float) -> str:
    if seconds < 1.0:
        return f"{seconds * 1000:.2f} ms"
    return f"{seconds:.3f} s"
