"""Structured logging for the repro service.

Everything logs through the ``repro`` logger hierarchy via stdlib
``logging``; this module adds two structured formatters (logfmt-style
``key=value`` and JSON lines) and the single :func:`configure_telemetry`
entry point that installs them.  Call sites attach structured fields
with the standard ``extra={...}`` mechanism::

    log = get_logger("service")
    log.info("anomaly diagnosed", extra={"anomaly_start": 610, "rsql": "S12"})

Without :func:`configure_telemetry` the hierarchy carries a
``NullHandler`` and stays silent — importing the library never spams
stderr.
"""

from __future__ import annotations

import json
import logging
import sys
import time
from typing import IO

__all__ = [
    "KeyValueFormatter",
    "JsonFormatter",
    "get_logger",
    "configure_telemetry",
]

ROOT_LOGGER_NAME = "repro"

#: Attributes every LogRecord carries; anything else came in via extra=.
_RESERVED = frozenset(
    logging.LogRecord("", 0, "", 0, "", (), None).__dict__
) | {"message", "asctime", "taskName"}


def _record_fields(record: logging.LogRecord) -> dict[str, object]:
    fields: dict[str, object] = {
        "ts": time.strftime("%Y-%m-%dT%H:%M:%S", time.localtime(record.created))
        + f".{int(record.msecs):03d}",
        "level": record.levelname,
        "logger": record.name,
        "msg": record.getMessage(),
    }
    for key, value in record.__dict__.items():
        if key not in _RESERVED:
            fields[key] = value
    if record.exc_info and record.exc_info[0] is not None:
        fields["exc"] = record.exc_info[0].__name__
    return fields


class KeyValueFormatter(logging.Formatter):
    """logfmt-style ``key=value`` lines; values with spaces are quoted."""

    def format(self, record: logging.LogRecord) -> str:
        parts = []
        for key, value in _record_fields(record).items():
            text = str(value)
            if " " in text or "=" in text or text == "":
                text = '"' + text.replace('"', r"\"") + '"'
            parts.append(f"{key}={text}")
        return " ".join(parts)


class JsonFormatter(logging.Formatter):
    """One JSON object per line."""

    def format(self, record: logging.LogRecord) -> str:
        return json.dumps(_record_fields(record), default=str)


def get_logger(name: str = "") -> logging.Logger:
    """A logger under the ``repro`` hierarchy (``get_logger("service")``)."""
    root = logging.getLogger(ROOT_LOGGER_NAME)
    return root.getChild(name) if name else root


# Keep the library silent until explicitly configured.
get_logger().addHandler(logging.NullHandler())


def configure_telemetry(
    level: int | str = logging.INFO,
    fmt: str = "kv",
    stream: IO[str] | None = None,
) -> logging.Logger:
    """Install structured logging on the ``repro`` hierarchy.

    Idempotent: reconfiguring replaces the previously installed handler
    rather than stacking duplicates.  Returns the root ``repro`` logger.

    Parameters
    ----------
    level:
        Logging level (name or numeric).
    fmt:
        ``"kv"`` for logfmt-style lines, ``"json"`` for JSON lines.
    stream:
        Destination stream (default ``sys.stderr``).
    """
    if fmt not in ("kv", "json"):
        raise ValueError(f"fmt must be 'kv' or 'json', got {fmt!r}")
    logger = get_logger()
    for handler in list(logger.handlers):
        if getattr(handler, "_repro_telemetry", False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(JsonFormatter() if fmt == "json" else KeyValueFormatter())
    handler._repro_telemetry = True
    logger.addHandler(handler)
    logger.setLevel(level)
    return logger
