"""Process-local metrics registry (counters, gauges, histograms).

PinSQL is itself an observability system; this module is the substrate
that lets it watch itself (the paper's production deployment, Sec. III
Fig. 5, runs on exactly this kind of self-telemetry).  The registry is
deliberately Prometheus-shaped — counter / gauge / fixed-bucket
histogram instruments addressed by ``(name, labels)`` — so snapshots
export both as JSON and as the Prometheus text-exposition format.

No background threads, no locks beyond the GIL: instruments are plain
objects mutated in-process, cheap enough for per-message hot paths.
"""

from __future__ import annotations

import math
import re
import threading
from bisect import bisect_left
from typing import Iterator, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_COUNT_BUCKETS",
    "EXPORT_QUANTILES",
    "labeled_name",
    "filter_snapshot",
    "fraction_at_most",
    "quantile_from_buckets",
    "render_summary",
]

#: Quantiles exported in JSON snapshots, the Prometheus exposition
#: (synthetic ``<name>_quantile`` series) and ``render_summary``.
EXPORT_QUANTILES: tuple[tuple[float, str], ...] = (
    (0.50, "p50"),
    (0.95, "p95"),
    (0.99, "p99"),
)

#: Latency buckets (seconds) sized for the pipeline's sub-second stages
#: up to multi-second whole-corpus analyses.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Size buckets for batch/queue observations (messages per poll etc.).
DEFAULT_COUNT_BUCKETS: tuple[float, ...] = (
    0, 1, 5, 10, 50, 100, 500, 1000, 5000, 10_000, 50_000,
)

_LabelKey = tuple[tuple[str, str], ...]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters can only increase")
        self.value += amount


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket histogram (upper bounds + implicit +Inf bucket)."""

    __slots__ = ("uppers", "counts", "sum", "count")

    def __init__(self, buckets: tuple[float, ...]) -> None:
        if not buckets:
            raise ValueError("histogram needs at least one bucket bound")
        uppers = tuple(float(b) for b in buckets)
        if list(uppers) != sorted(set(uppers)):
            raise ValueError("bucket bounds must be strictly increasing")
        self.uppers = uppers
        self.counts = [0] * (len(uppers) + 1)  # last = +Inf overflow
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.uppers, value)] += 1
        self.sum += value
        self.count += 1

    def cumulative(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ending at +Inf."""
        out: list[tuple[float, int]] = []
        running = 0
        for upper, n in zip(self.uppers, self.counts):
            running += n
            out.append((upper, running))
        out.append((math.inf, running + self.counts[-1]))
        return out

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile, linearly interpolated within the
        bucket holding the target rank (Prometheus ``histogram_quantile``
        semantics: first finite bucket is assumed to start at 0, the
        overflow bucket reports the largest finite bound)."""
        return _quantile_from_pairs(self.cumulative(), q)

    def merge_cumulative(
        self, buckets: list, sum_: float, count: int
    ) -> bool:
        """Fold another histogram's snapshot-format cumulative buckets
        into this one (cross-process registry merge).  Returns False —
        without mutating — when the bucket layouts differ."""
        pairs = _bucket_pairs(buckets)
        uppers = tuple(u for u, _ in pairs if not math.isinf(u))
        if uppers != self.uppers or len(pairs) != len(self.counts):
            return False
        deltas, prev = [], 0
        for _, cum in pairs:
            if cum < prev:
                return False
            deltas.append(cum - prev)
            prev = cum
        for i, delta in enumerate(deltas):
            self.counts[i] += delta
        self.sum += float(sum_)
        self.count += int(count)
        return True


def _bucket_pairs(buckets) -> list[tuple[float, int]]:
    """Normalise snapshot-format buckets (``"+Inf"`` markers) into
    ``(upper: float, cumulative: int)`` pairs."""
    pairs: list[tuple[float, int]] = []
    for upper, cum in buckets:
        bound = math.inf if isinstance(upper, str) else float(upper)
        pairs.append((bound, int(cum)))
    return pairs


def _quantile_from_pairs(pairs: list[tuple[float, int]], q: float) -> float:
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    if not pairs:
        return 0.0
    total = pairs[-1][1]
    if total <= 0:
        return 0.0
    rank = q * total
    lower: float | None = None
    prev_cum = 0
    for upper, cum in pairs:
        if cum >= rank:
            if math.isinf(upper):
                # Overflow bucket: no finite upper bound to interpolate
                # toward — report the largest finite bound.
                return lower if lower is not None else 0.0
            lo = lower if lower is not None else min(0.0, upper)
            width = cum - prev_cum
            frac = (rank - prev_cum) / width if width > 0 else 1.0
            return lo + (upper - lo) * frac
        if not math.isinf(upper):
            lower = upper
        prev_cum = cum
    return lower if lower is not None else 0.0


def quantile_from_buckets(buckets, q: float) -> float:
    """Quantile estimate from snapshot-format cumulative buckets."""
    return _quantile_from_pairs(_bucket_pairs(buckets), q)


def fraction_at_most(buckets, bound: float) -> float:
    """Estimated fraction of observations ``<= bound`` from snapshot-
    format cumulative buckets (linear interpolation inside the bucket
    containing ``bound``).  Observations in the +Inf overflow bucket are
    assumed to exceed any finite ``bound`` — the conservative reading
    for SLO evaluation."""
    pairs = _bucket_pairs(buckets)
    if not pairs:
        return 1.0
    total = pairs[-1][1]
    if total <= 0:
        return 1.0
    lower: float | None = None
    prev_cum = 0
    for upper, cum in pairs:
        if math.isinf(upper):
            break
        if bound <= upper:
            lo = lower if lower is not None else min(0.0, upper)
            width = upper - lo
            frac_in = (bound - lo) / width if width > 0 else 1.0
            frac_in = min(max(frac_in, 0.0), 1.0)
            return (prev_cum + (cum - prev_cum) * frac_in) / total
        lower = upper
        prev_cum = cum
    return prev_cum / total


class _Family:
    """All series (label combinations) of one metric name."""

    __slots__ = ("name", "kind", "help", "buckets", "series")

    def __init__(self, name: str, kind: str, help: str,
                 buckets: tuple[float, ...] | None = None) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self.buckets = buckets
        self.series: dict[_LabelKey, Counter | Gauge | Histogram] = {}


def _label_key(labels: Mapping[str, str]) -> _LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def labeled_name(name: str, labels: Mapping[str, str] | _LabelKey = ()) -> str:
    """Canonical ``name{k=v,...}`` string for a series (no quoting)."""
    items = labels if isinstance(labels, tuple) else _label_key(labels)
    if not items:
        return name
    return name + "{" + ",".join(f"{k}={v}" for k, v in items) + "}"


class MetricsRegistry:
    """Named, labeled instruments with JSON and Prometheus export.

    ``counter`` / ``gauge`` / ``histogram`` create-or-return the series
    for ``(name, labels)``, so call sites just ask for the instrument
    each time — creation is cached, lookups are a dict hit.
    """

    def __init__(self) -> None:
        self._families: dict[str, _Family] = {}
        # Instrument *creation* is locked so concurrent fleet workers
        # can't race the check-then-insert and orphan an instrument; the
        # per-call fast path (existing series) stays lock-free under the
        # GIL's atomic dict reads.
        self._create_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Instrument accessors
    # ------------------------------------------------------------------
    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        return self._series(name, "counter", help, None, labels)

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        return self._series(name, "gauge", help, None, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
        **labels: str,
    ) -> Histogram:
        return self._series(name, "histogram", help, tuple(buckets), labels)

    def _series(self, name, kind, help, buckets, labels):
        family = self._families.get(name)
        if family is not None and family.kind == kind:
            instrument = family.series.get(_label_key(labels))
            if instrument is not None:
                return instrument
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name: {name!r}")
        with self._create_lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(name, kind, help, buckets)
                self._families[name] = family
            elif family.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {family.kind}, "
                    f"requested as {kind}"
                )
            key = _label_key(labels)
            instrument = family.series.get(key)
            if instrument is None:
                if kind == "counter":
                    instrument = Counter()
                elif kind == "gauge":
                    instrument = Gauge()
                else:
                    instrument = Histogram(family.buckets)
                family.series[key] = instrument
            return instrument

    def get(self, name: str, **labels: str):
        """The existing instrument for ``(name, labels)``, or None."""
        family = self._families.get(name)
        if family is None:
            return None
        return family.series.get(_label_key(labels))

    def __contains__(self, name: str) -> bool:
        return name in self._families

    def names(self) -> list[str]:
        return sorted(self._families)

    def reset(self) -> None:
        """Drop every family (tests / fresh CLI invocations)."""
        self._families.clear()

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-able snapshot of every series.

        Histogram bucket bounds are serialised as floats except +Inf,
        which becomes the string ``"+Inf"`` so the snapshot survives a
        strict JSON round-trip.
        """
        counters, gauges, histograms = [], [], []
        for name in sorted(self._families):
            family = self._families[name]
            for key in sorted(family.series):
                inst = family.series[key]
                entry = {"name": name, "labels": dict(key)}
                if family.kind == "counter":
                    counters.append({**entry, "value": inst.value})
                elif family.kind == "gauge":
                    gauges.append({**entry, "value": inst.value})
                else:
                    entry["buckets"] = [
                        ["+Inf" if math.isinf(u) else u, c]
                        for u, c in inst.cumulative()
                    ]
                    entry["sum"] = inst.sum
                    entry["count"] = inst.count
                    entry["quantiles"] = {
                        label: inst.quantile(q) for q, label in EXPORT_QUANTILES
                    }
                    histograms.append(entry)
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    def merge_snapshot(self, snapshot: Mapping) -> int:
        """Fold another registry's snapshot into this one.

        The cross-process aggregation path: shard workers ship their
        (per-work-item, hence delta) registry snapshots back over the
        result channel and the parent merges them here so ``repro obs``
        shows one fleet-wide registry.  Counters add, gauges take the
        incoming value (last-writer-wins freshness semantics), and
        histograms add per-bucket — skipped when bucket layouts differ.
        Returns the number of series merged.
        """
        merged = 0
        for entry in snapshot.get("counters", ()):
            value = float(entry.get("value", 0.0))
            if value > 0:
                self.counter(entry["name"], **entry.get("labels", {})).inc(value)
                merged += 1
        for entry in snapshot.get("gauges", ()):
            self.gauge(entry["name"], **entry.get("labels", {})).set(
                float(entry.get("value", 0.0))
            )
            merged += 1
        for entry in snapshot.get("histograms", ()):
            pairs = _bucket_pairs(entry.get("buckets", ()))
            uppers = tuple(u for u, _ in pairs if not math.isinf(u))
            if not uppers:
                continue
            inst = self.histogram(entry["name"], buckets=uppers,
                                  **entry.get("labels", {}))
            if inst.merge_cumulative(
                entry.get("buckets", ()), entry.get("sum", 0.0),
                entry.get("count", 0),
            ):
                merged += 1
        return merged

    def render_prometheus(self) -> str:
        """Prometheus text-exposition format (version 0.0.4)."""
        lines: list[str] = []
        for name in sorted(self._families):
            family = self._families[name]
            if family.help:
                lines.append(f"# HELP {name} {_escape_help(family.help)}")
            lines.append(f"# TYPE {name} {family.kind}")
            quantile_lines: list[str] = []
            for key in sorted(family.series):
                inst = family.series[key]
                if family.kind in ("counter", "gauge"):
                    lines.append(f"{name}{_fmt_labels(key)} {_fmt_value(inst.value)}")
                    continue
                for upper, cum in inst.cumulative():
                    le = "+Inf" if math.isinf(upper) else _fmt_value(upper)
                    lines.append(
                        f"{name}_bucket{_fmt_labels(key + (('le', le),))} {cum}"
                    )
                lines.append(f"{name}_sum{_fmt_labels(key)} {_fmt_value(inst.sum)}")
                lines.append(f"{name}_count{_fmt_labels(key)} {inst.count}")
                for q, _label in EXPORT_QUANTILES:
                    quantile_lines.append(
                        f"{name}_quantile"
                        f"{_fmt_labels(key + (('quantile', _fmt_value(q)),))} "
                        f"{_fmt_value(inst.quantile(q))}"
                    )
            if quantile_lines:
                # Synthetic estimated-quantile series derived from the
                # fixed buckets; typed as gauges (they can go down).
                lines.append(f"# TYPE {name}_quantile gauge")
                lines.extend(quantile_lines)
        return "\n".join(lines) + "\n" if lines else ""

    def __iter__(self) -> Iterator[tuple[str, str, _LabelKey, object]]:
        """Yield ``(name, kind, label_key, instrument)`` for every series."""
        for name, family in self._families.items():
            for key, inst in family.series.items():
                yield name, family.kind, key, inst


def _fmt_labels(key: _LabelKey) -> str:
    if not key:
        return ""
    parts = (f'{k}="{_escape_label(v)}"' for k, v in key)
    return "{" + ",".join(parts) + "}"


def _escape_label(value: str) -> str:
    return str(value).replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _escape_help(value: str) -> str:
    return value.replace("\\", r"\\").replace("\n", r"\n")


def _fmt_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def filter_snapshot(snapshot: dict, **labels: str) -> dict:
    """Restrict a :meth:`MetricsRegistry.snapshot` to matching series.

    Keeps only series whose labels carry every given ``key=value`` —
    e.g. ``filter_snapshot(snap, instance="db-03")`` isolates one fleet
    member's telemetry.
    """
    def keep(entry: dict) -> bool:
        return all(entry["labels"].get(k) == v for k, v in labels.items())

    return {kind: [e for e in entries if keep(e)]
            for kind, entries in snapshot.items()}


def render_summary(
    registry: MetricsRegistry | dict, max_buckets: int = 4
) -> str:
    """Human-readable one-line-per-series dump for CLI output.

    Accepts a registry or an already-built (possibly filtered)
    :meth:`MetricsRegistry.snapshot` dict.
    """
    snap = registry.snapshot() if isinstance(registry, MetricsRegistry) else registry
    lines: list[str] = []
    if snap["counters"]:
        lines.append("counters:")
        for entry in snap["counters"]:
            lines.append(
                f"  {labeled_name(entry['name'], entry['labels']):<58} "
                f"{_fmt_value(entry['value'])}"
            )
    if snap["gauges"]:
        lines.append("gauges:")
        for entry in snap["gauges"]:
            lines.append(
                f"  {labeled_name(entry['name'], entry['labels']):<58} "
                f"{_fmt_value(entry['value'])}"
            )
    if snap["histograms"]:
        lines.append("histograms:")
        for entry in snap["histograms"]:
            count = entry["count"]
            mean = entry["sum"] / count if count else 0.0
            # Quantiles come from the entry when present, else are
            # derived from the buckets (older snapshots round-trip).
            quantiles = entry.get("quantiles") or {
                label: quantile_from_buckets(entry["buckets"], q)
                for q, label in EXPORT_QUANTILES
            }
            qtext = " ".join(
                f"{label}={quantiles[label]:.6g}"
                for _, label in EXPORT_QUANTILES if label in quantiles
            )
            occupied = [
                f"le={u}:{c}" for u, c in entry["buckets"] if c > 0
            ][:max_buckets]
            lines.append(
                f"  {labeled_name(entry['name'], entry['labels']):<58} "
                f"count={count} mean={mean:.6g} {qtext} {' '.join(occupied)}"
            )
    return "\n".join(lines)
