"""Process-local metrics registry (counters, gauges, histograms).

PinSQL is itself an observability system; this module is the substrate
that lets it watch itself (the paper's production deployment, Sec. III
Fig. 5, runs on exactly this kind of self-telemetry).  The registry is
deliberately Prometheus-shaped — counter / gauge / fixed-bucket
histogram instruments addressed by ``(name, labels)`` — so snapshots
export both as JSON and as the Prometheus text-exposition format.

No background threads, no locks beyond the GIL: instruments are plain
objects mutated in-process, cheap enough for per-message hot paths.
"""

from __future__ import annotations

import math
import re
import threading
from bisect import bisect_left
from typing import Iterator, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_COUNT_BUCKETS",
    "labeled_name",
    "filter_snapshot",
    "render_summary",
]

#: Latency buckets (seconds) sized for the pipeline's sub-second stages
#: up to multi-second whole-corpus analyses.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Size buckets for batch/queue observations (messages per poll etc.).
DEFAULT_COUNT_BUCKETS: tuple[float, ...] = (
    0, 1, 5, 10, 50, 100, 500, 1000, 5000, 10_000, 50_000,
)

_LabelKey = tuple[tuple[str, str], ...]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters can only increase")
        self.value += amount


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket histogram (upper bounds + implicit +Inf bucket)."""

    __slots__ = ("uppers", "counts", "sum", "count")

    def __init__(self, buckets: tuple[float, ...]) -> None:
        if not buckets:
            raise ValueError("histogram needs at least one bucket bound")
        uppers = tuple(float(b) for b in buckets)
        if list(uppers) != sorted(set(uppers)):
            raise ValueError("bucket bounds must be strictly increasing")
        self.uppers = uppers
        self.counts = [0] * (len(uppers) + 1)  # last = +Inf overflow
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.uppers, value)] += 1
        self.sum += value
        self.count += 1

    def cumulative(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ending at +Inf."""
        out: list[tuple[float, int]] = []
        running = 0
        for upper, n in zip(self.uppers, self.counts):
            running += n
            out.append((upper, running))
        out.append((math.inf, running + self.counts[-1]))
        return out

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


class _Family:
    """All series (label combinations) of one metric name."""

    __slots__ = ("name", "kind", "help", "buckets", "series")

    def __init__(self, name: str, kind: str, help: str,
                 buckets: tuple[float, ...] | None = None) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self.buckets = buckets
        self.series: dict[_LabelKey, Counter | Gauge | Histogram] = {}


def _label_key(labels: Mapping[str, str]) -> _LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def labeled_name(name: str, labels: Mapping[str, str] | _LabelKey = ()) -> str:
    """Canonical ``name{k=v,...}`` string for a series (no quoting)."""
    items = labels if isinstance(labels, tuple) else _label_key(labels)
    if not items:
        return name
    return name + "{" + ",".join(f"{k}={v}" for k, v in items) + "}"


class MetricsRegistry:
    """Named, labeled instruments with JSON and Prometheus export.

    ``counter`` / ``gauge`` / ``histogram`` create-or-return the series
    for ``(name, labels)``, so call sites just ask for the instrument
    each time — creation is cached, lookups are a dict hit.
    """

    def __init__(self) -> None:
        self._families: dict[str, _Family] = {}
        # Instrument *creation* is locked so concurrent fleet workers
        # can't race the check-then-insert and orphan an instrument; the
        # per-call fast path (existing series) stays lock-free under the
        # GIL's atomic dict reads.
        self._create_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Instrument accessors
    # ------------------------------------------------------------------
    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        return self._series(name, "counter", help, None, labels)

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        return self._series(name, "gauge", help, None, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
        **labels: str,
    ) -> Histogram:
        return self._series(name, "histogram", help, tuple(buckets), labels)

    def _series(self, name, kind, help, buckets, labels):
        family = self._families.get(name)
        if family is not None and family.kind == kind:
            instrument = family.series.get(_label_key(labels))
            if instrument is not None:
                return instrument
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name: {name!r}")
        with self._create_lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(name, kind, help, buckets)
                self._families[name] = family
            elif family.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {family.kind}, "
                    f"requested as {kind}"
                )
            key = _label_key(labels)
            instrument = family.series.get(key)
            if instrument is None:
                if kind == "counter":
                    instrument = Counter()
                elif kind == "gauge":
                    instrument = Gauge()
                else:
                    instrument = Histogram(family.buckets)
                family.series[key] = instrument
            return instrument

    def get(self, name: str, **labels: str):
        """The existing instrument for ``(name, labels)``, or None."""
        family = self._families.get(name)
        if family is None:
            return None
        return family.series.get(_label_key(labels))

    def __contains__(self, name: str) -> bool:
        return name in self._families

    def names(self) -> list[str]:
        return sorted(self._families)

    def reset(self) -> None:
        """Drop every family (tests / fresh CLI invocations)."""
        self._families.clear()

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-able snapshot of every series.

        Histogram bucket bounds are serialised as floats except +Inf,
        which becomes the string ``"+Inf"`` so the snapshot survives a
        strict JSON round-trip.
        """
        counters, gauges, histograms = [], [], []
        for name in sorted(self._families):
            family = self._families[name]
            for key in sorted(family.series):
                inst = family.series[key]
                entry = {"name": name, "labels": dict(key)}
                if family.kind == "counter":
                    counters.append({**entry, "value": inst.value})
                elif family.kind == "gauge":
                    gauges.append({**entry, "value": inst.value})
                else:
                    entry["buckets"] = [
                        ["+Inf" if math.isinf(u) else u, c]
                        for u, c in inst.cumulative()
                    ]
                    entry["sum"] = inst.sum
                    entry["count"] = inst.count
                    histograms.append(entry)
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    def render_prometheus(self) -> str:
        """Prometheus text-exposition format (version 0.0.4)."""
        lines: list[str] = []
        for name in sorted(self._families):
            family = self._families[name]
            if family.help:
                lines.append(f"# HELP {name} {_escape_help(family.help)}")
            lines.append(f"# TYPE {name} {family.kind}")
            for key in sorted(family.series):
                inst = family.series[key]
                if family.kind in ("counter", "gauge"):
                    lines.append(f"{name}{_fmt_labels(key)} {_fmt_value(inst.value)}")
                    continue
                for upper, cum in inst.cumulative():
                    le = "+Inf" if math.isinf(upper) else _fmt_value(upper)
                    lines.append(
                        f"{name}_bucket{_fmt_labels(key + (('le', le),))} {cum}"
                    )
                lines.append(f"{name}_sum{_fmt_labels(key)} {_fmt_value(inst.sum)}")
                lines.append(f"{name}_count{_fmt_labels(key)} {inst.count}")
        return "\n".join(lines) + "\n" if lines else ""

    def __iter__(self) -> Iterator[tuple[str, str, _LabelKey, object]]:
        """Yield ``(name, kind, label_key, instrument)`` for every series."""
        for name, family in self._families.items():
            for key, inst in family.series.items():
                yield name, family.kind, key, inst


def _fmt_labels(key: _LabelKey) -> str:
    if not key:
        return ""
    parts = (f'{k}="{_escape_label(v)}"' for k, v in key)
    return "{" + ",".join(parts) + "}"


def _escape_label(value: str) -> str:
    return str(value).replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _escape_help(value: str) -> str:
    return value.replace("\\", r"\\").replace("\n", r"\n")


def _fmt_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def filter_snapshot(snapshot: dict, **labels: str) -> dict:
    """Restrict a :meth:`MetricsRegistry.snapshot` to matching series.

    Keeps only series whose labels carry every given ``key=value`` —
    e.g. ``filter_snapshot(snap, instance="db-03")`` isolates one fleet
    member's telemetry.
    """
    def keep(entry: dict) -> bool:
        return all(entry["labels"].get(k) == v for k, v in labels.items())

    return {kind: [e for e in entries if keep(e)]
            for kind, entries in snapshot.items()}


def render_summary(
    registry: MetricsRegistry | dict, max_buckets: int = 4
) -> str:
    """Human-readable one-line-per-series dump for CLI output.

    Accepts a registry or an already-built (possibly filtered)
    :meth:`MetricsRegistry.snapshot` dict.
    """
    snap = registry.snapshot() if isinstance(registry, MetricsRegistry) else registry
    lines: list[str] = []
    if snap["counters"]:
        lines.append("counters:")
        for entry in snap["counters"]:
            lines.append(
                f"  {labeled_name(entry['name'], entry['labels']):<58} "
                f"{_fmt_value(entry['value'])}"
            )
    if snap["gauges"]:
        lines.append("gauges:")
        for entry in snap["gauges"]:
            lines.append(
                f"  {labeled_name(entry['name'], entry['labels']):<58} "
                f"{_fmt_value(entry['value'])}"
            )
    if snap["histograms"]:
        lines.append("histograms:")
        for entry in snap["histograms"]:
            count = entry["count"]
            mean = entry["sum"] / count if count else 0.0
            occupied = [
                f"le={u}:{c}" for u, c in entry["buckets"] if c > 0
            ][:max_buckets]
            lines.append(
                f"  {labeled_name(entry['name'], entry['labels']):<58} "
                f"count={count} mean={mean:.6g} {' '.join(occupied)}"
            )
    return "\n".join(lines)
