"""Self-monitoring: turn the registry's own metrics into TimeSeries.

Closes the observability loop: the service's exported gauges and
counters become :class:`~repro.timeseries.TimeSeries` objects, so the
repo's *own* anomaly detectors (spike, level shift, Tukey) can watch
the diagnosis service the same way the service watches databases —
the "watch the watcher" requirement of running PinSQL in production
(paper Sec. III; ExplainIt!-style RCA over self-metrics).
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.telemetry.metrics import MetricsRegistry, labeled_name
from repro.timeseries import TimeSeries

__all__ = ["SelfMonitor", "forward_fill_series"]


def forward_fill_series(
    samples: Mapping[int, float], ts: int, te: int, name: str = ""
) -> TimeSeries:
    """Forward-filled 1 Hz series over ``[ts, te)`` from sparse samples.

    Seconds before the first sample hold 0.0; afterwards each second
    carries the most recent sample value (the same convention the
    service uses when reconstructing detector metric buffers).
    """
    if te <= ts:
        raise ValueError("te must be greater than ts")
    values = np.zeros(te - ts, dtype=np.float64)
    last = 0.0
    for i, t in enumerate(range(ts, te)):
        if t in samples:
            last = samples[t]
        values[i] = last
    return TimeSeries(values, start=ts, name=name)


class SelfMonitor:
    """Periodically samples a registry into per-metric histories.

    Call :meth:`sample` with the current (stream) time from the service
    loop; every counter and gauge value is recorded under its
    ``name{label=value,...}`` key.  Histories are bounded by
    ``window_s`` — samples older than ``now - window_s`` are evicted on
    every call, mirroring the detector's sliding-window retention.
    """

    def __init__(self, registry: MetricsRegistry, window_s: int = 3600,
                 include_counters: bool = True,
                 include_histograms: bool = True) -> None:
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        self.registry = registry
        self.window_s = int(window_s)
        self.include_counters = include_counters
        self.include_histograms = include_histograms
        self._samples: dict[str, dict[int, float]] = {}
        self._last_sample_at: int | None = None

    def sample(self, now_s: int) -> int:
        """Record the current value of every gauge (and counter).

        Histogram-kind series export two derived scalars per sample so
        latency distributions (span durations, pipeline lag) are
        watchable too: the running mean under the plain series key and
        the p95 estimate under ``<name>_p95{...}``.

        Returns the number of series sampled.
        """
        now_s = int(now_s)
        sampled = 0
        for name, kind, key, inst in self.registry:
            if kind == "histogram":
                if not self.include_histograms:
                    continue
                mean_history = self._samples.setdefault(
                    labeled_name(name, key), {})
                mean_history[now_s] = inst.mean
                p95_history = self._samples.setdefault(
                    labeled_name(name + "_p95", key), {})
                p95_history[now_s] = inst.quantile(0.95)
                sampled += 2
                continue
            if kind == "counter" and not self.include_counters:
                continue
            history = self._samples.setdefault(labeled_name(name, key), {})
            history[now_s] = inst.value
            sampled += 1
        self._last_sample_at = now_s
        cutoff = now_s - self.window_s
        for history in self._samples.values():
            stale = [t for t in history if t < cutoff]
            for t in stale:
                del history[t]
        return sampled

    def names(self) -> list[str]:
        return sorted(self._samples)

    def series(self, name: str, ts: int | None = None,
               te: int | None = None) -> TimeSeries | None:
        """The recorded history of one series as a forward-filled TimeSeries.

        ``name`` is the ``name{label=value,...}`` key from :meth:`names`.
        Returns None when the series has no samples yet.
        """
        history = self._samples.get(name)
        if not history:
            return None
        lo = min(history) if ts is None else int(ts)
        hi = (max(history) + 1) if te is None else int(te)
        return forward_fill_series(history, lo, hi, name=name)

    def all_series(self, ts: int | None = None,
                   te: int | None = None) -> dict[str, TimeSeries]:
        """Every recorded series (skipping ones empty in the window)."""
        out: dict[str, TimeSeries] = {}
        for name in self._samples:
            series = self.series(name, ts, te)
            if series is not None:
                out[name] = series
        return out
