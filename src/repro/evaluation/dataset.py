"""Synthetic ADAC: labelled anomaly cases for evaluation.

Each case is produced end-to-end: build a microservice population,
inject one of the paper's R-SQL categories, simulate the instance,
*detect* the anomaly window from the metrics (the detection module runs
for real), aggregate the logs into template series, generate history
trends, and label the ground truth:

* **R-SQLs** are known by construction (the injected roots);
* **H-SQLs** are labelled from the simulator's omniscient view — the
  templates whose *true* individual active session rose the most during
  the anomaly window, which is exactly the "direct cause of the active
  session anomaly" a DBA would mark.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.collection.aggregator import aggregate_query_log
from repro.collection.logstore import LogStore
from repro.core.case import AnomalyCase
from repro.core.session_estimation import CoverageFunction
from repro.dbsim.instance import DatabaseInstance
from repro.detection import BasicPerception, CaseBuilder, PhenomenonPerception
from repro.sqltemplate import TemplateCatalog
from repro.timeseries import TimeSeries
from repro.workload import (
    AnomalyCategory,
    InjectedAnomaly,
    WorkloadGenerator,
    build_population,
    inject_anomaly,
)
from repro.workload.trends import business_latent_trend

__all__ = ["LabeledCase", "CorpusConfig", "generate_case", "generate_corpus"]


@dataclass
class LabeledCase:
    """One anomaly case with ground truth labels."""

    case: AnomalyCase
    r_sqls: set[str]
    h_sqls: set[str]
    category: AnomalyCategory
    injected: InjectedAnomaly
    #: True when the detection module found the window itself (the normal
    #: path); False when the injected window had to be used as fallback.
    detected: bool
    seed: int
    #: Monitored instance the case was collected from ("" = unattributed,
    #: the pre-fleet corpora).
    instance_id: str = ""


@dataclass(frozen=True)
class CorpusConfig:
    """Parameters of synthetic-corpus generation."""

    n_cases: int = 40
    seed: int = 0
    #: δs seconds of pre-anomaly context collected per case.
    delta_start_s: int = 900
    anomaly_length_s: tuple[int, int] = (300, 600)
    n_businesses: tuple[int, int] = (6, 12)
    cpu_cores_choices: tuple[int, ...] = (8, 16, 32)
    #: Case mix across the paper's categories.  Lock-related cases
    #: dominate, mirroring ADAC's skew: pure business spikes are rare in
    #: production corpora (any method finds them, and the paper's Top-EN
    #: baseline — which nails exactly those — scores only 6.5 % overall).
    category_weights: tuple[tuple[AnomalyCategory, float], ...] = (
        (AnomalyCategory.BUSINESS_SPIKE, 0.08),
        (AnomalyCategory.POOR_SQL, 0.22),
        (AnomalyCategory.MDL_LOCK, 0.30),
        (AnomalyCategory.ROW_LOCK, 0.32),
        (AnomalyCategory.COMPOSITE, 0.08),
    )
    #: History days generated for history-trend verification.
    history_days: tuple[int, ...] = (1, 3, 7)
    #: Cap on how many templates are labelled H-SQL per case.
    max_h_sqls: int = 10
    #: Fleet width of the corpus: cases are attributed round-robin to
    #: ``inst-00 .. inst-<n-1>``.  1 keeps the pre-fleet unattributed
    #: corpora (empty instance ids).
    n_instances: int = 1

    def __post_init__(self) -> None:
        if self.n_cases < 1:
            raise ValueError("n_cases must be at least 1")
        if self.n_instances < 1:
            raise ValueError("n_instances must be at least 1")
        total = sum(w for _, w in self.category_weights)
        if total <= 0:
            raise ValueError("category weights must sum to a positive value")


def _label_h_sqls(
    result, anomaly_start: int, anomaly_end: int, ts: int, max_h: int
) -> set[str]:
    """Templates whose true session rose the most during the anomaly."""
    increases: dict[str, float] = {}
    window_len_ms = (anomaly_end - anomaly_start) * 1000.0
    base_lo, base_hi = (ts + 30) * 1000.0, anomaly_start * 1000.0
    base_len = max(base_hi - base_lo, 1.0)
    for tq in result.query_log.iter_templates():
        cov = CoverageFunction(tq.arrive_ms, tq.response_ms)
        during = float(
            (cov(np.array([anomaly_end * 1000.0])) - cov(np.array([anomaly_start * 1000.0])))[0]
        ) / window_len_ms
        before = float((cov(np.array([base_hi])) - cov(np.array([base_lo])))[0]) / base_len
        increases[tq.sql_id] = during - before
    if not increases:
        return set()
    max_inc = max(increases.values())
    if max_inc <= 0:
        return set()
    threshold = max(0.10 * max_inc, 0.5)
    chosen = [sid for sid, inc in increases.items() if inc >= threshold]
    chosen.sort(key=lambda sid: increases[sid], reverse=True)
    return set(chosen[:max_h])


def _generate_history(
    population, injected: InjectedAnomaly, ts: int, te: int,
    history_days: tuple[int, ...], rng: np.random.Generator,
    interval: int = 60,
) -> dict[str, dict[int, TimeSeries]]:
    """Historical #execution series per template at 1-minute granularity.

    History is regenerated from the business model (same base levels,
    fresh trend realisations) — templates created by the injection are
    new SQLs and get no history.
    """
    duration = te - ts
    new_ids = set(injected.new_sql_ids)
    history: dict[str, dict[int, TimeSeries]] = {}
    n_minutes = duration // interval
    for days in history_days:
        for business in population.businesses:
            latent = business_latent_trend(
                duration, rng, base_level=business.base_level
            )
            for sql_id in business.sql_ids:
                if sql_id in new_ids:
                    continue
                multiplier = business.template_multiplier(sql_id)
                if multiplier <= 0:
                    continue
                rate = latent * multiplier
                counts = rng.poisson(np.maximum(rate, 0.0)).astype(np.float64)
                usable = n_minutes * interval
                minute_counts = counts[:usable].reshape(-1, interval).sum(axis=1)
                series = TimeSeries(minute_counts, start=ts, interval=interval, name="#execution")
                history.setdefault(sql_id, {})[days] = series
    return history


def _build_catalog(population, observed_ids: list[str]) -> TemplateCatalog:
    catalog = TemplateCatalog()
    for sql_id in observed_ids:
        spec = population.specs.get(sql_id)
        if spec is None:
            continue
        catalog.register_template(
            spec.sql_id, spec.template, spec.kind, spec.tables,
            exemplar=spec.exemplar,
        )
    return catalog


def _detect_window(
    metrics, injected_start: int, injected_end: int
) -> tuple[int, int, bool]:
    """Detect the anomaly window; fall back to the injected one."""
    features = BasicPerception().perceive(metrics)
    phenomena = PhenomenonPerception().recognise(features)
    anomalies = CaseBuilder(merge_gap_s=120, min_duration_s=30).build(phenomena)
    best = None
    for anomaly in anomalies:
        overlap = min(anomaly.end, injected_end) - max(anomaly.start, injected_start)
        if overlap > 0 and (best is None or overlap > best[0]):
            best = (overlap, anomaly)
    if best is None:
        return injected_start, injected_end, False
    anomaly = best[1]
    # Clip to the data window; the anomaly may extend to the case end.
    start = max(anomaly.start, metrics.active_session.start)
    end = min(max(anomaly.end, start + 30), metrics.active_session.end)
    return start, end, True


def _draw_category(cfg: CorpusConfig, rng: np.random.Generator) -> AnomalyCategory:
    categories, weights = zip(*cfg.category_weights)
    p = np.asarray(weights, dtype=np.float64)
    p = p / p.sum()
    return categories[int(rng.choice(len(categories), p=p))]


def _stratified_categories(cfg: CorpusConfig) -> list[AnomalyCategory]:
    """Deterministic corpus composition by largest-remainder allocation.

    Independent per-case draws can leave a low-weight category entirely
    unrepresented in a small corpus; a labelled evaluation corpus (like
    ADAC) has a fixed composition instead.  The allocation is shuffled
    with the corpus seed so category order does not correlate with case
    seeds.
    """
    categories, weights = zip(*cfg.category_weights)
    p = np.asarray(weights, dtype=np.float64)
    p = p / p.sum()
    exact = p * cfg.n_cases
    counts = np.floor(exact).astype(int)
    remainder = cfg.n_cases - counts.sum()
    for idx in np.argsort(exact - counts)[::-1][:remainder]:
        counts[idx] += 1
    assignment: list[AnomalyCategory] = []
    for category, count in zip(categories, counts):
        assignment.extend([category] * int(count))
    rng = np.random.default_rng(cfg.seed ^ 0x5EED)
    rng.shuffle(assignment)  # type: ignore[arg-type]
    return assignment


def generate_case(
    seed: int,
    cfg: CorpusConfig | None = None,
    category: AnomalyCategory | None = None,
    instance_id: str = "",
) -> LabeledCase:
    """Generate one labelled anomaly case end-to-end."""
    cfg = cfg or CorpusConfig()
    rng = np.random.default_rng(seed)
    if category is None:
        category = _draw_category(cfg, rng)
    anomaly_len = int(rng.integers(*cfg.anomaly_length_s))
    duration = cfg.delta_start_s + anomaly_len
    injected_start = cfg.delta_start_s
    injected_end = duration

    n_businesses = int(rng.integers(cfg.n_businesses[0], cfg.n_businesses[1] + 1))
    population = build_population(duration, rng, n_businesses=n_businesses)
    cores = int(rng.choice(cfg.cpu_cores_choices))
    inject_kwargs = {}
    if category is AnomalyCategory.POOR_SQL:
        inject_kwargs["capacity_hint_ms"] = cores * 1000.0
    injected = inject_anomaly(
        population, rng, category, injected_start, injected_end, **inject_kwargs
    )

    generator = WorkloadGenerator(population)
    instance = DatabaseInstance(
        schema=population.schema, cpu_cores=cores, seed=int(rng.integers(0, 2**31))
    )
    result = instance.run(generator, duration=duration)

    anomaly_start, anomaly_end, detected = _detect_window(
        result.metrics, injected_start, injected_end
    )

    ts, te = 0, duration
    templates = aggregate_query_log(result.query_log, start=ts, end=te)
    logs = LogStore()
    logs.ingest_query_log(result.query_log)
    catalog = _build_catalog(population, templates.sql_ids)
    history = _generate_history(
        population, injected, ts, te, cfg.history_days, rng
    )
    case = AnomalyCase(
        metrics=result.metrics,
        templates=templates,
        logs=logs,
        catalog=catalog,
        anomaly_start=anomaly_start,
        anomaly_end=anomaly_end,
        history=history,
    )
    h_sqls = _label_h_sqls(result, anomaly_start, anomaly_end, ts, cfg.max_h_sqls)
    r_sqls = set(injected.r_sql_ids)
    # R-SQLs that generated no observable queries cannot be found by any
    # log-based method; keep only observed ones (at least one survives by
    # construction of the injectors).
    r_sqls &= set(templates.sql_ids)
    if not r_sqls:
        r_sqls = set(injected.r_sql_ids)
    return LabeledCase(
        case=case,
        r_sqls=r_sqls,
        h_sqls=h_sqls if h_sqls else set(r_sqls),
        category=category,
        injected=injected,
        detected=detected,
        seed=seed,
        instance_id=instance_id,
    )


def generate_corpus(cfg: CorpusConfig | None = None) -> list[LabeledCase]:
    """Generate the synthetic ADAC corpus (deterministic per config).

    The category composition is stratified to the configured weights so
    every category is represented even in small corpora.  With
    ``n_instances > 1`` cases are attributed round-robin across a
    simulated fleet (``inst-00``, ``inst-01``, ...).
    """
    cfg = cfg or CorpusConfig()
    assignment = _stratified_categories(cfg)
    return [
        generate_case(
            cfg.seed * 100_003 + i,
            cfg,
            category=assignment[i],
            instance_id=(
                f"inst-{i % cfg.n_instances:02d}" if cfg.n_instances > 1 else ""
            ),
        )
        for i in range(cfg.n_cases)
    ]
