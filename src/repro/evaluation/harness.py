"""Evaluation harness: run rankers over a corpus, aggregate accuracy.

Produces the rows of the paper's Table I: per method, Hits@1 / Hits@5 /
MRR and mean running time, separately for R-SQL and H-SQL ground truth.
``Top-All`` is computed as the per-case best of the three Top-SQL
variants, matching the paper's definition.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.baselines import TopMetricRanker
from repro.core.pipeline import PinSQL
from repro.evaluation.dataset import LabeledCase
from repro.evaluation.metrics import RankingSummary, first_hit_rank, summarize_ranks
from repro.telemetry import get_tracer

__all__ = [
    "MethodReport",
    "evaluate_ranker",
    "evaluate_pinsql",
    "top_all_report",
    "evaluate_competition",
]


@dataclass
class MethodReport:
    """Per-method evaluation outcome over one corpus."""

    name: str
    r_ranks: list[int | None] = field(default_factory=list)
    h_ranks: list[int | None] = field(default_factory=list)
    #: Per-case wall time for the R-SQL ranking (seconds).
    r_times: list[float] = field(default_factory=list)
    #: Per-case wall time for the H-SQL ranking (seconds).
    h_times: list[float] = field(default_factory=list)
    #: Per-case anomaly category (parallel to the rank lists).
    categories: list[str] = field(default_factory=list)

    @property
    def r_summary(self) -> RankingSummary:
        return summarize_ranks(self.r_ranks)

    @property
    def h_summary(self) -> RankingSummary:
        return summarize_ranks(self.h_ranks)

    @property
    def mean_r_time(self) -> float:
        return sum(self.r_times) / len(self.r_times) if self.r_times else 0.0

    @property
    def mean_h_time(self) -> float:
        return sum(self.h_times) / len(self.h_times) if self.h_times else 0.0

    def r_summary_by_category(self) -> dict[str, RankingSummary]:
        """Per-anomaly-category R-SQL summaries (empty without categories)."""
        out: dict[str, RankingSummary] = {}
        for category in sorted(set(self.categories)):
            ranks = [
                r for r, c in zip(self.r_ranks, self.categories) if c == category
            ]
            if ranks:
                out[category] = summarize_ranks(ranks)
        return out

    def table_row(self) -> str:
        r, h = self.r_summary, self.h_summary
        return (
            f"{self.name:<10} "
            f"{r.hits_at_1:6.1f} {r.hits_at_5:6.1f} {r.mrr:6.2f} {_fmt_time(self.mean_r_time):>9}   "
            f"{h.hits_at_1:6.1f} {h.hits_at_5:6.1f} {h.mrr:6.2f} {_fmt_time(self.mean_h_time):>9}"
        )


def _fmt_time(seconds: float) -> str:
    if seconds <= 0:
        return "-"
    if seconds < 0.1:
        return f"{seconds * 1000:.2f}ms"
    return f"{seconds:.2f}s"


def evaluate_ranker(ranker: TopMetricRanker, cases: list[LabeledCase]) -> MethodReport:
    """Evaluate a single-ranking method against both ground truths."""
    report = MethodReport(name=ranker.name)
    tracer = get_tracer()
    for labeled in cases:
        # The shared telemetry timer is the single place wall-clock
        # measurement lives; the span doubles as a per-method histogram.
        with tracer.span("evaluate.rank", method=ranker.name) as span:
            ranking = ranker.rank(labeled.case)
        elapsed = span.elapsed
        report.r_ranks.append(first_hit_rank(ranking, labeled.r_sqls))
        report.h_ranks.append(first_hit_rank(ranking, labeled.h_sqls))
        report.r_times.append(elapsed)
        report.h_times.append(elapsed)
        report.categories.append(labeled.category.value)
    return report


def evaluate_pinsql(pinsql: PinSQL, cases: list[LabeledCase], name: str = "PinSQL") -> MethodReport:
    """Evaluate PinSQL (one analysis yields both rankings and timings)."""
    report = MethodReport(name=name)
    for labeled in cases:
        result = pinsql.analyze(labeled.case)
        report.r_ranks.append(first_hit_rank(result.rsql_ids, labeled.r_sqls))
        report.h_ranks.append(first_hit_rank(result.hsql_ids, labeled.h_sqls))
        report.r_times.append(result.timings.total)
        report.h_times.append(result.timings.hsql_total)
        report.categories.append(labeled.category.value)
    return report


def top_all_report(baseline_reports: list[MethodReport]) -> MethodReport:
    """Per-case best of the Top-SQL variants (the paper's Top-All)."""
    if not baseline_reports:
        raise ValueError("baseline_reports must not be empty")
    n = len(baseline_reports[0].r_ranks)
    report = MethodReport(name="Top-All")
    for i in range(n):
        r_candidates = [rep.r_ranks[i] for rep in baseline_reports if rep.r_ranks[i] is not None]
        h_candidates = [rep.h_ranks[i] for rep in baseline_reports if rep.h_ranks[i] is not None]
        report.r_ranks.append(min(r_candidates) if r_candidates else None)
        report.h_ranks.append(min(h_candidates) if h_candidates else None)
    report.categories = list(baseline_reports[0].categories)
    return report


def evaluate_competition(
    cases: list[LabeledCase],
    pinsql: PinSQL | None = None,
    baselines: list[TopMetricRanker] | None = None,
) -> list[MethodReport]:
    """Run the full Table-I comparison: baselines, Top-All, PinSQL."""
    from repro.core.baselines import BASELINES

    baselines = baselines if baselines is not None else BASELINES()
    reports = [evaluate_ranker(b, cases) for b in baselines]
    reports.append(top_all_report(reports))
    reports.append(evaluate_pinsql(pinsql or PinSQL(), cases))
    return reports
