"""Evaluation of the static SQL analyzer against planted ground truth.

:func:`repro.workload.plant_antipatterns` registers templates whose
anti-patterns are known by construction — each carries an exact
``(sql_id, rule)`` label set.  This module scores the analyzer the way
the harness scores the ranker: run it over the *whole* population
catalog (planted bait plus the healthy background templates) and count
exact ``(sql_id, rule)`` pairs.

* a **true positive** is a planted pair the analyzer reported;
* a **false negative** is a planted pair it missed;
* a **false positive** is any reported pair *on a planted template*
  that was not part of its label, or any finding on an unplanted
  (healthy) template.

Healthy templates therefore act as the negative class: a rule that
fires on the index-backed background workload costs precision.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.sqlanalysis import SqlAnalyzer
from repro.workload.catalog import Population
from repro.workload.scenarios import PlantedAntiPattern, hot_tables

__all__ = ["AnalyzerEvaluation", "evaluate_analyzer", "analyzer_for_population"]


@dataclass
class AnalyzerEvaluation:
    """Exact-pair precision/recall of the analyzer on planted labels."""

    true_positives: int = 0
    false_positives: int = 0
    false_negatives: int = 0
    #: ``rule -> {"tp": n, "fp": n, "fn": n}`` breakdown.
    per_rule: dict[str, dict[str, int]] = field(default_factory=dict)
    #: The offending pairs, for debugging regressions.
    missed: list[tuple[str, str]] = field(default_factory=list)
    spurious: list[tuple[str, str]] = field(default_factory=list)
    templates_analyzed: int = 0

    @property
    def precision(self) -> float:
        denom = self.true_positives + self.false_positives
        return self.true_positives / denom if denom else 1.0

    @property
    def recall(self) -> float:
        denom = self.true_positives + self.false_negatives
        return self.true_positives / denom if denom else 1.0

    def to_dict(self) -> dict:
        return {
            "true_positives": self.true_positives,
            "false_positives": self.false_positives,
            "false_negatives": self.false_negatives,
            "precision": self.precision,
            "recall": self.recall,
            "per_rule": {r: dict(c) for r, c in sorted(self.per_rule.items())},
            "missed": [list(p) for p in self.missed],
            "spurious": [list(p) for p in self.spurious],
            "templates_analyzed": self.templates_analyzed,
        }


def analyzer_for_population(population: Population) -> SqlAnalyzer:
    """Analyzer wired with the population's schema, specs and hot tables."""
    return SqlAnalyzer(
        schema=population.schema,
        specs=population.specs,
        hot_tables=hot_tables(population),
    )


def evaluate_analyzer(
    analyzer: SqlAnalyzer,
    population: Population,
    planted: Sequence[PlantedAntiPattern],
    extra_negative_ids: Iterable[str] = (),
) -> AnalyzerEvaluation:
    """Score ``analyzer`` over the population catalog vs planted labels.

    ``extra_negative_ids`` names templates known healthy beyond the
    population's own (reserved for future corpora; unknown ids ignored).
    """
    expected: set[tuple[str, str]] = {
        (p.sql_id, rule) for p in planted for rule in p.rules
    }
    predicted: set[tuple[str, str]] = set()
    evaluation = AnalyzerEvaluation()
    seen_ids = set(extra_negative_ids)
    for spec in population.specs.values():
        seen_ids.add(spec.sql_id)
        for finding in analyzer.analyze_spec(spec):
            predicted.add((spec.sql_id, finding.rule))
    evaluation.templates_analyzed = len(seen_ids)

    def _bucket(rule: str) -> dict[str, int]:
        return evaluation.per_rule.setdefault(rule, {"tp": 0, "fp": 0, "fn": 0})

    for pair in sorted(predicted & expected):
        evaluation.true_positives += 1
        _bucket(pair[1])["tp"] += 1
    for pair in sorted(predicted - expected):
        evaluation.false_positives += 1
        _bucket(pair[1])["fp"] += 1
        evaluation.spurious.append(pair)
    for pair in sorted(expected - predicted):
        evaluation.false_negatives += 1
        _bucket(pair[1])["fn"] += 1
        evaluation.missed.append(pair)
    return evaluation
