"""Lead-time harness: does the proactive layer beat the pager?

The health sweeps exist to surface problems *before* the anomaly
detector fires.  This harness measures exactly that, closed on ground
truth: it simulates a fleet where some instances carry a planted
slow-creep poor SQL (:func:`~repro.workload.inject_slow_creep` — a
rollout that degrades the instance for minutes before CPU saturates),
replays the collected streams **chronologically in chunks** through the
fleet service with an attached :class:`~repro.health.HealthSweeper`
(bulk replay would drain everything in one step and collapse the sweep
schedule to a single sweep), then links the sweeps' proactive findings
to the incidents that later fired on the same instances.

Scores:

- **precision** — proactive findings on instances that went on to fire
  an anomaly, over all proactive findings (a sweep crying wolf on a
  healthy instance is a false positive);
- **recall** — creeping instances that got at least one proactive
  finding before their incident;
- **median lead time** — seconds between the first proactive finding
  on an instance and the incident's anomaly start.

CI gates precision (≥ 0.8 on the planted corpus) and a positive median
lead time — the "automated DBA" must be early *and* right.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field

import numpy as np

from repro.collection import (
    Broker,
    METRIC_TOPIC,
    MetricsCollector,
    QUERY_TOPIC,
    QueryLogCollector,
)
from repro.collection.stream import instance_topic
from repro.fleet import FleetConfig, FleetDiagnosisService, ServiceConfig
from repro.fleet.sharded import InstanceFeed, feed_from_broker
from repro.health import HealthConfig, HealthFinding, HealthSweeper
from repro.telemetry import MetricsRegistry, get_logger

__all__ = [
    "LeadTimeConfig",
    "LeadTimeReport",
    "PROACTIVE_CHECKS",
    "render_leadtime_text",
    "run_leadtime",
]

_log = get_logger("evaluation")

#: The checks whose findings count as "proactive warning of the creep".
#: Fleet-scope and self-health checks are excluded: they describe the
#: pipeline, not a brewing workload problem.
PROACTIVE_CHECKS = frozenset(
    {
        "rising-response-time",
        "rising-rows-examined",
        "antipattern-share",
        "connection-pressure",
        "lock-footprint-trend",
    }
)


@dataclass(frozen=True)
class LeadTimeConfig:
    """Knobs of one lead-time evaluation (fixed seed = fixed everything)."""

    seed: int = 23
    n_instances: int = 4
    #: The first ``creeping`` instances get a planted slow-creep poor SQL.
    creeping: int = 2
    duration_s: int = 900
    #: The creep's traffic ramp starts here ...
    creep_start_s: int = 180
    #: ... and reaches CPU oversubscription here (the labelled onset).
    onset_s: int = 700
    #: Stream-time seconds of records replayed between service steps.
    chunk_s: int = 60
    sweep_interval_s: int = 120
    sweep_window_s: int = 300
    workers: int = 1

    def __post_init__(self) -> None:
        if not 0 <= self.creeping <= self.n_instances:
            raise ValueError("creeping must be within [0, n_instances]")
        if not 0 < self.creep_start_s < self.onset_s < self.duration_s:
            raise ValueError("need 0 < creep_start_s < onset_s < duration_s")
        if self.chunk_s <= 0:
            raise ValueError("chunk_s must be positive")


@dataclass
class LeadTimeReport:
    """Scored outcome of one lead-time evaluation."""

    config: LeadTimeConfig
    #: Proactive findings (instance scope, PROACTIVE_CHECKS) per instance.
    proactive: dict[str, list[HealthFinding]] = field(default_factory=dict)
    #: Anomaly start per instance that fired (first incident).
    incident_starts: dict[str, int] = field(default_factory=dict)
    creeping_instances: tuple[str, ...] = ()
    sweeps: int = 0
    findings_total: int = 0
    #: Proactive findings whose sql_id matches a ranked R-SQL of the
    #: instance's later diagnosis (the strongest kind of early warning).
    template_matches: int = 0

    @property
    def true_positives(self) -> int:
        """Proactive findings on instances that later fired an incident."""
        return sum(
            len(findings)
            for instance_id, findings in self.proactive.items()
            if instance_id in self.incident_starts
        )

    @property
    def false_positives(self) -> int:
        return sum(
            len(findings)
            for instance_id, findings in self.proactive.items()
            if instance_id not in self.incident_starts
        )

    @property
    def precision(self) -> float:
        total = self.true_positives + self.false_positives
        return self.true_positives / total if total else 0.0

    @property
    def recall(self) -> float:
        """Creeping instances warned about before their incident fired."""
        if not self.creeping_instances:
            return 0.0
        warned = sum(
            1
            for instance_id in self.creeping_instances
            if self.lead_time_s(instance_id) is not None
        )
        return warned / len(self.creeping_instances)

    def lead_time_s(self, instance_id: str) -> int | None:
        """First proactive warning vs incident start; None if either missing."""
        findings = self.proactive.get(instance_id)
        start = self.incident_starts.get(instance_id)
        if not findings or start is None:
            return None
        earliest = min(f.detected_at for f in findings)
        lead = start - earliest
        return lead if lead > 0 else None

    @property
    def lead_times(self) -> list[int]:
        leads = (self.lead_time_s(i) for i in sorted(self.incident_starts))
        return [lead for lead in leads if lead is not None]

    @property
    def median_lead_s(self) -> float:
        return statistics.median(self.lead_times) if self.lead_times else 0.0

    def to_dict(self) -> dict:
        return {
            "precision": self.precision,
            "recall": self.recall,
            "median_lead_s": self.median_lead_s,
            "lead_times_s": list(self.lead_times),
            "true_positives": self.true_positives,
            "false_positives": self.false_positives,
            "template_matches": self.template_matches,
            "sweeps": self.sweeps,
            "findings_total": self.findings_total,
            "incidents": {
                k: v for k, v in sorted(self.incident_starts.items())
            },
            "creeping_instances": list(self.creeping_instances),
        }


def simulate_creep_fleet(
    cfg: LeadTimeConfig,
) -> tuple[list[InstanceFeed], dict[str, tuple[str, ...]], tuple[str, ...]]:
    """Simulate the fleet; returns (feeds, exemplars, creeping ids)."""
    from repro.dbsim import DatabaseInstance
    from repro.workload import (
        WorkloadGenerator,
        build_population,
        inject_slow_creep,
    )

    feeds: list[InstanceFeed] = []
    exemplars: dict[str, tuple[str, ...]] = {}
    creeping: list[str] = []
    cores = 8
    for i in range(cfg.n_instances):
        instance_id = f"db-{i:02d}"
        rng = np.random.default_rng(cfg.seed * 613 + i)
        population = build_population(cfg.duration_s, rng, n_businesses=5)
        if i < cfg.creeping:
            inject_slow_creep(
                population,
                rng,
                creep_start=cfg.creep_start_s,
                anomaly_start=cfg.onset_s,
                anomaly_end=cfg.duration_s,
                capacity_hint_ms=cores * 1000.0,
            )
            creeping.append(instance_id)
        db = DatabaseInstance(
            schema=population.schema, cpu_cores=cores, seed=cfg.seed + i
        )
        run = db.run(WorkloadGenerator(population), duration=cfg.duration_s)
        capture = Broker()
        QueryLogCollector(capture, instance_id=instance_id).collect(run.query_log)
        MetricsCollector(capture, instance_id=instance_id).collect(run.metrics)
        feeds.append(feed_from_broker(capture, instance_id))
        exemplars[instance_id] = tuple(
            spec.exemplar or spec.template.replace("?", "1")
            for spec in population.specs.values()
        )
    return feeds, exemplars, tuple(creeping)


def _record_time(value: dict) -> int:
    """Stream-time second of one collected record (query or metric)."""
    if "second" in value:
        return int(value["second"])
    return int(value.get("timestamp", 0))


def run_leadtime(cfg: LeadTimeConfig | None = None) -> LeadTimeReport:
    """Simulate, replay chronologically, sweep on schedule, and score."""
    cfg = cfg or LeadTimeConfig()
    feeds, exemplars, creeping = simulate_creep_fleet(cfg)
    registry = MetricsRegistry()
    broker = Broker(registry=registry)
    sweeper = HealthSweeper(
        config=HealthConfig(
            sweep_window_s=cfg.sweep_window_s,
            sweep_interval_s=cfg.sweep_interval_s,
        ),
        registry=registry,
    )
    service = FleetDiagnosisService(
        broker,
        FleetConfig(
            service=ServiceConfig(
                delta_start_s=min(500, cfg.creep_start_s),
                detector_window_s=cfg.duration_s,
            ),
            workers=cfg.workers,
        ),
        registry=registry,
        sweeper=sweeper,
    )
    ordered: dict[str, tuple[list, list]] = {}
    for feed in feeds:
        service.register_instance(feed.instance_id)
        engine = service.engine(feed.instance_id)
        for statement in exemplars.get(feed.instance_id, ()):
            engine.register_statement(statement)
        ordered[feed.instance_id] = (
            sorted(feed.query_records, key=lambda kv: _record_time(kv[1])),
            sorted(feed.metric_records, key=lambda kv: _record_time(kv[1])),
        )
    # Chronological chunked replay: publish one stream-time chunk for
    # every instance, then step the service (which also runs any due
    # scheduled sweep).  Bulk-publishing everything up front would let
    # one drain step swallow the whole run and leave room for only a
    # single sweep at the very end — no lead time to measure.
    try:
        cursors = {iid: [0, 0] for iid in ordered}
        for chunk_end in range(cfg.chunk_s, cfg.duration_s + cfg.chunk_s, cfg.chunk_s):
            for instance_id, (queries, metrics) in ordered.items():
                qi, mi = cursors[instance_id]
                while qi < len(queries) and _record_time(queries[qi][1]) < chunk_end:
                    key, value = queries[qi]
                    broker.publish(
                        instance_topic(QUERY_TOPIC, instance_id), key, value
                    )
                    qi += 1
                while mi < len(metrics) and _record_time(metrics[mi][1]) < chunk_end:
                    key, value = metrics[mi]
                    broker.publish(
                        instance_topic(METRIC_TOPIC, instance_id), key, value
                    )
                    mi += 1
                cursors[instance_id] = [qi, mi]
            while service.lag > 0:
                service.step()
        service.run_until_drained()
    finally:
        service.close()

    report = LeadTimeReport(config=cfg, creeping_instances=creeping)
    report.sweeps = len(sweeper.sweeps)
    all_findings = [f for sweep in sweeper.sweeps for f in sweep.findings]
    report.findings_total = len(all_findings)
    for instance_id in service.instance_ids:
        diagnoses = service.diagnoses_for(instance_id)
        if diagnoses:
            report.incident_starts[instance_id] = min(
                d.anomaly.start for d in diagnoses
            )
    rsql_by_instance = {
        instance_id: {
            sql_id
            for d in service.diagnoses_for(instance_id)
            for sql_id in d.result.rsql_ids
        }
        for instance_id in service.instance_ids
    }
    for finding in all_findings:
        if finding.check not in PROACTIVE_CHECKS or not finding.instance_id:
            continue
        start = report.incident_starts.get(finding.instance_id)
        if start is not None and finding.detected_at >= start:
            # Warned after the pager went off: not proactive, not scored.
            continue
        report.proactive.setdefault(finding.instance_id, []).append(finding)
        if finding.sql_id and finding.sql_id in rsql_by_instance.get(
            finding.instance_id, ()
        ):
            report.template_matches += 1
    _log.info(
        "lead-time evaluation completed",
        extra={
            "precision": round(report.precision, 3),
            "recall": round(report.recall, 3),
            "median_lead_s": report.median_lead_s,
            "sweeps": report.sweeps,
        },
    )
    return report


def render_leadtime_text(report: LeadTimeReport) -> str:
    """The report as console text (``repro health`` / benchmarks)."""
    lines = [
        "=" * 60,
        "Proactive health lead-time evaluation",
        "=" * 60,
        f"instances      : {report.config.n_instances} "
        f"({len(report.creeping_instances)} with planted slow creep)",
        f"sweeps run     : {report.sweeps} "
        f"({report.findings_total} findings total)",
        f"precision      : {report.precision:.2f} "
        f"({report.true_positives} TP / {report.false_positives} FP)",
        f"recall         : {report.recall:.2f}",
        f"median lead    : {report.median_lead_s:.0f} s",
        f"template match : {report.template_matches} finding(s) named a "
        "later R-SQL",
        "",
    ]
    for instance_id in sorted(report.incident_starts):
        lead = report.lead_time_s(instance_id)
        lines.append(
            f"  {instance_id}: incident at t={report.incident_starts[instance_id]}, "
            + (f"first warning {lead} s earlier" if lead is not None
               else "no proactive warning")
        )
    lines.append("=" * 60)
    return "\n".join(lines)
