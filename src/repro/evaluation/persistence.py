"""Persistence of anomaly cases and corpora.

A :class:`~repro.evaluation.dataset.LabeledCase` round-trips through a
single ``.npz`` file: numeric arrays are stored natively, metadata
(catalog, window, labels) travels as an embedded JSON document.  This is
what lets a diagnosed production case be archived, shared, and replayed
— and it backs the command-line interface.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.collection.aggregator import TEMPLATE_METRICS, TemplateMetricStore
from repro.collection.logstore import LogStore
from repro.core.case import AnomalyCase
from repro.dbsim.monitor import InstanceMetrics
from repro.dbsim.query import SecondBatch
from repro.evaluation.dataset import LabeledCase
from repro.sqltemplate import StatementKind, TemplateCatalog
from repro.timeseries import TimeSeries
from repro.workload import AnomalyCategory, InjectedAnomaly

__all__ = ["save_case", "load_case", "save_corpus", "load_corpus"]

_FORMAT_VERSION = 1


def save_case(labeled: LabeledCase, path: str | Path) -> Path:
    """Serialise a labelled case to ``path`` (``.npz``)."""
    path = Path(path)
    case = labeled.case
    arrays: dict[str, np.ndarray] = {}

    for name, series in case.metrics.series.items():
        arrays[f"metric/{name}"] = series.values

    for sql_id in case.templates.sql_ids:
        for metric in TEMPLATE_METRICS:
            arrays[f"tpl/{sql_id}/{metric}"] = case.templates.get(sql_id, metric).values

    for sql_id in case.logs.sql_ids:
        tq = case.logs.queries_in_window(sql_id, case.ts, case.te)
        arrays[f"log/{sql_id}/arrive_ms"] = tq.arrive_ms
        arrays[f"log/{sql_id}/response_ms"] = tq.response_ms
        arrays[f"log/{sql_id}/examined_rows"] = tq.examined_rows

    for sql_id, by_day in case.history.items():
        for days, series in by_day.items():
            arrays[f"hist/{sql_id}/{days}"] = series.values

    catalog = [
        {
            "sql_id": info.sql_id,
            "template": info.template,
            "kind": info.kind.value,
            "tables": list(info.tables),
            "exemplar": info.exemplar,
        }
        for info in case.catalog
    ]
    meta = {
        "version": _FORMAT_VERSION,
        "ts": case.ts,
        "te": case.te,
        "anomaly_start": case.anomaly_start,
        "anomaly_end": case.anomaly_end,
        "history_interval": next(
            (s.interval for by_day in case.history.values() for s in by_day.values()),
            60,
        ),
        "catalog": catalog,
        "labels": {
            "r_sqls": sorted(labeled.r_sqls),
            "h_sqls": sorted(labeled.h_sqls),
            "category": labeled.category.value,
            "detected": labeled.detected,
            "seed": labeled.seed,
            "instance_id": labeled.instance_id,
        },
        "injected": {
            "category": labeled.injected.category.value,
            "r_sql_ids": labeled.injected.r_sql_ids,
            "anomaly_start": labeled.injected.anomaly_start,
            "anomaly_end": labeled.injected.anomaly_end,
            "business": labeled.injected.business,
            "table": labeled.injected.table,
            "new_sql_ids": labeled.injected.new_sql_ids,
        },
    }
    arrays["__meta__"] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **arrays)
    return path


def load_case(path: str | Path) -> LabeledCase:
    """Load a labelled case saved by :func:`save_case`."""
    with np.load(Path(path)) as data:
        meta = json.loads(bytes(data["__meta__"]).decode("utf-8"))
        if meta.get("version") != _FORMAT_VERSION:
            raise ValueError(f"unsupported case format version {meta.get('version')!r}")
        ts, te = int(meta["ts"]), int(meta["te"])

        metric_series = {}
        templates = TemplateMetricStore(start=ts, end=te, interval=1)
        logs = LogStore()
        history: dict[str, dict[int, TimeSeries]] = {}
        hist_interval = int(meta.get("history_interval", 60))

        for key in data.files:
            if key == "__meta__":
                continue
            kind, _, rest = key.partition("/")
            if kind == "metric":
                metric_series[rest] = TimeSeries(data[key], start=ts, name=rest)
            elif kind == "tpl":
                sql_id, _, metric = rest.partition("/")
                templates.put(
                    sql_id, metric, TimeSeries(data[key], start=ts, name=metric)
                )
            elif kind == "log":
                sql_id, _, field = rest.partition("/")
                if field == "arrive_ms":
                    logs.ingest_batch(
                        SecondBatch(
                            sql_id=sql_id,
                            arrive_ms=data[f"log/{sql_id}/arrive_ms"],
                            response_ms=data[f"log/{sql_id}/response_ms"],
                            examined_rows=data[f"log/{sql_id}/examined_rows"],
                        )
                    )
            elif kind == "hist":
                sql_id, _, days = rest.partition("/")
                history.setdefault(sql_id, {})[int(days)] = TimeSeries(
                    data[key], start=ts, interval=hist_interval, name="#execution"
                )

        catalog = TemplateCatalog()
        for entry in meta["catalog"]:
            catalog.register_template(
                entry["sql_id"],
                entry["template"],
                StatementKind(entry["kind"]),
                tuple(entry["tables"]),
                exemplar=entry.get("exemplar", ""),
            )

        case = AnomalyCase(
            metrics=InstanceMetrics(metric_series),
            templates=templates,
            logs=logs,
            catalog=catalog,
            anomaly_start=int(meta["anomaly_start"]),
            anomaly_end=int(meta["anomaly_end"]),
            history=history,
        )
        labels = meta["labels"]
        inj = meta["injected"]
        injected = InjectedAnomaly(
            category=AnomalyCategory(inj["category"]),
            r_sql_ids=list(inj["r_sql_ids"]),
            anomaly_start=int(inj["anomaly_start"]),
            anomaly_end=int(inj["anomaly_end"]),
            business=inj["business"],
            table=inj["table"],
            new_sql_ids=list(inj["new_sql_ids"]),
        )
        return LabeledCase(
            case=case,
            r_sqls=set(labels["r_sqls"]),
            h_sqls=set(labels["h_sqls"]),
            category=AnomalyCategory(labels["category"]),
            injected=injected,
            detected=bool(labels["detected"]),
            seed=int(labels["seed"]),
            # Absent in pre-fleet archives; those load unattributed.
            instance_id=str(labels.get("instance_id", "")),
        )


def save_corpus(corpus: list[LabeledCase], directory: str | Path) -> list[Path]:
    """Save every case of a corpus under ``directory``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths = []
    for i, labeled in enumerate(corpus):
        paths.append(save_case(labeled, directory / f"case_{i:04d}.npz"))
    return paths


def load_corpus(directory: str | Path) -> list[LabeledCase]:
    """Load every ``case_*.npz`` under ``directory`` (sorted)."""
    directory = Path(directory)
    return [load_case(p) for p in sorted(directory.glob("case_*.npz"))]
