"""Evaluation of the workload-level analyzer against planted ground truth.

:func:`repro.workload.plant_advisory_baits` registers template *groups*
whose cross-statement hazards are known by construction — a lock-order
cycle, a write-write hotspot, a prefix-subsumed missing composite index,
a cartesian-prone comma join, and an unbounded fan-out on a hot table —
each carrying an exact ``(advisor, sql_id)`` label set.  This module
scores :class:`~repro.sqlanalysis.workload.WorkloadAnalyzer` the way
:mod:`repro.evaluation.analysis` scores the per-statement linter: run it
over the *whole* population catalog (planted baits plus the healthy,
index-backed background templates) with realistic traffic weights and
count exact pairs.

* a **true positive** is a planted pair some advisory reported;
* a **false negative** is a planted pair no advisory covered;
* a **false positive** is any reported pair outside the labels — an
  advisory implicating a healthy background template costs precision.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.sqlanalysis.workload import (
    AdvisoryReport,
    TrafficWeight,
    WorkloadAnalyzer,
)
from repro.workload.catalog import Population
from repro.workload.scenarios import PlantedAdvisoryBait

__all__ = [
    "AdvisoryEvaluation",
    "advisor_for_population",
    "evaluate_advisor",
    "population_weights",
]


@dataclass
class AdvisoryEvaluation:
    """Exact-pair precision/recall of the advisor on planted labels."""

    true_positives: int = 0
    false_positives: int = 0
    false_negatives: int = 0
    #: ``advisor -> {"tp": n, "fp": n, "fn": n}`` breakdown.
    per_advisor: dict[str, dict[str, int]] = field(default_factory=dict)
    #: The offending ``(advisor, sql_id)`` pairs, for debugging.
    missed: list[tuple[str, str]] = field(default_factory=list)
    spurious: list[tuple[str, str]] = field(default_factory=list)
    templates_analyzed: int = 0
    advisories_emitted: int = 0

    @property
    def precision(self) -> float:
        denom = self.true_positives + self.false_positives
        return self.true_positives / denom if denom else 1.0

    @property
    def recall(self) -> float:
        denom = self.true_positives + self.false_negatives
        return self.true_positives / denom if denom else 1.0

    def to_dict(self) -> dict:
        return {
            "true_positives": self.true_positives,
            "false_positives": self.false_positives,
            "false_negatives": self.false_negatives,
            "precision": self.precision,
            "recall": self.recall,
            "per_advisor": {a: dict(c) for a, c in sorted(self.per_advisor.items())},
            "missed": [list(p) for p in self.missed],
            "spurious": [list(p) for p in self.spurious],
            "templates_analyzed": self.templates_analyzed,
            "advisories_emitted": self.advisories_emitted,
        }


def advisor_for_population(population: Population) -> WorkloadAnalyzer:
    """Analyzer wired with the population's schema."""
    return WorkloadAnalyzer(schema=population.schema)


def population_weights(population: Population) -> dict[str, TrafficWeight]:
    """Expected traffic weights of every template over the window.

    ``calls`` integrates the expected per-second arrival rate;
    ``rows_examined`` scales it by the spec's mean per-query rows — the
    same quantities the live path sums out of the aggregated log store.
    """
    weights: dict[str, TrafficWeight] = {}
    for sql_id, spec in population.specs.items():
        calls = float(population.expected_rate(sql_id).sum())
        weights[sql_id] = TrafficWeight(
            calls=calls,
            rows_examined=calls * float(spec.examined_rows_mean),
        )
    return weights


def evaluate_advisor(
    analyzer: WorkloadAnalyzer,
    population: Population,
    planted: Sequence[PlantedAdvisoryBait],
    report: AdvisoryReport | None = None,
) -> AdvisoryEvaluation:
    """Score ``analyzer`` over the population catalog vs planted labels.

    Pass ``report`` to score an already-computed run (the CLI does, so
    the report it prints and the evaluation it gates are one analysis).
    """
    if report is None:
        report = analyzer.analyze(
            population.specs.values(), population_weights(population)
        )
    expected: set[tuple[str, str]] = {
        (advisor, p.sql_id) for p in planted for advisor in p.advisors
    }
    predicted: set[tuple[str, str]] = set()
    for advisory in report.advisories:
        for sql_id in advisory.sql_ids:
            predicted.add((advisory.advisor, sql_id))
    evaluation = AdvisoryEvaluation(
        templates_analyzed=report.analyzed,
        advisories_emitted=len(report.advisories),
    )

    def _bucket(advisor: str) -> dict[str, int]:
        return evaluation.per_advisor.setdefault(
            advisor, {"tp": 0, "fp": 0, "fn": 0}
        )

    for pair in sorted(predicted & expected):
        evaluation.true_positives += 1
        _bucket(pair[0])["tp"] += 1
    for pair in sorted(predicted - expected):
        evaluation.false_positives += 1
        _bucket(pair[0])["fp"] += 1
        evaluation.spurious.append(pair)
    for pair in sorted(expected - predicted):
        evaluation.false_negatives += 1
        _bucket(pair[0])["fn"] += 1
        evaluation.missed.append(pair)
    return evaluation
