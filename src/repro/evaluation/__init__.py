"""Evaluation substrate: ranking metrics, the synthetic ADAC corpus,
and the harness that compares PinSQL with the Top-SQL baselines.
"""

from repro.evaluation.metrics import (
    hits_at_k,
    reciprocal_rank,
    RankingSummary,
    summarize_ranks,
)
from repro.evaluation.dataset import (
    LabeledCase,
    CorpusConfig,
    generate_case,
    generate_corpus,
)
from repro.evaluation.harness import (
    MethodReport,
    evaluate_ranker,
    evaluate_pinsql,
    top_all_report,
    evaluate_competition,
)
from repro.evaluation.analysis import (
    AnalyzerEvaluation,
    analyzer_for_population,
    evaluate_analyzer,
)
from repro.evaluation.advisories import (
    AdvisoryEvaluation,
    advisor_for_population,
    evaluate_advisor,
    population_weights,
)
from repro.evaluation.chaos import (
    ChaosHarnessConfig,
    FleetFixture,
    InstanceTruth,
    run_chaos_suite,
    run_fault_class,
    simulate_fleet,
)
from repro.evaluation.leadtime import (
    LeadTimeConfig,
    LeadTimeReport,
    render_leadtime_text,
    run_leadtime,
)

__all__ = [
    "hits_at_k",
    "reciprocal_rank",
    "RankingSummary",
    "summarize_ranks",
    "LabeledCase",
    "CorpusConfig",
    "generate_case",
    "generate_corpus",
    "MethodReport",
    "evaluate_ranker",
    "evaluate_pinsql",
    "top_all_report",
    "evaluate_competition",
    "AnalyzerEvaluation",
    "analyzer_for_population",
    "evaluate_analyzer",
    "AdvisoryEvaluation",
    "advisor_for_population",
    "evaluate_advisor",
    "population_weights",
    "ChaosHarnessConfig",
    "FleetFixture",
    "InstanceTruth",
    "run_chaos_suite",
    "run_fault_class",
    "simulate_fleet",
    "LeadTimeConfig",
    "LeadTimeReport",
    "render_leadtime_text",
    "run_leadtime",
]
