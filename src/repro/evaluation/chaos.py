"""Accuracy-under-faults harness: the chaos loop closed on ground truth.

Fault injection without a measurement is theatre.  This module runs the
same simulated fleet through the diagnosis service once per fault class
— plus a clean baseline — and scores each run against the injected
ground truth (which SQLs *are* the root causes), producing the
:class:`~repro.chaos.ResilienceScorecard` that ``repro chaos`` prints
and CI gates on.

The expensive part (simulating the database fleet) happens once per
seed: :func:`simulate_fleet` captures every instance's collected
streams as replayable :class:`~repro.fleet.sharded.InstanceFeed`
records together with the R-SQL / H-SQL labels.  Each fault run then
replays the same records through a fresh broker wrapped in a
:class:`~repro.chaos.ChaosBroker`, with a private
:class:`~repro.telemetry.MetricsRegistry` so quarantine / resync /
restart counters can be read per run without cross-talk.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.chaos import (
    FAULT_KINDS,
    FaultClassReport,
    FaultInjector,
    FaultPlan,
    ResilienceScorecard,
    single_fault_plan,
)
from repro.collection import (
    Broker,
    METRIC_TOPIC,
    MetricsCollector,
    QUERY_TOPIC,
    QueryLogCollector,
)
from repro.collection.stream import instance_topic
from repro.evaluation.dataset import _label_h_sqls
from repro.fleet import FleetConfig, FleetDiagnosisService, ServiceConfig
from repro.fleet.sharded import InstanceFeed, feed_from_broker
from repro.telemetry import MetricsRegistry, get_logger

__all__ = [
    "ChaosHarnessConfig",
    "FleetFixture",
    "InstanceTruth",
    "run_chaos_suite",
    "run_fault_class",
    "simulate_fleet",
]

_log = get_logger("chaos")


@dataclass(frozen=True)
class ChaosHarnessConfig:
    """Knobs of one chaos evaluation (fixed seed = fixed everything)."""

    seed: int = 7
    n_instances: int = 3
    #: The first ``anomalous`` instances get an injected row-lock storm.
    anomalous: int = 2
    duration_s: int = 480
    workers: int = 2
    #: Prune the broker between steps — required to exercise the
    #: stuck-offset resync path under late/backpressure faults.
    prune_broker: bool = True
    #: Fault classes to run (each as a single-fault plan at its default
    #: rate); the clean baseline always runs first.
    fault_kinds: tuple[str, ...] = FAULT_KINDS
    #: A diagnosis counts as a hit when any of its top ``top_k`` ranked
    #: SQLs is in the ground-truth set (rank jitter under faults should
    #: not read as total attribution failure).
    top_k: int = 3
    max_h_sqls: int = 10
    #: Optional per-diagnosis wall-clock budget (the stage watchdog).
    diagnosis_budget_s: float | None = None
    #: When set, each run persists incidents under ``<record_dir>/<fault>``
    #: so degraded diagnoses are visible in durable records.
    record_dir: str | None = None

    def __post_init__(self) -> None:
        if self.n_instances < 1:
            raise ValueError("n_instances must be at least 1")
        if not 0 <= self.anomalous <= self.n_instances:
            raise ValueError("anomalous must be within [0, n_instances]")
        unknown = set(self.fault_kinds) - set(FAULT_KINDS)
        if unknown:
            raise ValueError(f"unknown fault kinds: {sorted(unknown)}")


@dataclass(frozen=True)
class InstanceTruth:
    """Ground truth for one simulated instance."""

    instance_id: str
    anomalous: bool
    r_sqls: frozenset = frozenset()
    h_sqls: frozenset = frozenset()


@dataclass
class FleetFixture:
    """One simulated fleet, replayable across fault runs."""

    feeds: list[InstanceFeed]
    truths: dict[str, InstanceTruth]
    #: Exemplar statements per instance (registered into each engine's
    #: catalog so static analysis and repair see real SQL).
    exemplars: dict[str, tuple[str, ...]] = field(default_factory=dict)
    onset: int = 0
    duration_s: int = 0


def simulate_fleet(cfg: ChaosHarnessConfig) -> FleetFixture:
    """Simulate the fleet once; capture feeds and ground-truth labels.

    Mirrors the ``fleet-demo`` scenario (first ``anomalous`` instances
    get a row-lock storm at two-thirds of the run) but captures the
    collected streams into picklable feeds instead of diagnosing them,
    so every fault run replays identical input.
    """
    from repro.dbsim import DatabaseInstance
    from repro.workload import (
        AnomalyCategory,
        WorkloadGenerator,
        build_population,
        inject_anomaly,
    )

    onset = max(120, (cfg.duration_s * 2) // 3)
    feeds: list[InstanceFeed] = []
    truths: dict[str, InstanceTruth] = {}
    exemplars: dict[str, tuple[str, ...]] = {}
    for i in range(cfg.n_instances):
        instance_id = f"db-{i:02d}"
        rng = np.random.default_rng(cfg.seed * 1009 + i)
        population = build_population(cfg.duration_s, rng, n_businesses=5)
        injected = None
        if i < cfg.anomalous:
            injected = inject_anomaly(
                population, rng, AnomalyCategory.ROW_LOCK, onset, cfg.duration_s,
                target_rate=(25.0, 35.0), lock_hold_ms=(300.0, 400.0),
            )
        db = DatabaseInstance(
            schema=population.schema, cpu_cores=8, seed=cfg.seed + i
        )
        run = db.run(WorkloadGenerator(population), duration=cfg.duration_s)
        capture = Broker()
        QueryLogCollector(capture, instance_id=instance_id).collect(run.query_log)
        MetricsCollector(capture, instance_id=instance_id).collect(run.metrics)
        feeds.append(feed_from_broker(capture, instance_id))
        r_sqls: set[str] = set()
        h_sqls: set[str] = set()
        if injected is not None:
            observed = set(run.query_log.sql_ids)
            r_sqls = set(injected.r_sql_ids) & observed or set(injected.r_sql_ids)
            h_sqls = _label_h_sqls(
                run, onset, cfg.duration_s, 0, cfg.max_h_sqls
            ) or set(r_sqls)
        truths[instance_id] = InstanceTruth(
            instance_id=instance_id,
            anomalous=injected is not None,
            r_sqls=frozenset(r_sqls),
            h_sqls=frozenset(h_sqls),
        )
        exemplars[instance_id] = tuple(
            spec.exemplar or spec.template.replace("?", "1")
            for spec in population.specs.values()
        )
    return FleetFixture(
        feeds=feeds,
        truths=truths,
        exemplars=exemplars,
        onset=onset,
        duration_s=cfg.duration_s,
    )


def _counter_total(registry: MetricsRegistry, name: str) -> int:
    """Sum one counter family across every label combination."""
    snap = registry.snapshot()
    return int(sum(c["value"] for c in snap["counters"] if c["name"] == name))


def run_fault_class(
    fixture: FleetFixture,
    cfg: ChaosHarnessConfig,
    fault: str,
    plan: FaultPlan | None,
    *,
    registry: MetricsRegistry | None = None,
    diagnoses_out: list | None = None,
) -> FaultClassReport:
    """Replay the fixture through the service under one fault plan.

    ``plan=None`` runs the clean baseline.  The service runs on a fresh
    broker and a private registry; any exception escaping the drain
    loop is captured into the report (the harness itself never raises),
    because "zero uncaught exceptions" is exactly what is under test.

    Callers that need more than the scored report can pass their own
    ``registry`` (read span/counter coverage from its snapshot after
    the run) and a ``diagnoses_out`` list, which receives every
    :class:`~repro.fleet.engine.Diagnosis` the service produced — the
    fuzzer's novelty signal is built from both.
    """
    registry = MetricsRegistry() if registry is None else registry
    broker = Broker(registry=registry)
    injector = FaultInjector(plan, registry=registry) if plan is not None else None
    service_broker = injector.wrap_broker(broker) if injector else broker
    fault_hook = injector.fleet_hook() if injector else None
    recorder = None
    if cfg.record_dir is not None:
        from repro.incidents import IncidentRecorder, IncidentStore

        recorder = IncidentRecorder(
            IncidentStore(Path(cfg.record_dir) / fault), registry=registry
        )
    config = FleetConfig(
        service=ServiceConfig(
            delta_start_s=min(500, fixture.onset - 60),
            detector_window_s=fixture.duration_s,
            diagnosis_budget_s=cfg.diagnosis_budget_s,
        ),
        workers=cfg.workers,
        prune_broker=cfg.prune_broker,
    )
    service = FleetDiagnosisService(
        service_broker,
        config,
        registry=registry,
        recorder=recorder,
        fault_hook=fault_hook,
    )
    report = FaultClassReport(fault=fault)
    try:
        for feed in fixture.feeds:
            engine = service.register_instance(feed.instance_id)
            for statement in fixture.exemplars.get(feed.instance_id, ()):
                engine.register_statement(statement)
        for feed in fixture.feeds:
            for key, value in feed.query_records:
                service_broker.publish(
                    instance_topic(QUERY_TOPIC, feed.instance_id), key, value
                )
            for key, value in feed.metric_records:
                service_broker.publish(
                    instance_topic(METRIC_TOPIC, feed.instance_id), key, value
                )
        if injector is not None:
            held = service_broker.flush()
            if held:
                report.notes += (f"released {held} held/buffered messages",)
        service.run_until_drained()
        report.completed = True
    except Exception as exc:  # the whole point: this must stay empty
        report.uncaught_exceptions += 1
        report.errors += (f"{type(exc).__name__}: {exc}",)
        _log.warning(
            "chaos run raised out of the service loop",
            extra={"fault": fault, "error": type(exc).__name__},
            exc_info=True,
        )
    finally:
        service.close()

    diagnoses = service.diagnoses
    if diagnoses_out is not None:
        diagnoses_out.extend(diagnoses)
    report.diagnoses = len(diagnoses)
    report.degraded_diagnoses = sum(
        1 for d in diagnoses if d.confidence == "degraded"
    )
    report.quarantined = _counter_total(registry, "collector_quarantined_total")
    report.offset_resyncs = _counter_total(registry, "broker_offset_resyncs_total")
    report.worker_restarts = _counter_total(registry, "fleet_worker_restarts_total")
    report.faults_injected = (
        sum(injector.injected.values()) if injector is not None else 0
    )

    registered = set(service.instance_ids)
    for instance_id, truth in fixture.truths.items():
        diags = (
            service.diagnoses_for(instance_id) if instance_id in registered else []
        )
        if not truth.anomalous:
            report.spurious_diagnoses += len(diags)
            continue
        report.r_expected += 1
        report.h_expected += 1
        if diags:
            report.detected_instances += 1
        else:
            report.missed_instances += 1
        if any(
            sql_id in truth.r_sqls
            for d in diags
            for sql_id in d.result.rsql_ids[: cfg.top_k]
        ):
            report.r_hits += 1
        if any(
            sql_id in truth.h_sqls
            for d in diags
            for sql_id in d.result.hsql_ids[: cfg.top_k]
        ):
            report.h_hits += 1
    return report


def run_chaos_suite(
    cfg: ChaosHarnessConfig | None = None,
    fixture: FleetFixture | None = None,
    plan: FaultPlan | None = None,
) -> ResilienceScorecard:
    """Clean baseline plus one run per fault class; one scorecard.

    Pass a pre-built ``fixture`` to amortise the simulation over several
    suites (tests do), or a full ``plan`` to run it as a single fault
    run (named after the plan) instead of per-kind single-fault plans.
    """
    cfg = cfg or ChaosHarnessConfig()
    if fixture is None:
        _log.info(
            "simulating fleet for chaos suite",
            extra={
                "seed": cfg.seed,
                "instances": cfg.n_instances,
                "duration_s": cfg.duration_s,
            },
        )
        fixture = simulate_fleet(cfg)
    scorecard = ResilienceScorecard(
        seed=cfg.seed, instances=cfg.n_instances, duration_s=cfg.duration_s
    )
    scorecard.clean = run_fault_class(fixture, cfg, "clean", None)
    if plan is not None:
        scorecard.faults.append(run_fault_class(fixture, cfg, plan.name, plan))
        return scorecard
    for kind in cfg.fault_kinds:
        scorecard.faults.append(
            run_fault_class(
                fixture, cfg, kind, single_fault_plan(kind, seed=cfg.seed)
            )
        )
    return scorecard
