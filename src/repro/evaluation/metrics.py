"""Ranking metrics: Hits@k and MRR (paper Section VIII-A).

The ground truth of each case is a *set* of templates; "the correctly
found template is considered the first in the rank list that appears in
the annotated set", so the reciprocal rank of a case is ``1/rank`` of
the first hit (0 when nothing in the list is correct), and Hits@k is
whether a hit occurs within the top k.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = ["first_hit_rank", "reciprocal_rank", "hits_at_k", "RankingSummary", "summarize_ranks"]


def first_hit_rank(ranked: Sequence[str], truth: Iterable[str]) -> int | None:
    """1-based rank of the first correct template, or None if absent."""
    truth_set = set(truth)
    if not truth_set:
        raise ValueError("the ground-truth set must not be empty")
    for i, sql_id in enumerate(ranked, start=1):
        if sql_id in truth_set:
            return i
    return None


def reciprocal_rank(ranked: Sequence[str], truth: Iterable[str]) -> float:
    """``1/rank`` of the first hit; 0.0 when nothing correct is ranked."""
    rank = first_hit_rank(ranked, truth)
    return 0.0 if rank is None else 1.0 / rank


def hits_at_k(ranked: Sequence[str], truth: Iterable[str], k: int) -> bool:
    """Whether any of the top-``k`` ranked templates is correct."""
    if k < 1:
        raise ValueError("k must be at least 1")
    rank = first_hit_rank(ranked, truth)
    return rank is not None and rank <= k


@dataclass(frozen=True)
class RankingSummary:
    """Aggregated accuracy over a corpus of cases."""

    n_cases: int
    hits_at_1: float    # percentage
    hits_at_5: float    # percentage
    mrr: float

    def __str__(self) -> str:
        return (
            f"H@1={self.hits_at_1:.1f}%  H@5={self.hits_at_5:.1f}%  "
            f"MRR={self.mrr:.2f}  (n={self.n_cases})"
        )


def summarize_ranks(ranks: Sequence[int | None]) -> RankingSummary:
    """Aggregate per-case first-hit ranks into H@1 / H@5 / MRR."""
    if not ranks:
        raise ValueError("no ranks to summarize")
    n = len(ranks)
    h1 = sum(1 for r in ranks if r is not None and r <= 1)
    h5 = sum(1 for r in ranks if r is not None and r <= 5)
    mrr = sum(0.0 if r is None else 1.0 / r for r in ranks) / n
    return RankingSummary(
        n_cases=n,
        hits_at_1=100.0 * h1 / n,
        hits_at_5=100.0 * h5 / n,
        mrr=mrr,
    )
