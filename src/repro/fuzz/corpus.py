"""The versioned regression corpus: minimized reproducers, replayed in CI.

Every corpus entry is one JSON file under ``tests/fuzz/corpus/`` holding
a minimized :class:`ScenarioSpec` plus its provenance (base seed name,
mutation chain, fuzz seed) and expectation.  Two expectation modes:

* ``xfail == ""`` — the scenario must replay **green** (no failures).
  These entries are regression guards: either a failure that was fixed,
  or a novelty survivor pinned so the behaviour it exercises keeps
  working.
* ``xfail != ""`` — a known-unfixed failure; the note links the
  tracking item (ROADMAP/issue).  Replay asserts the failure still
  reproduces — when it stops reproducing, the pin is stale and replay
  says so.

Entry ids are content-derived (spec content key + failure kinds), so
the same discovery always lands in the same file and re-running the
fuzzer is idempotent over the corpus directory.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.fuzz.runner import ScenarioOutcome, ScenarioRunner
from repro.fuzz.shrink import MutationStep
from repro.fuzz.spec import ScenarioSpec

__all__ = [
    "CORPUS_VERSION",
    "CorpusEntry",
    "ReplayResult",
    "entry_id_for",
    "load_corpus",
    "replay_entry",
    "save_entry",
]

CORPUS_VERSION = 1


def entry_id_for(spec: ScenarioSpec, failure_kinds: Iterable[str]) -> str:
    """Deterministic id from the minimized spec and its failure classes."""
    payload = spec.content_key() + "|" + ",".join(sorted(failure_kinds))
    return "fz-" + hashlib.blake2b(payload.encode(), digest_size=6).hexdigest()


@dataclass(frozen=True)
class CorpusEntry:
    """One minimized reproducer plus provenance and expectation."""

    entry_id: str
    spec: ScenarioSpec
    #: The failure strings observed at discovery time (empty for pinned
    #: novelty survivors).
    reason: tuple[str, ...] = ()
    #: Name of the default seed spec the mutation chain started from.
    base: str = ""
    steps: tuple[MutationStep, ...] = ()
    #: Seed of the fuzz run that discovered the entry.
    fuzz_seed: int = 0
    #: Non-empty ⇒ known-unfixed: replay expects the failure to persist.
    #: The text must link the tracking item.
    xfail: str = ""

    def to_dict(self) -> dict[str, Any]:
        return {
            "version": CORPUS_VERSION,
            "entry_id": self.entry_id,
            "spec": self.spec.to_dict(),
            "reason": list(self.reason),
            "base": self.base,
            "steps": [s.to_dict() for s in self.steps],
            "fuzz_seed": self.fuzz_seed,
            "xfail": self.xfail,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CorpusEntry":
        unknown = set(data) - {
            "version", "entry_id", "spec", "reason", "base", "steps",
            "fuzz_seed", "xfail",
        }
        if unknown:
            raise ValueError(f"corpus entry: unknown keys {sorted(unknown)}")
        version = int(data.get("version", CORPUS_VERSION))
        if version != CORPUS_VERSION:
            raise ValueError(
                f"corpus entry version {version} is not supported "
                f"(this build reads version {CORPUS_VERSION})"
            )
        if "spec" not in data or not isinstance(data["spec"], Mapping):
            raise ValueError("corpus entry: missing or malformed 'spec'")
        return cls(
            entry_id=str(data.get("entry_id", "")),
            spec=ScenarioSpec.from_dict(data["spec"]),
            reason=tuple(str(r) for r in data.get("reason", ())),
            base=str(data.get("base", "")),
            steps=tuple(
                MutationStep.from_dict(s) for s in data.get("steps", ())
            ),
            fuzz_seed=int(data.get("fuzz_seed", 0)),
            xfail=str(data.get("xfail", "")),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str, *, source: str = "<string>") -> "CorpusEntry":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{source}: not valid JSON: {exc}") from exc
        if not isinstance(data, Mapping):
            raise ValueError(f"{source}: corpus entry must be a JSON object")
        try:
            return cls.from_dict(data)
        except (TypeError, ValueError) as exc:
            raise ValueError(f"{source}: {exc}") from exc


def save_entry(entry: CorpusEntry, directory: str | Path) -> Path:
    """Write the entry as ``<entry_id>.json`` under ``directory``."""
    path = Path(directory) / f"{entry.entry_id}.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(entry.to_json() + "\n", encoding="utf-8")
    return path


def load_corpus(directory: str | Path) -> tuple[CorpusEntry, ...]:
    """Load every ``*.json`` entry under ``directory``, name-sorted."""
    root = Path(directory)
    if not root.is_dir():
        return ()
    entries = []
    for path in sorted(root.glob("*.json")):
        entries.append(
            CorpusEntry.from_json(
                path.read_text(encoding="utf-8"), source=str(path)
            )
        )
    return tuple(entries)


@dataclass
class ReplayResult:
    """One corpus entry re-executed against the current build."""

    entry: CorpusEntry
    outcome: ScenarioOutcome
    #: The regression verdict (see ``note`` for the explanation).
    ok: bool
    note: str

    @property
    def failures(self) -> tuple[str, ...]:
        return self.outcome.failures


def replay_entry(entry: CorpusEntry, runner: ScenarioRunner) -> ReplayResult:
    """Re-run one entry and judge it against its expectation.

    Green entries must produce zero failures.  Pinned (``xfail``)
    entries must still fail with at least one of the originally
    recorded failure kinds; a pin that stops reproducing is reported as
    not-ok so the stale entry gets promoted to green (or deleted)
    rather than silently rotting.
    """
    outcome = runner.evaluate(entry.spec)
    if entry.xfail:
        recorded = frozenset(r.split(":", 1)[0] for r in entry.reason)
        persists = bool(outcome.failure_kinds & recorded) if recorded else bool(
            outcome.failures
        )
        if persists:
            return ReplayResult(
                entry, outcome, ok=True,
                note=f"pinned failure still reproduces ({entry.xfail})",
            )
        return ReplayResult(
            entry, outcome, ok=False,
            note="pinned failure no longer reproduces — promote this entry "
                 "to green (clear 'xfail') or delete it",
        )
    if outcome.failures:
        return ReplayResult(
            entry, outcome, ok=False,
            note="regression: previously-green scenario now fails",
        )
    return ReplayResult(entry, outcome, ok=True, note="replayed green")
