"""repro.fuzz — coverage-guided scenario fuzzing for the diagnosis stack.

The subsystem that manufactures the cases nobody hand-picked: a
deterministic mutation fuzzer over the cross product of workload
scenario specs (:class:`ScenarioSpec`) and chaos fault plans, guided by
a novelty signal read from each run's private telemetry (span/counter
coverage), diagnosis outcome combos, and resilience events.  Failing
mutants are shrunk to minimal mutation chains and persisted as a
regression corpus replayed by tier-1 tests and the ``repro fuzz`` CLI.
"""

from repro.fuzz.corpus import (
    CORPUS_VERSION,
    CorpusEntry,
    ReplayResult,
    entry_id_for,
    load_corpus,
    replay_entry,
    save_entry,
)
from repro.fuzz.fuzzer import CoverageFuzzer, FuzzConfig, FuzzReport, MutantRecord
from repro.fuzz.mutators import (
    MutatorFn,
    apply_mutator,
    get_mutator,
    mutator_names,
    register_mutator,
)
from repro.fuzz.runner import (
    RunSignature,
    ScenarioOutcome,
    ScenarioRunner,
    build_fixture,
    fixture_digest,
)
from repro.fuzz.shrink import MutationStep, apply_steps, minimize_steps
from repro.fuzz.spec import (
    CATEGORY_PARAMS,
    SPEC_VERSION,
    AnomalySpec,
    ScenarioSpec,
    default_seeds,
)

__all__ = [
    "AnomalySpec",
    "CATEGORY_PARAMS",
    "CORPUS_VERSION",
    "CorpusEntry",
    "CoverageFuzzer",
    "FuzzConfig",
    "FuzzReport",
    "MutantRecord",
    "MutationStep",
    "MutatorFn",
    "ReplayResult",
    "RunSignature",
    "SPEC_VERSION",
    "ScenarioOutcome",
    "ScenarioRunner",
    "ScenarioSpec",
    "apply_mutator",
    "apply_steps",
    "build_fixture",
    "default_seeds",
    "entry_id_for",
    "fixture_digest",
    "get_mutator",
    "load_corpus",
    "minimize_steps",
    "mutator_names",
    "register_mutator",
    "replay_entry",
    "save_entry",
]
