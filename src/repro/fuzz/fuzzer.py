"""The coverage-guided mutation loop (FuzzQLite-style, determinized).

One :class:`CoverageFuzzer` run:

1. evaluates every seed spec, establishing the baseline coverage /
   outcome / signal sets and the starting population;
2. for ``budget`` iterations, picks a population member, applies 1–k
   registered mutators (each with a child seed drawn from the run's
   single generator), and evaluates the candidate;
3. candidates that **pass** and add novelty join the population;
   candidates that **fail** are shrunk to a minimal mutation chain and
   emitted as corpus entries (written to ``corpus_dir`` when set).

Every random draw comes from one ``np.random.default_rng(config.seed)``
stream and evaluation consumes no randomness, so the same seed+budget
reproduces the identical mutant sequence, survivors and minimized
corpus — and a run with a smaller budget is a strict prefix of a larger
one.  Evaluation is injectable (``evaluate=``) so the loop's
determinism is testable without simulating fleets.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Sequence

import numpy as np

from repro.fuzz.corpus import CorpusEntry, entry_id_for, save_entry
from repro.fuzz.mutators import apply_mutator, mutator_names
from repro.fuzz.runner import ScenarioOutcome, ScenarioRunner
from repro.fuzz.shrink import MutationStep, apply_steps, minimize_steps
from repro.fuzz.spec import ScenarioSpec, default_seeds
from repro.telemetry import get_logger

__all__ = ["CoverageFuzzer", "FuzzConfig", "FuzzReport", "MutantRecord"]

_log = get_logger("fuzz")


@dataclass(frozen=True)
class FuzzConfig:
    """Knobs of one fuzz run (fixed seed = fixed everything)."""

    seed: int = 7
    #: Number of mutants to generate and evaluate (seeds come extra).
    budget: int = 8
    min_mutations: int = 1
    max_mutations: int = 3
    #: Allowed clean-vs-fault Hits@k drop before a mutant counts as a
    #: failure (matches the chaos gate's tolerance).
    tolerance: float = 0.5
    #: Shrink failing mutants to minimal chains before emitting them.
    shrink: bool = True
    #: When set, minimized entries are written here as ``<id>.json``.
    corpus_dir: str | None = None

    def __post_init__(self) -> None:
        if self.budget < 0:
            raise ValueError("budget must be >= 0")
        if not 1 <= self.min_mutations <= self.max_mutations <= 8:
            raise ValueError(
                "mutation counts must satisfy 1 <= min <= max <= 8"
            )


@dataclass
class MutantRecord:
    """One generated mutant, as reported in ``fuzz-report.json``."""

    index: int
    parent: str
    name: str
    steps: tuple[MutationStep, ...]
    new_coverage: tuple[str, ...] = ()
    new_outcomes: tuple[str, ...] = ()
    new_signals: tuple[str, ...] = ()
    failures: tuple[str, ...] = ()
    survived: bool = False
    fixture_digest: str = ""
    clean_r_accuracy: float = 0.0
    fault_r_accuracy: float | None = None

    @property
    def novel(self) -> bool:
        return bool(self.new_coverage or self.new_outcomes or self.new_signals)

    def to_dict(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "parent": self.parent,
            "name": self.name,
            "steps": [s.to_dict() for s in self.steps],
            "new_coverage": sorted(self.new_coverage),
            "new_outcomes": sorted(self.new_outcomes),
            "new_signals": sorted(self.new_signals),
            "failures": list(self.failures),
            "survived": self.survived,
            "novel": self.novel,
            "fixture_digest": self.fixture_digest,
            "clean_r_accuracy": self.clean_r_accuracy,
            "fault_r_accuracy": self.fault_r_accuracy,
        }


@dataclass
class FuzzReport:
    """The JSON artifact of one fuzz run (``--out fuzz-report.json``)."""

    seed: int
    budget: int
    seed_names: tuple[str, ...] = ()
    seed_failures: tuple[str, ...] = ()
    mutants: list[MutantRecord] = field(default_factory=list)
    entries: list[CorpusEntry] = field(default_factory=list)
    written: list[str] = field(default_factory=list)
    coverage_size: int = 0
    outcome_size: int = 0
    evaluations: int = 0

    @property
    def survivors(self) -> int:
        return sum(1 for m in self.mutants if m.survived)

    @property
    def novelty_mutants(self) -> int:
        return sum(1 for m in self.mutants if m.novel)

    @property
    def failures_found(self) -> int:
        return sum(1 for m in self.mutants if m.failures)

    def to_dict(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "budget": self.budget,
            "seeds": list(self.seed_names),
            "seed_failures": list(self.seed_failures),
            "mutants": [m.to_dict() for m in self.mutants],
            "survivors": self.survivors,
            "novelty_mutants": self.novelty_mutants,
            "failures_found": self.failures_found,
            "corpus_entries": [e.to_dict() for e in self.entries],
            "corpus_written": list(self.written),
            "coverage_size": self.coverage_size,
            "outcome_size": self.outcome_size,
            "evaluations": self.evaluations,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)


class CoverageFuzzer:
    """Deterministic mutation fuzzer over scenario × fault-plan space."""

    def __init__(
        self,
        config: FuzzConfig | None = None,
        seeds: Sequence[ScenarioSpec] | None = None,
        runner: ScenarioRunner | None = None,
        evaluate: Callable[[ScenarioSpec], ScenarioOutcome] | None = None,
    ) -> None:
        self.config = config or FuzzConfig()
        self.seeds = tuple(seeds) if seeds is not None else default_seeds()
        if not self.seeds:
            raise ValueError("fuzzer needs at least one seed spec")
        if evaluate is None:
            self._runner = runner or ScenarioRunner(tolerance=self.config.tolerance)
            self._evaluate: Callable[[ScenarioSpec], ScenarioOutcome] = (
                self._runner.evaluate
            )
        else:
            self._runner = runner
            self._evaluate = evaluate
        self._seen_coverage: set[str] = set()
        self._seen_outcomes: set[str] = set()
        self._seen_signals: set[str] = set()
        #: (spec, base-seed spec, steps from that base)
        self._population: list[
            tuple[ScenarioSpec, ScenarioSpec, tuple[MutationStep, ...]]
        ] = []
        self._emitted_ids: set[str] = set()

    # -- the loop ------------------------------------------------------

    def run(self) -> FuzzReport:
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        report = FuzzReport(
            seed=cfg.seed,
            budget=cfg.budget,
            seed_names=tuple(s.name for s in self.seeds),
        )
        seed_failures: list[str] = []
        for spec in self.seeds:
            outcome = self._evaluate(spec)
            self._absorb(outcome)
            self._population.append((spec, spec, ()))
            for failure in outcome.failures:
                seed_failures.append(f"{spec.name}: {failure}")
        report.seed_failures = tuple(seed_failures)

        names = mutator_names()
        for index in range(cfg.budget):
            parent_spec, base, parent_steps = self._population[
                int(rng.integers(0, len(self._population)))
            ]
            n_mutations = int(
                rng.integers(cfg.min_mutations, cfg.max_mutations + 1)
            )
            spec = parent_spec
            applied: list[MutationStep] = []
            for _ in range(n_mutations):
                for _attempt in range(8):
                    mutator = names[int(rng.integers(0, len(names)))]
                    child_seed = int(rng.integers(0, 2**31 - 1))
                    candidate = apply_mutator(spec, mutator, child_seed)
                    if candidate is not None and candidate != spec:
                        spec = candidate
                        applied.append(MutationStep(mutator, child_seed))
                        break
            record = MutantRecord(
                index=index,
                parent=parent_spec.name,
                name=f"m{index}",
                steps=tuple(applied),
            )
            report.mutants.append(record)
            if not applied:
                continue
            outcome = self._evaluate(spec)
            novelty = outcome.signature.new_against(
                self._seen_coverage, self._seen_outcomes, self._seen_signals
            )
            self._absorb(outcome)
            record.new_coverage = tuple(sorted(novelty.coverage))
            record.new_outcomes = tuple(sorted(novelty.outcomes))
            record.new_signals = tuple(sorted(novelty.signals))
            record.failures = outcome.failures
            record.fixture_digest = outcome.fixture_digest
            record.clean_r_accuracy = float(outcome.clean.r_accuracy)
            record.fault_r_accuracy = (
                float(outcome.fault.r_accuracy)
                if outcome.fault is not None
                else None
            )
            chain = tuple(parent_steps) + tuple(applied)
            if outcome.failures:
                self._emit_failure(report, base, chain, outcome)
            elif novelty.novel:
                record.survived = True
                self._population.append((spec, base, chain))
            _log.info(
                "fuzz mutant evaluated",
                extra={
                    "index": index,
                    "parent": record.parent,
                    "survived": record.survived,
                    "failures": len(record.failures),
                    "novel": record.novel,
                },
            )

        report.coverage_size = len(self._seen_coverage)
        report.outcome_size = len(self._seen_outcomes)
        if self._runner is not None:
            report.evaluations = self._runner.evaluations
        return report

    # -- internals -----------------------------------------------------

    def _absorb(self, outcome: ScenarioOutcome) -> None:
        self._seen_coverage |= outcome.signature.coverage
        self._seen_outcomes |= outcome.signature.outcomes
        self._seen_signals |= outcome.signature.signals

    def _emit_failure(
        self,
        report: FuzzReport,
        base: ScenarioSpec,
        chain: tuple[MutationStep, ...],
        outcome: ScenarioOutcome,
    ) -> None:
        kinds = outcome.failure_kinds
        steps = chain
        spec = outcome.spec
        if self.config.shrink and len(chain) > 1:

            def still_failing(candidate: ScenarioSpec) -> bool:
                return bool(
                    self._evaluate(candidate).failure_kinds & kinds
                )

            steps = minimize_steps(base, chain, still_failing)
            shrunk = apply_steps(base, steps)
            if shrunk is not None:
                spec = shrunk
                outcome = self._evaluate(shrunk)
        entry_id = entry_id_for(spec, outcome.failure_kinds)
        if entry_id in self._emitted_ids:
            return
        self._emitted_ids.add(entry_id)
        entry = CorpusEntry(
            entry_id=entry_id,
            spec=spec.with_name(f"{base.name}-{entry_id}"),
            reason=outcome.failures,
            base=base.name,
            steps=steps,
            fuzz_seed=self.config.seed,
        )
        report.entries.append(entry)
        if self.config.corpus_dir is not None:
            path = save_entry(entry, Path(self.config.corpus_dir))
            report.written.append(str(path))
