"""Scenario specs: the fuzzer's strict-JSON genome.

A :class:`ScenarioSpec` captures everything the workload scenario
machinery parameterizes — population shape, anomaly injection
(:func:`~repro.workload.inject_anomaly`), planted lint/advisory baits,
and an optional chaos :class:`~repro.chaos.FaultPlan` — as one frozen,
validated, JSON-round-trippable value.  Specs are the unit the mutator
registry perturbs and the regression corpus persists, so the contract
mirrors :class:`~repro.chaos.FaultPlan`: ``to_dict``/``from_dict`` are
exact inverses, unknown keys are rejected loudly, and every numeric
field is bounds-checked at construction (a mutated spec that violates
the simulator's assumptions must die here, not minutes into a run).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Any, Mapping

from repro.chaos import FaultPlan, single_fault_plan
from repro.workload import AnomalyCategory

__all__ = [
    "AnomalySpec",
    "CATEGORY_PARAMS",
    "ScenarioSpec",
    "SPEC_VERSION",
    "default_seeds",
]

#: Bump when the serialised shape changes incompatibly; ``from_dict``
#: rejects other versions so stale corpus entries fail loudly.
SPEC_VERSION = 1

_CATEGORIES: tuple[str, ...] = tuple(c.value for c in AnomalyCategory)
_BASE_CATEGORIES: tuple[str, ...] = tuple(
    c.value for c in AnomalyCategory if c is not AnomalyCategory.COMPOSITE
)

#: Per-category injector parameter whitelist: name -> value shape.
#: ``pair`` is an inclusive float range ``(lo, hi)`` the injector draws
#: from; ``int_pair`` likewise but integral; ``float`` a scalar.  The
#: shapes mirror the keyword signatures in
#: :mod:`repro.workload.scenarios` — a spec can only say things the
#: injectors can hear.
CATEGORY_PARAMS: Mapping[str, Mapping[str, str]] = {
    "business_spike": {"volume_lift": "pair", "max_factor": "float"},
    "poor_sql": {"target_rate": "pair", "examined_rows": "pair"},
    "mdl_lock": {
        "ddl_duration_ms": "pair",
        "ddl_interval_s": "int_pair",
        "copy_rate": "pair",
        "activity_bump": "pair",
    },
    "row_lock": {
        "target_rate": "pair",
        "lock_hold_ms": "pair",
        "activity_bump": "pair",
    },
    "composite": {},
}


def _require_keys(data: Mapping[str, Any], allowed: frozenset[str], what: str) -> None:
    unknown = set(data) - set(allowed)
    if unknown:
        raise ValueError(
            f"{what}: unknown keys {sorted(unknown)}; allowed: {sorted(allowed)}"
        )


@dataclass(frozen=True)
class AnomalySpec:
    """What to inject: category, window (as run fractions), parameters.

    The window is stored as fractions of the scenario duration so
    duration mutations keep the anomaly inside the run; bounds keep the
    onset late enough for the detector's history requirement
    (``onset >= 90 s`` at the minimum duration) and the window wide
    enough to register (``>= 30 s``, checked by :class:`ScenarioSpec`
    where the duration is known).
    """

    category: str = "row_lock"
    onset_frac: float = 2 / 3
    end_frac: float = 1.0
    params: Mapping[str, tuple[float, float] | float] = field(default_factory=dict)
    #: Composite only: the two sub-categories (``None`` = seeded draw).
    categories: tuple[str, str] | None = None
    #: Composite only: allow both causes on one business/table target.
    same_target: bool = False

    def __post_init__(self) -> None:
        if self.category not in _CATEGORIES:
            raise ValueError(
                f"unknown anomaly category {self.category!r}; "
                f"known: {', '.join(_CATEGORIES)}"
            )
        if not 0.5 <= self.onset_frac <= 0.9:
            raise ValueError("onset_frac must be within [0.5, 0.9]")
        if not self.onset_frac < self.end_frac <= 1.0:
            raise ValueError("end_frac must be within (onset_frac, 1.0]")
        allowed = CATEGORY_PARAMS[self.category]
        normalized: dict[str, tuple[float, float] | float] = {}
        for name in sorted(self.params):
            value = self.params[name]
            if name not in allowed:
                raise ValueError(
                    f"parameter {name!r} is not valid for category "
                    f"{self.category!r}; allowed: {sorted(allowed) or 'none'}"
                )
            if allowed[name] == "float":
                if isinstance(value, (list, tuple)):
                    raise ValueError(f"parameter {name!r} must be a scalar")
                scalar = float(value)
                if not scalar > 0:
                    raise ValueError(f"parameter {name!r} must be positive")
                normalized[name] = scalar
            else:
                if not isinstance(value, (list, tuple)) or len(value) != 2:
                    raise ValueError(f"parameter {name!r} must be a (lo, hi) pair")
                pair = (float(value[0]), float(value[1]))
                if not 0 < pair[0] <= pair[1]:
                    raise ValueError(
                        f"parameter {name!r} must satisfy 0 < lo <= hi"
                    )
                normalized[name] = pair
        object.__setattr__(self, "params", normalized)
        if self.categories is not None:
            if self.category != "composite":
                raise ValueError("categories is only valid for composite anomalies")
            cats = tuple(self.categories)
            if len(cats) != 2 or any(c not in _BASE_CATEGORIES for c in cats):
                raise ValueError(
                    f"categories must be two of {', '.join(_BASE_CATEGORIES)}"
                )
            if cats[0] == cats[1] and not self.same_target:
                raise ValueError(
                    "repeated composite categories require same_target=True"
                )
            object.__setattr__(self, "categories", cats)
        if self.same_target and self.category != "composite":
            raise ValueError("same_target is only valid for composite anomalies")

    def window(self, duration_s: int) -> tuple[int, int]:
        """The concrete ``(start, end)`` seconds for a given duration."""
        start = int(round(duration_s * self.onset_frac))
        end = min(int(round(duration_s * self.end_frac)), duration_s)
        return start, end

    def injector_kwargs(self) -> dict[str, Any]:
        """Keyword arguments for :func:`~repro.workload.inject_anomaly`."""
        kwargs: dict[str, Any] = {}
        shapes = CATEGORY_PARAMS[self.category]
        for name, value in self.params.items():
            if shapes[name] == "int_pair" and isinstance(value, tuple):
                kwargs[name] = (int(value[0]), int(value[1]))
            else:
                kwargs[name] = value
        if self.category == "composite":
            if self.categories is not None:
                kwargs["categories"] = tuple(
                    AnomalyCategory(c) for c in self.categories
                )
            if self.same_target:
                kwargs["allow_same_target"] = True
        return kwargs

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {
            "category": self.category,
            "onset_frac": self.onset_frac,
            "end_frac": self.end_frac,
            "params": {
                k: (list(v) if isinstance(v, tuple) else v)
                for k, v in self.params.items()
            },
        }
        if self.categories is not None:
            data["categories"] = list(self.categories)
        if self.same_target:
            data["same_target"] = True
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "AnomalySpec":
        _require_keys(
            data,
            frozenset(
                {"category", "onset_frac", "end_frac", "params", "categories",
                 "same_target"}
            ),
            "anomaly spec",
        )
        raw_params = data.get("params", {})
        if not isinstance(raw_params, Mapping):
            raise ValueError("anomaly spec: 'params' must be an object")
        params: dict[str, tuple[float, float] | float] = {}
        for name, value in raw_params.items():
            params[name] = tuple(value) if isinstance(value, list) else value
        categories = data.get("categories")
        return cls(
            category=str(data.get("category", "row_lock")),
            onset_frac=float(data.get("onset_frac", 2 / 3)),
            end_frac=float(data.get("end_frac", 1.0)),
            params=params,
            categories=tuple(categories) if categories is not None else None,
            same_target=bool(data.get("same_target", False)),
        )


@dataclass(frozen=True)
class ScenarioSpec:
    """One fully-specified fleet scenario, optionally under faults.

    Bounds keep every mutant affordable (the fuzzer evaluates dozens per
    run) and inside the harness's assumptions: the anomaly onset must
    leave the detector at least 30 s of ramp-up history
    (``delta_start_s = min(500, onset - 60)`` in the chaos harness) and
    the window must be >= 30 s wide to register on 1 Hz metrics.
    """

    name: str = "scenario"
    seed: int = 7
    n_instances: int = 2
    anomalous: int = 1
    duration_s: int = 240
    n_businesses: int = 4
    templates_per_business: tuple[int, int] = (4, 9)
    anomaly: AnomalySpec = field(default_factory=AnomalySpec)
    #: Plant labelled anti-pattern templates (static-analyzer baits).
    antipatterns: bool = False
    #: Plant labelled workload-advisory bait templates.
    advisory_baits: bool = False
    faults: FaultPlan | None = None
    workers: int = 1
    top_k: int = 3

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("name must be non-empty")
        if not 0 <= self.seed < 2**31:
            raise ValueError("seed must be within [0, 2**31)")
        if not 1 <= self.n_instances <= 6:
            raise ValueError("n_instances must be within [1, 6]")
        if not 0 <= self.anomalous <= self.n_instances:
            raise ValueError("anomalous must be within [0, n_instances]")
        if not 180 <= self.duration_s <= 1200:
            raise ValueError("duration_s must be within [180, 1200]")
        if not 2 <= self.n_businesses <= 10:
            raise ValueError("n_businesses must be within [2, 10]")
        lo, hi = (int(v) for v in self.templates_per_business)
        if not 2 <= lo <= hi <= 20:
            raise ValueError("templates_per_business must satisfy 2 <= lo <= hi <= 20")
        object.__setattr__(self, "templates_per_business", (lo, hi))
        if not 1 <= self.workers <= 4:
            raise ValueError("workers must be within [1, 4]")
        if not 1 <= self.top_k <= 10:
            raise ValueError("top_k must be within [1, 10]")
        start, end = self.anomaly.window(self.duration_s)
        if start < 90:
            raise ValueError(
                f"anomaly onset {start}s leaves no detector history "
                "(onset_frac * duration_s must be >= 90)"
            )
        if end - start < 30:
            raise ValueError(
                f"anomaly window {end - start}s is too narrow (need >= 30 s)"
            )

    def to_dict(self) -> dict[str, Any]:
        return {
            "version": SPEC_VERSION,
            "name": self.name,
            "seed": self.seed,
            "n_instances": self.n_instances,
            "anomalous": self.anomalous,
            "duration_s": self.duration_s,
            "n_businesses": self.n_businesses,
            "templates_per_business": list(self.templates_per_business),
            "anomaly": self.anomaly.to_dict(),
            "antipatterns": self.antipatterns,
            "advisory_baits": self.advisory_baits,
            "faults": self.faults.to_dict() if self.faults is not None else None,
            "workers": self.workers,
            "top_k": self.top_k,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        _require_keys(
            data,
            frozenset(
                {"version", "name", "seed", "n_instances", "anomalous",
                 "duration_s", "n_businesses", "templates_per_business",
                 "anomaly", "antipatterns", "advisory_baits", "faults",
                 "workers", "top_k"}
            ),
            "scenario spec",
        )
        version = int(data.get("version", SPEC_VERSION))
        if version != SPEC_VERSION:
            raise ValueError(
                f"scenario spec version {version} is not supported "
                f"(this build reads version {SPEC_VERSION})"
            )
        raw_faults = data.get("faults")
        faults: FaultPlan | None = None
        if raw_faults is not None:
            # Route through the strict parser so unknown fault kinds and
            # missing keys fail with the same contextual errors the CLI
            # gives for standalone plan files.
            faults = FaultPlan.from_json(
                json.dumps(raw_faults), source="scenario spec faults"
            )
        raw_anomaly = data.get("anomaly", {})
        if not isinstance(raw_anomaly, Mapping):
            raise ValueError("scenario spec: 'anomaly' must be an object")
        tpb = data.get("templates_per_business", (4, 9))
        return cls(
            name=str(data.get("name", "scenario")),
            seed=int(data.get("seed", 7)),
            n_instances=int(data.get("n_instances", 2)),
            anomalous=int(data.get("anomalous", 1)),
            duration_s=int(data.get("duration_s", 240)),
            n_businesses=int(data.get("n_businesses", 4)),
            templates_per_business=(int(tpb[0]), int(tpb[1])),
            anomaly=AnomalySpec.from_dict(raw_anomaly),
            antipatterns=bool(data.get("antipatterns", False)),
            advisory_baits=bool(data.get("advisory_baits", False)),
            faults=faults,
            workers=int(data.get("workers", 1)),
            top_k=int(data.get("top_k", 3)),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str, *, source: str = "<string>") -> "ScenarioSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{source}: not valid JSON: {exc}") from exc
        if not isinstance(data, Mapping):
            raise ValueError(
                f"{source}: scenario spec must be a JSON object, "
                f"got {type(data).__name__}"
            )
        try:
            return cls.from_dict(data)
        except (TypeError, ValueError) as exc:
            raise ValueError(f"{source}: {exc}") from exc

    def content_key(self) -> str:
        """Canonical JSON of everything but the display name.

        Two specs with the same key simulate and diagnose identically,
        so the fuzzer's caches, dedup sets and corpus entry ids all key
        on this.
        """
        data = self.to_dict()
        del data["name"]
        return json.dumps(data, sort_keys=True, separators=(",", ":"))

    def workload_key(self) -> str:
        """Canonical JSON of the fields the simulated fixture depends on.

        Fault-plan/worker/top-k mutations leave the key unchanged, so
        the runner reuses the (expensive) simulated fixture and clean
        baseline across such mutants.
        """
        data = self.to_dict()
        for irrelevant in ("name", "faults", "workers", "top_k"):
            del data[irrelevant]
        return json.dumps(data, sort_keys=True, separators=(",", ":"))

    def with_name(self, name: str) -> "ScenarioSpec":
        return replace(self, name=name)


def default_seeds() -> tuple[ScenarioSpec, ...]:
    """The seed population of a fuzz run: one spec per broad regime.

    A hard row-lock storm (the fleet-demo scenario, known to diagnose
    cleanly), a business spike replayed under message drop (fault path
    live from the first generation), and a poor-SQL rollout with planted
    advisory baits (advisory/static-analysis outcome combos reachable).
    """
    return (
        ScenarioSpec(
            name="rowlock-storm",
            seed=7,
            anomaly=AnomalySpec(
                category="row_lock",
                params={
                    "target_rate": (20.0, 30.0),
                    "lock_hold_ms": (300.0, 400.0),
                },
            ),
        ),
        ScenarioSpec(
            name="spike-under-drop",
            seed=11,
            anomaly=AnomalySpec(category="business_spike"),
            faults=single_fault_plan("drop", seed=11),
        ),
        ScenarioSpec(
            name="poorsql-baited",
            seed=3,
            anomaly=AnomalySpec(category="poor_sql"),
            advisory_baits=True,
        ),
    )
