"""Evaluate one :class:`ScenarioSpec` through the accuracy-under-faults
harness and distil the fuzzer's novelty/failure signals from the run.

The expensive pieces are cached per spec content: the simulated fleet
fixture (and its digest) by :meth:`ScenarioSpec.workload_key`, so
fault-plan-only mutants replay a cached fleet, and whole outcomes by
:meth:`ScenarioSpec.content_key`, so shrinking re-visits candidates for
free.

Signals, per the coverage taxonomy in DESIGN §12:

* **coverage** — diagnosis code paths actually executed, read from the
  run's private :class:`~repro.telemetry.MetricsRegistry`: every span
  name observed (``span:*``) and every counter family touched
  (``counter:*``).
* **outcomes** — distinct :meth:`Diagnosis.outcome_key` combos of
  (verdict category, rules fired, advisory passes, confidence stamp).
* **signals** — resilience events worth keeping a scenario for even
  when accuracy holds (quarantine growth, offset resyncs, restarts,
  degraded confidence, missed detection).
* **failures** — what the fuzzer shrinks and checks into the corpus:
  uncaught exceptions, spurious diagnoses on healthy instances, a
  detected instance whose top-k misses every true R-SQL, and
  fault-run accuracy collapsing beyond tolerance below the same
  scenario's clean baseline.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Iterable

import numpy as np

from repro.evaluation.chaos import (
    ChaosHarnessConfig,
    FleetFixture,
    InstanceTruth,
    run_fault_class,
)
from repro.fuzz.spec import ScenarioSpec
from repro.telemetry import MetricsRegistry, observed_span_names

__all__ = [
    "RunSignature",
    "ScenarioOutcome",
    "ScenarioRunner",
    "build_fixture",
    "fixture_digest",
]


@dataclass(frozen=True)
class RunSignature:
    """The novelty-relevant footprint of one scenario evaluation."""

    coverage: frozenset[str]
    outcomes: frozenset[str]
    signals: frozenset[str]

    def new_against(
        self,
        coverage: frozenset[str] | set[str],
        outcomes: frozenset[str] | set[str],
        signals: frozenset[str] | set[str],
    ) -> "RunSignature":
        """The parts of this signature unseen by the given global sets."""
        return RunSignature(
            coverage=frozenset(self.coverage - set(coverage)),
            outcomes=frozenset(self.outcomes - set(outcomes)),
            signals=frozenset(self.signals - set(signals)),
        )

    @property
    def novel(self) -> bool:
        return bool(self.coverage or self.outcomes or self.signals)


@dataclass
class ScenarioOutcome:
    """Everything the fuzzer needs to judge one evaluated spec."""

    spec: ScenarioSpec
    clean: Any  # FaultClassReport (untyped module)
    fault: Any | None
    signature: RunSignature
    failures: tuple[str, ...]
    fixture_digest: str

    @property
    def failure_kinds(self) -> frozenset[str]:
        """The class of each failure (the text before the colon)."""
        return frozenset(f.split(":", 1)[0] for f in self.failures)


def build_fixture(spec: ScenarioSpec) -> FleetFixture:
    """Simulate the spec's fleet once into a replayable fixture.

    Mirrors :func:`repro.evaluation.chaos.simulate_fleet` (same
    per-instance seeding discipline ``seed * 1009 + i``) but with every
    knob driven by the spec: anomaly category/window/params, population
    shape, planted baits.  Bait planting happens *after* anomaly
    injection so toggling a bait flag never shifts the injector's rng
    draws — the anomaly stays bit-identical across that mutation.
    """
    from repro.collection import Broker, MetricsCollector, QueryLogCollector
    from repro.dbsim import DatabaseInstance
    from repro.evaluation.dataset import _label_h_sqls
    from repro.fleet.sharded import feed_from_broker
    from repro.workload import (
        AnomalyCategory,
        WorkloadGenerator,
        build_population,
        inject_anomaly,
        plant_antipatterns,
    )
    from repro.workload.scenarios import plant_advisory_baits

    onset, end = spec.anomaly.window(spec.duration_s)
    feeds: list[Any] = []  # InstanceFeed — its module is lazy-imported
    truths: dict[str, InstanceTruth] = {}
    exemplars: dict[str, tuple[str, ...]] = {}
    for i in range(spec.n_instances):
        instance_id = f"db-{i:02d}"
        rng = np.random.default_rng(spec.seed * 1009 + i)
        population = build_population(
            spec.duration_s,
            rng,
            n_businesses=spec.n_businesses,
            templates_per_business=spec.templates_per_business,
        )
        injected = None
        if i < spec.anomalous:
            injected = inject_anomaly(
                population,
                rng,
                AnomalyCategory(spec.anomaly.category),
                onset,
                end,
                **spec.anomaly.injector_kwargs(),
            )
        if spec.antipatterns:
            plant_antipatterns(population, rng)
        if spec.advisory_baits:
            plant_advisory_baits(population, rng)
        db = DatabaseInstance(
            schema=population.schema, cpu_cores=8, seed=spec.seed + i
        )
        run = db.run(WorkloadGenerator(population), duration=spec.duration_s)
        capture = Broker()
        QueryLogCollector(capture, instance_id=instance_id).collect(run.query_log)
        MetricsCollector(capture, instance_id=instance_id).collect(run.metrics)
        feeds.append(feed_from_broker(capture, instance_id))
        r_sqls: set[str] = set()
        h_sqls: set[str] = set()
        if injected is not None:
            observed = set(run.query_log.sql_ids)
            r_sqls = set(injected.r_sql_ids) & observed or set(injected.r_sql_ids)
            h_sqls = _label_h_sqls(run, onset, end, 0, 10) or set(r_sqls)
        truths[instance_id] = InstanceTruth(
            instance_id=instance_id,
            anomalous=injected is not None,
            r_sqls=frozenset(r_sqls),
            h_sqls=frozenset(h_sqls),
        )
        exemplars[instance_id] = tuple(
            s.exemplar or s.template.replace("?", "1")
            for s in population.specs.values()
        )
    return FleetFixture(
        feeds=feeds,
        truths=truths,
        exemplars=exemplars,
        onset=onset,
        duration_s=spec.duration_s,
    )


def _digest_value(h: "hashlib._Hash", value: Any) -> None:
    if isinstance(value, dict):
        for key in sorted(value):
            h.update(str(key).encode())
            _digest_value(h, value[key])
    elif isinstance(value, np.ndarray):
        h.update(str(value.dtype).encode())
        h.update(np.ascontiguousarray(value).tobytes())
    elif isinstance(value, (list, tuple)):
        h.update(b"[")
        for item in value:
            _digest_value(h, item)
        h.update(b"]")
    else:
        h.update(repr(value).encode())


def fixture_digest(fixture: FleetFixture) -> str:
    """Content hash of a fixture: feeds, truths, window.

    Bit-identical simulation ⇒ identical digest, so determinism tests
    compare digests instead of deep structures, and the fuzz report can
    pin which concrete fleet a mutant ran against.
    """
    h = hashlib.blake2b(digest_size=16)
    h.update(f"{fixture.onset}|{fixture.duration_s}".encode())
    for feed in fixture.feeds:
        h.update(feed.instance_id.encode())
        for records in (feed.query_records, feed.metric_records):
            for key, value in records:
                h.update(str(key).encode())
                _digest_value(h, value)
    for instance_id in sorted(fixture.truths):
        truth = fixture.truths[instance_id]
        h.update(instance_id.encode())
        h.update(str(truth.anomalous).encode())
        h.update(",".join(sorted(truth.r_sqls)).encode())
        h.update(",".join(sorted(truth.h_sqls)).encode())
    return h.hexdigest()


def _coverage_keys(registry: MetricsRegistry) -> set[str]:
    """Code-path coverage from a private registry snapshot."""
    snap = registry.snapshot()
    keys = {
        f"counter:{c['name']}" for c in snap["counters"] if c["value"] > 0
    }
    keys.update(f"span:{name}" for name in observed_span_names(registry))
    return keys


def _outcome_keys(diagnoses: Iterable[Any]) -> set[str]:
    return {d.outcome_key() for d in diagnoses}


class ScenarioRunner:
    """Evaluates specs through the chaos harness, with content caches."""

    def __init__(self, tolerance: float = 0.5) -> None:
        if not 0.0 <= tolerance <= 1.0:
            raise ValueError("tolerance must be within [0, 1]")
        self.tolerance = tolerance
        self._fixtures: dict[str, tuple[FleetFixture, str]] = {}
        self._outcomes: dict[str, ScenarioOutcome] = {}
        #: Evaluations that actually ran (cache misses) — the fuzz
        #: report exposes this so budget accounting is honest.
        self.evaluations = 0

    def fixture_for(self, spec: ScenarioSpec) -> tuple[FleetFixture, str]:
        key = spec.workload_key()
        cached = self._fixtures.get(key)
        if cached is None:
            fixture = build_fixture(spec)
            cached = (fixture, fixture_digest(fixture))
            self._fixtures[key] = cached
        return cached

    def evaluate(self, spec: ScenarioSpec) -> ScenarioOutcome:
        key = spec.content_key()
        cached = self._outcomes.get(key)
        if cached is not None:
            return cached
        outcome = self._evaluate(spec)
        self._outcomes[key] = outcome
        self.evaluations += 1
        return outcome

    def _evaluate(self, spec: ScenarioSpec) -> ScenarioOutcome:
        fixture, digest = self.fixture_for(spec)
        cfg = ChaosHarnessConfig(
            seed=spec.seed,
            n_instances=spec.n_instances,
            anomalous=spec.anomalous,
            duration_s=spec.duration_s,
            workers=spec.workers,
            top_k=spec.top_k,
        )
        clean_registry = MetricsRegistry()
        clean_diagnoses: list[Any] = []
        clean = run_fault_class(
            fixture, cfg, "clean", None,
            registry=clean_registry, diagnoses_out=clean_diagnoses,
        )
        coverage = _coverage_keys(clean_registry)
        outcomes = _outcome_keys(clean_diagnoses)
        fault = None
        if spec.faults is not None:
            fault_registry = MetricsRegistry()
            fault_diagnoses: list[Any] = []
            fault = run_fault_class(
                fixture, cfg, spec.faults.name, spec.faults,
                registry=fault_registry, diagnoses_out=fault_diagnoses,
            )
            coverage |= _coverage_keys(fault_registry)
            outcomes |= _outcome_keys(fault_diagnoses)

        signals: set[str] = set()
        if clean.missed_instances > 0:
            signals.add("signal:detection-miss")
        if clean.degraded_diagnoses > 0:
            signals.add("signal:degraded-clean")
        if fault is not None:
            if fault.quarantined > clean.quarantined:
                signals.add("signal:quarantine-growth")
            if fault.offset_resyncs > 0:
                signals.add("signal:offset-resyncs")
            if fault.worker_restarts > 0:
                signals.add("signal:worker-restarts")
            if fault.degraded_diagnoses > 0:
                signals.add("signal:degraded-fault")
            if fault.missed_instances > clean.missed_instances:
                signals.add("signal:fault-detection-miss")

        failures: list[str] = []
        if clean.uncaught_exceptions:
            detail = clean.errors[0] if clean.errors else "?"
            failures.append(f"uncaught-clean: {detail}")
        if fault is not None and fault.uncaught_exceptions:
            detail = fault.errors[0] if fault.errors else "?"
            failures.append(f"uncaught-fault: {detail}")
        if clean.spurious_diagnoses > 0:
            failures.append(
                f"spurious-diagnosis: {clean.spurious_diagnoses} diagnoses "
                "on healthy instances in the clean run"
            )
        if clean.detected_instances > 0 and clean.r_hits < clean.detected_instances:
            failures.append(
                f"wrong-attribution: only {clean.r_hits}/"
                f"{clean.detected_instances} detected instances ranked a "
                f"true R-SQL in their top-{spec.top_k} (clean run)"
            )
        if (
            fault is not None
            and fault.r_expected > 0
            and fault.r_accuracy < clean.r_accuracy - self.tolerance
        ):
            failures.append(
                f"fault-degraded: r_accuracy {fault.r_accuracy:.2f} under "
                f"'{spec.faults.name if spec.faults else fault.fault}' vs "
                f"{clean.r_accuracy:.2f} clean (tolerance {self.tolerance})"
            )

        return ScenarioOutcome(
            spec=spec,
            clean=clean,
            fault=fault,
            signature=RunSignature(
                coverage=frozenset(coverage),
                outcomes=frozenset(outcomes),
                signals=frozenset(signals),
            ),
            failures=tuple(failures),
            fixture_digest=digest,
        )
