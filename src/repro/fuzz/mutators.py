"""The pluggable mutator registry: one small perturbation per mutator.

Mirrors the repo's other extension points (``register_rule``,
``register_check``, ``register_pass``): a mutator is a named pure
function ``(spec, rng) -> spec | None`` registered via
:func:`register_mutator`.  ``None`` means "not applicable to this spec"
(e.g. ``fault-rate`` on a spec with no fault plan) and the fuzzer draws
again; a returned spec must be valid — :func:`apply_mutator` treats a
:class:`ValueError` from the spec constructor as inapplicability, so a
mutator may push against a bound without pre-checking it.

Determinism contract: a mutator's output is a function of ``(spec,
rng-seed)`` only.  The fuzzer derives one child seed per application,
so the same fuzz seed replays the identical mutation chain — which is
what lets a corpus entry re-derive its spec from ``(base, steps)``.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Mapping

import numpy as np

from repro.chaos import FAULT_KINDS, FaultPlan, FaultSpec
from repro.chaos.plan import _DEFAULT_RATES
from repro.fuzz.spec import CATEGORY_PARAMS, AnomalySpec, ScenarioSpec

__all__ = [
    "MutatorFn",
    "apply_mutator",
    "get_mutator",
    "mutator_names",
    "register_mutator",
]

MutatorFn = Callable[[ScenarioSpec, np.random.Generator], "ScenarioSpec | None"]

_REGISTRY: dict[str, MutatorFn] = {}


def register_mutator(name: str) -> Callable[[MutatorFn], MutatorFn]:
    """Class-decorator-style registration, keyed by mutator name."""

    def decorate(fn: MutatorFn) -> MutatorFn:
        if name in _REGISTRY:
            raise ValueError(f"duplicate mutator name {name!r}")
        _REGISTRY[name] = fn
        return fn

    return decorate


def mutator_names() -> tuple[str, ...]:
    """Registered mutator names, sorted (the fuzzer indexes into this)."""
    return tuple(sorted(_REGISTRY))


def get_mutator(name: str) -> MutatorFn:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown mutator {name!r}; registered: {', '.join(mutator_names())}"
        ) from None


def apply_mutator(
    spec: ScenarioSpec, name: str, seed: int
) -> ScenarioSpec | None:
    """Apply one registered mutator with its own child generator.

    Returns ``None`` when the mutator declares itself inapplicable or
    the mutated values land outside the spec's validated bounds.
    """
    fn = get_mutator(name)
    rng = np.random.default_rng(seed)
    try:
        return fn(spec, rng)
    except ValueError:
        return None


# ----------------------------------------------------------------------
# Built-in mutators.  Taxonomy (DESIGN §12): anomaly category /
# magnitude / timing / overlap, population shape, planted baits, fault
# plan add / rate / params / topic / remove, and the workload seed.
# ----------------------------------------------------------------------

#: Injector defaults, used as the starting point when a magnitude
#: mutation touches a parameter the spec does not pin yet (mirrors the
#: keyword defaults in :mod:`repro.workload.scenarios`).
_PARAM_DEFAULTS: Mapping[str, Mapping[str, tuple[float, float] | float]] = {
    "business_spike": {"volume_lift": (1.8, 3.5), "max_factor": 30.0},
    "poor_sql": {"target_rate": (6.0, 18.0), "examined_rows": (4e5, 2e6)},
    "mdl_lock": {
        "ddl_duration_ms": (8_000.0, 20_000.0),
        "ddl_interval_s": (25.0, 50.0),
        "copy_rate": (3.0, 9.0),
        "activity_bump": (1.15, 1.4),
    },
    "row_lock": {
        "target_rate": (6.0, 16.0),
        "lock_hold_ms": (250.0, 450.0),
        "activity_bump": (1.15, 1.4),
    },
    "composite": {},
}

_BASE_CATEGORIES: tuple[str, ...] = (
    "business_spike", "poor_sql", "mdl_lock", "row_lock",
)


def _choice(rng: np.random.Generator, items: tuple[str, ...]) -> str:
    return items[int(rng.integers(0, len(items)))]


@register_mutator("anomaly-category")
def _mutate_category(
    spec: ScenarioSpec, rng: np.random.Generator
) -> ScenarioSpec | None:
    """Switch the anomaly to a different category (params reset: the
    whitelists differ across categories)."""
    if spec.anomalous == 0:
        return None
    options = tuple(
        c for c in (*_BASE_CATEGORIES, "composite") if c != spec.anomaly.category
    )
    category = _choice(rng, options)
    anomaly = AnomalySpec(
        category=category,
        onset_frac=spec.anomaly.onset_frac,
        end_frac=spec.anomaly.end_frac,
    )
    return replace(spec, anomaly=anomaly)


@register_mutator("anomaly-magnitude")
def _mutate_magnitude(
    spec: ScenarioSpec, rng: np.random.Generator
) -> ScenarioSpec | None:
    """Scale one injector parameter by 0.3–3x (seeded from the injector
    default when the spec does not pin it yet)."""
    if spec.anomalous == 0:
        return None
    allowed = sorted(CATEGORY_PARAMS[spec.anomaly.category])
    if not allowed:
        return None
    name = _choice(rng, tuple(allowed))
    factor = float(rng.uniform(0.3, 3.0))
    defaults = _PARAM_DEFAULTS[spec.anomaly.category]
    current = spec.anomaly.params.get(name, defaults[name])
    value: tuple[float, float] | float
    if isinstance(current, tuple):
        value = (current[0] * factor, current[1] * factor)
        if CATEGORY_PARAMS[spec.anomaly.category][name] == "int_pair":
            value = (max(1.0, value[0]), max(2.0, value[1]))
    else:
        value = current * factor
    params = dict(spec.anomaly.params)
    params[name] = value
    return replace(spec, anomaly=replace(spec.anomaly, params=params))


@register_mutator("anomaly-timing")
def _mutate_timing(
    spec: ScenarioSpec, rng: np.random.Generator
) -> ScenarioSpec | None:
    """Jitter the anomaly window inside the validated fraction bounds."""
    if spec.anomalous == 0:
        return None
    onset = float(
        np.clip(spec.anomaly.onset_frac + rng.uniform(-0.15, 0.15), 0.5, 0.8)
    )
    end = float(
        np.clip(spec.anomaly.end_frac + rng.uniform(-0.1, 0.1), onset + 0.2, 1.0)
    )
    anomaly = replace(spec.anomaly, onset_frac=onset, end_frac=end)
    return replace(spec, anomaly=anomaly)


@register_mutator("anomaly-overlap")
def _mutate_overlap(
    spec: ScenarioSpec, rng: np.random.Generator
) -> ScenarioSpec | None:
    """Escalate to a composite incident (or re-draw its shape): two
    causes in overlapping windows, sometimes stacked on one target."""
    if spec.anomalous == 0:
        return None
    same_target = bool(rng.integers(0, 2))
    first = _choice(rng, ("mdl_lock", "row_lock"))
    second = _choice(rng, _BASE_CATEGORIES)
    if second == first and not same_target:
        second = "business_spike" if first != "business_spike" else "poor_sql"
    anomaly = AnomalySpec(
        category="composite",
        onset_frac=spec.anomaly.onset_frac,
        end_frac=spec.anomaly.end_frac,
        categories=(first, second),
        same_target=same_target,
    )
    return replace(spec, anomaly=anomaly)


@register_mutator("population-shape")
def _mutate_population(
    spec: ScenarioSpec, rng: np.random.Generator
) -> ScenarioSpec | None:
    """Perturb one axis of the fleet/population shape."""
    axis = _choice(
        rng, ("businesses", "templates", "duration", "instances", "anomalous")
    )
    if axis == "businesses":
        delta = 1 if rng.integers(0, 2) else -1
        return replace(
            spec, n_businesses=int(np.clip(spec.n_businesses + delta, 2, 8))
        )
    if axis == "templates":
        lo, hi = spec.templates_per_business
        lo = int(np.clip(lo + int(rng.integers(-2, 3)), 2, 12))
        hi = int(np.clip(hi + int(rng.integers(-2, 3)), lo, 16))
        return replace(spec, templates_per_business=(lo, hi))
    if axis == "duration":
        return replace(
            spec, duration_s=int(_choice(rng, ("180", "240", "300", "360")))
        )
    if axis == "instances":
        n = int(np.clip(spec.n_instances + (1 if rng.integers(0, 2) else -1), 1, 4))
        return replace(spec, n_instances=n, anomalous=min(spec.anomalous, n))
    anomalous = int(rng.integers(0, spec.n_instances + 1))
    if anomalous == spec.anomalous:
        return None
    return replace(spec, anomalous=anomalous)


@register_mutator("plant-baits")
def _mutate_baits(
    spec: ScenarioSpec, rng: np.random.Generator
) -> ScenarioSpec | None:
    """Toggle planted anti-pattern or advisory-bait templates."""
    if rng.integers(0, 2):
        return replace(spec, antipatterns=not spec.antipatterns)
    return replace(spec, advisory_baits=not spec.advisory_baits)


@register_mutator("fault-add")
def _mutate_fault_add(
    spec: ScenarioSpec, rng: np.random.Generator
) -> ScenarioSpec | None:
    """Arm one more fault class (creates the plan when absent)."""
    kind = _choice(rng, FAULT_KINDS)
    plan = spec.faults
    if plan is not None and any(s.kind == kind for s in plan.specs):
        return None
    new = FaultSpec(kind=kind, rate=_DEFAULT_RATES.get(kind, 0.1))
    if plan is None:
        plan = FaultPlan(name="fuzzed", seed=spec.seed, specs=(new,))
    else:
        plan = FaultPlan(name=plan.name, seed=plan.seed, specs=(*plan.specs, new))
    return replace(spec, faults=plan)


def _pick_fault(
    spec: ScenarioSpec, rng: np.random.Generator
) -> tuple[FaultPlan, int] | None:
    if spec.faults is None or not spec.faults.specs:
        return None
    return spec.faults, int(rng.integers(0, len(spec.faults.specs)))


@register_mutator("fault-rate")
def _mutate_fault_rate(
    spec: ScenarioSpec, rng: np.random.Generator
) -> ScenarioSpec | None:
    """Scale one armed fault's injection rate by 0.5–2x."""
    picked = _pick_fault(spec, rng)
    if picked is None:
        return None
    plan, i = picked
    old = plan.specs[i]
    rate = float(np.clip(old.rate * rng.uniform(0.5, 2.0), 0.01, 0.9))
    specs = list(plan.specs)
    specs[i] = FaultSpec(kind=old.kind, rate=rate, topic=old.topic, params=old.params)
    return replace(
        spec, faults=FaultPlan(name=plan.name, seed=plan.seed, specs=tuple(specs))
    )


@register_mutator("fault-params")
def _mutate_fault_params(
    spec: ScenarioSpec, rng: np.random.Generator
) -> ScenarioSpec | None:
    """Scale one parameter of one armed fault (window sizes, skew, …)."""
    picked = _pick_fault(spec, rng)
    if picked is None:
        return None
    plan, i = picked
    old = plan.specs[i]
    names = sorted(old.params)
    if not names:
        return None
    name = _choice(rng, tuple(names))
    value = max(1.0, float(old.params[name]) * float(rng.uniform(0.5, 2.0)))
    params = dict(old.params)
    params[name] = round(value, 3)
    specs = list(plan.specs)
    specs[i] = FaultSpec(kind=old.kind, rate=old.rate, topic=old.topic, params=params)
    return replace(
        spec, faults=FaultPlan(name=plan.name, seed=plan.seed, specs=tuple(specs))
    )


@register_mutator("fault-topic")
def _mutate_fault_topic(
    spec: ScenarioSpec, rng: np.random.Generator
) -> ScenarioSpec | None:
    """Refocus one armed fault onto a topic family (logs vs metrics)."""
    picked = _pick_fault(spec, rng)
    if picked is None:
        return None
    plan, i = picked
    old = plan.specs[i]
    topic = _choice(rng, ("*", "query_logs*", "performance_metrics*"))
    if topic == old.topic:
        return None
    specs = list(plan.specs)
    specs[i] = FaultSpec(kind=old.kind, rate=old.rate, topic=topic, params=old.params)
    return replace(
        spec, faults=FaultPlan(name=plan.name, seed=plan.seed, specs=tuple(specs))
    )


@register_mutator("fault-remove")
def _mutate_fault_remove(
    spec: ScenarioSpec, rng: np.random.Generator
) -> ScenarioSpec | None:
    """Disarm one fault class (drops the plan when it empties)."""
    picked = _pick_fault(spec, rng)
    if picked is None:
        return None
    plan, i = picked
    specs = tuple(s for j, s in enumerate(plan.specs) if j != i)
    if not specs:
        return replace(spec, faults=None)
    return replace(
        spec, faults=FaultPlan(name=plan.name, seed=plan.seed, specs=specs)
    )


@register_mutator("workload-seed")
def _mutate_seed(
    spec: ScenarioSpec, rng: np.random.Generator
) -> ScenarioSpec | None:
    """Reroll the workload seed: same shape, different concrete fleet."""
    seed = int(rng.integers(0, 2**20))
    if seed == spec.seed:
        return None
    return replace(spec, seed=seed)
