"""Greedy delta-debugging over mutation chains.

A failing mutant is described by its base seed spec plus the ordered
:class:`MutationStep` chain that produced it.  Minimization removes
steps one at a time, keeping a removal whenever the re-derived spec
still exhibits the original failure kinds — the classic ddmin inner
loop, sufficient here because chains are short (a handful of steps) and
every candidate evaluation is cached by spec content.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping

from repro.fuzz.mutators import apply_mutator
from repro.fuzz.spec import ScenarioSpec

__all__ = ["MutationStep", "apply_steps", "minimize_steps"]


@dataclass(frozen=True)
class MutationStep:
    """One recorded mutator application (name + its child seed)."""

    mutator: str
    seed: int

    def to_dict(self) -> dict[str, Any]:
        return {"mutator": self.mutator, "seed": self.seed}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "MutationStep":
        unknown = set(data) - {"mutator", "seed"}
        if unknown:
            raise ValueError(f"mutation step: unknown keys {sorted(unknown)}")
        if "mutator" not in data:
            raise ValueError("mutation step: missing required key 'mutator'")
        return cls(mutator=str(data["mutator"]), seed=int(data.get("seed", 0)))


def apply_steps(
    base: ScenarioSpec, steps: Iterable[MutationStep]
) -> ScenarioSpec | None:
    """Re-derive a spec by replaying a mutation chain from its base.

    Returns ``None`` as soon as any step is inapplicable to the
    intermediate spec (step subsets built during shrinking routinely
    are — e.g. a ``fault-rate`` step whose ``fault-add`` was removed).
    """
    spec = base
    for step in steps:
        mutated = apply_mutator(spec, step.mutator, step.seed)
        if mutated is None:
            return None
        spec = mutated
    return spec


def minimize_steps(
    base: ScenarioSpec,
    steps: tuple[MutationStep, ...],
    still_failing: Callable[[ScenarioSpec], bool],
) -> tuple[MutationStep, ...]:
    """Greedily drop steps while the re-derived spec keeps failing.

    ``still_failing`` judges a candidate spec (typically: evaluates it
    and checks that the original failure kinds persist).  The loop
    restarts after every successful removal so later steps get another
    chance once their prerequisites are gone; it terminates because the
    chain only ever shrinks.  The result is 1-minimal: removing any
    single remaining step either breaks replay or loses the failure.
    """
    current = list(steps)
    changed = True
    while changed and len(current) > 1:
        changed = False
        for i in range(len(current)):
            trial = current[:i] + current[i + 1:]
            spec = apply_steps(base, trial)
            if spec is not None and still_failing(spec):
                current = trial
                changed = True
                break
    return tuple(current)
