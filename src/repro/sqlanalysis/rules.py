"""Anti-pattern rules: a pluggable registry producing explainable findings.

Each rule inspects one :class:`~repro.sqlanalysis.ir.StatementIR` plus an
:class:`AnalysisContext` (schema/index metadata, execution specs, hot
tables) and yields :class:`Finding`\\ s — severity-scored, with a
message that explains the mechanism and a concrete suggestion.  Rules
register themselves with :func:`register_rule`; the analyzer runs
whatever the registry holds, so downstream code (and tests) can add
site-specific checks without touching this module.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass, field, replace
from typing import ClassVar, Iterable, Iterator, Mapping

from repro.dbsim.spec import TemplateSpec
from repro.dbsim.tables import Schema
from repro.sqltemplate.fingerprint import StatementKind
from repro.sqlanalysis.ir import StatementIR

__all__ = [
    "Severity",
    "Finding",
    "AnalysisContext",
    "LintRule",
    "register_rule",
    "default_rules",
    "rule_ids",
]


class Severity(enum.IntEnum):
    """Finding severity; integer order supports threshold comparisons."""

    INFO = 10
    WARNING = 20
    HIGH = 30
    CRITICAL = 40

    @property
    def label(self) -> str:
        return self.name.lower()

    @classmethod
    def from_label(cls, label: str) -> "Severity":
        return cls[label.upper()]


@dataclass(frozen=True)
class Finding:
    """One explainable anti-pattern finding on one template."""

    rule: str
    severity: Severity
    message: str
    sql_id: str = ""
    table: str = ""
    column: str = ""
    suggestion: str = ""

    def to_dict(self) -> dict[str, str]:
        """Strict-JSON form (severity as its label string)."""
        return {
            "rule": self.rule,
            "severity": self.severity.label,
            "message": self.message,
            "sql_id": self.sql_id,
            "table": self.table,
            "column": self.column,
            "suggestion": self.suggestion,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "Finding":
        return cls(
            rule=str(data["rule"]),
            severity=Severity.from_label(str(data.get("severity", "info"))),
            message=str(data.get("message", "")),
            sql_id=str(data.get("sql_id", "")),
            table=str(data.get("table", "")),
            column=str(data.get("column", "")),
            suggestion=str(data.get("suggestion", "")),
        )


@dataclass(frozen=True)
class AnalysisContext:
    """What the rules know beyond the statement text."""

    schema: Schema | None = None
    specs: Mapping[str, TemplateSpec] = field(default_factory=dict)
    hot_tables: frozenset[str] = frozenset()
    large_table_rows: int = 100_000
    in_list_threshold: int = 16
    or_chain_threshold: int = 8

    def table_rows(self, name: str) -> int | None:
        if self.schema is None:
            return None
        table = self.schema.get(name)
        return None if table is None else table.row_count

    def is_indexed(self, table: str, column: str) -> bool | None:
        """True/False when the schema knows the table, None when it doesn't."""
        if self.schema is None:
            return None
        tab = self.schema.get(table)
        return None if tab is None else tab.has_index(column)


class LintRule(abc.ABC):
    """Base class for anti-pattern checks."""

    rule_id: ClassVar[str] = ""
    description: ClassVar[str] = ""

    @abc.abstractmethod
    def check(self, ir: StatementIR, ctx: AnalysisContext) -> Iterator[Finding]:
        """Yield findings for one statement (``sql_id`` filled by the analyzer)."""

    def _primary_table(self, ir: StatementIR) -> str:
        names = ir.table_names
        return names[0] if names else ""


_REGISTRY: dict[str, LintRule] = {}


def register_rule(cls: type[LintRule]) -> type[LintRule]:
    """Class decorator adding a rule (by ``rule_id``) to the registry."""
    if not cls.rule_id:
        raise ValueError(f"{cls.__name__} must define a rule_id")
    _REGISTRY[cls.rule_id] = cls()
    return cls


def default_rules() -> tuple[LintRule, ...]:
    """The registered rules, in registration order."""
    return tuple(_REGISTRY.values())


def rule_ids() -> tuple[str, ...]:
    return tuple(_REGISTRY)


def _scale_severity(base: Severity, rows: int | None, large: int) -> Severity:
    """Bump severity one step on large tables, two steps past 10x large."""
    if rows is None:
        return base
    bumped = int(base)
    if rows >= large:
        bumped += 10
    if rows >= 10 * large:
        bumped += 10
    return Severity(min(bumped, int(Severity.CRITICAL)))


_ANALYZABLE = (StatementKind.SELECT, StatementKind.UPDATE, StatementKind.DELETE)


@register_rule
class SelectStarRule(LintRule):
    rule_id = "select-star"
    description = "SELECT * fetches every column, defeating covering indexes."

    def check(self, ir: StatementIR, ctx: AnalysisContext) -> Iterator[Finding]:
        if ir.kind is StatementKind.SELECT and ir.select_star:
            table = self._primary_table(ir)
            yield Finding(
                rule=self.rule_id,
                severity=Severity.INFO,
                table=table,
                message="SELECT * returns every column; the row payload grows "
                        "with schema changes and no covering index can serve it",
                suggestion="select only the columns the caller reads",
            )


@register_rule
class NonSargableFunctionRule(LintRule):
    rule_id = "non-sargable-function"
    description = "A function or arithmetic on a filtered column disables index use."

    def check(self, ir: StatementIR, ctx: AnalysisContext) -> Iterator[Finding]:
        if ir.kind not in _ANALYZABLE:
            return
        table = self._primary_table(ir)
        rows = ctx.table_rows(table) if table else None
        for pred in ir.where_predicates:
            if pred.column is None or not (pred.func or pred.arith):
                continue
            wrapped = f"{pred.func}({pred.column.name})" if pred.func else (
                f"arithmetic on {pred.column.name}"
            )
            yield Finding(
                rule=self.rule_id,
                severity=_scale_severity(Severity.WARNING, rows, ctx.large_table_rows),
                table=table,
                column=pred.column.name,
                message=f"predicate applies {wrapped}; the optimizer cannot use "
                        f"an index on {pred.column.name} and must evaluate every row",
                suggestion="rewrite the predicate so the bare column is compared "
                           "(move the function to the constant side)",
            )


@register_rule
class LeadingWildcardLikeRule(LintRule):
    rule_id = "leading-wildcard-like"
    description = "LIKE '%...' cannot seek an index; it scans the whole column."

    def check(self, ir: StatementIR, ctx: AnalysisContext) -> Iterator[Finding]:
        if ir.kind not in _ANALYZABLE:
            return
        table = self._primary_table(ir)
        rows = ctx.table_rows(table) if table else None
        for pred in ir.where_predicates:
            if pred.op != "like" or pred.column is None:
                continue
            body = pred.value_text[1:] if pred.value_text[:1] in "'\"" else pred.value_text
            if not body.startswith("%"):
                continue
            yield Finding(
                rule=self.rule_id,
                severity=_scale_severity(Severity.WARNING, rows, ctx.large_table_rows),
                table=table,
                column=pred.column.name,
                message=f"LIKE pattern on {pred.column.name} starts with '%'; a "
                        "B-tree index cannot seek it, forcing a full scan",
                suggestion="anchor the pattern (prefix search) or use a "
                           "full-text/trigram index",
            )


@register_rule
class ImplicitConversionRule(LintRule):
    rule_id = "implicit-conversion"
    description = "Comparing a column to a quoted number converts every row."

    _OPS = ("=", "<=>", "<", ">", "<=", ">=", "!=", "<>", "between")

    def check(self, ir: StatementIR, ctx: AnalysisContext) -> Iterator[Finding]:
        if ir.kind not in _ANALYZABLE:
            return
        table = self._primary_table(ir)
        for pred in ir.where_predicates:
            if pred.column is None or pred.func or pred.op not in self._OPS:
                continue
            if pred.value_kind != "string":
                continue
            body = pred.value_text.strip("'\"")
            if not body or not body.replace(".", "", 1).isdigit():
                continue
            yield Finding(
                rule=self.rule_id,
                severity=Severity.WARNING,
                table=table,
                column=pred.column.name,
                message=f"{pred.column.name} is compared to quoted number "
                        f"{pred.value_text}; if the column is numeric the engine "
                        "casts per row and skips the index",
                suggestion="pass the literal with the column's native type",
            )


@register_rule
class MissingIndexRule(LintRule):
    rule_id = "missing-index"
    description = "No sargable filter column is indexed on a large table."

    def check(self, ir: StatementIR, ctx: AnalysisContext) -> Iterator[Finding]:
        if ir.kind not in _ANALYZABLE or not ir.has_where or ctx.schema is None:
            return
        names = ir.table_names
        if len(set(names)) != 1:
            return  # multi-table attribution is the join rules' job
        table = names[0]
        rows = ctx.table_rows(table)
        if rows is None or rows < ctx.large_table_rows:
            return
        candidates = [
            p.column.name
            for p in ir.where_predicates
            if p.sargable and p.column is not None and p.value_kind != "column"
        ]
        if not candidates:
            return
        if any(ctx.is_indexed(table, c) for c in candidates):
            return
        column = candidates[0]
        yield Finding(
            rule=self.rule_id,
            severity=_scale_severity(Severity.WARNING, rows, ctx.large_table_rows),
            table=table,
            column=column,
            message=f"none of the filter columns ({', '.join(sorted(set(candidates)))}) "
                    f"is indexed on {table} ({rows:,} rows); every query scans the table",
            suggestion=f"CREATE INDEX idx_{table}_{column} ON {table} ({column})",
        )


@register_rule
class UnboundedScanRule(LintRule):
    rule_id = "unbounded-scan"
    description = "A statement with no WHERE (and no LIMIT) touches the whole table."

    def check(self, ir: StatementIR, ctx: AnalysisContext) -> Iterator[Finding]:
        if ir.kind not in _ANALYZABLE or ir.has_where or not ir.table_names:
            return
        if ir.kind is StatementKind.SELECT and ir.has_limit:
            return
        table = self._primary_table(ir)
        rows = ctx.table_rows(table)
        verb = "reads" if ir.kind is StatementKind.SELECT else "rewrites"
        size = f" ({rows:,} rows)" if rows is not None else ""
        yield Finding(
            rule=self.rule_id,
            severity=_scale_severity(Severity.WARNING, rows, ctx.large_table_rows),
            table=table,
            message=f"no WHERE clause: the statement {verb} all of {table}{size}",
            suggestion="add a filter, or chunk the job with a key range + LIMIT",
        )


@register_rule
class CartesianJoinRule(LintRule):
    rule_id = "cartesian-join"
    description = "Multiple tables with no join condition multiply row counts."

    def check(self, ir: StatementIR, ctx: AnalysisContext) -> Iterator[Finding]:
        if ir.kind is not StatementKind.SELECT:
            return
        names = ir.table_names
        if len(names) < 2 or ir.join_constraints > 0:
            return
        # A WHERE-clause equality across two different tables still
        # constrains the join (old-style comma join syntax).
        for pred in ir.predicates:
            if pred.column is None or pred.value_column is None:
                continue
            left = ir.resolve(pred.column.qualifier) if pred.column.qualifier else ""
            right = (
                ir.resolve(pred.value_column.qualifier)
                if pred.value_column.qualifier
                else ""
            )
            if left and right and left != right:
                return
        sizes = [ctx.table_rows(t) for t in names]
        known = [s for s in sizes if s is not None]
        product = ""
        if len(known) == len(sizes) and known:
            total = 1
            for s in known:
                total *= max(s, 1)
            product = f" (~{total:.1e} row combinations)"
        yield Finding(
            rule=self.rule_id,
            severity=Severity.HIGH,
            table=names[0],
            message=f"{len(names)} tables ({', '.join(names)}) are joined with no "
                    f"ON/USING clause or cross-table equality{product}",
            suggestion="add the join condition, or split the query",
        )


@register_rule
class LargeInListRule(LintRule):
    rule_id = "large-in-list"
    description = "Huge IN lists blow up parse/plan cost and range fan-out."

    def check(self, ir: StatementIR, ctx: AnalysisContext) -> Iterator[Finding]:
        if ir.kind not in _ANALYZABLE:
            return
        table = self._primary_table(ir)
        for pred in ir.where_predicates:
            if pred.op != "in" or pred.in_list_size < ctx.in_list_threshold:
                continue
            column = pred.column.name if pred.column is not None else ""
            yield Finding(
                rule=self.rule_id,
                severity=Severity.WARNING,
                table=table,
                column=column,
                message=f"IN list with {pred.in_list_size} values "
                        f"(threshold {ctx.in_list_threshold}); the optimizer fans "
                        "out one range per value and the statement cache churns",
                suggestion="batch through a temporary table or join against the "
                           "id source instead",
            )


@register_rule
class LongOrChainRule(LintRule):
    rule_id = "long-or-chain"
    description = "Long OR chains defeat range optimization."

    def check(self, ir: StatementIR, ctx: AnalysisContext) -> Iterator[Finding]:
        if ir.kind not in _ANALYZABLE:
            return
        if ir.or_count < ctx.or_chain_threshold:
            return
        yield Finding(
            rule=self.rule_id,
            severity=Severity.WARNING,
            table=self._primary_table(ir),
            message=f"predicate chains {ir.or_count + 1} alternatives with OR "
                    f"(threshold {ctx.or_chain_threshold}); the optimizer often "
                    "abandons index merging and scans",
            suggestion="rewrite as IN (...) over one column, or UNION ALL of "
                       "indexed branches",
        )


@register_rule
class LockFootprintRule(LintRule):
    rule_id = "lock-footprint"
    description = "Locking reads and unbounded writes hold locks others wait on."

    def check(self, ir: StatementIR, ctx: AnalysisContext) -> Iterator[Finding]:
        table = self._primary_table(ir)
        hot = table in ctx.hot_tables
        if ir.kind is StatementKind.SELECT and ir.locking:
            clause = "FOR UPDATE" if ir.for_update else "LOCK IN SHARE MODE"
            yield Finding(
                rule=self.rule_id,
                severity=Severity.HIGH if hot else Severity.WARNING,
                table=table,
                message=f"locking read ({clause}) on "
                        f"{'hot table ' if hot else ''}{table}: every matched row "
                        "is locked until commit, blocking concurrent writers",
                suggestion="read without the locking clause, or keep the "
                           "transaction that needs it short",
            )
        if ir.kind in (StatementKind.UPDATE, StatementKind.DELETE) and not ir.has_where:
            yield Finding(
                rule=self.rule_id,
                severity=Severity.CRITICAL if hot else Severity.HIGH,
                table=table,
                message=f"{ir.kind.value.upper()} without WHERE locks every row "
                        f"of {'hot table ' if hot else ''}{table} in one transaction",
                suggestion="chunk the write by key range so locks stay small",
            )


def attach_sql_id(findings: Iterable[Finding], sql_id: str) -> list[Finding]:
    """Return findings with ``sql_id`` filled in (frozen-safe)."""
    return [
        replace(f, sql_id=sql_id) if sql_id and not f.sql_id else f
        for f in findings
    ]
