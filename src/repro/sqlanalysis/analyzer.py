"""The analyzer facade: statements/templates/catalogs in, findings out.

``SqlAnalyzer`` is the one entry point the rest of the stack uses.  It
parses, runs the rule registry, attaches ``sql_id``\\ s, sorts by
severity and **never raises** — a broken rule or unparseable statement
degrades to an empty finding list plus a telemetry counter, because the
analyzer rides inside the diagnosis loop where an exception would cost
an incident.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.dbsim.spec import TemplateSpec
from repro.dbsim.tables import Schema
from repro.sqlanalysis.ir import parse_statement
from repro.sqlanalysis.rules import (
    AnalysisContext,
    Finding,
    LintRule,
    attach_sql_id,
    default_rules,
)
from repro.sqltemplate.catalog import TemplateInfo
from repro.telemetry import MetricsRegistry, get_logger, get_registry

__all__ = ["AnalyzerConfig", "SqlAnalyzer"]

_log = get_logger("sqlanalysis")


@dataclass(frozen=True)
class AnalyzerConfig:
    """Tunable thresholds for the rule context."""

    large_table_rows: int = 100_000
    in_list_threshold: int = 16
    or_chain_threshold: int = 8
    max_cache_entries: int = 4096


class SqlAnalyzer:
    """Runs the anti-pattern rules over statements, templates or catalogs.

    Parameters
    ----------
    schema:
        Index/row-count metadata for the missing-index and scan rules;
        ``None`` degrades those rules gracefully.
    specs:
        ``sql_id -> TemplateSpec`` execution profiles (exemplar source).
    hot_tables:
        Tables carrying the most traffic; lock findings on them score
        higher.
    rules:
        Override the rule set (defaults to the full registry).
    """

    def __init__(
        self,
        schema: Schema | None = None,
        specs: Mapping[str, TemplateSpec] | None = None,
        hot_tables: Iterable[str] = (),
        config: AnalyzerConfig | None = None,
        rules: Iterable[LintRule] | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.config = config or AnalyzerConfig()
        self.context = AnalysisContext(
            schema=schema,
            specs=dict(specs or {}),
            hot_tables=frozenset(hot_tables),
            large_table_rows=self.config.large_table_rows,
            in_list_threshold=self.config.in_list_threshold,
            or_chain_threshold=self.config.or_chain_threshold,
        )
        self.rules: tuple[LintRule, ...] = (
            tuple(rules) if rules is not None else default_rules()
        )
        self.registry = registry or get_registry()
        self._cache: dict[tuple[str, str], tuple[Finding, ...]] = {}

    # ------------------------------------------------------------------
    def analyze_statement(self, sql: str, sql_id: str = "") -> list[Finding]:
        """All findings for one statement, most severe first; never raises."""
        key = (sql_id, sql)
        cached = self._cache.get(key)
        if cached is not None:
            return list(cached)
        findings: list[Finding] = []
        try:
            ir = parse_statement(sql)
            for rule in self.rules:
                try:
                    findings.extend(rule.check(ir, self.context))
                except Exception as exc:
                    self._count_failure(rule.rule_id, exc)
            findings = attach_sql_id(findings, sql_id)
            findings.sort(key=lambda f: (-int(f.severity), f.rule))
        except Exception as exc:  # pragma: no cover - parse_statement is total
            self._count_failure("parse", exc)
            findings = []
        for f in findings:
            self.registry.counter(
                "sqlanalysis_findings_total",
                help="Anti-pattern findings emitted, by rule.",
                rule=f.rule,
            ).inc()
        if len(self._cache) >= self.config.max_cache_entries:
            self._cache.clear()
        self._cache[key] = tuple(findings)
        return findings

    def analyze_template(self, info: TemplateInfo) -> list[Finding]:
        """Findings for a catalog entry (prefers the raw exemplar)."""
        text = info.exemplar or info.template
        return self.analyze_statement(text, sql_id=info.sql_id)

    def analyze_spec(self, spec: TemplateSpec) -> list[Finding]:
        """Findings for a workload execution spec."""
        text = spec.exemplar or spec.template
        return self.analyze_statement(text, sql_id=spec.sql_id)

    def analyze_catalog(
        self, templates: Iterable[TemplateInfo]
    ) -> dict[str, list[Finding]]:
        """``sql_id -> findings`` over a catalog; clean templates omitted."""
        out: dict[str, list[Finding]] = {}
        for info in templates:
            findings = self.analyze_template(info)
            if findings:
                out[info.sql_id] = findings
        return out

    # ------------------------------------------------------------------
    def _count_failure(self, where: str, exc: Exception) -> None:
        self.registry.counter(
            "sqlanalysis_failures_total",
            help="Analyzer internal failures swallowed (rule or parse).",
            where=where,
        ).inc()
        _log.warning(
            "sqlanalysis failure swallowed",
            extra={"where": where, "error": type(exc).__name__},
        )
