"""Lint report assembly and rendering for the ``repro lint`` CLI.

A :class:`LintReport` collects per-template findings over a catalog,
renders as console text or strict JSON, and decides the process exit
code: :func:`lint_failed` returns True when any finding reaches the
``--fail-on`` severity threshold (``never`` disables failing), which is
the CI contract documented in the README.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.sqlanalysis.rules import Finding, Severity

__all__ = ["LintEntry", "LintReport", "lint_failed"]


@dataclass
class LintEntry:
    """Findings for one template."""

    sql_id: str
    statement: str
    findings: list[Finding] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {
            "sql_id": self.sql_id,
            "statement": self.statement,
            "findings": [f.to_dict() for f in self.findings],
        }


@dataclass
class LintReport:
    """The result of linting one catalog."""

    entries: list[LintEntry] = field(default_factory=list)
    analyzed: int = 0
    #: Optional precision/recall block (present when anti-patterns were
    #: planted with ground-truth labels).
    evaluation: dict[str, Any] | None = None

    @property
    def findings(self) -> list[Finding]:
        return [f for entry in self.entries for f in entry.findings]

    @property
    def max_severity(self) -> Severity | None:
        found = self.findings
        return max((f.severity for f in found), default=None)

    def count_by_severity(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for f in self.findings:
            counts[f.severity.label] = counts.get(f.severity.label, 0) + 1
        return counts

    def count_by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for f in self.findings:
            counts[f.rule] = counts.get(f.rule, 0) + 1
        return counts

    def to_dict(self) -> dict[str, Any]:
        """Strict-JSON form (CI artifact format)."""
        data: dict[str, Any] = {
            "analyzed": self.analyzed,
            "templates_with_findings": len(self.entries),
            "counts_by_severity": self.count_by_severity(),
            "counts_by_rule": self.count_by_rule(),
            "entries": [e.to_dict() for e in self.entries],
        }
        if self.evaluation is not None:
            data["evaluation"] = self.evaluation
        return data

    def render_text(self, width: int = 100) -> str:
        """Console rendering, worst templates first."""
        lines = [
            f"Analyzed {self.analyzed} templates: "
            f"{len(self.entries)} with findings "
            f"({sum(len(e.findings) for e in self.entries)} findings total)",
        ]
        by_sev = self.count_by_severity()
        if by_sev:
            lines.append(
                "  "
                + "  ".join(
                    f"{sev.label}={by_sev[sev.label]}"
                    for sev in sorted(Severity, reverse=True)
                    if sev.label in by_sev
                )
            )
        ordered = sorted(
            self.entries,
            key=lambda e: -max((int(f.severity) for f in e.findings), default=0),
        )
        for entry in ordered:
            stmt = entry.statement
            if len(stmt) > width:
                stmt = stmt[: width - 1] + "…"
            lines.append("")
            lines.append(f"[{entry.sql_id}] {stmt}")
            for f in entry.findings:
                where = f" ({f.table}.{f.column})" if f.table and f.column else (
                    f" ({f.table})" if f.table else ""
                )
                lines.append(f"  {f.severity.label:<8} {f.rule}{where}: {f.message}")
                if f.suggestion:
                    lines.append(f"           fix: {f.suggestion}")
        if self.evaluation is not None:
            lines.append("")
            lines.append(
                "Planted anti-pattern evaluation: "
                f"precision={self.evaluation.get('precision', 0.0):.3f} "
                f"recall={self.evaluation.get('recall', 0.0):.3f}"
            )
        return "\n".join(lines)


def lint_failed(report: LintReport, fail_on: str) -> bool:
    """The exit-code contract: True when a finding meets the threshold.

    ``fail_on`` is a severity label (``info``/``warning``/``high``/
    ``critical``) or ``never``.
    """
    if fail_on == "never":
        return False
    threshold = Severity.from_label(fail_on)
    worst = report.max_severity
    return worst is not None and worst >= threshold
