"""Statement IR: a small structural model lifted from the token stream.

This is deliberately *not* a SQL grammar.  The lexer already splits a
statement into keywords, identifiers, literals and punctuation; the
parser here segments the token stream into clauses at parenthesis depth
zero and extracts exactly the structure the anti-pattern rules need —
select-list shape, table references and join constraints, a flat
predicate list, ORDER/GROUP/LIMIT presence and locking clauses.  It is
total: any input (including garbage) yields a :class:`StatementIR`, with
``parse_ok=False`` marking the rare internal failure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sqltemplate.fingerprint import (
    StatementKind,
    classify_statement,
    extract_tables,
)
from repro.sqltemplate.tokenizer import Token, TokenKind, tokenize

__all__ = [
    "ColumnRef",
    "Predicate",
    "TableRef",
    "StatementIR",
    "parse_statement",
]


@dataclass(frozen=True)
class ColumnRef:
    """A column reference, optionally qualified by a table name or alias."""

    name: str
    qualifier: str = ""


@dataclass(frozen=True)
class Predicate:
    """One flattened condition from a WHERE or ON clause.

    ``op`` is the comparison operator (``=``, ``<``, ``like``, ``in``,
    ``between``, ``is`` ...).  ``func``/``arith`` describe what wraps the
    column side — the sargability killers.  ``value_kind`` classifies the
    other side; ``value_text`` keeps the literal for rules that need its
    shape (quoted numbers, leading wildcards).
    """

    column: ColumnRef | None
    op: str
    negated: bool = False
    func: str = ""
    arith: bool = False
    value_kind: str = ""
    value_text: str = ""
    value_column: ColumnRef | None = None
    in_list_size: int = 0
    from_join: bool = False

    @property
    def sargable(self) -> bool:
        """Could an index serve this condition as written?

        Equality/range conditions on a bare column are sargable; a
        function or arithmetic on the column, a leading-wildcard LIKE,
        or a quoted-number comparison (implicit conversion) are not.
        """
        if self.column is None or self.func or self.arith:
            return False
        if self.op not in ("=", "<=>", "<", ">", "<=", ">=", "between", "in"):
            return False
        if self.value_kind == "string" and _is_numeric_literal(self.value_text):
            return False
        return self.value_kind in ("number", "string", "placeholder", "list", "column")


@dataclass(frozen=True)
class TableRef:
    """A table in the FROM/UPDATE/INTO position."""

    name: str
    alias: str = ""
    derived: bool = False


@dataclass
class StatementIR:
    """Everything the anti-pattern rules look at for one statement."""

    kind: StatementKind
    raw: str = ""
    select_star: bool = False
    select_items: int = 0
    tables: tuple[TableRef, ...] = ()
    explicit_joins: int = 0
    comma_joins: int = 0
    join_constraints: int = 0
    predicates: tuple[Predicate, ...] = ()
    or_count: int = 0
    has_where: bool = False
    has_group_by: bool = False
    has_order_by: bool = False
    has_limit: bool = False
    for_update: bool = False
    lock_in_share_mode: bool = False
    parse_ok: bool = True
    _alias_map: dict[str, str] = field(default_factory=dict, repr=False)

    @property
    def table_names(self) -> tuple[str, ...]:
        return tuple(t.name for t in self.tables if not t.derived and t.name)

    @property
    def where_predicates(self) -> tuple[Predicate, ...]:
        return tuple(p for p in self.predicates if not p.from_join)

    @property
    def locking(self) -> bool:
        return self.for_update or self.lock_in_share_mode

    def resolve(self, qualifier: str) -> str:
        """Resolve an alias (or table name) to the table name."""
        return self._alias_map.get(qualifier, qualifier)


def _is_numeric_literal(text: str) -> bool:
    body = text.strip("'\"")
    if not body:
        return False
    return body.replace(".", "", 1).isdigit()


_JOIN_MODIFIERS = frozenset({"inner", "left", "right", "outer", "cross"})
_CLAUSE_WORDS = frozenset(
    {"select", "from", "where", "group", "order", "having", "limit",
     "offset", "values", "set", "union"}
)
_COMPARISON_KEYWORDS = frozenset({"like", "in", "between", "is"})


def _depths(tokens: list[Token]) -> list[int]:
    """Parenthesis depth per token; parens carry their *outer* depth."""
    depths: list[int] = []
    depth = 0
    for tok in tokens:
        if tok.kind is TokenKind.PUNCT and tok.text == "(":
            depths.append(depth)
            depth += 1
        elif tok.kind is TokenKind.PUNCT and tok.text == ")":
            depth = max(0, depth - 1)
            depths.append(depth)
        else:
            depths.append(depth)
    return depths


def _match_paren(tokens: list[Token], depths: list[int], open_idx: int, end: int) -> int:
    """Index one past the ``)`` matching the ``(`` at ``open_idx``."""
    base = depths[open_idx]
    for k in range(open_idx + 1, end):
        if tokens[k].kind is TokenKind.PUNCT and tokens[k].text == ")" and depths[k] == base:
            return k + 1
    return end


@dataclass
class _Side:
    """One side of a comparison, summarised."""

    column: ColumnRef | None = None
    func: str = ""
    arith: bool = False
    kind: str = ""
    text: str = ""
    list_size: int = 0


def _inner_column(tokens: list[Token], start: int, end: int) -> ColumnRef | None:
    """First bare column reference inside a function-call argument list."""
    k = start
    while k < end:
        tok = tokens[k]
        if tok.kind is TokenKind.IDENTIFIER:
            if k + 2 < end and tokens[k + 1].text == "." and tokens[k + 2].kind is TokenKind.IDENTIFIER:
                return ColumnRef(name=tokens[k + 2].text, qualifier=tok.text)
            if k + 1 < end and tokens[k + 1].text == "(":
                k += 1
                continue
            return ColumnRef(name=tok.text)
        k += 1
    return None


def _parse_side(tokens: list[Token], depths: list[int], s: int, e: int, base: int) -> _Side:
    side = _Side()
    k = s
    while k < e:
        tok, d = tokens[k], depths[k]
        if d > base:
            k += 1
            continue
        if tok.kind is TokenKind.KEYWORD:
            w = tok.text.lower()
            if w == "null":
                side.kind = side.kind or "null"
            elif w in ("count", "sum", "avg", "min", "max", "if", "ifnull", "coalesce"):
                # Keyword-classified functions (COUNT(c) etc.) still wrap
                # their argument column.
                if k + 1 < e and tokens[k + 1].text == "(":
                    close = _match_paren(tokens, depths, k + 1, e)
                    side.func = side.func or w
                    side.kind = side.kind or "func"
                    if side.column is None:
                        side.column = _inner_column(tokens, k + 2, close - 1)
                    k = close
                    continue
            k += 1
            continue
        if tok.kind is TokenKind.IDENTIFIER:
            qualifier, name = "", tok.text
            if k + 2 < e and tokens[k + 1].text == "." and tokens[k + 2].kind is TokenKind.IDENTIFIER:
                qualifier, name = name, tokens[k + 2].text
                k += 2
            if k + 1 < e and tokens[k + 1].kind is TokenKind.PUNCT and tokens[k + 1].text == "(":
                close = _match_paren(tokens, depths, k + 1, e)
                side.func = side.func or name
                side.kind = side.kind or "func"
                if side.column is None:
                    side.column = _inner_column(tokens, k + 2, close - 1)
                k = close
                continue
            if side.column is None:
                side.column = ColumnRef(name=name, qualifier=qualifier)
            side.kind = side.kind or "column"
            k += 1
            continue
        if tok.kind is TokenKind.NUMBER:
            side.kind = side.kind or "number"
            side.text = side.text or tok.text
        elif tok.kind is TokenKind.STRING:
            side.kind = side.kind or "string"
            side.text = side.text or tok.text
        elif tok.kind is TokenKind.PLACEHOLDER:
            side.kind = side.kind or "placeholder"
            side.text = side.text or tok.text
        elif tok.kind is TokenKind.OPERATOR and any(c in tok.text for c in "+-*/%"):
            # Arithmetic counts only when a column participates in it.
            if side.kind in ("", "column"):
                side.arith = True
        elif tok.kind is TokenKind.PUNCT and tok.text == "(":
            close = _match_paren(tokens, depths, k, e)
            first = k + 1
            if first < close - 1 and tokens[first].kind is TokenKind.KEYWORD and tokens[first].text.lower() == "select":
                side.kind = side.kind or "subquery"
            else:
                items = 1 if close - 1 > first else 0
                for m in range(first, close - 1):
                    if tokens[m].kind is TokenKind.PUNCT and tokens[m].text == "," and depths[m] == base + 1:
                        items += 1
                side.kind = side.kind or "list"
                side.list_size = max(side.list_size, items)
            k = close
            continue
        k += 1
    return side


def _predicate_from_atom(
    tokens: list[Token], depths: list[int], s: int, e: int, base: int, from_join: bool
) -> Predicate | None:
    negated = False
    while s < e and tokens[s].kind is TokenKind.KEYWORD and tokens[s].text.lower() == "not":
        negated = not negated
        s += 1
    op_idx, op = -1, ""
    for k in range(s, e):
        if depths[k] != base:
            continue
        tok = tokens[k]
        if tok.kind is TokenKind.OPERATOR and any(c in tok.text for c in "=<>!"):
            op_idx, op = k, tok.text
            break
        if tok.kind is TokenKind.KEYWORD and tok.text.lower() in _COMPARISON_KEYWORDS:
            op_idx, op = k, tok.text.lower()
            break
    if op_idx < 0:
        return None
    # `col NOT LIKE x` / `col NOT IN (...)`: the NOT sits left of the op.
    for k in range(s, op_idx):
        if tokens[k].kind is TokenKind.KEYWORD and tokens[k].text.lower() == "not":
            negated = not negated
    left = _parse_side(tokens, depths, s, op_idx, base)
    right = _parse_side(tokens, depths, op_idx + 1, e, base)
    return Predicate(
        column=left.column,
        op=op,
        negated=negated,
        func=left.func,
        arith=left.arith,
        value_kind=right.kind,
        value_text=right.text,
        value_column=right.column if right.kind == "column" else None,
        in_list_size=right.list_size if op == "in" else 0,
        from_join=from_join,
    )


def _parse_condition(
    tokens: list[Token], depths: list[int], s: int, e: int, base: int, from_join: bool
) -> tuple[list[Predicate], int]:
    """Split a condition span on AND/OR into atoms; recurse into groups."""
    preds: list[Predicate] = []
    or_count = 0
    atoms: list[tuple[int, int]] = []
    atom_start = s
    pending_between = False
    for k in range(s, e):
        tok = tokens[k]
        if depths[k] != base or tok.kind is not TokenKind.KEYWORD:
            continue
        w = tok.text.lower()
        if w == "between":
            pending_between = True
        elif w == "and":
            if pending_between:
                pending_between = False
            else:
                atoms.append((atom_start, k))
                atom_start = k + 1
        elif w == "or":
            or_count += 1
            atoms.append((atom_start, k))
            atom_start = k + 1
    atoms.append((atom_start, e))
    for a_s, a_e in atoms:
        while a_s < a_e and tokens[a_s].kind is TokenKind.KEYWORD and tokens[a_s].text.lower() == "not":
            a_s += 1
        if (
            a_s < a_e
            and tokens[a_s].kind is TokenKind.PUNCT
            and tokens[a_s].text == "("
            and _match_paren(tokens, depths, a_s, a_e) == a_e
            and tokens[a_e - 1].text == ")"
        ):
            inner_preds, inner_ors = _parse_condition(
                tokens, depths, a_s + 1, a_e - 1, base + 1, from_join
            )
            preds.extend(inner_preds)
            or_count += inner_ors
            continue
        pred = _predicate_from_atom(tokens, depths, a_s, a_e, base, from_join)
        if pred is not None:
            preds.append(pred)
    return preds, or_count


def _parse_table_refs(
    tokens: list[Token], depths: list[int], s: int, e: int
) -> tuple[list[TableRef], int, int, int, list[tuple[int, int]]]:
    """Parse a FROM-like span: table refs, join shape, ON-clause spans."""
    tables: list[TableRef] = []
    explicit_joins = comma_joins = constraints = 0
    on_spans: list[tuple[int, int]] = []
    expect_table = True
    i = s
    while i < e:
        tok, d = tokens[i], depths[i]
        if d > 0:
            i += 1
            continue
        if tok.kind is TokenKind.KEYWORD:
            w = tok.text.lower()
            if w == "join":
                explicit_joins += 1
                expect_table = True
            elif w == "on":
                constraints += 1
                j = i + 1
                while j < e:
                    t2 = tokens[j]
                    if (
                        depths[j] == 0
                        and t2.kind is TokenKind.KEYWORD
                        and t2.text.lower() in ({"join"} | _JOIN_MODIFIERS)
                    ):
                        break
                    j += 1
                on_spans.append((i + 1, j))
                i = j
                continue
            elif w == "using":
                constraints += 1
            i += 1
            continue
        if tok.kind is TokenKind.PUNCT and tok.text == ",":
            comma_joins += 1
            expect_table = True
            i += 1
            continue
        if tok.kind is TokenKind.PUNCT and tok.text == "(":
            if expect_table:
                tables.append(TableRef(name="", derived=True))
                expect_table = False
            i = _match_paren(tokens, depths, i, e)
            continue
        if tok.kind is TokenKind.IDENTIFIER:
            if expect_table:
                name = tok.text
                if i + 2 < e and tokens[i + 1].text == "." and tokens[i + 2].kind is TokenKind.IDENTIFIER:
                    name = tokens[i + 2].text
                    i += 2
                alias = ""
                j = i + 1
                if j < e and tokens[j].kind is TokenKind.KEYWORD and tokens[j].text.lower() == "as":
                    j += 1
                if j < e and tokens[j].kind is TokenKind.IDENTIFIER and depths[j] == 0:
                    alias = tokens[j].text
                    i = j
                tables.append(TableRef(name=name, alias=alias))
                expect_table = False
            i += 1
            continue
        i += 1
    return tables, explicit_joins, comma_joins, constraints, on_spans


def parse_statement(sql: str) -> StatementIR:
    """Lift a statement (template or raw) into a :class:`StatementIR`.

    Total by construction: internal failures degrade to an IR with
    ``parse_ok=False`` and whatever the cheap classifiers recovered.
    """
    try:
        return _parse(sql)
    except Exception:
        ir = StatementIR(kind=classify_statement(sql), raw=sql, parse_ok=False)
        ir.tables = tuple(TableRef(name=t) for t in extract_tables(sql))
        ir._alias_map = {t.name: t.name for t in ir.tables}
        return ir


def _parse(sql: str) -> StatementIR:
    tokens = tokenize(sql)
    # Statement terminators carry no structure; stripping them keeps the
    # clause spans clean for inputs like ``SELECT ... ;``.
    while tokens and tokens[-1].text == ";":
        tokens = tokens[:-1]
    if not tokens:
        # Empty / whitespace-only / comment-only input: a well-formed
        # empty IR, not an error — the parser is total by contract.
        return StatementIR(kind=StatementKind.OTHER, raw=sql)
    depths = _depths(tokens)
    kind = classify_statement(sql)
    ir = StatementIR(kind=kind, raw=sql)
    n = len(tokens)

    # Top-level clause markers, in statement order.
    markers: list[tuple[str, int]] = []
    for idx in range(n):
        tok = tokens[idx]
        if depths[idx] == 0 and tok.kind is TokenKind.KEYWORD:
            w = tok.text.lower()
            if w in _CLAUSE_WORDS or w in ("update", "into"):
                markers.append((w, idx))

    def span_of(word: str) -> tuple[int, int] | None:
        for pos, (w, idx) in enumerate(markers):
            if w == word:
                end = markers[pos + 1][1] if pos + 1 < len(markers) else n
                return idx + 1, end
        return None

    ir.has_where = span_of("where") is not None
    ir.has_limit = span_of("limit") is not None
    for word, flag in (("group", "has_group_by"), ("order", "has_order_by")):
        span = span_of(word)
        if span is not None:
            setattr(ir, flag, True)

    # Locking tail: FOR UPDATE / FOR SHARE / LOCK IN SHARE MODE.
    words = [
        tok.text.lower()
        for tok, d in zip(tokens, depths)
        if d == 0 and tok.kind is TokenKind.KEYWORD
    ]
    for a, b in zip(words, words[1:]):
        if a == "for" and b == "update":
            ir.for_update = True
        if a == "for" and b == "share":
            ir.lock_in_share_mode = True
    for quad in zip(words, words[1:], words[2:], words[3:]):
        if quad == ("lock", "in", "share", "mode"):
            ir.lock_in_share_mode = True

    # Table references.
    table_span = None
    if kind is StatementKind.UPDATE:
        span = span_of("update")
        set_span = span_of("set")
        if span is not None:
            table_span = (span[0], set_span[0] - 1 if set_span else span[1])
    elif kind is StatementKind.INSERT:
        table_span = span_of("into")
    if table_span is None:
        table_span = span_of("from")
    if table_span is not None:
        tables, joins, commas, constraints, on_spans = _parse_table_refs(
            tokens, depths, *table_span
        )
        ir.tables = tuple(tables)
        ir.explicit_joins = joins
        ir.comma_joins = commas
        ir.join_constraints = constraints
    else:
        on_spans = []
        ir.tables = tuple(TableRef(name=t) for t in extract_tables(sql))
    ir._alias_map = {}
    for t in ir.tables:
        if t.name:
            ir._alias_map[t.name] = t.name
            if t.alias:
                ir._alias_map[t.alias] = t.name

    # Select list shape.
    if kind is StatementKind.SELECT:
        sel = span_of("select")
        frm = span_of("from")
        if sel is not None:
            sel_end = frm[0] - 1 if frm is not None else sel[1]
            items = 1 if sel_end > sel[0] else 0
            prev_text = "select"
            for k in range(sel[0], sel_end):
                tok = tokens[k]
                if depths[k] != 0:
                    continue
                if tok.kind is TokenKind.PUNCT and tok.text == ",":
                    items += 1
                if tok.kind is TokenKind.OPERATOR and tok.text == "*" and prev_text in ("select", ",", ".", "distinct"):
                    ir.select_star = True
                prev_text = tok.text.lower()
            ir.select_items = items

    # Predicates: WHERE + HAVING + every ON clause.
    preds: list[Predicate] = []
    or_count = 0
    for word in ("where", "having"):
        span = span_of(word)
        if span is not None:
            got, ors = _parse_condition(tokens, depths, span[0], span[1], 0, False)
            preds.extend(got)
            or_count += ors
    for o_s, o_e in on_spans:
        got, ors = _parse_condition(tokens, depths, o_s, o_e, 0, True)
        preds.extend(got)
        or_count += ors
    ir.predicates = tuple(preds)
    ir.or_count = or_count
    return ir
