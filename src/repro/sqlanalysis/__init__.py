"""Static SQL analysis: anti-pattern lint over templates.

PinSQL's repairing module resolves R-SQLs via "query optimization"; this
package supplies the structural evidence for *why* a template is slow.
It lifts the :mod:`repro.sqltemplate` token stream into a small
statement IR (:mod:`repro.sqlanalysis.ir`), runs a pluggable registry of
anti-pattern rules over it (:mod:`repro.sqlanalysis.rules`) and emits
severity-scored, explainable :class:`Finding`\\ s that the repair
planner, incident records and the ``repro lint`` CLI consume.
"""

from repro.sqlanalysis.analyzer import AnalyzerConfig, SqlAnalyzer
from repro.sqlanalysis.ir import (
    ColumnRef,
    Predicate,
    StatementIR,
    TableRef,
    parse_statement,
)
from repro.sqlanalysis.lint import LintEntry, LintReport, lint_failed
from repro.sqlanalysis.rules import (
    AnalysisContext,
    Finding,
    LintRule,
    Severity,
    default_rules,
    register_rule,
    rule_ids,
)
from repro.sqlanalysis.workload import (
    Advisory,
    AdvisoryPass,
    AdvisoryReport,
    TrafficWeight,
    WorkloadAnalyzer,
    WorkloadConfig,
    advise_failed,
    default_passes,
    pass_ids,
    register_pass,
)

__all__ = [
    "Advisory",
    "AdvisoryPass",
    "AdvisoryReport",
    "AnalysisContext",
    "AnalyzerConfig",
    "ColumnRef",
    "Finding",
    "LintEntry",
    "LintReport",
    "LintRule",
    "Predicate",
    "Severity",
    "SqlAnalyzer",
    "StatementIR",
    "TableRef",
    "TrafficWeight",
    "WorkloadAnalyzer",
    "WorkloadConfig",
    "advise_failed",
    "default_passes",
    "default_rules",
    "lint_failed",
    "parse_statement",
    "pass_ids",
    "register_pass",
    "register_rule",
    "rule_ids",
]
