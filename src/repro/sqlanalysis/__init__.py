"""Static SQL analysis: anti-pattern lint over templates.

PinSQL's repairing module resolves R-SQLs via "query optimization"; this
package supplies the structural evidence for *why* a template is slow.
It lifts the :mod:`repro.sqltemplate` token stream into a small
statement IR (:mod:`repro.sqlanalysis.ir`), runs a pluggable registry of
anti-pattern rules over it (:mod:`repro.sqlanalysis.rules`) and emits
severity-scored, explainable :class:`Finding`\\ s that the repair
planner, incident records and the ``repro lint`` CLI consume.
"""

from repro.sqlanalysis.analyzer import AnalyzerConfig, SqlAnalyzer
from repro.sqlanalysis.ir import (
    ColumnRef,
    Predicate,
    StatementIR,
    TableRef,
    parse_statement,
)
from repro.sqlanalysis.lint import LintEntry, LintReport, lint_failed
from repro.sqlanalysis.rules import (
    AnalysisContext,
    Finding,
    LintRule,
    Severity,
    default_rules,
    register_rule,
    rule_ids,
)

__all__ = [
    "AnalysisContext",
    "AnalyzerConfig",
    "ColumnRef",
    "Finding",
    "LintEntry",
    "LintReport",
    "LintRule",
    "Predicate",
    "Severity",
    "SqlAnalyzer",
    "StatementIR",
    "TableRef",
    "default_rules",
    "lint_failed",
    "parse_statement",
    "register_rule",
    "rule_ids",
]
