"""Workload advisory passes: cross-statement analysis over a template set.

Each pass inspects a :class:`WorkloadContext` — every template's
``StatementIR`` plus traffic weights and schema metadata — and yields
:class:`~repro.sqlanalysis.workload.advisory.Advisory` objects.  Passes
register themselves with :func:`register_pass`, the same pluggable
pattern as the per-statement lint rules, so downstream code can add
site-specific workload checks without touching this module.

Built-in passes:

``lock-conflict``
    Builds a lock-acquisition-order graph over locking statements and
    flags opposite-order table pairs (deadlock risk) plus hot tables
    carrying several broad-footprint writers (write-write convoys).
``index-advisor``
    Enumerates candidate single/composite indexes from sargable
    predicate sets, scores traffic-weighted avoided scan rows against
    existing indexes, and deduplicates prefix-subsumed candidates.
``join-fanout``
    Flags cartesian-prone join graphs and unbounded fan-out (WHERE-less,
    LIMIT-less statements) across templates sharing hot tables.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import ClassVar, Iterator

from repro.dbsim.tables import Schema
from repro.sqlanalysis.ir import StatementIR
from repro.sqlanalysis.rules import Severity
from repro.sqlanalysis.workload.advisory import Advisory
from repro.sqltemplate.fingerprint import StatementKind

__all__ = [
    "TrafficWeight",
    "TemplateFootprint",
    "WorkloadConfig",
    "WorkloadContext",
    "AdvisoryPass",
    "register_pass",
    "default_passes",
    "pass_ids",
    "LockConflictPass",
    "IndexAdvisorPass",
    "JoinFanoutPass",
]


@dataclass(frozen=True)
class TrafficWeight:
    """Observed traffic for one template over the analysis window."""

    calls: float = 1.0
    rows_examined: float = 0.0

    @property
    def rows_per_call(self) -> float:
        return self.rows_examined / self.calls if self.calls > 0 else 0.0


@dataclass(frozen=True)
class TemplateFootprint:
    """One template's parsed shape plus its traffic weight."""

    sql_id: str
    ir: StatementIR
    weight: TrafficWeight = field(default_factory=TrafficWeight)


@dataclass(frozen=True)
class WorkloadConfig:
    """Tunable thresholds for the workload passes."""

    #: How many tables count as "hot" (by traffic) for the conflict and
    #: fan-out passes.
    hot_table_count: int = 3
    large_table_rows: int = 100_000
    #: Rows per call an index-backed access is expected to examine; the
    #: advisor scores rows avoided beyond this target.
    index_target_rows: float = 200.0
    #: Minimum traffic-weighted avoided rows before an index advisory fires.
    min_index_benefit: float = 10_000.0
    #: Minimum combined calls before a write-write conflict advisory fires.
    min_conflict_calls: float = 30.0
    max_advisories: int = 64
    max_cache_entries: int = 4096


@dataclass(frozen=True)
class WorkloadContext:
    """What the passes know: parsed templates, traffic, schema metadata."""

    schema: Schema | None = None
    #: Sorted by ``sql_id`` — passes iterate this for determinism.
    templates: tuple[TemplateFootprint, ...] = ()
    hot_tables: frozenset[str] = frozenset()
    config: WorkloadConfig = field(default_factory=WorkloadConfig)

    def table_rows(self, name: str) -> int | None:
        if self.schema is None:
            return None
        table = self.schema.get(name)
        return None if table is None else table.row_count

    def knows_table(self, name: str) -> bool:
        """True when index metadata for ``name`` is available.

        Passes whose claim depends on what indexes exist (the index
        advisor, the broad-writer heuristic) must stay silent when this
        is False: without the schema they cannot rule out an existing
        index, and a wrong "no index serves this" is worse than no
        advisory.
        """
        return self.schema is not None and self.schema.get(name) is not None

    def is_indexed(self, table: str, column: str) -> bool | None:
        """True/False when the schema knows the table, None when it doesn't."""
        if self.schema is None:
            return None
        tab = self.schema.get(table)
        return None if tab is None else tab.has_index(column)

    def covered_by_existing(self, table: str, columns: tuple[str, ...]) -> bool:
        """True when an existing index already serves ``columns`` as a prefix."""
        if self.schema is None:
            return False
        tab = self.schema.get(table)
        return False if tab is None else tab.covers(columns)


class AdvisoryPass(abc.ABC):
    """Base class for workload-level advisory passes."""

    pass_id: ClassVar[str] = ""
    description: ClassVar[str] = ""

    @abc.abstractmethod
    def run(self, ctx: WorkloadContext) -> Iterator[Advisory]:
        """Yield advisories over the whole template set."""


_REGISTRY: dict[str, AdvisoryPass] = {}


def register_pass(cls: type[AdvisoryPass]) -> type[AdvisoryPass]:
    """Class decorator adding a pass (by ``pass_id``) to the registry."""
    if not cls.pass_id:
        raise ValueError(f"{cls.__name__} must define a pass_id")
    _REGISTRY[cls.pass_id] = cls()
    return cls


def default_passes() -> tuple[AdvisoryPass, ...]:
    """The registered passes, in registration order."""
    return tuple(_REGISTRY.values())


def pass_ids() -> tuple[str, ...]:
    return tuple(_REGISTRY)


_WRITE_KINDS = (StatementKind.UPDATE, StatementKind.DELETE)
_SCAN_KINDS = (StatementKind.SELECT, StatementKind.UPDATE, StatementKind.DELETE)


def _distinct_tables(ir: StatementIR) -> tuple[str, ...]:
    """Table names in statement (lock-acquisition) order, deduplicated."""
    out: list[str] = []
    for name in ir.table_names:
        if name not in out:
            out.append(name)
    return tuple(out)


def _index_backed(ir: StatementIR, table: str, ctx: WorkloadContext) -> bool:
    """True when some sargable filter column is indexed (narrow footprint)."""
    for pred in ir.where_predicates:
        if not pred.sargable or pred.column is None or pred.value_kind == "column":
            continue
        if ctx.is_indexed(table, pred.column.name):
            return True
    return False


@register_pass
class LockConflictPass(AdvisoryPass):
    pass_id = "lock-conflict"
    description = (
        "Opposite lock-acquisition orders (deadlock risk) and hot tables "
        "with several broad-footprint writers."
    )

    @staticmethod
    def _takes_locks(ir: StatementIR) -> bool:
        return ir.locking or ir.kind in _WRITE_KINDS

    def run(self, ctx: WorkloadContext) -> Iterator[Advisory]:
        yield from self._lock_order_cycles(ctx)
        yield from self._write_write_edges(ctx)

    def _lock_order_cycles(self, ctx: WorkloadContext) -> Iterator[Advisory]:
        # Directed edge (a, b): some locking statement acquires locks on
        # table a before table b.  Opposite edges from *different*
        # templates are the classic two-session deadlock.
        edges: dict[tuple[str, str], list[str]] = {}
        calls: dict[str, float] = {}
        for fp in ctx.templates:
            if not self._takes_locks(fp.ir):
                continue
            order = _distinct_tables(fp.ir)
            calls[fp.sql_id] = fp.weight.calls
            for a, b in zip(order, order[1:]):
                edges.setdefault((a, b), []).append(fp.sql_id)
        reported: set[tuple[str, str]] = set()
        for (a, b) in sorted(edges):
            if a == b or (b, a) not in edges:
                continue
            pair = (min(a, b), max(a, b))
            if pair in reported:
                continue
            reported.add(pair)
            sql_ids = tuple(sorted(set(edges[(a, b)]) | set(edges[(b, a)])))
            if len(sql_ids) < 2:
                continue
            total_calls = sum(calls.get(s, 0.0) for s in sql_ids)
            hot = pair[0] in ctx.hot_tables or pair[1] in ctx.hot_tables
            yield Advisory(
                advisor=self.pass_id,
                severity=Severity.CRITICAL if hot else Severity.HIGH,
                table=pair[0],
                tables=pair,
                sql_ids=sql_ids,
                score=total_calls,
                message=f"{len(sql_ids)} templates lock {pair[0]} and {pair[1]} "
                        "in opposite orders; concurrent executions can deadlock",
                suggestion=f"acquire locks in one fixed order "
                           f"({pair[0]} before {pair[1]}) in every transaction",
                evidence={
                    "tables": f"{pair[0]}<->{pair[1]}",
                    "calls": round(total_calls, 1),
                },
            )

    def _write_write_edges(self, ctx: WorkloadContext) -> Iterator[Advisory]:
        groups: dict[str, list[TemplateFootprint]] = {}
        for fp in ctx.templates:
            if fp.ir.kind not in _WRITE_KINDS:
                continue
            tables = _distinct_tables(fp.ir)
            if len(tables) != 1:
                continue  # multi-table writes feed the cycle detector instead
            table = tables[0]
            if fp.ir.has_where and (
                not ctx.knows_table(table) or _index_backed(fp.ir, table, ctx)
            ):
                # Index-backed writes lock few rows; without schema
                # metadata we assume the filter is backed rather than
                # accuse a bounded writer of a broad footprint.
                continue
            groups.setdefault(table, []).append(fp)
        for table in sorted(groups):
            group = groups[table]
            if len(group) < 2 or table not in ctx.hot_tables:
                continue
            total_calls = sum(fp.weight.calls for fp in group)
            if total_calls < ctx.config.min_conflict_calls:
                continue
            unbounded = any(not fp.ir.has_where for fp in group)
            sql_ids = tuple(sorted(fp.sql_id for fp in group))
            yield Advisory(
                advisor=self.pass_id,
                severity=Severity.CRITICAL if unbounded else Severity.HIGH,
                table=table,
                tables=(table,),
                sql_ids=sql_ids,
                score=total_calls,
                message=f"{len(group)} broad-footprint writers contend on hot "
                        f"table {table}; their row locks overlap and serialize "
                        "under load",
                suggestion="narrow each writer with an indexed filter, or "
                           "route the writes through one queue",
                evidence={
                    "writers": len(group),
                    "calls": round(total_calls, 1),
                    "unbounded": unbounded,
                },
            )


@register_pass
class IndexAdvisorPass(AdvisoryPass):
    pass_id = "index-advisor"
    description = (
        "Candidate single/composite indexes scored by traffic-weighted "
        "avoided scan rows, prefix-subsumed candidates deduplicated."
    )

    _EQ_OPS = ("=", "<=>")
    _RANGE_OPS = ("<", ">", "<=", ">=", "between", "in")

    def run(self, ctx: WorkloadContext) -> Iterator[Advisory]:
        # (table, columns) -> accumulated benefit + contributing templates.
        scores: dict[tuple[str, tuple[str, ...]], float] = {}
        members: dict[tuple[str, tuple[str, ...]], list[str]] = {}
        per_call: dict[tuple[str, tuple[str, ...]], float] = {}
        for fp in ctx.templates:
            candidate = self._candidate(fp.ir, ctx)
            if candidate is None:
                continue
            table, columns = candidate
            rows_per_call = fp.weight.rows_per_call
            if rows_per_call <= 0:
                rows_per_call = float(ctx.table_rows(table) or 0)
            avoided = max(rows_per_call - ctx.config.index_target_rows, 0.0)
            benefit = fp.weight.calls * avoided
            if benefit < ctx.config.min_index_benefit:
                continue
            key = (table, columns)
            scores[key] = scores.get(key, 0.0) + benefit
            members.setdefault(key, []).append(fp.sql_id)
            per_call[key] = max(per_call.get(key, 0.0), rows_per_call)
        for key, score, sql_ids in self._dedup_prefixes(scores, members, per_call):
            table, columns = key
            cols = ", ".join(columns)
            ratio = score / max(ctx.config.min_index_benefit, 1.0)
            severity = Severity.WARNING
            if ratio >= 10.0:
                severity = Severity.HIGH
            if ratio >= 100.0:
                severity = Severity.CRITICAL
            name = f"idx_{table}_{'_'.join(columns)}"
            yield Advisory(
                advisor=self.pass_id,
                severity=severity,
                table=table,
                tables=(table,),
                sql_ids=tuple(sorted(set(sql_ids))),
                score=score,
                message=f"an index on {table} ({cols}) would avoid ~{score:,.0f} "
                        "examined rows over the window; no existing index serves "
                        "these predicates",
                suggestion=f"CREATE INDEX {name} ON {table} ({cols})",
                evidence={
                    "columns": ",".join(columns),
                    "estimated_avoided_rows": round(score, 1),
                    "rows_per_call": round(per_call.get(key, 0.0), 1),
                    "templates": len(set(sql_ids)),
                },
            )

    def _candidate(
        self, ir: StatementIR, ctx: WorkloadContext
    ) -> tuple[str, tuple[str, ...]] | None:
        if ir.kind not in _SCAN_KINDS or not ir.has_where:
            return None
        tables = _distinct_tables(ir)
        if len(tables) != 1:
            return None
        table = tables[0]
        if not ctx.knows_table(table):
            return None  # cannot rule out an existing index without schema
        eq: list[str] = []
        ranges: list[str] = []
        for pred in ir.where_predicates:
            if not pred.sargable or pred.column is None:
                continue
            if pred.value_kind == "column" or pred.func or pred.arith or pred.negated:
                continue
            column = pred.column.name
            if ctx.is_indexed(table, column):
                return None  # an existing index already backs this access
            if pred.op in self._EQ_OPS and column not in eq:
                eq.append(column)
            elif pred.op in self._RANGE_OPS and column not in ranges:
                ranges.append(column)
        # Composite shape: equality columns first (sorted for a canonical
        # form), then at most one range column as the trailing key part.
        columns = tuple(sorted(eq))
        if ranges:
            columns += (sorted(ranges)[0],)
        if not columns or ctx.covered_by_existing(table, columns):
            return None
        return table, columns

    @staticmethod
    def _dedup_prefixes(
        scores: dict[tuple[str, tuple[str, ...]], float],
        members: dict[tuple[str, tuple[str, ...]], list[str]],
        per_call: dict[tuple[str, tuple[str, ...]], float],
    ) -> list[tuple[tuple[str, tuple[str, ...]], float, list[str]]]:
        """Fold candidates that are a prefix of a wider candidate on the
        same table into the wider one (one index serves both)."""
        keys = sorted(scores)
        absorbed: set[tuple[str, tuple[str, ...]]] = set()
        for key in keys:
            table, columns = key
            hosts = [
                k for k in keys
                if k != key and k not in absorbed and k[0] == table
                and len(k[1]) > len(columns) and k[1][: len(columns)] == columns
            ]
            if not hosts:
                continue
            host = max(hosts, key=lambda k: (scores[k], k))
            scores[host] += scores[key]
            members[host].extend(members[key])
            per_call[host] = max(per_call.get(host, 0.0), per_call.get(key, 0.0))
            absorbed.add(key)
        return [
            (key, scores[key], members[key])
            for key in keys
            if key not in absorbed
        ]


@register_pass
class JoinFanoutPass(AdvisoryPass):
    pass_id = "join-fanout"
    description = (
        "Cartesian-prone join graphs and unbounded fan-out across "
        "templates sharing hot tables."
    )

    def run(self, ctx: WorkloadContext) -> Iterator[Advisory]:
        yield from self._cartesian_joins(ctx)
        yield from self._unbounded_fanout(ctx)

    @staticmethod
    def _has_cross_table_equality(ir: StatementIR) -> bool:
        for pred in ir.predicates:
            if pred.column is None or pred.value_column is None:
                continue
            left = ir.resolve(pred.column.qualifier) if pred.column.qualifier else ""
            right = (
                ir.resolve(pred.value_column.qualifier)
                if pred.value_column.qualifier
                else ""
            )
            if left and right and left != right:
                return True
        return False

    def _cartesian_joins(self, ctx: WorkloadContext) -> Iterator[Advisory]:
        for fp in ctx.templates:
            ir = fp.ir
            if ir.kind is not StatementKind.SELECT:
                continue
            tables = _distinct_tables(ir)
            if len(tables) < 2 or ir.join_constraints > 0:
                continue
            if self._has_cross_table_equality(ir):
                continue
            product = 1.0
            for t in tables:
                product *= float(max(ctx.table_rows(t) or 1, 1))
            score = fp.weight.calls * product
            yield Advisory(
                advisor=self.pass_id,
                severity=Severity.CRITICAL
                if any(t in ctx.hot_tables for t in tables)
                else Severity.HIGH,
                table=tables[0],
                tables=tables,
                sql_ids=(fp.sql_id,),
                score=score,
                message=f"{len(tables)} tables ({', '.join(tables)}) join with "
                        f"no constraint; the result fans out to ~{product:.1e} "
                        "row combinations",
                suggestion="add the join condition, or split the query",
                evidence={
                    "tables": ",".join(tables),
                    "row_product": product,
                    "calls": round(fp.weight.calls, 1),
                },
            )

    def _unbounded_fanout(self, ctx: WorkloadContext) -> Iterator[Advisory]:
        groups: dict[str, list[TemplateFootprint]] = {}
        for fp in ctx.templates:
            ir = fp.ir
            if ir.kind not in _SCAN_KINDS or ir.has_where:
                continue
            if ir.kind is StatementKind.SELECT and ir.has_limit:
                continue
            tables = _distinct_tables(ir)
            if len(tables) != 1 or tables[0] not in ctx.hot_tables:
                continue
            if fp.weight.calls <= 0:
                continue
            groups.setdefault(tables[0], []).append(fp)
        for table in sorted(groups):
            group = groups[table]
            total_calls = sum(fp.weight.calls for fp in group)
            rows = ctx.table_rows(table)
            sql_ids = tuple(sorted(fp.sql_id for fp in group))
            size = f" ({rows:,} rows)" if rows is not None else ""
            yield Advisory(
                advisor=self.pass_id,
                severity=Severity.HIGH,
                table=table,
                tables=(table,),
                sql_ids=sql_ids,
                score=total_calls * float(rows or 1),
                message=f"{len(group)} template(s) scan hot table {table}{size} "
                        "with no WHERE and no LIMIT; every call touches the "
                        "whole table",
                suggestion="add a filter or paginate with a key range + LIMIT",
                evidence={
                    "templates": len(group),
                    "calls": round(total_calls, 1),
                },
            )
