"""The workload analyzer facade: template sets in, advisories out.

``WorkloadAnalyzer`` is the cross-statement counterpart of
``SqlAnalyzer``: it parses every template once (cached), computes hot
tables from traffic weights, runs the registered advisory passes and
**never raises** — a broken pass degrades to zero advisories plus a
telemetry counter, because the analyzer rides inside repair planning and
health sweeps where an exception would cost an incident.

Determinism contract (relied on by the property tests): templates are
deduplicated and iterated sorted by ``sql_id``, every pass iterates that
sorted tuple, and the final advisory list is sorted by a total key — so
the output is identical under any permutation of the input templates.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.dbsim.tables import Schema
from repro.sqlanalysis.ir import StatementIR, parse_statement
from repro.sqlanalysis.workload.advisory import Advisory, AdvisoryReport
from repro.sqlanalysis.workload.passes import (
    AdvisoryPass,
    TemplateFootprint,
    TrafficWeight,
    WorkloadConfig,
    WorkloadContext,
    default_passes,
)
from repro.telemetry import MetricsRegistry, get_logger, get_registry

__all__ = ["WorkloadAnalyzer"]

_log = get_logger("sqlanalysis.workload")


class WorkloadAnalyzer:
    """Runs the advisory passes over a whole template set.

    Parameters
    ----------
    schema:
        Index/row-count metadata for the index advisor and footprint
        checks; ``None`` degrades those passes gracefully.
    passes:
        Override the pass set (defaults to the full registry).
    """

    def __init__(
        self,
        schema: Schema | None = None,
        config: WorkloadConfig | None = None,
        passes: Iterable[AdvisoryPass] | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.schema = schema
        self.config = config or WorkloadConfig()
        self.passes: tuple[AdvisoryPass, ...] = (
            tuple(passes) if passes is not None else default_passes()
        )
        self.registry = registry or get_registry()
        self._ir_cache: dict[tuple[str, str], StatementIR] = {}

    # ------------------------------------------------------------------
    def analyze(
        self,
        templates: Iterable[object],
        weights: Mapping[str, TrafficWeight] | None = None,
    ) -> AdvisoryReport:
        """Advisories over a template set, most severe first; never raises.

        ``templates`` is duck-typed: anything with a ``sql_id`` and a
        ``template`` (optionally ``exemplar``) attribute works — catalog
        ``TemplateInfo`` entries and workload ``TemplateSpec`` s both do.
        """
        weight_map = dict(weights or {})
        footprints = self._footprints(templates, weight_map)
        ctx = WorkloadContext(
            schema=self.schema,
            templates=footprints,
            hot_tables=self._hot_tables(footprints),
            config=self.config,
        )
        advisories: list[Advisory] = []
        for pass_ in self.passes:
            try:
                advisories.extend(pass_.run(ctx))
            except Exception as exc:
                self._count_failure(pass_.pass_id, exc)
        advisories.sort(key=lambda a: a.sort_key())
        del advisories[self.config.max_advisories :]
        for advisory in advisories:
            self.registry.counter(
                "workload_advisories_total",
                help="Workload advisories emitted, by pass.",
                advisor=advisory.advisor,
            ).inc()
        return AdvisoryReport(advisories=advisories, analyzed=len(footprints))

    # ------------------------------------------------------------------
    def _footprints(
        self,
        templates: Iterable[object],
        weights: Mapping[str, TrafficWeight],
    ) -> tuple[TemplateFootprint, ...]:
        seen: dict[str, TemplateFootprint] = {}
        for template in templates:
            try:
                sql_id = str(getattr(template, "sql_id", "") or "")
                if not sql_id or sql_id in seen:
                    continue
                text = str(
                    getattr(template, "exemplar", "")
                    or getattr(template, "template", "")
                    or ""
                )
                if not text:
                    continue
                seen[sql_id] = TemplateFootprint(
                    sql_id=sql_id,
                    ir=self._ir(sql_id, text),
                    weight=weights.get(sql_id) or TrafficWeight(),
                )
            except Exception as exc:
                self._count_failure("footprint", exc)
        return tuple(seen[sql_id] for sql_id in sorted(seen))

    def _ir(self, sql_id: str, text: str) -> StatementIR:
        key = (sql_id, text)
        cached = self._ir_cache.get(key)
        if cached is not None:
            return cached
        ir = parse_statement(text)
        if len(self._ir_cache) >= self.config.max_cache_entries:
            self._ir_cache.clear()
        self._ir_cache[key] = ir
        return ir

    def _hot_tables(
        self, footprints: tuple[TemplateFootprint, ...]
    ) -> frozenset[str]:
        traffic: dict[str, float] = {}
        for fp in footprints:
            for table in set(fp.ir.table_names):
                traffic[table] = traffic.get(table, 0.0) + fp.weight.calls
        ranked = sorted(traffic, key=lambda t: (-traffic[t], t))
        return frozenset(ranked[: self.config.hot_table_count])

    def _count_failure(self, where: str, exc: Exception) -> None:
        self.registry.counter(
            "workload_pass_failures_total",
            help="Workload analyzer internal failures swallowed.",
            where=where,
        ).inc()
        _log.warning(
            "workload advisory failure swallowed",
            extra={"where": where, "error": type(exc).__name__},
        )
