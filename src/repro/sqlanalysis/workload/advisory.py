"""Advisory records and the workload advisory report.

An :class:`Advisory` is the cross-statement analogue of a lint
``Finding``: one explainable, severity-scored recommendation produced by
a workload pass (lock-conflict graph, index advisor, join/fan-out).
Where a ``Finding`` anchors to a single statement, an advisory may span
several templates (``sql_ids``) and carries a traffic-weighted ``score``
so downstream consumers — repair planning, health checks, incident
records — can rank it against statistical evidence.

:class:`AdvisoryReport` mirrors ``LintReport`` (strict JSON, console
text, the same 0/1/2 exit contract via :func:`advise_failed`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.sqlanalysis.rules import Severity

__all__ = ["Advisory", "AdvisoryReport", "advise_failed"]

#: JSON scalar types allowed in advisory evidence values.
Scalar = str | int | float | bool


@dataclass(frozen=True)
class Advisory:
    """One workload-level recommendation.

    ``advisor`` names the pass that produced it; ``evidence`` holds the
    JSON-scalar facts behind the score so renderers can explain it.
    """

    advisor: str
    severity: Severity
    message: str
    table: str = ""
    tables: tuple[str, ...] = ()
    sql_ids: tuple[str, ...] = ()
    suggestion: str = ""
    score: float = 0.0
    evidence: dict[str, Scalar] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "advisor": self.advisor,
            "severity": self.severity.label,
            "message": self.message,
            "table": self.table,
            "tables": list(self.tables),
            "sql_ids": list(self.sql_ids),
            "suggestion": self.suggestion,
            "score": self.score,
            "evidence": dict(self.evidence),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Advisory":
        return cls(
            advisor=data["advisor"],
            severity=Severity.from_label(data["severity"]),
            message=data["message"],
            table=data.get("table", ""),
            tables=tuple(data.get("tables", ())),
            sql_ids=tuple(data.get("sql_ids", ())),
            suggestion=data.get("suggestion", ""),
            score=float(data.get("score", 0.0)),
            evidence=dict(data.get("evidence", {})),
        )

    def sort_key(self) -> tuple[int, str, str, tuple[str, ...]]:
        """Deterministic ordering: severity desc, then stable identity."""
        return (-int(self.severity), self.advisor, self.table, self.sql_ids)


@dataclass
class AdvisoryReport:
    """The result of one workload analysis."""

    advisories: list[Advisory] = field(default_factory=list)
    analyzed: int = 0
    #: Optional precision/recall block (present when advisory baits were
    #: planted with ground-truth labels).
    evaluation: dict[str, Any] | None = None

    @property
    def max_severity(self) -> Severity | None:
        return max((a.severity for a in self.advisories), default=None)

    def count_by_severity(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for a in self.advisories:
            counts[a.severity.label] = counts.get(a.severity.label, 0) + 1
        return counts

    def count_by_advisor(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for a in self.advisories:
            counts[a.advisor] = counts.get(a.advisor, 0) + 1
        return counts

    def to_dict(self) -> dict[str, Any]:
        """Strict-JSON form (CI artifact format)."""
        data: dict[str, Any] = {
            "analyzed": self.analyzed,
            "advisories_total": len(self.advisories),
            "counts_by_severity": self.count_by_severity(),
            "counts_by_advisor": self.count_by_advisor(),
            "advisories": [a.to_dict() for a in self.advisories],
        }
        if self.evaluation is not None:
            data["evaluation"] = self.evaluation
        return data

    def render_text(self, width: int = 100) -> str:
        """Console rendering, most severe advisories first."""
        lines = [
            f"Analyzed {self.analyzed} templates: "
            f"{len(self.advisories)} workload advisories",
        ]
        by_sev = self.count_by_severity()
        if by_sev:
            lines.append(
                "  "
                + "  ".join(
                    f"{sev.label}={by_sev[sev.label]}"
                    for sev in sorted(Severity, reverse=True)
                    if sev.label in by_sev
                )
            )
        for a in self.advisories:
            where = f" on {a.table}" if a.table else ""
            lines.append("")
            lines.append(f"{a.severity.label:<8} {a.advisor}{where}: {a.message}")
            if a.sql_ids:
                shown = ", ".join(a.sql_ids[:6])
                if len(a.sql_ids) > 6:
                    shown += f", … +{len(a.sql_ids) - 6}"
                lines.append(f"         templates: {shown}")
            if a.suggestion:
                sugg = a.suggestion
                if len(sugg) > width:
                    sugg = sugg[: width - 1] + "…"
                lines.append(f"         fix: {sugg}")
        if self.evaluation is not None:
            lines.append("")
            lines.append(
                "Planted advisory evaluation: "
                f"precision={self.evaluation.get('precision', 0.0):.3f} "
                f"recall={self.evaluation.get('recall', 0.0):.3f}"
            )
        return "\n".join(lines)


def advise_failed(report: AdvisoryReport, fail_on: str) -> bool:
    """The exit-code contract: True when an advisory meets the threshold.

    ``fail_on`` is a severity label (``info``/``warning``/``high``/
    ``critical``) or ``never``.
    """
    if fail_on == "never":
        return False
    threshold = Severity.from_label(fail_on)
    worst = report.max_severity
    return worst is not None and worst >= threshold
