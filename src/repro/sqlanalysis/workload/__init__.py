"""Workload-level static analysis: cross-statement advisory passes.

Public surface re-exported by :mod:`repro.sqlanalysis`.
"""

from repro.sqlanalysis.workload.advisory import (
    Advisory,
    AdvisoryReport,
    advise_failed,
)
from repro.sqlanalysis.workload.analyzer import WorkloadAnalyzer
from repro.sqlanalysis.workload.passes import (
    AdvisoryPass,
    IndexAdvisorPass,
    JoinFanoutPass,
    LockConflictPass,
    TemplateFootprint,
    TrafficWeight,
    WorkloadConfig,
    WorkloadContext,
    default_passes,
    pass_ids,
    register_pass,
)

__all__ = [
    "Advisory",
    "AdvisoryReport",
    "AdvisoryPass",
    "IndexAdvisorPass",
    "JoinFanoutPass",
    "LockConflictPass",
    "TemplateFootprint",
    "TrafficWeight",
    "WorkloadAnalyzer",
    "WorkloadConfig",
    "WorkloadContext",
    "advise_failed",
    "default_passes",
    "pass_ids",
    "register_pass",
]
