"""Bounded retries with exponential backoff and deterministic jitter.

Transient faults (a broker hiccup, a repair API timeout) deserve a
second attempt; persistent ones deserve a fast, counted failure.  The
jitter RNG and the sleep function are injected so tests — and the chaos
harness — replay the exact same schedule with zero wall-clock waiting.
"""

from __future__ import annotations

import random
import time
from typing import Any, Callable, Iterable

from repro.telemetry import MetricsRegistry, get_logger, get_registry

__all__ = ["RetryExhausted", "retry_call", "backoff_delays"]

_log = get_logger("resilience")


class RetryExhausted(RuntimeError):
    """Every attempt failed; carries the final attempt's exception."""

    def __init__(self, operation: str, attempts: int, last: BaseException) -> None:
        super().__init__(
            f"{operation or 'operation'} failed after {attempts} attempt(s): "
            f"{type(last).__name__}: {last}"
        )
        self.operation = operation
        self.attempts = attempts
        self.last = last


def backoff_delays(
    retries: int,
    base_delay_s: float = 0.05,
    max_delay_s: float = 2.0,
    factor: float = 2.0,
    rng: random.Random | None = None,
) -> list[float]:
    """The delay schedule ``retry_call`` would sleep between attempts.

    Full jitter on an exponential ramp: attempt ``i`` waits a uniform
    draw from ``[base/2, base] * factor**i`` capped at ``max_delay_s``.
    With a seeded ``rng`` the schedule is fully deterministic.
    """
    if retries < 0:
        raise ValueError("retries must be non-negative")
    rng = rng or random.Random()
    delays: list[float] = []
    for attempt in range(retries):
        ceiling = min(max_delay_s, base_delay_s * (factor ** attempt))
        delays.append(ceiling * (0.5 + 0.5 * rng.random()))
    return delays


def retry_call(
    fn: Callable[..., Any],
    *args: Any,
    retries: int = 3,
    base_delay_s: float = 0.05,
    max_delay_s: float = 2.0,
    factor: float = 2.0,
    rng: random.Random | None = None,
    retry_on: Iterable[type[BaseException]] = (Exception,),
    sleep: Callable[[float], None] | None = None,
    operation: str = "",
    registry: MetricsRegistry | None = None,
    **kwargs: Any,
) -> Any:
    """Call ``fn`` with up to ``retries`` retries after the first attempt.

    Parameters
    ----------
    retries:
        Additional attempts after the first (``retries=3`` → up to four
        calls).
    rng:
        Jitter source.  Pass ``random.Random(seed)`` for deterministic
        schedules; defaults to a fresh unseeded RNG.
    retry_on:
        Exception types worth retrying; anything else propagates
        immediately.
    sleep:
        Injectable sleeper (tests pass a recorder; default
        ``time.sleep``).
    operation:
        Label on the ``resilience_retries_total`` /
        ``resilience_retries_exhausted_total`` counters and log lines.

    Raises
    ------
    RetryExhausted
        When every attempt failed with a retryable exception.
    """
    if retries < 0:
        raise ValueError("retries must be non-negative")
    registry = registry or get_registry()
    sleep = sleep if sleep is not None else time.sleep
    retry_on = tuple(retry_on)
    delays = backoff_delays(retries, base_delay_s, max_delay_s, factor, rng)
    last: BaseException | None = None
    for attempt in range(retries + 1):
        try:
            return fn(*args, **kwargs)
        except retry_on as exc:
            last = exc
            if attempt >= retries:
                break
            registry.counter(
                "resilience_retries_total",
                help="Retried calls by operation.",
                operation=operation or getattr(fn, "__name__", "call"),
            ).inc()
            _log.warning(
                "retrying after failure",
                extra={
                    "operation": operation or getattr(fn, "__name__", "call"),
                    "attempt": attempt + 1,
                    "error": type(exc).__name__,
                    "delay_s": round(delays[attempt], 4),
                },
            )
            sleep(delays[attempt])
    assert last is not None
    registry.counter(
        "resilience_retries_exhausted_total",
        help="Calls that failed every retry attempt.",
        operation=operation or getattr(fn, "__name__", "call"),
    ).inc()
    raise RetryExhausted(
        operation or getattr(fn, "__name__", "call"), retries + 1, last
    ) from last
