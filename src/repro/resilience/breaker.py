"""Circuit breaker for side-effecting calls (repair execution).

Repairs touch the monitored database.  When execution starts failing
(instance unreachable, throttle API erroring) the right move is to stop
hammering it: the breaker opens after ``failure_threshold`` consecutive
failures, rejects calls while open, and lets a single probe through
after ``recovery_s`` (half-open).  A probe success closes the circuit;
a probe failure re-opens it.

State is exported as a telemetry gauge (``circuit_breaker_state``:
0 closed / 1 open / 2 half-open) plus transition/rejection counters, so
an operator sees a stuck-open breaker before wondering why repairs
stopped landing.
"""

from __future__ import annotations

import enum
import time
from typing import Any, Callable

from repro.telemetry import MetricsRegistry, get_logger, get_registry

__all__ = ["BreakerState", "CircuitBreaker", "CircuitOpenError"]

_log = get_logger("resilience")


class BreakerState(enum.Enum):
    CLOSED = 0
    OPEN = 1
    HALF_OPEN = 2


class CircuitOpenError(RuntimeError):
    """The breaker rejected the call without attempting it."""

    def __init__(self, name: str, retry_in_s: float) -> None:
        super().__init__(
            f"circuit {name!r} is open; retry in {max(retry_in_s, 0.0):.3f}s"
        )
        self.name = name
        self.retry_in_s = retry_in_s


class CircuitBreaker:
    """Closed → open → half-open breaker with an injectable clock."""

    def __init__(
        self,
        name: str = "breaker",
        failure_threshold: int = 3,
        recovery_s: float = 60.0,
        clock: Callable[[], float] | None = None,
        registry: MetricsRegistry | None = None,
        **labels: str,
    ) -> None:
        if failure_threshold <= 0:
            raise ValueError("failure_threshold must be positive")
        if recovery_s < 0:
            raise ValueError("recovery_s must be non-negative")
        self.name = name
        self.failure_threshold = int(failure_threshold)
        self.recovery_s = float(recovery_s)
        self.clock = clock if clock is not None else time.monotonic
        self.registry = registry or get_registry()
        self._labels = {"breaker": name, **labels}
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._opened_at: float | None = None
        self._g_state = self.registry.gauge(
            "circuit_breaker_state",
            help="Breaker state: 0 closed, 1 open, 2 half-open.",
            **self._labels,
        )
        self._g_state.set(self._state.value)

    # ------------------------------------------------------------------
    @property
    def state(self) -> BreakerState:
        """Current state, promoting open → half-open once recovery_s passed."""
        if self._state is BreakerState.OPEN and self._opened_at is not None:
            if self.clock() - self._opened_at >= self.recovery_s:
                self._transition(BreakerState.HALF_OPEN)
        return self._state

    @property
    def consecutive_failures(self) -> int:
        return self._consecutive_failures

    def _transition(self, state: BreakerState) -> None:
        if state is self._state:
            return
        self._state = state
        self._g_state.set(state.value)
        self.registry.counter(
            "circuit_breaker_transitions_total",
            help="Breaker state transitions.",
            to=state.name.lower(),
            **self._labels,
        ).inc()
        _log.info(
            "circuit breaker transition",
            extra={"breaker": self.name, "state": state.name.lower()},
        )

    # ------------------------------------------------------------------
    def allow(self) -> bool:
        """Whether a call may proceed right now (no side effects)."""
        return self.state is not BreakerState.OPEN

    def record_success(self) -> None:
        self._consecutive_failures = 0
        self._opened_at = None
        self._transition(BreakerState.CLOSED)

    def record_failure(self) -> None:
        self._consecutive_failures += 1
        if (
            self._state is BreakerState.HALF_OPEN
            or self._consecutive_failures >= self.failure_threshold
        ):
            self._opened_at = self.clock()
            self._transition(BreakerState.OPEN)

    def call(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Any:
        """Run ``fn`` under the breaker.

        Raises :class:`CircuitOpenError` without calling ``fn`` while
        open; otherwise records the outcome and re-raises failures.
        """
        if not self.allow():
            self.registry.counter(
                "circuit_breaker_rejections_total",
                help="Calls rejected by an open breaker.",
                **self._labels,
            ).inc()
            retry_in = self.recovery_s
            if self._opened_at is not None:
                retry_in = self.recovery_s - (self.clock() - self._opened_at)
            raise CircuitOpenError(self.name, retry_in)
        try:
            result = fn(*args, **kwargs)
        except Exception:
            self.record_failure()
            raise
        self.record_success()
        return result
