"""Resilience primitives: survive the substrate the pipeline runs on.

PinSQL's always-on loop assumes a perfect world — brokers never stall,
repair execution never fails, metric windows never have holes.  This
package holds the reusable primitives that drop that assumption:

* :func:`retry_call` — bounded retries with exponential backoff and
  *deterministic* jitter (a seeded RNG, injectable sleep — tests never
  touch the wall clock);
* :class:`Deadline` / :class:`StageWatchdog` — per-diagnosis time
  budgets checked between pipeline stages, so one pathological case
  cannot wedge a fleet worker;
* :class:`CircuitBreaker` — closed/open/half-open around side-effecting
  calls (repair execution), with a telemetry-labelled state gauge;
* degraded mode — :class:`DegradedModePolicy` detects metric-window
  gaps and missing context, falls back to interpolation or a shrunken
  window, and stamps the resulting :class:`DiagnosisConfidence` on the
  diagnosis so downstream consumers (incident records, DBAs) can see
  which verdicts rode on imperfect evidence.

Everything is clock- and RNG-injectable: determinism is a feature, not
an accident, because the chaos harness (:mod:`repro.chaos`) replays the
exact same fault sequences against these primitives.
"""

from repro.resilience.retry import RetryExhausted, backoff_delays, retry_call
from repro.resilience.deadline import Deadline, DeadlineExceeded, StageWatchdog
from repro.resilience.breaker import (
    BreakerState,
    CircuitBreaker,
    CircuitOpenError,
)
from repro.resilience.degraded import (
    DegradedAssessment,
    DegradedModePolicy,
    DiagnosisConfidence,
    interpolate_series,
    window_gap_fraction,
)

__all__ = [
    "BreakerState",
    "CircuitBreaker",
    "CircuitOpenError",
    "Deadline",
    "DeadlineExceeded",
    "DegradedAssessment",
    "DegradedModePolicy",
    "DiagnosisConfidence",
    "RetryExhausted",
    "StageWatchdog",
    "backoff_delays",
    "interpolate_series",
    "retry_call",
    "window_gap_fraction",
]
