"""Per-diagnosis time budgets: deadlines and a stage watchdog.

One pathological anomaly case (a huge template catalog, a degenerate
correlation matrix) must not wedge a fleet worker: the diagnosis loop
hands each diagnosis a :class:`Deadline` and checks it between pipeline
stages.  The clock is injectable, so tests drive expiry without
sleeping.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Iterator

from repro.telemetry import MetricsRegistry, get_logger, get_registry

__all__ = ["Deadline", "DeadlineExceeded", "StageWatchdog"]

_log = get_logger("resilience")


class DeadlineExceeded(RuntimeError):
    """A stage ran past its diagnosis budget."""

    def __init__(self, stage: str, budget_s: float, elapsed_s: float) -> None:
        super().__init__(
            f"stage {stage!r} exceeded the {budget_s:.3f}s diagnosis budget "
            f"({elapsed_s:.3f}s elapsed)"
        )
        self.stage = stage
        self.budget_s = budget_s
        self.elapsed_s = elapsed_s


class Deadline:
    """A monotonic time budget started at construction."""

    __slots__ = ("budget_s", "_clock", "_t0")

    def __init__(
        self, budget_s: float, clock: Callable[[], float] | None = None
    ) -> None:
        if budget_s <= 0:
            raise ValueError("budget_s must be positive")
        self.budget_s = float(budget_s)
        self._clock = clock if clock is not None else time.monotonic
        self._t0 = self._clock()

    @property
    def elapsed(self) -> float:
        return self._clock() - self._t0

    @property
    def remaining(self) -> float:
        return self.budget_s - self.elapsed

    @property
    def expired(self) -> bool:
        return self.remaining <= 0

    def check(self, stage: str = "") -> None:
        """Raise :class:`DeadlineExceeded` when the budget is spent."""
        elapsed = self.elapsed
        if elapsed > self.budget_s:
            raise DeadlineExceeded(stage or "deadline", self.budget_s, elapsed)


class StageWatchdog:
    """Deadline factory + telemetry for a diagnosis loop.

    The engine asks for one deadline per diagnosis and wraps each stage
    in :meth:`stage`; a stage that finishes after the budget raises
    :class:`DeadlineExceeded` (counted per stage in
    ``diagnosis_stage_timeouts_total``), which the loop turns into a
    skipped — not crashed — diagnosis.

    ``budget_s=None`` disables the watchdog entirely (every check is a
    no-op), which is what the clean-path overhead benchmark compares
    against.
    """

    def __init__(
        self,
        budget_s: float | None,
        clock: Callable[[], float] | None = None,
        registry: MetricsRegistry | None = None,
        **labels: str,
    ) -> None:
        if budget_s is not None and budget_s <= 0:
            raise ValueError("budget_s must be positive (or None to disable)")
        self.budget_s = budget_s
        self.clock = clock if clock is not None else time.monotonic
        self.registry = registry or get_registry()
        self.labels = labels

    @property
    def enabled(self) -> bool:
        return self.budget_s is not None

    def deadline(self) -> Deadline | None:
        """A fresh deadline for one diagnosis (None when disabled)."""
        if self.budget_s is None:
            return None
        return Deadline(self.budget_s, clock=self.clock)

    @contextmanager
    def stage(self, deadline: Deadline | None, name: str) -> Iterator[None]:
        """Run one stage; raise (and count) if it overran the deadline."""
        yield
        if deadline is None:
            return
        try:
            deadline.check(name)
        except DeadlineExceeded:
            self.registry.counter(
                "diagnosis_stage_timeouts_total",
                help="Diagnosis stages that ran past the per-diagnosis budget.",
                stage=name,
                **self.labels,
            ).inc()
            _log.warning(
                "diagnosis stage overran its budget",
                extra={
                    "stage": name,
                    "budget_s": deadline.budget_s,
                    "elapsed_s": round(deadline.elapsed, 4),
                    **self.labels,
                },
            )
            raise
