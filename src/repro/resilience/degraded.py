"""Degraded-mode policy: diagnose on imperfect evidence, and say so.

The detector's metric mirror can have holes — dropped messages, a
collector restart, a late-arriving batch still in flight.  Refusing to
diagnose would miss real incidents; diagnosing silently would launder
shaky evidence into confident verdicts.  The middle path, following
DBSherlock's handling of imperfect metric windows: detect the gaps,
fall back (linear interpolation across holes, a shrunken context
window when leading context is missing entirely), and stamp the
resulting :class:`DiagnosisConfidence` on the diagnosis so incident
records carry it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.telemetry import MetricsRegistry, get_registry
from repro.telemetry.selfmon import forward_fill_series
from repro.timeseries import TimeSeries

__all__ = [
    "DiagnosisConfidence",
    "DegradedAssessment",
    "DegradedModePolicy",
    "interpolate_series",
    "window_gap_fraction",
]


class DiagnosisConfidence(str, enum.Enum):
    """How much the evidence behind a diagnosis can be trusted."""

    FULL = "full"
    DEGRADED = "degraded"

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return self.value


def window_gap_fraction(
    samples: Mapping[int, float], ts: int, te: int, interval: int = 1
) -> float:
    """Fraction of expected samples missing from ``[ts, te)``.

    ``1.0`` means the window is empty; ``0.0`` means every expected
    point (one per ``interval`` seconds) is present.
    """
    if te <= ts:
        raise ValueError("te must be greater than ts")
    expected = max(1, (te - ts) // max(interval, 1))
    present = sum(1 for t in samples if ts <= t < te)
    return max(0.0, 1.0 - present / expected)


def interpolate_series(
    samples: Mapping[int, float], ts: int, te: int, name: str = ""
) -> TimeSeries:
    """Linear interpolation of raw samples onto ``[ts, te)`` at 1 Hz.

    Interior gaps are bridged linearly; the edges extend flat from the
    first/last available sample (``np.interp`` semantics).  Raises
    :class:`ValueError` on an empty sample set — the caller is expected
    to have checked the window is non-empty.
    """
    points = sorted((t, v) for t, v in samples.items() if ts <= t < te)
    if not points:
        raise ValueError(f"no samples for {name or 'series'} in [{ts}, {te})")
    xs = np.asarray([t for t, _ in points], dtype=np.float64)
    ys = np.asarray([v for _, v in points], dtype=np.float64)
    grid = np.arange(ts, te, dtype=np.float64)
    return TimeSeries(np.interp(grid, xs, ys), start=ts, name=name)


@dataclass(frozen=True)
class DegradedAssessment:
    """What the policy found out about one evidence window."""

    confidence: DiagnosisConfidence
    #: Machine-readable reasons, e.g. ``metric_gap:active_session:0.41``.
    reasons: tuple[str, ...] = ()
    #: Possibly shrunken window start (``>= `` the requested ``ts``).
    ts: int = 0
    #: Per-metric gap fraction over the (final) window.
    gap_fractions: dict = field(default_factory=dict)
    #: Metrics whose series should be interpolated rather than
    #: forward-filled (gap fraction above the policy threshold).
    interpolated: tuple[str, ...] = ()

    @property
    def degraded(self) -> bool:
        return self.confidence is DiagnosisConfidence.DEGRADED


class DegradedModePolicy:
    """Detects evidence-window defects and picks the fallback.

    Parameters
    ----------
    max_gap_fraction:
        Per-metric missing-sample fraction above which the window is
        considered gappy: the metric's series is rebuilt by linear
        interpolation and the diagnosis is stamped ``degraded``.
    min_window_fraction:
        When leading context is missing (the mirror starts after the
        requested ``ts``) the window is shrunk to the earliest available
        sample.  Shrinking below this fraction of the requested window
        also stamps ``degraded``.
    """

    def __init__(
        self,
        max_gap_fraction: float = 0.25,
        min_window_fraction: float = 0.5,
        registry: MetricsRegistry | None = None,
        **labels: str,
    ) -> None:
        if not 0.0 < max_gap_fraction <= 1.0:
            raise ValueError("max_gap_fraction must be in (0, 1]")
        if not 0.0 < min_window_fraction <= 1.0:
            raise ValueError("min_window_fraction must be in (0, 1]")
        self.max_gap_fraction = float(max_gap_fraction)
        self.min_window_fraction = float(min_window_fraction)
        self.registry = registry or get_registry()
        self.labels = labels

    # ------------------------------------------------------------------
    def assess(
        self,
        samples_by_metric: Mapping[str, Mapping[int, float]],
        ts: int,
        te: int,
        anomaly_start: int | None = None,
        extra_reasons: tuple[str, ...] = (),
    ) -> DegradedAssessment:
        """Inspect the mirror over ``[ts, te)``; decide the fallback.

        ``extra_reasons`` lets the caller contribute defects the policy
        cannot see itself (e.g. quarantined log batches); any reason —
        detected or contributed — stamps the window degraded.
        """
        reasons = list(extra_reasons)
        final_ts = ts
        # Leading context missing entirely → shrink the window.
        earliest = min(
            (
                min((t for t in samples if ts <= t < te), default=te)
                for samples in samples_by_metric.values()
            ),
            default=te,
        )
        if earliest > ts:
            limit = te - 1 if anomaly_start is None else min(anomaly_start, te - 1)
            final_ts = min(int(earliest), max(ts, limit))
            if final_ts > ts:
                requested = te - ts
                kept = te - final_ts
                reasons.append(f"shrunken_window:{final_ts - ts}s")
                if kept < self.min_window_fraction * requested:
                    reasons.append("window_below_min_fraction")
        gap_fractions: dict[str, float] = {}
        interpolated: list[str] = []
        for name, samples in samples_by_metric.items():
            gap = window_gap_fraction(samples, final_ts, te)
            gap_fractions[name] = gap
            if gap >= 1.0:
                # Nothing at all in the window: nothing to interpolate;
                # the engine decides whether the metric was required.
                continue
            if gap > self.max_gap_fraction:
                interpolated.append(name)
                reasons.append(f"metric_gap:{name}:{gap:.2f}")
        confidence = (
            DiagnosisConfidence.DEGRADED if reasons else DiagnosisConfidence.FULL
        )
        if reasons:
            self.registry.counter(
                "diagnosis_degraded_total",
                help="Diagnoses that fell back to degraded mode.",
                **self.labels,
            ).inc()
        return DegradedAssessment(
            confidence=confidence,
            reasons=tuple(reasons),
            ts=final_ts,
            gap_fractions=gap_fractions,
            interpolated=tuple(interpolated),
        )

    def build_series(
        self,
        samples: Mapping[int, float],
        assessment: DegradedAssessment,
        te: int,
        name: str = "",
    ) -> TimeSeries:
        """The evidence series for one metric under the assessment.

        Gappy metrics (per the assessment) are linearly interpolated;
        healthy ones keep the pipeline's forward-fill semantics.
        """
        if name in assessment.interpolated:
            return interpolate_series(samples, assessment.ts, te, name=name)
        return forward_fill_series(samples, assessment.ts, te, name=name)
