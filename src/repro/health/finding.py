"""The health finding: one proactive observation about the fleet.

Where an :class:`~repro.incidents.IncidentRecord` freezes the evidence
of an anomaly that *already fired*, a :class:`HealthFinding` records a
condition a DBA would want to know about *before* the detector
threshold is crossed: a template whose response time is creeping up, a
rising lock footprint, traffic concentrating on anti-pattern SQL, an
instance whose incidents keep degrading to low-confidence evidence.

Findings are plain data with the same strict-JSON discipline as
incident records — ``to_dict`` / ``from_dict`` round-trip exactly,
because the findings store persists them as JSONL lines and the daily
report, CLI and lead-time harness all consume the serialised shape.
Severity reuses :class:`~repro.sqlanalysis.Severity` so one ordering
spans static analysis and health sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.sqlanalysis import Severity

__all__ = ["HealthFinding"]

#: Evidence values must stay strict-JSON scalars.
_SCALARS = (str, int, float, bool)


def _jsonable(value: object) -> object:
    if value is None or isinstance(value, _SCALARS):
        return value
    return str(value)


@dataclass(frozen=True)
class HealthFinding:
    """One severity-scored proactive observation from a health sweep."""

    #: Id of the check that produced the finding (``rising-response-time``).
    check: str
    severity: Severity
    #: The mechanism, in DBA language: what is trending and why it matters.
    message: str
    #: The monitored instance; empty for fleet-scope findings.
    instance_id: str = ""
    #: The implicated template, when the check is template-scoped.
    sql_id: str = ""
    #: The implicated metric series, when the check is metric-scoped.
    metric: str = ""
    #: Stream time of the sweep that produced the finding.
    detected_at: int = 0
    #: Machine-readable numbers behind the message (slopes, shares,
    #: counts) — strict-JSON scalars only.
    evidence: dict = field(default_factory=dict)
    #: What a DBA should do about it.
    suggestion: str = ""
    #: Id of the sweep, tying all of one sweep's findings together.
    sweep_id: str = ""

    def to_dict(self) -> dict:
        """Strict-JSON form (severity as its label string)."""
        return {
            "check": self.check,
            "severity": self.severity.label,
            "message": self.message,
            "instance_id": self.instance_id,
            "sql_id": self.sql_id,
            "metric": self.metric,
            "detected_at": self.detected_at,
            "evidence": {str(k): _jsonable(v) for k, v in self.evidence.items()},
            "suggestion": self.suggestion,
            "sweep_id": self.sweep_id,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "HealthFinding":
        return cls(
            check=str(data["check"]),
            severity=Severity.from_label(str(data.get("severity", "info"))),
            message=str(data.get("message", "")),
            instance_id=str(data.get("instance_id", "")),
            sql_id=str(data.get("sql_id", "")),
            metric=str(data.get("metric", "")),
            detected_at=int(data.get("detected_at", 0)),
            evidence=dict(data.get("evidence", {})),
            suggestion=str(data.get("suggestion", "")),
            sweep_id=str(data.get("sweep_id", "")),
        )
