"""Scheduled proactive sweeps over the fleet's observations.

The :class:`HealthSweeper` is the "automated DBA" loop: on a fixed
cadence it builds one :class:`~repro.health.checks.CheckContext` per
monitored instance (metric samples, per-template series, static-
analysis findings, recent incidents, consumer lag) plus one fleet-scope
context (merged incidents, pipeline self-telemetry), runs every
registered check against them, and persists the resulting findings.

Checks are run non-fatally, exactly like :class:`~repro.sqlanalysis
.SqlAnalyzer` rules: a check that raises is caught, counted via
``health_check_failures_total{check=...}``, and surfaced as a finding
*about the health layer itself* — a broken check must degrade one
observation, never kill the sweep.

Three entry points share the machinery:

- :meth:`sweep_fleet` — live sweep of a running
  :class:`~repro.fleet.FleetDiagnosisService`;
- :meth:`maybe_sweep` — the scheduled variant the fleet service calls
  each step (honours ``sweep_interval_s`` in stream time);
- :meth:`sweep_stores` — offline sweep over persisted incident stores
  (no live engines: only the incident-backed and self-health checks
  have evidence to act on).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Mapping

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.fleet.engine import InstanceDiagnosisEngine
    from repro.fleet.service import FleetDiagnosisService

from repro.collection.aggregator import aggregate_logstore
from repro.health.checks import (
    CheckContext,
    HealthCheck,
    HealthConfig,
    default_checks,
)
from repro.health.finding import HealthFinding
from repro.health.store import FindingsStore
from repro.incidents.store import IncidentMeta, IncidentStore, discover_stores
from repro.resilience import BreakerState
from repro.sqlanalysis import Severity
from repro.telemetry import (
    MetricsRegistry,
    filter_snapshot,
    get_logger,
    get_registry,
)

__all__ = ["HealthSweeper", "SweepResult"]

_log = get_logger("health")

#: Telemetry counters a fleet-scope context mirrors for self-health.
_SELF_COUNTERS = ("span_errors_total", "collector_quarantined_total")


@dataclass
class SweepResult:
    """The outcome of one sweep (all scopes)."""

    sweep_id: str
    now: int
    findings: list[HealthFinding] = field(default_factory=list)
    #: (check_id, context) pairs executed, for coverage accounting.
    checks_run: int = 0
    #: Checks that raised (each also produced a health-layer finding).
    check_failures: int = 0
    instances: tuple[str, ...] = ()

    @property
    def worst(self) -> Severity | None:
        return max((f.severity for f in self.findings), default=None)

    def for_instance(self, instance_id: str) -> list[HealthFinding]:
        return [f for f in self.findings if f.instance_id == instance_id]


class HealthSweeper:
    """Runs registered health checks on a schedule and persists findings.

    Parameters
    ----------
    store:
        Optional durable :class:`FindingsStore`; sweeps also keep their
        results on :attr:`sweeps` so a store is not required.
    incident_store:
        Optional :class:`IncidentStore` feeding the incident-backed
        checks (repeat offenders, degraded-confidence rates).
    checks:
        The check suite; defaults to every registered check.
    config:
        Thresholds and cadence (:class:`HealthConfig`).
    registry:
        Metrics registry for the sweeper's own telemetry.
    """

    def __init__(
        self,
        store: FindingsStore | None = None,
        incident_store: IncidentStore | None = None,
        checks: Iterable[HealthCheck] | None = None,
        config: HealthConfig | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.store = store
        self.incident_store = incident_store
        self.checks = tuple(checks) if checks is not None else default_checks()
        self.config = config or HealthConfig()
        self.registry = registry or get_registry()
        self.sweeps: list[SweepResult] = []
        self._seq = 0
        self._last_sweep_at: int | None = None
        #: Static analysis is pure on the (immutable) template text, so
        #: each template is analyzed once per sweeper lifetime — without
        #: this the sweep re-parses every catalog entry every interval
        #: and blows the <5% overhead budget.
        self._analysis_cache: dict[tuple[str, str], tuple] = {}
        self._m_sweeps = self.registry.counter(
            "health_sweeps_total", help="Completed health sweeps."
        )
        self._g_last = self.registry.gauge(
            "health_last_sweep_findings",
            help="Findings emitted by the most recent sweep.",
        )

    # ------------------------------------------------------------------
    # Context assembly
    # ------------------------------------------------------------------
    def context_for_engine(
        self,
        engine: "InstanceDiagnosisEngine",
        now: int,
        telemetry: Mapping | None = None,
    ) -> CheckContext:
        """One instance's observations over the sweep window.

        ``telemetry`` lets :meth:`sweep_fleet` snapshot the registry
        once and hand each context its instance-filtered slice; when
        omitted, the slice is computed here.
        """
        cfg = self.config
        if telemetry is None:
            telemetry = self._instance_telemetry(
                self.registry.snapshot(), engine.instance_id
            )
        ts = max(0, now - cfg.sweep_window_s)
        templates = None
        analysis: dict[str, tuple] = {}
        if now > ts:
            templates = aggregate_logstore(engine.logstore, ts, now)
            for sql_id in templates.sql_ids:
                key = (engine.instance_id, sql_id)
                found = self._analysis_cache.get(key)
                if found is None:
                    info = engine.catalog.get(sql_id)
                    found = (
                        tuple(engine.analyzer.analyze_template(info))
                        if info is not None
                        else ()
                    )
                    self._analysis_cache[key] = found
                if found:
                    analysis[sql_id] = found
        incidents: list[IncidentMeta] = []
        if self.incident_store is not None:
            incidents = self.incident_store.query(
                instance=engine.instance_id,
                since=max(0, now - cfg.incident_window_s),
            )
        return CheckContext(
            instance_id=engine.instance_id,
            now=now,
            config=cfg,
            scope="instance",
            metrics=engine.metric_window_snapshot(ts, now),
            templates=templates,
            analysis=analysis,
            incidents=incidents,
            consumer_lag=engine.lag,
            telemetry=telemetry,
            advisories=self._advisories_for_engine(engine, templates),
        )

    @staticmethod
    def _advisories_for_engine(
        engine: "InstanceDiagnosisEngine", templates
    ) -> tuple:
        """Workload advisories over the sweep window's templates.

        Uses the engine's own :class:`WorkloadAnalyzer` (when present)
        with traffic weights taken from the window's aggregated metric
        store.  Non-fatal by design: an advisory failure degrades one
        context field, never the sweep.
        """
        advisor = getattr(engine, "advisor", None)
        if advisor is None or templates is None:
            return ()
        try:
            from repro.sqlanalysis.workload import TrafficWeight

            weights = {}
            infos = []
            for sql_id in templates.sql_ids:
                info = engine.catalog.get(sql_id)
                if info is None:
                    continue
                infos.append(info)
                calls = float(templates.executions(sql_id).values.sum())
                rows = float(
                    templates.get(sql_id, "total_examined_rows").values.sum()
                )
                weights[sql_id] = TrafficWeight(calls=calls, rows_examined=rows)
            report = advisor.analyze(infos, weights)
            return tuple(report.advisories)
        except Exception:
            _log.warning(
                "workload advisory pass failed during sweep",
                extra={"instance": engine.instance_id},
                exc_info=True,
            )
            return ()

    @staticmethod
    def _instance_telemetry(snapshot: Mapping, instance_id: str) -> Mapping:
        """One instance's slice of a registry snapshot.

        Single-instance engines (empty id) label nothing, so their
        slice is the whole snapshot — there is nobody to confuse them
        with.
        """
        if not instance_id:
            return snapshot
        return filter_snapshot(dict(snapshot), instance=instance_id)

    def fleet_context(
        self,
        now: int,
        instances: int,
        breakers_open: int = 0,
        telemetry: Mapping | None = None,
    ) -> CheckContext:
        """The fleet-scope context: merged incidents + self-telemetry."""
        cfg = self.config
        if telemetry is None:
            telemetry = self.registry.snapshot()
        incidents: list[IncidentMeta] = []
        if self.incident_store is not None:
            incidents = self.incident_store.query(
                since=max(0, now - cfg.incident_window_s)
            )
        counters = {
            name: self._counter_total(name) for name in _SELF_COUNTERS
        }
        counters["circuit_breakers_open"] = float(breakers_open)
        return CheckContext(
            instance_id="",
            now=now,
            config=cfg,
            scope="fleet",
            incidents=incidents,
            counters=counters,
            instances=instances,
            telemetry=telemetry,
        )

    def _counter_total(self, name: str) -> float:
        """Sum one counter family across every label combination."""
        total = 0.0
        for fam_name, kind, _key, inst in self.registry:
            if fam_name == name and kind == "counter":
                total += inst.value
        return total

    # ------------------------------------------------------------------
    # Sweeping
    # ------------------------------------------------------------------
    def sweep_contexts(
        self, contexts: Iterable[CheckContext], now: int
    ) -> SweepResult:
        """Run the check suite over pre-built contexts (the core loop)."""
        self._seq += 1
        result = SweepResult(sweep_id=f"sweep-{now}-{self._seq:04d}", now=now)
        seen_instances: list[str] = []
        for ctx in contexts:
            if ctx.scope == "instance" and ctx.instance_id not in seen_instances:
                seen_instances.append(ctx.instance_id)
            for check in self.checks:
                if check.scope != ctx.scope:
                    continue
                result.checks_run += 1
                try:
                    produced = list(check.check(ctx))
                except Exception as exc:
                    # The satellite fix: a raising check degrades one
                    # observation and becomes evidence, never a crash.
                    result.check_failures += 1
                    self.registry.counter(
                        "health_check_failures_total",
                        help="Health checks that raised during a sweep.",
                        check=check.check_id,
                    ).inc()
                    _log.warning(
                        "health check failed",
                        extra={
                            "check": check.check_id,
                            "instance": ctx.instance_id,
                        },
                        exc_info=True,
                    )
                    produced = [
                        HealthFinding(
                            check="health-layer",
                            severity=Severity.WARNING,
                            instance_id=ctx.instance_id,
                            message=(
                                f"health check {check.check_id!r} raised "
                                f"{type(exc).__name__} and was skipped; its "
                                "coverage is missing from this sweep"
                            ),
                            evidence={
                                "failed_check": check.check_id,
                                "error": type(exc).__name__,
                            },
                            suggestion=(
                                "fix or unregister the failing check; "
                                "see health_check_failures_total"
                            ),
                        )
                    ]
                for finding in produced:
                    result.findings.append(
                        replace(
                            finding, detected_at=now, sweep_id=result.sweep_id
                        )
                    )
        result.instances = tuple(seen_instances)
        for finding in result.findings:
            self.registry.counter(
                "health_findings_total",
                help="Health findings emitted, by check.",
                check=finding.check,
            ).inc()
        self._m_sweeps.inc()
        self._g_last.set(len(result.findings))
        if self.store is not None:
            self.store.extend(result.findings)
        self.sweeps.append(result)
        self._last_sweep_at = now
        _log.info(
            "health sweep completed",
            extra={
                "sweep_id": result.sweep_id,
                "findings": len(result.findings),
                "checks_run": result.checks_run,
                "check_failures": result.check_failures,
            },
        )
        return result

    def sweep_engine(
        self, engine: "InstanceDiagnosisEngine", now: int | None = None
    ) -> SweepResult:
        """Sweep a single live engine (instance scope only)."""
        if now is None:
            now = engine.detector.stream_time or 0
        return self.sweep_contexts([self.context_for_engine(engine, now)], now)

    def sweep_fleet(
        self, service: "FleetDiagnosisService", now: int | None = None
    ) -> SweepResult:
        """Sweep every registered instance plus the fleet scope."""
        engines = [service.engine(iid) for iid in service.instance_ids]
        if now is None:
            times = [
                e.detector.stream_time
                for e in engines
                if e.detector.stream_time is not None
            ]
            now = max(times) if times else 0
        snap = self.registry.snapshot()
        contexts = [
            self.context_for_engine(
                e, now, telemetry=self._instance_telemetry(snap, e.instance_id)
            )
            for e in engines
        ]
        breakers_open = sum(
            1 for e in engines if e.repair_breaker.state is BreakerState.OPEN
        )
        contexts.append(
            self.fleet_context(
                now,
                instances=len(engines),
                breakers_open=breakers_open,
                telemetry=snap,
            )
        )
        return self.sweep_contexts(contexts, now)

    def maybe_sweep(
        self, service: "FleetDiagnosisService", now: int | None = None
    ) -> SweepResult | None:
        """Scheduled sweep: runs only once per ``sweep_interval_s``.

        Called by the fleet service's housekeeping each step; ``now`` is
        stream time (max detector stream time across engines).  Returns
        the sweep result when one ran, else ``None``.
        """
        if now is None:
            times = [
                service.engine(iid).detector.stream_time
                for iid in service.instance_ids
                if service.engine(iid).detector.stream_time is not None
            ]
            if not times:
                return None
            now = max(times)
        if (
            self._last_sweep_at is not None
            and now - self._last_sweep_at < self.config.sweep_interval_s
        ):
            return None
        return self.sweep_fleet(service, now=now)

    def sweep_stores(
        self, path: str | Path, now: int | None = None
    ) -> SweepResult:
        """Offline sweep over persisted incident stores under ``path``.

        Without live engines only the incident-backed and self-health
        checks have evidence: the sweep builds one incident-only context
        per instance seen in the stores plus the fleet context.  ``now``
        defaults to the newest incident's creation time.
        """
        metas: list[IncidentMeta] = []
        for store_dir in discover_stores(path):
            metas.extend(IncidentStore(store_dir).metas())
        if now is None:
            now = max((m.created_at for m in metas), default=0)
        cfg = self.config
        cutoff = max(0, now - cfg.incident_window_s)
        metas = [m for m in metas if m.anomaly_end > cutoff]
        by_instance: dict[str, list[IncidentMeta]] = {}
        for meta in metas:
            by_instance.setdefault(meta.instance_id, []).append(meta)
        contexts = [
            CheckContext(
                instance_id=instance_id,
                now=now,
                config=cfg,
                scope="instance",
                incidents=tuple(incident_metas),
            )
            for instance_id, incident_metas in sorted(by_instance.items())
        ]
        counters = {name: self._counter_total(name) for name in _SELF_COUNTERS}
        counters["circuit_breakers_open"] = 0.0
        contexts.append(
            CheckContext(
                instance_id="",
                now=now,
                config=cfg,
                scope="fleet",
                incidents=tuple(metas),
                counters=counters,
                instances=max(1, len(by_instance)),
            )
        )
        return self.sweep_contexts(contexts, now)
