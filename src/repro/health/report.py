"""The daily fleet health report (text + HTML).

Rolls a batch of health findings — typically everything a
:class:`~repro.health.store.FindingsStore` holds for the last day — up
into the report a DBA would read with their coffee: worst severity
first, findings grouped per instance, fleet-scope findings on top, and
a check-coverage footer.  The HTML variant lives beside the incident
flight recorder's report and links back to it, so "what is about to go
wrong" and "what already went wrong" are one click apart.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.core.report import html_escape, html_table, render_html_document
from repro.health.finding import HealthFinding
from repro.incidents.health import FleetHealth
from repro.sqlanalysis import Severity

__all__ = [
    "HealthReport",
    "build_health_report",
    "render_health_report_text",
    "render_health_report_html",
]


@dataclass
class HealthReport:
    """Aggregated view over one batch of health findings."""

    findings: list[HealthFinding] = field(default_factory=list)
    #: Optional reactive rollup rendered alongside the proactive view.
    fleet: FleetHealth | None = None

    @property
    def worst(self) -> Severity | None:
        return max((f.severity for f in self.findings), default=None)

    @property
    def by_check(self) -> dict[str, int]:
        return dict(Counter(f.check for f in self.findings).most_common())

    @property
    def by_instance(self) -> dict[str, list[HealthFinding]]:
        """Findings per instance (fleet scope under ``""``), worst first."""
        grouped: dict[str, list[HealthFinding]] = {}
        for finding in self.findings:
            grouped.setdefault(finding.instance_id, []).append(finding)
        for findings in grouped.values():
            findings.sort(key=lambda f: (-int(f.severity), f.check, f.sql_id))
        return dict(sorted(grouped.items()))

    @property
    def sweep_count(self) -> int:
        return len({f.sweep_id for f in self.findings if f.sweep_id})


def build_health_report(
    findings, fleet: FleetHealth | None = None
) -> HealthReport:
    """Assemble the report model from findings (any iterable).

    Consecutive sweeps re-emit a finding for as long as its condition
    persists; the report describes the fleet's *state*, so each
    (instance, check, subject) keeps only its most recent finding.
    """
    latest: dict[tuple[str, str, str], HealthFinding] = {}
    for finding in findings:
        key = (finding.instance_id, finding.check, _subject(finding))
        held = latest.get(key)
        if held is None or finding.detected_at >= held.detected_at:
            latest[key] = finding
    return HealthReport(findings=list(latest.values()), fleet=fleet)


def _subject(finding: HealthFinding) -> str:
    return finding.sql_id or finding.metric or "-"


def render_health_report_text(report: HealthReport) -> str:
    """The daily report as console text (``repro health report``)."""
    worst = report.worst
    lines = [
        "=" * 64,
        "Fleet health report (proactive sweeps)",
        "=" * 64,
        f"findings : {len(report.findings)} across "
        f"{report.sweep_count} sweep(s); worst severity: "
        f"{worst.label if worst is not None else 'none'}",
        "",
    ]
    grouped = report.by_instance
    if not grouped:
        lines.append("No findings — the fleet looks healthy.")
    for instance_id, findings in grouped.items():
        scope = instance_id or "(fleet)"
        lines.append(f"{scope}:")
        for finding in findings:
            lines.append(
                f"  [{finding.severity.label.upper():<8}] "
                f"{finding.check:<24} {_subject(finding):<14} "
                f"{finding.message}"
            )
            if finding.suggestion:
                lines.append(f"{'':14}-> {finding.suggestion}")
        lines.append("")
    if report.by_check:
        lines.append("Findings by check:")
        for check, count in report.by_check.items():
            lines.append(f"  {check:<26} {count:>5}")
        lines.append("")
    if report.fleet is not None:
        fleet = report.fleet
        lines += [
            "Reactive context (incident store):",
            f"  incidents recorded : {fleet.total_incidents}",
            f"  repairs executed   : {fleet.repairs_executed}/"
            f"{fleet.repairs_planned} planned",
            "",
        ]
    lines.append("=" * 64)
    return "\n".join(lines)


def render_health_report_html(
    report: HealthReport, incident_report_href: str | None = None
) -> str:
    """The daily report as a self-contained HTML document.

    ``incident_report_href`` adds a link to the reactive incident HTML
    report (the satellite tying the two views together).
    """
    sections: list[tuple[str, str]] = []
    worst = report.worst
    summary_rows = [
        ("findings", len(report.findings)),
        ("sweeps", report.sweep_count),
        ("worst severity", worst.label if worst is not None else "none"),
        ("instances with findings",
         len([i for i in report.by_instance if i])),
    ]
    summary = html_table(["", ""], summary_rows)
    if incident_report_href:
        summary += (
            f'<p class="kv"><a href="{html_escape(incident_report_href)}">'
            "Reactive incident report</a></p>"
        )
    sections.append(("Summary", summary))
    for instance_id, findings in report.by_instance.items():
        heading = instance_id or "Fleet-scope findings"
        rows = [
            (
                finding.severity.label,
                finding.check,
                _subject(finding),
                finding.message,
                finding.suggestion,
            )
            for finding in findings
        ]
        sections.append(
            (
                heading,
                html_table(
                    ["severity", "check", "subject", "finding", "suggestion"],
                    rows,
                ),
            )
        )
    if report.by_check:
        sections.append(
            (
                "Findings by check",
                html_table(
                    ["check", "findings"], list(report.by_check.items())
                ),
            )
        )
    if report.fleet is not None:
        fleet = report.fleet
        sections.append(
            (
                "Reactive context",
                html_table(
                    ["", ""],
                    [
                        ("incidents recorded", fleet.total_incidents),
                        ("repairs planned", fleet.repairs_planned),
                        ("repairs executed", fleet.repairs_executed),
                        (
                            "false-trigger candidates",
                            len(fleet.false_triggers),
                        ),
                    ],
                ),
            )
        )
    if not report.findings:
        sections.append(
            ("", "<p>No findings — the fleet looks healthy.</p>")
        )
    return render_html_document("Fleet health report", sections)
