"""Proactive health checks: a pluggable registry over fleet observations.

Mirrors :func:`repro.sqlanalysis.register_rule`: each check inspects a
:class:`CheckContext` — one instance's (or the fleet's) observations at
sweep time — and yields :class:`HealthFinding`\\ s.  Checks register
themselves with :func:`register_check`; the sweeper runs whatever the
registry holds, so downstream code (and tests) can add site-specific
checks without touching this module.

The built-in suite covers the data the repo already observes:

====================== =============================== =================
check                  data source                     scope
====================== =============================== =================
rising-response-time   per-template ``avg_tres``       instance
rising-rows-examined   per-template rows/execution     instance
lock-footprint-trend   ``innodb_row_lock_time`` metric instance
connection-pressure    ``active_session`` metric       instance
antipattern-share      sqlanalysis findings × traffic  instance
broker-backpressure    consumer lag                    instance
repeat-offender        incident store                  fleet
degraded-confidence    incident store                  fleet
self-health            telemetry counters / breakers   fleet
====================== =============================== =================

Trend checks use EWMA smoothing and compare the head half of the sweep
window against the tail half — a deliberately boring estimator that is
robust to single spikes and cheap enough to run fleet-wide every sweep.
"""

from __future__ import annotations

import abc
from collections import Counter
from dataclasses import dataclass, field
from typing import ClassVar, Iterator, Mapping, Sequence

import numpy as np

from repro.collection.aggregator import TemplateMetricStore
from repro.health.finding import HealthFinding
from repro.incidents.store import IncidentMeta
from repro.sqlanalysis import Finding, Severity

__all__ = [
    "CheckContext",
    "HealthCheck",
    "HealthConfig",
    "check_ids",
    "default_checks",
    "ewma",
    "half_rise",
    "register_check",
]

#: Static-analysis rules that indicate a *structural* scan problem —
#: traffic concentrating on these templates is creeping debt.
STRUCTURAL_RULES = frozenset(
    {
        "non-sargable-function",
        "leading-wildcard-like",
        "implicit-conversion",
        "missing-index",
        "unbounded-scan",
        "cartesian-join",
    }
)


@dataclass(frozen=True)
class HealthConfig:
    """Tunable thresholds of the built-in check suite."""

    #: Look-back horizon of one sweep (seconds of stream time).
    sweep_window_s: int = 600
    #: Cadence of scheduled sweeps (:meth:`HealthSweeper.maybe_sweep`).
    sweep_interval_s: int = 300
    #: Look-back into the incident store for fleet-scope checks.
    incident_window_s: int = 86_400
    #: Trend checks need this many observed samples to say anything.
    min_trend_samples: int = 40
    #: Template trend checks: executions needed over the window.
    min_template_executions: float = 30.0
    #: rising-response-time: relative rise (tail vs head half) to fire,
    #: and the response-time floor that makes the rise worth reporting.
    #: The floor sits well above ordinary OLTP point-query latency —
    #: sub-15 ms templates wobble past the rise ratio on workload noise
    #: alone, and a DBA would never act on them.
    rt_rise_ratio: float = 0.5
    min_rt_ms: float = 15.0
    #: rising-rows-examined: relative rise and rows/execution floor.
    rows_rise_ratio: float = 0.5
    min_rows_per_exec: float = 1_000.0
    #: lock-footprint-trend: relative rise and lock-ms-per-second floor.
    lock_rise_ratio: float = 1.0
    min_lock_ms_per_s: float = 20.0
    #: connection-pressure: relative rise and active-session floor.
    session_rise_ratio: float = 0.5
    min_active_session: float = 4.0
    #: antipattern-share: traffic share on structural anti-patterns.
    antipattern_share: float = 0.25
    min_total_executions: float = 100.0
    #: broker-backpressure: unconsumed messages on one engine's topics.
    max_consumer_lag: int = 1_000
    #: repeat-offender: times one template must top the R-SQL ranking.
    repeat_offender_count: int = 2
    #: degraded-confidence: share of degraded incidents, with a count
    #: floor so one unlucky incident does not page anyone.
    degraded_rate: float = 0.5
    min_degraded_incidents: int = 2
    #: self-health: quarantined messages tolerated before a finding.
    max_quarantined: int = 0
    #: latency-slo-burn-rate: histogram observations needed before a
    #: burn rate is trustworthy enough to report.
    slo_min_samples: int = 20
    #: data-freshness: stream-time staleness (newest ingested event vs.
    #: detector clock) tolerated before a finding, in seconds.
    max_data_staleness_s: float = 900.0
    #: workload-advisory: advisories reported per sweep, and the minimum
    #: advisory severity that becomes a health finding.
    max_advisories_reported: int = 5
    min_advisory_severity: int = int(Severity.WARNING)

    def __post_init__(self) -> None:
        if self.sweep_window_s <= 0 or self.sweep_interval_s <= 0:
            raise ValueError("sweep_window_s and sweep_interval_s must be positive")
        if self.min_trend_samples < 4:
            raise ValueError("min_trend_samples must be at least 4")


@dataclass
class CheckContext:
    """What one check sees: the observations of one sweep scope.

    ``scope`` is ``"instance"`` (one monitored instance's window) or
    ``"fleet"`` (merged observations across every swept instance);
    checks declare which scope they run at.  All fields degrade to
    empty: a context built offline from just an incident store runs the
    fleet checks and leaves the trend checks quiet.
    """

    instance_id: str
    now: int
    config: HealthConfig = field(default_factory=HealthConfig)
    scope: str = "instance"
    #: Raw metric samples over the sweep window, per metric name.
    metrics: Mapping[str, Sequence[tuple[int, float]]] = field(default_factory=dict)
    #: Per-template series over the sweep window (``None`` when the
    #: sweep has no query-log view, e.g. offline store-only sweeps).
    templates: TemplateMetricStore | None = None
    #: Static-analysis findings per template in the window.
    analysis: Mapping[str, Sequence[Finding]] = field(default_factory=dict)
    #: Incident index entries in scope (this instance / whole fleet).
    incidents: Sequence[IncidentMeta] = ()
    #: Relevant telemetry counter totals (summed across labels).
    counters: Mapping[str, float] = field(default_factory=dict)
    #: Unconsumed messages on this instance's topic partitions.
    consumer_lag: int = 0
    #: Instances covered by a fleet-scope context.
    instances: int = 1
    #: Registry snapshot in scope (:meth:`MetricsRegistry.snapshot`,
    #: filtered to this instance's label for instance contexts).  SLO
    #: checks read histogram buckets and freshness gauges from here.
    telemetry: Mapping = field(default_factory=dict)
    #: Latency SLO specs to evaluate (:data:`repro.health.slo.DEFAULT_SLOS`
    #: when empty).
    slos: Sequence = ()
    #: Workload-level advisories over the sweep window's templates
    #: (lock conflicts, index candidates, join fan-out).
    advisories: Sequence = ()

    def metric_values(self, name: str) -> np.ndarray:
        """The sample values of one metric, time-ordered."""
        samples = self.metrics.get(name, ())
        if not samples:
            return np.empty(0, dtype=np.float64)
        ordered = sorted(samples)
        return np.asarray([v for _, v in ordered], dtype=np.float64)


class HealthCheck(abc.ABC):
    """Base class for proactive health checks."""

    check_id: ClassVar[str] = ""
    description: ClassVar[str] = ""
    #: ``"instance"`` or ``"fleet"``.
    scope: ClassVar[str] = "instance"

    @abc.abstractmethod
    def check(self, ctx: CheckContext) -> Iterator[HealthFinding]:
        """Yield findings for one context (``sweep_id`` filled by the sweeper)."""


_REGISTRY: dict[str, HealthCheck] = {}


def register_check(cls: type[HealthCheck]) -> type[HealthCheck]:
    """Class decorator adding a check (by ``check_id``) to the registry."""
    if not cls.check_id:
        raise ValueError(f"{cls.__name__} must define a check_id")
    if cls.scope not in ("instance", "fleet"):
        raise ValueError(f"{cls.__name__}.scope must be 'instance' or 'fleet'")
    _REGISTRY[cls.check_id] = cls()
    return cls


def default_checks() -> tuple[HealthCheck, ...]:
    """The registered checks, in registration order."""
    return tuple(_REGISTRY.values())


def check_ids() -> tuple[str, ...]:
    return tuple(_REGISTRY)


# ----------------------------------------------------------------------
# Trend math
# ----------------------------------------------------------------------
def ewma(values: np.ndarray, alpha: float = 0.2) -> np.ndarray:
    """Exponentially weighted moving average (same length as input).

    Vectorised as a blocked scan: within a block the recurrence
    ``y[k] = α·x[k] + (1-α)·y[k-1]`` closes to
    ``y[k] = d^(k+1)·carry + α·d^k·Σ x[j]/d^j`` with ``d = 1-α``; the
    block bounds the ``d^-j`` scale factor so long series cannot
    overflow.  A sweep smooths hundreds of per-template series, so the
    Python-loop version dominated the sweep budget.
    """
    values = np.asarray(values, dtype=np.float64)
    n = len(values)
    if n == 0:
        return values
    decay = 1.0 - alpha
    out = np.empty(n, dtype=np.float64)
    out[0] = carry = values[0]
    block = 512
    i = 1
    while i < n:
        x = values[i : i + block]
        scale = decay ** np.arange(len(x), dtype=np.float64)
        y = (decay * scale) * carry + alpha * scale * np.cumsum(x / scale)
        out[i : i + len(x)] = y
        carry = y[-1]
        i += len(x)
    return out


def half_rise(values: np.ndarray) -> tuple[float, float, float]:
    """(head mean, tail mean, relative rise) of the smoothed series.

    The relative rise compares the tail half of the window against the
    head half; a clean upward creep reads as a positive ratio while a
    single spike mostly cancels out under the EWMA.
    """
    smoothed = ewma(np.asarray(values, dtype=np.float64))
    mid = len(smoothed) // 2
    head = float(np.mean(smoothed[:mid])) if mid else 0.0
    tail = float(np.mean(smoothed[mid:])) if len(smoothed) > mid else 0.0
    if head <= 0.0:
        return head, tail, float("inf") if tail > 0.0 else 0.0
    return head, tail, (tail - head) / head


def _trend_severity(rise: float, threshold: float) -> Severity:
    """WARNING at the threshold, HIGH at double, CRITICAL at quadruple."""
    if rise >= 4.0 * threshold:
        return Severity.CRITICAL
    if rise >= 2.0 * threshold:
        return Severity.HIGH
    return Severity.WARNING


# ----------------------------------------------------------------------
# Instance-scope checks
# ----------------------------------------------------------------------
@register_check
class RisingResponseTimeCheck(HealthCheck):
    check_id = "rising-response-time"
    description = (
        "Template mean response time creeping up below the anomaly threshold."
    )
    scope = "instance"

    def check(self, ctx: CheckContext) -> Iterator[HealthFinding]:
        if ctx.templates is None:
            return
        cfg = ctx.config
        for sql_id in ctx.templates.sql_ids:
            execs = ctx.templates.executions(sql_id).values
            active = execs > 0
            if float(execs.sum()) < cfg.min_template_executions:
                continue
            rt = ctx.templates.get(sql_id, "avg_tres").values[active]
            if len(rt) < cfg.min_trend_samples:
                continue
            head, tail, rise = half_rise(rt)
            if rise >= cfg.rt_rise_ratio and tail >= cfg.min_rt_ms:
                yield HealthFinding(
                    check=self.check_id,
                    severity=_trend_severity(rise, cfg.rt_rise_ratio),
                    instance_id=ctx.instance_id,
                    sql_id=sql_id,
                    metric="avg_tres",
                    message=(
                        f"mean response time of {sql_id} rose "
                        f"{rise:+.0%} over the sweep window "
                        f"({head:.1f} → {tail:.1f} ms) without tripping "
                        "the anomaly detector"
                    ),
                    evidence={
                        "head_ms": round(head, 3),
                        "tail_ms": round(tail, 3),
                        "rise": round(rise, 4),
                        "executions": float(execs.sum()),
                    },
                    suggestion=(
                        "inspect the plan and recent data growth for "
                        f"{sql_id} before the trend becomes an incident"
                    ),
                )


@register_check
class RisingRowsExaminedCheck(HealthCheck):
    check_id = "rising-rows-examined"
    description = "Rows examined per execution trending up (plan regression)."
    scope = "instance"

    def check(self, ctx: CheckContext) -> Iterator[HealthFinding]:
        if ctx.templates is None:
            return
        cfg = ctx.config
        for sql_id in ctx.templates.sql_ids:
            execs = ctx.templates.executions(sql_id).values
            active = execs > 0
            if float(execs.sum()) < cfg.min_template_executions:
                continue
            rows = ctx.templates.get(sql_id, "total_examined_rows").values
            per_exec = rows[active] / execs[active]
            if len(per_exec) < cfg.min_trend_samples:
                continue
            head, tail, rise = half_rise(per_exec)
            if rise >= cfg.rows_rise_ratio and tail >= cfg.min_rows_per_exec:
                yield HealthFinding(
                    check=self.check_id,
                    severity=_trend_severity(rise, cfg.rows_rise_ratio),
                    instance_id=ctx.instance_id,
                    sql_id=sql_id,
                    metric="total_examined_rows",
                    message=(
                        f"rows examined per execution of {sql_id} rose "
                        f"{rise:+.0%} ({head:.0f} → {tail:.0f} rows) — a "
                        "plan or selectivity regression in progress"
                    ),
                    evidence={
                        "head_rows": round(head, 1),
                        "tail_rows": round(tail, 1),
                        "rise": round(rise, 4),
                    },
                    suggestion=(
                        f"check index statistics and predicates of {sql_id}; "
                        "rows/execution growth usually precedes rt growth"
                    ),
                )


@register_check
class LockFootprintTrendCheck(HealthCheck):
    check_id = "lock-footprint-trend"
    description = "Row-lock wait time per second trending up."
    scope = "instance"

    def check(self, ctx: CheckContext) -> Iterator[HealthFinding]:
        cfg = ctx.config
        values = ctx.metric_values("innodb_row_lock_time")
        if len(values) < cfg.min_trend_samples:
            return
        head, tail, rise = half_rise(values)
        if rise >= cfg.lock_rise_ratio and tail >= cfg.min_lock_ms_per_s:
            yield HealthFinding(
                check=self.check_id,
                severity=_trend_severity(rise, cfg.lock_rise_ratio),
                instance_id=ctx.instance_id,
                metric="innodb_row_lock_time",
                message=(
                    f"row-lock wait time rose {rise:+.0%} over the sweep "
                    f"window ({head:.0f} → {tail:.0f} lock-ms/s); write "
                    "contention is building below the anomaly threshold"
                ),
                evidence={
                    "head_lock_ms": round(head, 1),
                    "tail_lock_ms": round(tail, 1),
                    "rise": round(rise, 4),
                },
                suggestion=(
                    "find the write templates holding locks longest "
                    "(repro lint lock-footprint) before a lock storm fires"
                ),
            )


@register_check
class ConnectionPressureCheck(HealthCheck):
    check_id = "connection-pressure"
    description = "Active sessions creeping toward the anomaly threshold."
    scope = "instance"

    def check(self, ctx: CheckContext) -> Iterator[HealthFinding]:
        cfg = ctx.config
        values = ctx.metric_values("active_session")
        if len(values) < cfg.min_trend_samples:
            return
        head, tail, rise = half_rise(values)
        if rise >= cfg.session_rise_ratio and tail >= cfg.min_active_session:
            yield HealthFinding(
                check=self.check_id,
                severity=_trend_severity(rise, cfg.session_rise_ratio),
                instance_id=ctx.instance_id,
                metric="active_session",
                message=(
                    f"active sessions rose {rise:+.0%} over the sweep "
                    f"window ({head:.1f} → {tail:.1f}); connection "
                    "pressure is building before any anomaly fired"
                ),
                evidence={
                    "head_sessions": round(head, 2),
                    "tail_sessions": round(tail, 2),
                    "rise": round(rise, 4),
                },
                suggestion=(
                    "identify the templates driving the session growth "
                    "now; at threshold this becomes a paged incident"
                ),
            )


@register_check
class AntipatternShareCheck(HealthCheck):
    check_id = "antipattern-share"
    description = "Traffic share concentrating on structural anti-pattern SQL."
    scope = "instance"

    def check(self, ctx: CheckContext) -> Iterator[HealthFinding]:
        if ctx.templates is None:
            return
        cfg = ctx.config
        total = 0.0
        flagged = 0.0
        flagged_ids: list[str] = []
        for sql_id in ctx.templates.sql_ids:
            execs = float(ctx.templates.executions(sql_id).values.sum())
            total += execs
            findings = ctx.analysis.get(sql_id, ())
            structural = any(
                f.rule in STRUCTURAL_RULES and f.severity >= Severity.HIGH
                for f in findings
            )
            if structural and execs > 0:
                flagged += execs
                flagged_ids.append(sql_id)
        if total < cfg.min_total_executions or flagged == 0.0:
            return
        share = flagged / total
        if share >= cfg.antipattern_share:
            severity = (
                Severity.HIGH
                if share >= 2.0 * cfg.antipattern_share
                else Severity.WARNING
            )
            worst = sorted(flagged_ids)[:5]
            yield HealthFinding(
                check=self.check_id,
                severity=severity,
                instance_id=ctx.instance_id,
                sql_id=worst[0],
                message=(
                    f"{share:.0%} of executed queries run templates with "
                    "structural anti-patterns (non-sargable filters, "
                    "unbounded scans); this traffic amplifies every "
                    "future anomaly"
                ),
                evidence={
                    "share": round(share, 4),
                    "flagged_executions": flagged,
                    "total_executions": total,
                    "templates": ",".join(worst),
                },
                suggestion=(
                    "schedule offline optimization for the flagged "
                    "templates (repro lint shows the mechanism per rule)"
                ),
            )


@register_check
class BrokerBackpressureCheck(HealthCheck):
    check_id = "broker-backpressure"
    description = "Unconsumed broker messages piling up behind an engine."
    scope = "instance"

    def check(self, ctx: CheckContext) -> Iterator[HealthFinding]:
        cfg = ctx.config
        if ctx.consumer_lag < cfg.max_consumer_lag:
            return
        severity = (
            Severity.HIGH
            if ctx.consumer_lag >= 10 * cfg.max_consumer_lag
            else Severity.WARNING
        )
        yield HealthFinding(
            check=self.check_id,
            severity=severity,
            instance_id=ctx.instance_id,
            message=(
                f"{ctx.consumer_lag:,} unconsumed messages on this "
                "instance's topic partitions; the diagnosis loop is "
                "falling behind its streams"
            ),
            evidence={
                "consumer_lag": ctx.consumer_lag,
                "threshold": cfg.max_consumer_lag,
            },
            suggestion=(
                "add diagnosis workers or check the engine for stalls; "
                "a lagging engine diagnoses on stale evidence windows"
            ),
        )


# ----------------------------------------------------------------------
# Fleet-scope checks
# ----------------------------------------------------------------------
@register_check
class RepeatOffenderCheck(HealthCheck):
    check_id = "repeat-offender"
    description = "Templates repeatedly pinpointed as the top root cause."
    scope = "fleet"

    def check(self, ctx: CheckContext) -> Iterator[HealthFinding]:
        cfg = ctx.config
        offenders: Counter[str] = Counter()
        instances: dict[str, set[str]] = {}
        for meta in ctx.incidents:
            top = meta.top_r_sql
            if top is None:
                continue
            offenders[top] += 1
            instances.setdefault(top, set()).add(meta.instance_id)
        for sql_id, count in offenders.most_common(5):
            if count < cfg.repeat_offender_count:
                break
            severity = (
                Severity.HIGH
                if count >= 2 * cfg.repeat_offender_count
                else Severity.WARNING
            )
            yield HealthFinding(
                check=self.check_id,
                severity=severity,
                sql_id=sql_id,
                message=(
                    f"{sql_id} was the top-ranked root cause of {count} "
                    "incidents; throttling keeps treating a template "
                    "that needs a structural fix"
                ),
                evidence={
                    "incidents": count,
                    "instances": ",".join(sorted(i or "-" for i in instances[sql_id])),
                },
                suggestion=(
                    f"prioritise permanent optimization of {sql_id} "
                    "(index / rewrite) over repeated runtime mitigation"
                ),
            )


@register_check
class DegradedConfidenceCheck(HealthCheck):
    check_id = "degraded-confidence"
    description = "Diagnoses increasingly running on degraded evidence."
    scope = "fleet"

    def check(self, ctx: CheckContext) -> Iterator[HealthFinding]:
        cfg = ctx.config
        total = len(ctx.incidents)
        degraded = [m for m in ctx.incidents if m.confidence == "degraded"]
        if len(degraded) < cfg.min_degraded_incidents or total == 0:
            return
        rate = len(degraded) / total
        if rate < cfg.degraded_rate:
            return
        by_instance: Counter[str] = Counter(
            m.instance_id or "-" for m in degraded
        )
        yield HealthFinding(
            check=self.check_id,
            severity=Severity.HIGH if rate >= 0.75 else Severity.WARNING,
            message=(
                f"{len(degraded)} of {total} recent incidents were "
                "diagnosed on degraded evidence (gappy metric windows, "
                "quarantined log batches); attribution quality is at risk"
            ),
            evidence={
                "degraded": len(degraded),
                "total": total,
                "rate": round(rate, 4),
                "instances": ",".join(sorted(by_instance)),
            },
            suggestion=(
                "investigate the collection path (collector drops, "
                "backpressure) before trusting further R-SQL verdicts"
            ),
        )


@register_check
class WorkloadAdvisoryCheck(HealthCheck):
    check_id = "workload-advisory"
    description = "Cross-statement workload advisories surfacing in a sweep."
    scope = "instance"

    def check(self, ctx: CheckContext) -> Iterator[HealthFinding]:
        cfg = ctx.config
        reported = 0
        for advisory in ctx.advisories:
            if int(advisory.severity) < cfg.min_advisory_severity:
                continue
            if reported >= cfg.max_advisories_reported:
                break
            reported += 1
            evidence: dict = {
                "advisor": advisory.advisor,
                "score": round(float(advisory.score), 4),
            }
            if advisory.tables:
                evidence["tables"] = ",".join(advisory.tables)
            if advisory.sql_ids:
                evidence["templates"] = ",".join(advisory.sql_ids[:6])
            for key, value in advisory.evidence.items():
                evidence.setdefault(str(key), value)
            yield HealthFinding(
                check=self.check_id,
                severity=Severity(int(advisory.severity)),
                instance_id=ctx.instance_id,
                sql_id=advisory.sql_ids[0] if advisory.sql_ids else "",
                message=f"{advisory.advisor}: {advisory.message}",
                evidence=evidence,
                suggestion=advisory.suggestion
                or "review the flagged templates together, not one by one",
            )


@register_check
class SelfHealthCheck(HealthCheck):
    check_id = "self-health"
    description = "The diagnosis pipeline watching itself."
    scope = "fleet"

    def check(self, ctx: CheckContext) -> Iterator[HealthFinding]:
        cfg = ctx.config
        span_errors = int(ctx.counters.get("span_errors_total", 0))
        if span_errors > 0:
            yield HealthFinding(
                check=self.check_id,
                severity=Severity.WARNING,
                metric="span_errors_total",
                message=(
                    f"{span_errors} diagnosis span(s) ended in error; "
                    "the pipeline is swallowing internal failures"
                ),
                evidence={"span_errors": span_errors},
                suggestion="inspect the structured logs for the failing stage",
            )
        quarantined = int(ctx.counters.get("collector_quarantined_total", 0))
        if quarantined > cfg.max_quarantined:
            yield HealthFinding(
                check=self.check_id,
                severity=Severity.HIGH if quarantined >= 10 else Severity.WARNING,
                metric="collector_quarantined_total",
                message=(
                    f"{quarantined} message(s) quarantined to dead-letter "
                    "topics; evidence windows are losing data"
                ),
                evidence={"quarantined": quarantined},
                suggestion=(
                    "read the dead-letter topics to find the malformed "
                    "producer before windows degrade further"
                ),
            )
        breakers_open = int(ctx.counters.get("circuit_breakers_open", 0))
        if breakers_open > 0:
            yield HealthFinding(
                check=self.check_id,
                severity=Severity.HIGH,
                metric="circuit_breaker_state",
                message=(
                    f"{breakers_open} repair circuit breaker(s) are open; "
                    "automatic repair is suspended on those instances"
                ),
                evidence={"breakers_open": breakers_open},
                suggestion=(
                    "fix the failing repair path, then let the breaker "
                    "half-open probe close it"
                ),
            )
