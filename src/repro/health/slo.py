"""Latency SLOs: declarative objectives, error-budget burn-rate checks.

The tracing layer gives every pipeline stage a latency histogram —
``span_duration_seconds`` for the diagnosis spans and
``pipeline_lag_seconds`` for the publish→ingest / publish→dispatch /
publish→diagnose watermarks.  This module turns those histograms into
*alerts a DBA would page on*: an :class:`SloSpec` states the objective
("95% of diagnoses complete within 2.5 s"), and the registered checks
compute the **error-budget burn rate** over the sweep's snapshot —

    burn = (1 - compliance) / (1 - target)

so burn ``1.0`` means the observed violation share exactly consumes the
budget, ``2.0`` means it burns twice as fast, and the standard health
ladder applies (WARNING at 1x, HIGH at 2x, CRITICAL at 4x).  A second
check watches the ``data_freshness_seconds`` gauge: an instance whose
ingested event time falls far behind the detector clock is starving,
whatever its latency histograms say.

Both checks read the :class:`CheckContext.telemetry` snapshot the
sweeper now attaches (filtered to the instance's label), so they work
identically on the live fleet registry and on merged cross-process
worker exports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping

from repro.health.checks import (
    CheckContext,
    HealthCheck,
    _trend_severity,
    register_check,
)
from repro.health.finding import HealthFinding
from repro.telemetry import fraction_at_most
from repro.telemetry.metrics import labeled_name

__all__ = [
    "DEFAULT_SLOS",
    "DataFreshnessCheck",
    "LatencySloBurnRateCheck",
    "SloSpec",
    "burn_rate",
]


@dataclass(frozen=True)
class SloSpec:
    """One declarative latency objective over a histogram family.

    ``target`` is the compliance fraction (``0.95`` = "95% of
    observations"), ``objective_s`` the latency bound, and ``labels``
    the label pairs a histogram series must carry to be in scope —
    extra labels on the series (``instance``, ...) are ignored, so one
    spec covers every instance.
    """

    slo_id: str
    #: Histogram family name (``pipeline_lag_seconds``, ...).
    metric: str
    #: Latency objective in seconds (ideally on a bucket bound).
    objective_s: float
    #: Compliance target in (0, 1): fraction that must meet the objective.
    target: float = 0.95
    #: Label pairs the series must match, e.g. ``(("stage", "ingest"),)``.
    labels: tuple = ()
    description: str = ""

    def __post_init__(self) -> None:
        if not 0.0 < self.target < 1.0:
            raise ValueError(f"target must be in (0, 1), got {self.target}")
        if self.objective_s <= 0:
            raise ValueError(f"objective_s must be positive, got {self.objective_s}")
        object.__setattr__(
            self, "labels", tuple((str(k), str(v)) for k, v in self.labels)
        )

    def matches(self, entry: Mapping) -> bool:
        """Whether one snapshot histogram entry is in this SLO's scope."""
        if entry.get("name") != self.metric:
            return False
        labels = entry.get("labels") or {}
        return all(labels.get(k) == v for k, v in self.labels)


#: The built-in objectives.  Bounds sit on DEFAULT_LATENCY_BUCKETS
#: edges so compliance needs no interpolation, and they are sized for
#: the near-real-time loop the paper targets (anomaly detection on 1 s
#: metric streams): a diagnosis that takes longer than seconds, or a
#: block that sits unprocessed for longer, erodes the "pinpoint while
#: the incident is live" premise.
DEFAULT_SLOS: tuple[SloSpec, ...] = (
    SloSpec(
        slo_id="diagnose-latency",
        metric="span_duration_seconds",
        objective_s=2.5,
        target=0.95,
        labels=(("span", "service.diagnose"),),
        description="95% of diagnoses complete within 2.5 s.",
    ),
    SloSpec(
        slo_id="ingest-lag",
        metric="pipeline_lag_seconds",
        objective_s=5.0,
        target=0.99,
        labels=(("stage", "ingest"),),
        description="99% of blocks ingested within 5 s of publish.",
    ),
    SloSpec(
        slo_id="dispatch-lag",
        metric="pipeline_lag_seconds",
        objective_s=5.0,
        target=0.99,
        labels=(("stage", "dispatch"),),
        description="99% of blocks reach a shard worker within 5 s of publish.",
    ),
    SloSpec(
        slo_id="diagnose-lag",
        metric="pipeline_lag_seconds",
        objective_s=10.0,
        target=0.95,
        labels=(("stage", "diagnose"),),
        description="95% of diagnoses land within 10 s of the triggering publish.",
    ),
)


def burn_rate(buckets, objective_s: float, target: float) -> float:
    """Error-budget burn rate of snapshot-format cumulative buckets.

    ``1.0`` = the violation share exactly consumes the error budget;
    overflow-bucket observations count as violations (the conservative
    reading inherited from :func:`fraction_at_most`).
    """
    compliance = fraction_at_most(buckets, objective_s)
    return (1.0 - compliance) / (1.0 - target)


@register_check
class LatencySloBurnRateCheck(HealthCheck):
    """Latency SLO error budgets burning at >= 1x over the snapshot."""

    check_id = "latency-slo-burn-rate"
    description = (
        "Evaluates declarative latency SLOs against the pipeline's own "
        "stage histograms and reports error-budget burn rates >= 1x."
    )
    scope = "instance"

    def check(self, ctx: CheckContext) -> Iterator[HealthFinding]:
        cfg = ctx.config
        specs = tuple(ctx.slos) or DEFAULT_SLOS
        for entry in ctx.telemetry.get("histograms", ()):
            for spec in specs:
                if not spec.matches(entry):
                    continue
                count = int(entry.get("count") or 0)
                if count < cfg.slo_min_samples:
                    continue
                burn = burn_rate(
                    entry.get("buckets") or (), spec.objective_s, spec.target
                )
                if burn < 1.0:
                    continue
                compliance = 1.0 - burn * (1.0 - spec.target)
                series = labeled_name(spec.metric, entry.get("labels") or {})
                p95 = (entry.get("quantiles") or {}).get("p95")
                evidence = {
                    "slo_id": spec.slo_id,
                    "series": series,
                    "burn_rate": round(burn, 3),
                    "compliance": round(compliance, 4),
                    "objective_s": spec.objective_s,
                    "target": spec.target,
                    "samples": count,
                }
                if p95 is not None:
                    evidence["p95_s"] = round(float(p95), 4)
                yield HealthFinding(
                    check=self.check_id,
                    severity=_trend_severity(burn, 1.0),
                    instance_id=ctx.instance_id,
                    metric=spec.metric,
                    message=(
                        f"SLO {spec.slo_id} is burning its error budget at "
                        f"{burn:.1f}x: {compliance:.1%} of {count} observations "
                        f"met the {spec.objective_s:g} s objective "
                        f"(target {spec.target:.0%}) on {series}"
                    ),
                    evidence=evidence,
                    suggestion=(
                        "The pipeline stage is missing its latency objective — "
                        "check worker saturation (add shards), broker "
                        "backpressure, and whether a noisy instance is "
                        "monopolising the diagnosis loop."
                    ),
                )


@register_check
class DataFreshnessCheck(HealthCheck):
    """An instance's ingested data falling behind its detector clock."""

    check_id = "data-freshness"
    description = (
        "Flags instances whose newest ingested event time trails the "
        "detector's stream clock by more than the staleness budget."
    )
    scope = "instance"

    def check(self, ctx: CheckContext) -> Iterator[HealthFinding]:
        cfg = ctx.config
        for entry in ctx.telemetry.get("gauges", ()):
            if entry.get("name") != "data_freshness_seconds":
                continue
            staleness = float(entry.get("value") or 0.0)
            if staleness < cfg.max_data_staleness_s:
                continue
            ratio = staleness / cfg.max_data_staleness_s
            yield HealthFinding(
                check=self.check_id,
                severity=_trend_severity(ratio, 1.0),
                instance_id=ctx.instance_id,
                metric="data_freshness_seconds",
                message=(
                    f"newest ingested event is {staleness:.0f} s behind the "
                    f"detector clock (budget {cfg.max_data_staleness_s:g} s) — "
                    f"diagnoses for this instance run on stale data"
                ),
                evidence={
                    "staleness_s": round(staleness, 1),
                    "max_staleness_s": cfg.max_data_staleness_s,
                },
                suggestion=(
                    "The collector for this instance has stalled or its "
                    "blocks are stuck upstream — check collector health, "
                    "broker topics and shard-worker liveness."
                ),
            )
