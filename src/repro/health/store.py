"""Append-only, size-bounded findings store (JSONL segments).

The proactive twin of :class:`~repro.incidents.IncidentStore`: health
findings are appended to numbered segment files
(``health-000001.jsonl``), the active segment rolls over at a byte
bound, and retention drops whole cold segments by record count.  Unlike
incident records, findings are small enough to keep fully in memory, so
the store indexes the complete finding rather than a light meta — the
daily report and lead-time harness read everything anyway.

Reopening a store rebuilds from the segments on disk with the same
truncated-tail tolerance as the incident store: a sweeper killed
mid-write loses at most the partial final line.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass
from pathlib import Path

from repro.health.finding import HealthFinding
from repro.sqlanalysis import Severity
from repro.telemetry import MetricsRegistry, get_logger

__all__ = ["FindingsStore", "discover_findings_stores"]

_log = get_logger("health")

SEGMENT_GLOB = "health-*.jsonl"
_SEGMENT_FMT = "health-{:06d}.jsonl"


@dataclass
class _Segment:
    path: Path
    records: int = 0
    size: int = 0


class FindingsStore:
    """Durable health findings under one directory.

    Parameters
    ----------
    root:
        Store directory (created if missing).
    max_segment_bytes:
        Roll to a new segment once the active one exceeds this size.
    max_records:
        Retention by count: whole cold segments are dropped, oldest
        first, while the total exceeds this (never the active segment).
    registry:
        Optional metrics registry; occupancy is exported as
        ``health_store_{records,segments,bytes}`` gauges.
    """

    def __init__(
        self,
        root: str | Path,
        max_segment_bytes: int = 1 << 20,
        max_records: int = 50_000,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if max_segment_bytes <= 0 or max_records <= 0:
            raise ValueError("max_segment_bytes and max_records must be positive")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.max_segment_bytes = int(max_segment_bytes)
        self.max_records = int(max_records)
        self._lock = threading.Lock()
        #: (segment name, finding) pairs, append order == time order.
        self._findings: list[tuple[str, HealthFinding]] = []
        self._segments: list[_Segment] = []
        self._registry = registry
        self._recover()
        self._export_gauges()

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def _recover(self) -> None:
        paths = sorted(self.root.glob(SEGMENT_GLOB))
        for i, path in enumerate(paths):
            segment = _Segment(path=path)
            last_is_final = i == len(paths) - 1
            good_bytes = 0
            with open(path, "rb") as f:
                raw = f.read()
            offset = 0
            for line in raw.splitlines(keepends=True):
                complete = line.endswith(b"\n")
                try:
                    data = json.loads(line)
                    finding = HealthFinding.from_dict(data)
                except (json.JSONDecodeError, UnicodeDecodeError, KeyError, ValueError):
                    if last_is_final and not complete and offset + len(line) == len(raw):
                        _log.warning(
                            "truncated health finding dropped on recovery",
                            extra={"segment": path.name, "bytes": len(line)},
                        )
                        break
                    _log.warning(
                        "corrupt health finding skipped on recovery",
                        extra={"segment": path.name, "offset": offset},
                    )
                    offset += len(line)
                    good_bytes = offset
                    continue
                offset += len(line)
                good_bytes = offset
                self._findings.append((path.name, finding))
                segment.records += 1
            if good_bytes < len(raw):
                with open(path, "r+b") as f:
                    f.truncate(good_bytes)
            elif raw and not raw.endswith(b"\n"):
                with open(path, "ab") as f:
                    f.write(b"\n")
                good_bytes += 1
            segment.size = good_bytes
            self._segments.append(segment)

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def append(self, finding: HealthFinding) -> None:
        """Persist one finding."""
        with self._lock:
            self._append_locked(finding)
            self._retain()
            self._export_gauges()

    def extend(self, findings) -> int:
        """Persist a batch (one sweep's findings); returns the count."""
        count = 0
        with self._lock:
            for finding in findings:
                self._append_locked(finding)
                count += 1
            self._retain()
            self._export_gauges()
        return count

    def _append_locked(self, finding: HealthFinding) -> None:
        segment = self._active_segment()
        line = json.dumps(finding.to_dict(), separators=(",", ":")) + "\n"
        payload = line.encode("utf-8")
        with open(segment.path, "ab") as f:
            f.write(payload)
        segment.records += 1
        segment.size += len(payload)
        self._findings.append((segment.path.name, finding))

    def _active_segment(self) -> _Segment:
        if self._segments and self._segments[-1].size < self.max_segment_bytes:
            return self._segments[-1]
        number = 1
        if self._segments:
            last = self._segments[-1].path.stem  # health-000007
            number = int(last.rsplit("-", 1)[1]) + 1
        segment = _Segment(path=self.root / _SEGMENT_FMT.format(number))
        segment.path.touch()
        self._segments.append(segment)
        return segment

    def _retain(self) -> None:
        while (
            len(self._segments) > 1
            and self.record_count - self._segments[0].records >= self.max_records
        ):
            segment = self._segments.pop(0)
            name = segment.path.name
            self._findings = [
                (seg, f) for seg, f in self._findings if seg != name
            ]
            try:
                os.remove(segment.path)
            except OSError:
                pass
            _log.info(
                "health segment pruned",
                extra={"segment": name, "records": segment.records},
            )

    def _export_gauges(self) -> None:
        if self._registry is None:
            return
        self._registry.gauge(
            "health_store_records", help="Health findings resident in the store."
        ).set(self.record_count)
        self._registry.gauge(
            "health_store_segments", help="JSONL segments in the findings store."
        ).set(len(self._segments))
        self._registry.gauge(
            "health_store_bytes", help="Bytes held by the findings store."
        ).set(self.total_bytes)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    @property
    def record_count(self) -> int:
        return sum(s.records for s in self._segments)

    @property
    def segment_count(self) -> int:
        return len(self._segments)

    @property
    def total_bytes(self) -> int:
        return sum(s.size for s in self._segments)

    def __len__(self) -> int:
        return len(self._findings)

    def findings(self) -> list[HealthFinding]:
        """Every resident finding, append (time) order."""
        return [f for _, f in self._findings]

    def sweep_ids(self) -> list[str]:
        """Distinct sweep ids, oldest first."""
        seen: dict[str, None] = {}
        for _, finding in self._findings:
            if finding.sweep_id and finding.sweep_id not in seen:
                seen[finding.sweep_id] = None
        return list(seen)

    def query(
        self,
        instance: str | None = None,
        check: str | None = None,
        min_severity: Severity = Severity.INFO,
        since: int | None = None,
        until: int | None = None,
        limit: int | None = None,
    ) -> list[HealthFinding]:
        """Filter findings; newest first.

        ``since``/``until`` bound ``detected_at`` (inclusive /
        exclusive, stream time); ``instance`` matches exactly (use
        ``""`` for fleet-scope findings).
        """
        out: list[HealthFinding] = []
        for _, finding in reversed(self._findings):
            if instance is not None and finding.instance_id != instance:
                continue
            if check is not None and finding.check != check:
                continue
            if finding.severity < min_severity:
                continue
            if since is not None and finding.detected_at < since:
                continue
            if until is not None and finding.detected_at >= until:
                continue
            out.append(finding)
            if limit is not None and len(out) >= limit:
                break
        return out


def discover_findings_stores(path: str | Path) -> list[Path]:
    """Findings-store directories under ``path`` (itself, or one level down)."""
    path = Path(path)
    if not path.is_dir():
        return []
    if any(path.glob(SEGMENT_GLOB)):
        return [path]
    return sorted(
        child for child in path.iterdir()
        if child.is_dir() and any(child.glob(SEGMENT_GLOB))
    )
