"""Proactive fleet health: the "automated DBA" sweep layer.

PinSQL is reactive by construction — it pinpoints root-cause SQLs after
an intolerable anomaly fires.  This package adds the other half of a
production DBA's job: scheduled sweeps over everything the repo already
observes (dbsim metric streams, per-template aggregates, static-
analysis findings, the incident store, the pipeline's own telemetry)
that surface problems *before* the anomaly threshold is crossed.

- :mod:`~repro.health.finding` — the strict-JSON :class:`HealthFinding`;
- :mod:`~repro.health.checks` — the pluggable check registry and the
  built-in suite (trend, traffic, incident-history and self-health
  checks);
- :mod:`~repro.health.slo` — declarative latency SLOs with error-budget
  burn-rate checks over the pipeline's own stage histograms;
- :mod:`~repro.health.sweeper` — the scheduled :class:`HealthSweeper`;
- :mod:`~repro.health.store` — the durable JSONL findings store;
- :mod:`~repro.health.report` — the daily fleet report (text + HTML).
"""

from repro.health.checks import (
    CheckContext,
    HealthCheck,
    HealthConfig,
    check_ids,
    default_checks,
    ewma,
    half_rise,
    register_check,
)
from repro.health.finding import HealthFinding
from repro.health.report import (
    HealthReport,
    build_health_report,
    render_health_report_html,
    render_health_report_text,
)
from repro.health.slo import DEFAULT_SLOS, SloSpec, burn_rate
from repro.health.store import FindingsStore, discover_findings_stores
from repro.health.sweeper import HealthSweeper, SweepResult

__all__ = [
    "CheckContext",
    "DEFAULT_SLOS",
    "FindingsStore",
    "HealthCheck",
    "HealthConfig",
    "HealthFinding",
    "HealthReport",
    "HealthSweeper",
    "SloSpec",
    "SweepResult",
    "build_health_report",
    "burn_rate",
    "check_ids",
    "default_checks",
    "discover_findings_stores",
    "ewma",
    "half_rise",
    "register_check",
    "render_health_report_html",
    "render_health_report_text",
]
