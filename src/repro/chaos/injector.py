"""The fault injector: wraps the substrate, injects per the plan.

Every decision is a pure hash of ``(seed, kind, scope, sequence)`` —
no shared RNG state — so injection is reproducible bit-for-bit even
when fleet workers interleave on threads.  The injector never touches
the dead-letter topic: quarantined evidence must survive the chaos that
produced it.
"""

from __future__ import annotations

import copy
import time
from fnmatch import fnmatch
from hashlib import blake2b
from typing import Any, Callable

import numpy as np

from repro.chaos.plan import FaultPlan, FaultSpec
from repro.collection.stream import Broker, Consumer, Message
from repro.telemetry import MetricsRegistry, get_logger, get_registry

__all__ = [
    "ChaosBroker",
    "ChaosConsumer",
    "FaultInjector",
    "InjectedWorkerCrash",
    "InjectedWorkerHang",
]

_log = get_logger("chaos")

#: Topics the injector never touches (quarantine evidence must survive).
_EXEMPT_PREFIXES = ("dead_letter",)


class InjectedWorkerCrash(RuntimeError):
    """A chaos-injected crash of a fleet worker mid-step."""


class InjectedWorkerHang(RuntimeError):
    """A chaos-injected hang: the worker makes no progress this step."""


def _uniform(seed: int, *parts: object) -> float:
    """Deterministic uniform draw in ``[0, 1)`` from a hash of the parts."""
    key = "|".join(str(p) for p in (seed, *parts)).encode()
    return int.from_bytes(blake2b(key, digest_size=8).digest(), "big") / 2.0 ** 64


class FaultInjector:
    """Applies a :class:`FaultPlan` to brokers, consumers and workers."""

    def __init__(
        self, plan: FaultPlan, registry: MetricsRegistry | None = None
    ) -> None:
        self.plan = plan
        self.registry = registry or get_registry()
        #: Injected fault counts per kind (mirrors the telemetry counter).
        self.injected: dict[str, int] = {}

    # ------------------------------------------------------------------
    def _count(self, kind: str) -> None:
        self.injected[kind] = self.injected.get(kind, 0) + 1
        self.registry.counter(
            "chaos_faults_injected_total",
            help="Faults injected by the chaos plan, by kind.",
            kind=kind,
        ).inc()

    def spec_for(self, kind: str, topic: str | None = None) -> FaultSpec | None:
        """The armed spec for ``kind`` matching ``topic`` (if given)."""
        if topic is not None and topic.startswith(_EXEMPT_PREFIXES):
            return None
        for spec in self.plan.specs:
            if spec.kind != kind:
                continue
            if topic is None or fnmatch(topic, spec.topic):
                return spec
        return None

    def hit(self, spec: FaultSpec, *scope: object) -> bool:
        """Deterministic injection decision for one unit of work."""
        return _uniform(self.plan.seed, spec.kind, *scope) < spec.rate

    # ------------------------------------------------------------------
    # Substrate wrapping
    # ------------------------------------------------------------------
    def wrap_broker(self, broker: Broker) -> "ChaosBroker":
        return ChaosBroker(broker, self)

    # ------------------------------------------------------------------
    # Worker faults
    # ------------------------------------------------------------------
    def fleet_hook(self) -> Callable[[str], None]:
        """A per-step hook for :class:`FleetDiagnosisService`.

        Called with the instance id before each engine step; raises
        :class:`InjectedWorkerCrash` / :class:`InjectedWorkerHang` per
        the plan.  Crashes are bounded by the spec's ``max_crashes`` so
        supervised restarts can win; hangs stall the instance for
        ``hang_steps`` consecutive steps.
        """
        steps: dict[str, int] = {}
        crashes: dict[str, int] = {}
        hanging: dict[str, int] = {}

        def hook(instance_id: str) -> None:
            step = steps.get(instance_id, 0)
            steps[instance_id] = step + 1
            if hanging.get(instance_id, 0) > 0:
                hanging[instance_id] -= 1
                self._count("worker_hang")
                raise InjectedWorkerHang(instance_id)
            crash = self.spec_for("worker_crash")
            if crash is not None and crashes.get(instance_id, 0) < int(
                crash.param("max_crashes", 2)
            ):
                if self.hit(crash, instance_id, step):
                    crashes[instance_id] = crashes.get(instance_id, 0) + 1
                    self._count("worker_crash")
                    raise InjectedWorkerCrash(
                        f"injected crash on {instance_id} at step {step}"
                    )
            hang = self.spec_for("worker_hang")
            if hang is not None and self.hit(hang, "hang", instance_id, step):
                hanging[instance_id] = max(int(hang.param("hang_steps", 3)) - 1, 0)
                self._count("worker_hang")
                raise InjectedWorkerHang(instance_id)

        return hook

    def should_crash_shard(self, shard_key: str, attempt: int) -> bool:
        """Crash decision for a whole shard worker process.

        Bounded by ``max_crashes``: once a shard has been restarted that
        many times, later attempts run clean (the supervised-restart
        path must be able to converge).
        """
        spec = self.spec_for("worker_crash")
        if spec is None or attempt >= int(spec.param("max_crashes", 2)):
            return False
        if self.hit(spec, "shard", shard_key, attempt):
            self._count("worker_crash")
            return True
        return False

    # ------------------------------------------------------------------
    # Payload mutation
    # ------------------------------------------------------------------
    def corrupt(self, value: Any, draw: float) -> Any:
        """Deterministically mangle a record the way real pipelines do.

        Columnar blocks are mangled column-wise (dictionary loss, NaN
        columns, out-of-range template indices, negative timestamps,
        emptied row arrays) — every mode is caught by the block
        validators and quarantined downstream.
        """
        from repro.collection.blocks import MetricBlock, QueryLogBlock

        if isinstance(value, (QueryLogBlock, MetricBlock)):
            return self._corrupt_block(value, draw)
        if not isinstance(value, dict):
            return None
        record = copy.copy(value)
        if "metric" in record:
            modes = ("drop_key", "none_value", "nan_value", "str_timestamp")
        elif "sql_id" in record:
            modes = ("drop_key", "none_value", "truncate_array", "str_second")
        else:
            modes = ("drop_key", "none_value")
        mode = modes[int(draw * len(modes)) % len(modes)]
        if mode == "drop_key":
            keys = sorted(record)
            if keys:
                record.pop(keys[int(draw * 997) % len(keys)])
        elif mode == "none_value":
            keys = sorted(record)
            if keys:
                record[keys[int(draw * 991) % len(keys)]] = None
        elif mode == "nan_value":
            record["value"] = float("nan")
        elif mode == "str_timestamp":
            record["timestamp"] = "not-a-timestamp"
        elif mode == "str_second":
            record["second"] = "not-a-second"
        elif mode == "truncate_array":
            arr = record.get("response_ms")
            if arr is not None and len(arr) > 1:
                record["response_ms"] = arr[: len(arr) // 2]
        return record

    def _corrupt_block(self, block: Any, draw: float) -> Any:
        """Column-wise corruption of one block (deterministic by draw)."""
        from dataclasses import replace

        from repro.collection.blocks import QueryLogBlock

        if isinstance(block, QueryLogBlock):
            modes = ("drop_dictionary", "bad_template", "nan_column", "empty_rows")
        else:
            modes = ("drop_dictionary", "nan_value", "negative_timestamp", "empty_rows")
        mode = modes[int(draw * len(modes)) % len(modes)]
        if mode == "drop_dictionary":
            if isinstance(block, QueryLogBlock):
                return replace(block, sql_ids=(), statements=())
            return replace(block, metrics=())
        if mode == "empty_rows":
            return replace(block, data=block.data[:0])
        data = block.data.copy()
        if len(data) == 0:
            return replace(block, data=data)
        victim = int(draw * 997) % len(data)
        if mode == "bad_template":
            data["template"][victim] = len(block.sql_ids) + 7
        elif mode == "nan_column":
            data["response_ms"][victim] = np.nan
        elif mode == "nan_value":
            data["value"][victim] = np.nan
        elif mode == "negative_timestamp":
            data["timestamp"][victim] = -1
        return replace(block, data=data)

    def skew(self, value: Any, skew_s: int) -> Any:
        """Shift every timestamp field in a record by ``skew_s`` seconds."""
        from dataclasses import replace

        from repro.collection.blocks import MetricBlock, QueryLogBlock

        if isinstance(value, QueryLogBlock):
            data = value.data.copy()
            data["arrive_ms"] += skew_s * 1000
            return replace(value, data=data)
        if isinstance(value, MetricBlock):
            data = value.data.copy()
            data["timestamp"] += skew_s
            return replace(value, data=data)
        if not isinstance(value, dict):
            return value
        record = copy.copy(value)
        if "timestamp" in record and isinstance(record["timestamp"], (int, float)):
            record["timestamp"] = int(record["timestamp"]) + skew_s
        if "second" in record and isinstance(record["second"], (int, float)):
            record["second"] = int(record["second"]) + skew_s
        if "arrive_ms" in record:
            try:
                record["arrive_ms"] = (
                    np.asarray(record["arrive_ms"], dtype=np.int64) + skew_s * 1000
                )
            except (TypeError, ValueError):
                pass
        return record


class ChaosBroker:
    """A :class:`Broker` facade that injects stream faults at publish.

    Per-message faults (drop / corrupt / clock skew / duplicate) mutate
    the emission set; delivery faults (late arrival, reordering) hold
    messages back and release them after later traffic.  Call
    :meth:`flush` once publishing is done so held messages are not lost
    forever — an orderly shutdown, not a correctness crutch: flushed
    messages still arrive far out of order.
    """

    def __init__(self, broker: Broker, injector: FaultInjector) -> None:
        self.inner = broker
        self.injector = injector
        self._seq: dict[str, int] = {}
        #: Per-topic held-back messages: ``(release_seq, key, value)``.
        self._held: dict[str, list[tuple[int, str, Any]]] = {}
        #: Per-topic reorder buffers.
        self._buffers: dict[str, list[tuple[str, Any]]] = {}

    # -- delegation ----------------------------------------------------
    def __getattr__(self, name: str) -> Any:
        return getattr(self.inner, name)

    @property
    def registry(self) -> MetricsRegistry:
        return self.inner.registry

    def consumer(self, topic: str) -> "ChaosConsumer":
        return ChaosConsumer(self.inner.consumer(topic), self, topic)

    # -- fault pipeline ------------------------------------------------
    def publish(self, topic: str, key: str, value: Any) -> Message:
        inj = self.injector
        seq = self._seq.get(topic, 0)
        self._seq[topic] = seq + 1
        last: Message | None = None
        drop = inj.spec_for("drop", topic)
        if drop is not None and inj.hit(drop, topic, seq):
            inj._count("drop")
        else:
            emitted = value
            corrupt = inj.spec_for("corrupt", topic)
            if corrupt is not None and inj.hit(corrupt, topic, seq):
                emitted = inj.corrupt(
                    emitted, _uniform(inj.plan.seed, "corrupt-mode", topic, seq)
                )
                inj._count("corrupt")
            skew = inj.spec_for("clock_skew", topic)
            if skew is not None and inj.hit(skew, topic, seq):
                emitted = inj.skew(emitted, int(skew.param("skew_s", 90)))
                inj._count("clock_skew")
            copies = 1
            dup = inj.spec_for("duplicate", topic)
            if dup is not None and inj.hit(dup, topic, seq):
                copies = 2
                inj._count("duplicate")
            for i in range(copies):
                last = self._emit(topic, seq, i, key, emitted) or last
        released = self._release_due(topic, seq)
        last = released or last
        return last if last is not None else Message(topic, -1, key, value)

    def publish_block(self, topic: str, block: Any) -> Message | None:
        """Columnar publish through the fault pipeline.

        Mirrors :meth:`Broker.publish_block` (validate, quarantine,
        count) but routes the accepted block through :meth:`publish` so
        drop / corrupt / skew / duplicate / late / reorder faults apply
        to batch messages too — ``__getattr__`` delegation would
        silently bypass injection.
        """
        from repro.collection.blocks import (
            BLOCK_KEY,
            MetricBlock,
            QueryLogBlock,
            stamp_block,
            validate_metric_block,
            validate_query_block,
        )
        from repro.collection.quarantine import quarantine
        from repro.telemetry import trace_propagation_enabled

        if isinstance(block, QueryLogBlock):
            reason = validate_query_block(block)
        elif isinstance(block, MetricBlock):
            reason = validate_metric_block(block)
        else:
            reason = "not_a_block"
        if reason is not None:
            quarantine(self.inner, topic, block, reason)
            return None
        self.inner.count_block(topic, n_records=len(block), nbytes=block.nbytes)
        if trace_propagation_enabled():
            # Same trace stamping as Broker.publish_block — fault
            # injection must not strip distributed-tracing coverage.
            tracer = self.inner.tracer
            with tracer.span(
                "broker.publish_block", topic=topic, records=len(block)
            ) as span:
                block = stamp_block(block, tracer.context_for(span), time.time())
                return self.publish(topic, key=BLOCK_KEY, value=block)
        return self.publish(topic, key=BLOCK_KEY, value=block)

    def _emit(
        self, topic: str, seq: int, copy_idx: int, key: str, value: Any
    ) -> Message | None:
        inj = self.injector
        late = inj.spec_for("late", topic)
        if late is not None and inj.hit(late, "late", topic, seq, copy_idx):
            hold = max(int(late.param("hold_messages", 8)), 1)
            self._held.setdefault(topic, []).append((seq + hold, key, value))
            inj._count("late")
            return None
        reorder = inj.spec_for("reorder", topic)
        if reorder is not None:
            buffer = self._buffers.setdefault(topic, [])
            buffer.append((key, value))
            window = max(int(reorder.param("window", 6)), 2)
            if len(buffer) >= window:
                return self._flush_buffer(topic, seq)
            return None
        return self.inner.publish(topic, key, value)

    def _flush_buffer(self, topic: str, seq: int) -> Message | None:
        """Emit the reorder buffer — shuffled when the fault fires."""
        inj = self.injector
        buffer = self._buffers.get(topic)
        if not buffer:
            return None
        spec = inj.spec_for("reorder", topic)
        order = list(range(len(buffer)))
        if spec is not None and inj.hit(spec, "shuffle", topic, seq):
            # Deterministic Fisher-Yates driven by hashed draws.
            for i in range(len(order) - 1, 0, -1):
                j = int(_uniform(inj.plan.seed, "swap", topic, seq, i) * (i + 1))
                order[i], order[j] = order[j], order[i]
            inj._count("reorder")
        last: Message | None = None
        for idx in order:
            key, value = buffer[idx]
            last = self.inner.publish(topic, key, value)
        buffer.clear()
        return last

    def _release_due(self, topic: str, seq: int) -> Message | None:
        held = self._held.get(topic)
        if not held:
            return None
        due = [h for h in held if h[0] <= seq]
        if not due:
            return None
        self._held[topic] = [h for h in held if h[0] > seq]
        last: Message | None = None
        for _, key, value in due:
            last = self.inner.publish(topic, key, value)
        return last

    def flush(self) -> int:
        """Release every held/buffered message; returns how many."""
        released = 0
        for topic in sorted(self._held):
            for _, key, value in self._held[topic]:
                self.inner.publish(topic, key, value)
                released += 1
            self._held[topic] = []
        for topic in sorted(self._buffers):
            released += len(self._buffers[topic])
            self._flush_buffer(topic, self._seq.get(topic, 0))
        return released


class ChaosConsumer:
    """A :class:`Consumer` facade that injects per-topic backpressure."""

    def __init__(self, consumer: Consumer, broker: ChaosBroker, topic: str) -> None:
        self.inner = consumer
        self._chaos_broker = broker
        self.topic = topic
        self._polls = 0
        self._stalled = 0

    @property
    def name(self) -> str:
        return self.inner.name

    @property
    def offset(self) -> int:
        return self.inner.offset

    @property
    def lag(self) -> int:
        return self.inner.lag

    @property
    def broker(self) -> Broker:
        # Quarantine and resync go to the real broker: evidence of the
        # chaos must not itself be subject to the chaos.
        return self._chaos_broker.inner

    def seek(self, offset: int) -> None:
        self.inner.seek(offset)

    def resync_to_base(self) -> bool:
        return self.inner.resync_to_base()

    def poll(self, max_messages: int = 1000) -> list[Message]:
        inj = self._chaos_broker.injector
        poll_idx = self._polls
        self._polls += 1
        spec = inj.spec_for("backpressure", self.topic)
        if spec is not None:
            if self._stalled > 0:
                self._stalled -= 1
                inj._count("backpressure")
                return []
            if inj.hit(spec, "stall", self.topic, self.inner.name, poll_idx):
                self._stalled = max(int(spec.param("stall_polls", 3)) - 1, 0)
                inj._count("backpressure")
                return []
        return self.inner.poll(max_messages)
