"""Deterministic chaos: fault injection for the PinSQL pipeline.

A diagnosis service that only works on a perfect substrate is a demo,
not a production system.  This package injects the faults a real
deployment sees — message drop / duplication / reordering / late
arrival / payload corruption, per-topic backpressure, clock skew on
record timestamps, and shard-worker crashes and hangs — *determinis-
tically*: a :class:`FaultPlan` is a seed plus fault specs, and every
injection decision is a pure hash of ``(seed, kind, topic, sequence)``,
so the same plan replays the same fault sequence regardless of thread
interleaving.

:class:`FaultInjector` wraps the collection substrate
(:class:`ChaosBroker` / :class:`ChaosConsumer`) and hooks the fleet's
worker loop; :mod:`repro.evaluation.chaos` closes the loop by measuring
attribution accuracy under each fault class against the clean baseline,
and ``repro chaos`` reports the resilience scorecard.
"""

from repro.chaos.plan import (
    FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    single_fault_plan,
)
from repro.chaos.injector import (
    ChaosBroker,
    ChaosConsumer,
    FaultInjector,
    InjectedWorkerCrash,
    InjectedWorkerHang,
)
from repro.chaos.scorecard import FaultClassReport, ResilienceScorecard

__all__ = [
    "FAULT_KINDS",
    "ChaosBroker",
    "ChaosConsumer",
    "FaultClassReport",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "InjectedWorkerCrash",
    "InjectedWorkerHang",
    "ResilienceScorecard",
    "single_fault_plan",
]
