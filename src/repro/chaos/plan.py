"""Fault plans: the declarative, seedable description of a chaos run.

A plan is JSON-serialisable so CI jobs and the ``repro chaos`` CLI can
pin one to a file; the seed makes every run of the same plan identical.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping

__all__ = ["FAULT_KINDS", "FaultSpec", "FaultPlan", "single_fault_plan"]

#: Every fault class the injector knows how to apply.
FAULT_KINDS: tuple[str, ...] = (
    "drop",          # message silently lost at publish
    "duplicate",     # message delivered twice
    "reorder",       # a window of messages delivered shuffled
    "late",          # message held back, delivered after later traffic
    "corrupt",       # payload mutated (missing keys, wrong types, NaNs)
    "backpressure",  # consumer polls stall (empty batches) for a while
    "clock_skew",    # record timestamps shifted by a constant skew
    "worker_crash",  # a fleet worker raises mid-step
    "worker_hang",   # a fleet worker stalls for several steps
)

#: Default per-kind parameters (merged under explicit ``params``).
_DEFAULT_PARAMS: dict[str, dict[str, float]] = {
    "drop": {},
    "duplicate": {},
    "reorder": {"window": 6},
    "late": {"hold_messages": 8},
    "corrupt": {},
    "backpressure": {"stall_polls": 3},
    "clock_skew": {"skew_s": 90},
    "worker_crash": {"max_crashes": 2},
    "worker_hang": {"hang_steps": 3},
}

#: Default injection rate per kind (probability per message / poll /
#: worker step).  Worker faults fire rarely but recovery is what is
#: under test, not frequency.
_DEFAULT_RATES: dict[str, float] = {
    "drop": 0.10,
    "duplicate": 0.10,
    "reorder": 0.25,
    "late": 0.05,
    "corrupt": 0.05,
    "backpressure": 0.20,
    "clock_skew": 0.10,
    "worker_crash": 0.25,
    "worker_hang": 0.10,
}


@dataclass(frozen=True)
class FaultSpec:
    """One fault class armed against a subset of topics.

    ``rate`` is the injection probability per unit (message for
    stream faults, poll for backpressure, worker step for crash/hang).
    ``topic`` is an ``fnmatch`` pattern over topic names; worker faults
    ignore it.
    """

    kind: str
    rate: float = 0.1
    topic: str = "*"
    params: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; known: {', '.join(FAULT_KINDS)}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("rate must be within [0, 1]")
        merged = dict(_DEFAULT_PARAMS.get(self.kind, {}))
        merged.update(self.params)
        object.__setattr__(self, "params", merged)

    def param(self, name: str, default: float = 0.0) -> float:
        return float(self.params.get(name, default))

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "rate": self.rate,
            "topic": self.topic,
            "params": {k: float(v) for k, v in self.params.items()},
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "FaultSpec":
        return cls(
            kind=data["kind"],
            rate=float(data.get("rate", _DEFAULT_RATES.get(data["kind"], 0.1))),
            topic=data.get("topic", "*"),
            params=dict(data.get("params", {})),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A named, seeded set of fault specs."""

    name: str
    seed: int = 0
    specs: tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))

    @property
    def kinds(self) -> tuple[str, ...]:
        return tuple(dict.fromkeys(s.kind for s in self.specs))

    def spec_for(self, kind: str) -> FaultSpec | None:
        for spec in self.specs:
            if spec.kind == kind:
                return spec
        return None

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "seed": self.seed,
            "specs": [s.to_dict() for s in self.specs],
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "FaultPlan":
        return cls(
            name=data.get("name", "plan"),
            seed=int(data.get("seed", 0)),
            specs=tuple(FaultSpec.from_dict(s) for s in data.get("specs", ())),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)

    @classmethod
    def from_json(cls, text: str, *, source: str = "<string>") -> "FaultPlan":
        """Parse a plan from a JSON string, failing fast with context.

        Every malformation a generated plan can carry — invalid JSON, a
        non-object document, a spec missing its ``kind``, an unknown
        fault kind — raises :class:`ValueError` naming the offending
        spec and the known kinds, so a bad plan is rejected at load
        time instead of surfacing as an injection-time crash.
        """
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{source}: not valid JSON: {exc}") from exc
        if not isinstance(data, Mapping):
            raise ValueError(
                f"{source}: fault plan must be a JSON object, "
                f"got {type(data).__name__}"
            )
        specs = data.get("specs", [])
        if not isinstance(specs, (list, tuple)):
            raise ValueError(f"{source}: 'specs' must be a list of objects")
        for i, raw in enumerate(specs):
            if not isinstance(raw, Mapping):
                raise ValueError(
                    f"{source}: specs[{i}] must be an object, "
                    f"got {type(raw).__name__}"
                )
            if "kind" not in raw:
                raise ValueError(
                    f"{source}: specs[{i}] is missing required key 'kind'"
                )
            if raw["kind"] not in FAULT_KINDS:
                raise ValueError(
                    f"{source}: specs[{i}] has unknown fault kind "
                    f"{raw['kind']!r}; known kinds: {', '.join(FAULT_KINDS)}"
                )
        try:
            return cls.from_dict(data)
        except (TypeError, ValueError) as exc:
            raise ValueError(f"{source}: malformed fault plan: {exc}") from exc

    @classmethod
    def load(cls, path: str | Path) -> "FaultPlan":
        """Read a plan from a JSON file (the ``repro chaos --plan`` format)."""
        p = Path(path)
        return cls.from_json(p.read_text(encoding="utf-8"), source=str(p))


def single_fault_plan(
    kind: str, seed: int = 0, rate: float | None = None, **params: float
) -> FaultPlan:
    """A plan arming exactly one fault class at its default rate."""
    spec = FaultSpec(
        kind=kind,
        rate=_DEFAULT_RATES.get(kind, 0.1) if rate is None else rate,
        params=params,
    )
    return FaultPlan(name=f"single-{kind}", seed=seed, specs=(spec,))
