"""Resilience scorecard: what the pipeline did under each fault class.

One :class:`FaultClassReport` per fault class (plus a clean baseline),
aggregated by :class:`ResilienceScorecard` into the artifact the
``repro chaos`` CLI prints and CI uploads.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Mapping

__all__ = ["FaultClassReport", "ResilienceScorecard"]


@dataclass
class FaultClassReport:
    """Outcome of one fleet run under a single fault class."""

    fault: str
    #: The run drained without an uncaught exception escaping the harness.
    completed: bool = False
    #: Exceptions that escaped the service loop (must be zero to pass).
    uncaught_exceptions: int = 0
    #: ``"<ExcType>: <msg>"`` for each uncaught exception, for the report.
    errors: tuple[str, ...] = ()
    diagnoses: int = 0
    degraded_diagnoses: int = 0
    quarantined: int = 0
    offset_resyncs: int = 0
    worker_restarts: int = 0
    faults_injected: int = 0
    #: Attribution vs ground truth (anomalous instances only).
    r_hits: int = 0
    r_expected: int = 0
    h_hits: int = 0
    h_expected: int = 0
    #: Anomalous instances that got at least one diagnosis / that did not.
    detected_instances: int = 0
    missed_instances: int = 0
    #: Diagnoses emitted for instances with no injected anomaly.
    spurious_diagnoses: int = 0
    notes: tuple[str, ...] = ()

    @property
    def r_accuracy(self) -> float:
        """Fraction of injected R-SQLs attributed (1.0 when none expected)."""
        return 1.0 if self.r_expected == 0 else self.r_hits / self.r_expected

    @property
    def h_accuracy(self) -> float:
        return 1.0 if self.h_expected == 0 else self.h_hits / self.h_expected

    def to_dict(self) -> dict:
        return {
            "fault": self.fault,
            "completed": self.completed,
            "uncaught_exceptions": self.uncaught_exceptions,
            "errors": list(self.errors),
            "diagnoses": self.diagnoses,
            "degraded_diagnoses": self.degraded_diagnoses,
            "quarantined": self.quarantined,
            "offset_resyncs": self.offset_resyncs,
            "worker_restarts": self.worker_restarts,
            "faults_injected": self.faults_injected,
            "r_hits": self.r_hits,
            "r_expected": self.r_expected,
            "r_accuracy": self.r_accuracy,
            "h_hits": self.h_hits,
            "h_expected": self.h_expected,
            "h_accuracy": self.h_accuracy,
            "detected_instances": self.detected_instances,
            "missed_instances": self.missed_instances,
            "spurious_diagnoses": self.spurious_diagnoses,
            "notes": list(self.notes),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "FaultClassReport":
        return cls(
            fault=data["fault"],
            completed=bool(data.get("completed", False)),
            uncaught_exceptions=int(data.get("uncaught_exceptions", 0)),
            errors=tuple(data.get("errors", ())),
            diagnoses=int(data.get("diagnoses", 0)),
            degraded_diagnoses=int(data.get("degraded_diagnoses", 0)),
            quarantined=int(data.get("quarantined", 0)),
            offset_resyncs=int(data.get("offset_resyncs", 0)),
            worker_restarts=int(data.get("worker_restarts", 0)),
            faults_injected=int(data.get("faults_injected", 0)),
            r_hits=int(data.get("r_hits", 0)),
            r_expected=int(data.get("r_expected", 0)),
            h_hits=int(data.get("h_hits", 0)),
            h_expected=int(data.get("h_expected", 0)),
            detected_instances=int(data.get("detected_instances", 0)),
            missed_instances=int(data.get("missed_instances", 0)),
            spurious_diagnoses=int(data.get("spurious_diagnoses", 0)),
            notes=tuple(data.get("notes", ())),
        )


@dataclass
class ResilienceScorecard:
    """Clean baseline + one report per fault class, for one seed."""

    seed: int
    instances: int
    duration_s: int
    clean: FaultClassReport | None = None
    faults: list[FaultClassReport] = field(default_factory=list)

    def report_for(self, fault: str) -> FaultClassReport | None:
        if fault == "clean":
            return self.clean
        for report in self.faults:
            if report.fault == fault:
                return report
        return None

    @property
    def all_completed(self) -> bool:
        reports = ([self.clean] if self.clean else []) + self.faults
        return bool(reports) and all(
            r.completed and r.uncaught_exceptions == 0 for r in reports
        )

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "instances": self.instances,
            "duration_s": self.duration_s,
            "all_completed": self.all_completed,
            "clean": self.clean.to_dict() if self.clean else None,
            "faults": [r.to_dict() for r in self.faults],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)

    @classmethod
    def from_dict(cls, data: Mapping) -> "ResilienceScorecard":
        clean = data.get("clean")
        return cls(
            seed=int(data.get("seed", 0)),
            instances=int(data.get("instances", 0)),
            duration_s=int(data.get("duration_s", 0)),
            clean=FaultClassReport.from_dict(clean) if clean else None,
            faults=[FaultClassReport.from_dict(r) for r in data.get("faults", ())],
        )

    def render_text(self) -> str:
        """The human scorecard the ``repro chaos`` CLI prints."""
        lines = [
            "Resilience scorecard",
            f"  seed={self.seed}  instances={self.instances}  "
            f"duration={self.duration_s}s",
            "",
            f"  {'fault':<14} {'ok':<4} {'diag':>5} {'degr':>5} {'quar':>5} "
            f"{'sync':>5} {'rstrt':>5} {'inj':>6} {'R-acc':>7} {'H-acc':>7}",
        ]
        reports = ([self.clean] if self.clean else []) + self.faults
        for r in reports:
            ok = "yes" if (r.completed and r.uncaught_exceptions == 0) else "NO"
            lines.append(
                f"  {r.fault:<14} {ok:<4} {r.diagnoses:>5} "
                f"{r.degraded_diagnoses:>5} {r.quarantined:>5} "
                f"{r.offset_resyncs:>5} {r.worker_restarts:>5} "
                f"{r.faults_injected:>6} {r.r_accuracy:>7.2f} {r.h_accuracy:>7.2f}"
            )
            for err in r.errors:
                lines.append(f"      ! {err}")
            for note in r.notes:
                lines.append(f"      - {note}")
        lines.append("")
        lines.append(
            "  verdict: "
            + ("PASS — all fault classes completed" if self.all_completed
               else "FAIL — uncaught exceptions or incomplete runs")
        )
        return "\n".join(lines)
