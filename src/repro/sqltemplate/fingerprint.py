"""Statement normalization and SQL_ID fingerprinting (paper Definition II.3).

``normalize_statement`` rewrites a SQL statement into its template form —
literals become ``?``, ``IN (...)`` lists collapse to ``IN (?)``, keywords
are upper-cased, whitespace is canonicalised.  ``sql_id`` hashes the
template into the short hex identifier the paper's query logs show
(e.g. ``E6DC``-style ids in Fig. 1).
"""

from __future__ import annotations

import enum
import hashlib
import re
from dataclasses import dataclass

from repro.sqltemplate.tokenizer import Token, TokenKind, tokenize

__all__ = [
    "StatementKind",
    "Fingerprint",
    "WILDCARD_PLACEHOLDER",
    "normalize_statement",
    "sql_id",
    "fingerprint",
    "classify_statement",
    "extract_tables",
]


class StatementKind(enum.Enum):
    """Coarse statement classification used by the lock and repair models."""

    SELECT = "select"
    INSERT = "insert"
    UPDATE = "update"
    DELETE = "delete"
    DDL = "ddl"
    TRANSACTION = "transaction"
    OTHER = "other"

    @property
    def is_write(self) -> bool:
        return self in (StatementKind.INSERT, StatementKind.UPDATE, StatementKind.DELETE)

    @property
    def takes_row_locks(self) -> bool:
        return self.is_write

    @property
    def takes_mdl_exclusive(self) -> bool:
        return self is StatementKind.DDL


_DDL_LEADS = {"create", "alter", "drop", "truncate", "rename"}
_TXN_LEADS = {"begin", "commit", "rollback"}


#: Placeholder kept for leading-wildcard LIKE patterns: `LIKE '%abc'` is a
#: different execution plan (full scan) than `LIKE 'abc%'` (range scan), so
#: the template must not erase that distinction.  The marker re-lexes as a
#: string starting with `%`, keeping normalization idempotent.
WILDCARD_PLACEHOLDER = "'%?'"


def _leading_wildcard(tok: Token) -> bool:
    if tok.kind != TokenKind.STRING or len(tok.text) < 2:
        return False
    return tok.text[1:].startswith("%")


def _normalized_tokens(sql: str) -> list[Token]:
    """Tokenize and replace literal tokens with placeholders."""
    out: list[Token] = []
    prev_like = False
    for tok in tokenize(sql):
        if tok.kind in (TokenKind.NUMBER, TokenKind.STRING):
            if prev_like and _leading_wildcard(tok):
                out.append(Token(TokenKind.PLACEHOLDER, WILDCARD_PLACEHOLDER))
            else:
                out.append(Token(TokenKind.PLACEHOLDER, "?"))
        else:
            out.append(tok)
        prev_like = tok.kind == TokenKind.KEYWORD and tok.text.lower() == "like"
    return out


def _collapse_in_lists(tokens: list[Token]) -> list[Token]:
    """Collapse ``IN ( ?, ?, ? )`` into ``IN ( ? )``.

    Multi-valued IN lists otherwise explode one logical template into many
    distinct digests — the classic digest-cardinality problem.
    """
    out: list[Token] = []
    i = 0
    n = len(tokens)
    while i < n:
        tok = tokens[i]
        is_in = tok.kind == TokenKind.KEYWORD and tok.text.lower() == "in"
        if is_in and i + 1 < n and tokens[i + 1].text == "(":
            # Scan the parenthesised list; collapse only if it is purely
            # literal values — placeholders, NULL, unary signs and commas.
            # Subqueries and column references must keep their shape.
            j = i + 2
            only_placeholders = True
            has_value = False
            depth = 1
            while j < n and depth > 0:
                t = tokens[j]
                if t.text == "(":
                    depth += 1
                elif t.text == ")":
                    depth -= 1
                    if depth == 0:
                        break
                elif t.kind == TokenKind.PLACEHOLDER or (
                    t.kind == TokenKind.KEYWORD and t.text.lower() == "null"
                ):
                    has_value = True
                elif t.kind == TokenKind.OPERATOR and t.text in ("+", "-"):
                    pass  # sign on a numeric literal: IN (-1, -2)
                elif t.text != ",":
                    only_placeholders = False
                j += 1
            if only_placeholders and has_value and j < n:
                out.append(tok)
                out.append(Token(TokenKind.PUNCT, "("))
                out.append(Token(TokenKind.PLACEHOLDER, "?"))
                out.append(Token(TokenKind.PUNCT, ")"))
                i = j + 1
                continue
        out.append(tok)
        i += 1
    return out


def _collapse_values_rows(tokens: list[Token]) -> list[Token]:
    """Collapse multi-row ``VALUES (?,?), (?,?), ...`` into one row.

    Batch INSERTs otherwise mint a distinct digest per batch size, the
    same cardinality explosion as multi-valued IN lists.
    """
    out: list[Token] = []
    i = 0
    n = len(tokens)
    while i < n:
        tok = tokens[i]
        out.append(tok)
        i += 1
        if not (tok.kind == TokenKind.KEYWORD and tok.text.lower() == "values"):
            continue
        # Copy the first parenthesised row verbatim.
        if i < n and tokens[i].text == "(":
            depth = 0
            while i < n:
                out.append(tokens[i])
                if tokens[i].text == "(":
                    depth += 1
                elif tokens[i].text == ")":
                    depth -= 1
                    if depth == 0:
                        i += 1
                        break
                i += 1
            # Skip any further ", ( ... )" rows made purely of
            # placeholders and commas.
            while (
                i + 1 < n
                and tokens[i].text == ","
                and tokens[i + 1].text == "("
            ):
                j = i + 1
                depth = 0
                simple = True
                while j < n:
                    t = tokens[j]
                    if t.text == "(":
                        depth += 1
                    elif t.text == ")":
                        depth -= 1
                        if depth == 0:
                            break
                    elif t.kind not in (TokenKind.PLACEHOLDER,) and t.text != ",":
                        simple = False
                    j += 1
                if not simple or j >= n:
                    break
                i = j + 1
    return out


def normalize_statement(sql: str) -> str:
    """Return the SQL template text for a statement.

    >>> normalize_statement("SELECT * FROM user_table WHERE uid = 123456")
    'SELECT * FROM user_table WHERE uid = ?'
    """
    tokens = _collapse_values_rows(_collapse_in_lists(_normalized_tokens(sql)))
    parts: list[str] = []
    plain_identifier = re.compile(r"^[A-Za-z_][A-Za-z0-9_$]*$")
    for tok in tokens:
        text = tok.text.upper() if tok.kind == TokenKind.KEYWORD else tok.text
        if tok.kind == TokenKind.IDENTIFIER and not plain_identifier.match(text):
            # Identifiers that would not re-lex as identifiers (spaces,
            # leading digits) keep their backquotes in the template.
            text = f"`{text}`"
        if tok.kind == TokenKind.PUNCT and text in (",", ".", ";", ")"):
            if parts and text != ")":
                parts[-1] = parts[-1] + text
                continue
            if text == ")":
                if parts:
                    parts[-1] = parts[-1] + text
                    continue
        if parts and parts[-1].endswith(("(", ".")):
            parts[-1] = parts[-1] + text
            continue
        parts.append(text)
    return " ".join(parts)


def sql_id(template_text: str, length: int = 8) -> str:
    """Stable hex SQL_ID for a template (MD5-derived, upper-case)."""
    digest = hashlib.md5(template_text.encode("utf-8")).hexdigest()
    return digest[:length].upper()


def classify_statement(sql: str) -> StatementKind:
    """Classify a statement (or template) into a :class:`StatementKind`."""
    for tok in tokenize(sql):
        word = tok.text.lower()
        if tok.kind not in (TokenKind.KEYWORD, TokenKind.IDENTIFIER):
            continue
        if word == "select":
            return StatementKind.SELECT
        if word == "insert" or word == "replace":
            return StatementKind.INSERT
        if word == "update":
            return StatementKind.UPDATE
        if word == "delete":
            return StatementKind.DELETE
        if word in _DDL_LEADS:
            return StatementKind.DDL
        if word in _TXN_LEADS:
            return StatementKind.TRANSACTION
        if word == "set":
            return StatementKind.OTHER
        break
    return StatementKind.OTHER


def extract_tables(sql: str) -> tuple[str, ...]:
    """Best-effort extraction of the table names a statement touches.

    Looks for identifiers following ``FROM``, ``JOIN``, ``UPDATE``,
    ``INTO`` and ``TABLE`` keywords — which covers the DML/DDL shapes the
    simulator generates, and is the same heuristic production digest
    pipelines start from.
    """
    tokens = tokenize(sql)
    tables: list[str] = []
    expect_table = False
    for tok in tokens:
        word = tok.text.lower()
        if tok.kind == TokenKind.KEYWORD and word in ("from", "join", "update", "into", "table"):
            expect_table = True
            continue
        if expect_table:
            if tok.kind == TokenKind.IDENTIFIER:
                if tok.text not in tables:
                    tables.append(tok.text)
                expect_table = False
            elif tok.kind == TokenKind.KEYWORD and word in ("if", "exists", "not"):
                continue  # e.g. DROP TABLE IF EXISTS t
            else:
                expect_table = False
    return tuple(tables)


@dataclass(frozen=True)
class Fingerprint:
    """Full fingerprint of a SQL statement."""

    sql_id: str
    template: str
    kind: StatementKind
    tables: tuple[str, ...]


def fingerprint(sql: str) -> Fingerprint:
    """Normalize, hash and classify a statement in one call."""
    template = normalize_statement(sql)
    return Fingerprint(
        sql_id=sql_id(template),
        template=template,
        kind=classify_statement(sql),
        tables=extract_tables(sql),
    )
